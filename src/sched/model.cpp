#include "sched/model.hpp"

#include "support/assert.hpp"
#include "support/string_util.hpp"

namespace memopt {

std::string mem_level_name(MemLevel level) {
    switch (level) {
        case MemLevel::L1: return "L1";
        case MemLevel::L2: return "L2";
        case MemLevel::Ext: return "ext";
    }
    MEMOPT_ASSERT_MSG(false, "invalid MemLevel");
    return "?";
}

void Application::validate() const {
    require(!datasets.empty(), "Application: no data sets");
    require(!phases.empty(), "Application: no phases");
    require(num_contexts >= 1, "Application: num_contexts must be >= 1");
    for (const DataSet& ds : datasets)
        require(ds.bytes > 0 && ds.bytes % 4 == 0, "Application: data set size must be a "
                                                   "positive multiple of 4");
    for (const KernelPhase& phase : phases) {
        require(phase.context < num_contexts, "Application: phase context out of range");
        for (const KernelUse& use : phase.uses) {
            require(use.dataset < datasets.size(), "Application: use references unknown data set");
            require(use.accesses > 0, "Application: zero-access use");
        }
    }
}

double ReconfArch::access_pj(MemLevel level) const {
    switch (level) {
        case MemLevel::L1: return l1_access_pj;
        case MemLevel::L2: return l2_access_pj;
        case MemLevel::Ext: return ext_access_pj;
    }
    MEMOPT_ASSERT_MSG(false, "invalid MemLevel");
    return 0.0;
}

double ReconfArch::move_pj(MemLevel from, MemLevel to, std::uint64_t bytes) const {
    if (from == to) return 0.0;
    const double words = static_cast<double>(bytes) / 4.0;
    return words * (access_pj(from) + access_pj(to));
}

std::uint64_t ReconfArch::level_capacity(MemLevel level) const {
    switch (level) {
        case MemLevel::L1: return l1_bytes;
        case MemLevel::L2: return l2_bytes;
        case MemLevel::Ext: return UINT64_MAX;
    }
    MEMOPT_ASSERT_MSG(false, "invalid MemLevel");
    return 0;
}

Application generate_application(const AppGenParams& params) {
    require(params.num_datasets >= 1 && params.num_phases >= 1,
            "AppGenParams: need at least one data set and one phase");
    require(params.min_bytes >= 4 && params.min_bytes <= params.max_bytes,
            "AppGenParams: invalid size range");
    require(params.min_accesses >= 1 && params.min_accesses <= params.max_accesses,
            "AppGenParams: invalid access range");
    Rng rng(params.seed);
    Application app;
    app.name = "synthetic-media";
    app.num_contexts = params.num_contexts;

    for (std::size_t d = 0; d < params.num_datasets; ++d) {
        const auto bytes = static_cast<std::uint64_t>(
            rng.next_in(static_cast<std::int64_t>(params.min_bytes / 4),
                        static_cast<std::int64_t>(params.max_bytes / 4)));
        app.datasets.push_back(DataSet{format("buf%zu", d), bytes * 4});
    }

    for (std::size_t p = 0; p < params.num_phases; ++p) {
        KernelPhase phase;
        phase.name = format("kernel%zu", p);
        // Pipelines revisit a few contexts: pick with a skew so that some
        // contexts repeat (that is what makes context scheduling matter).
        phase.context = static_cast<std::size_t>(
            rng.next_zipf_like(params.num_contexts, 0.4));
        // Each phase touches 1..min(4, D) data sets: typically its input,
        // its output and shared coefficient tables.
        const std::size_t max_uses = std::min<std::size_t>(4, params.num_datasets);
        const std::size_t num_uses = 1 + static_cast<std::size_t>(rng.next_below(max_uses));
        std::vector<std::size_t> chosen;
        while (chosen.size() < num_uses) {
            const auto ds = static_cast<std::size_t>(rng.next_below(params.num_datasets));
            bool dup = false;
            for (std::size_t c : chosen) dup = dup || c == ds;
            if (!dup) chosen.push_back(ds);
        }
        for (std::size_t ds : chosen) {
            const auto accesses = static_cast<std::uint64_t>(
                rng.next_in(static_cast<std::int64_t>(params.min_accesses),
                            static_cast<std::int64_t>(params.max_accesses)));
            phase.uses.push_back(KernelUse{ds, accesses});
        }
        app.phases.push_back(std::move(phase));
    }
    app.validate();
    return app;
}

}  // namespace memopt
