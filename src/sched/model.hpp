// Multi-context reconfigurable architecture model — the 1B-4 substrate.
//
// Models a MorphoSys-class reconfigurable array from the data-management
// perspective: a sequence of kernel phases, each requiring one context
// (array configuration) and accessing a set of data arrays; two on-chip
// scratchpad levels (small/cheap L1, larger L2) backed by external memory;
// and an on-chip context store with a limited number of slots. The Data
// Scheduler decides on which level each data set lives during each phase.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/rng.hpp"

namespace memopt {

/// Storage levels a data set can live on during a phase.
enum class MemLevel : std::uint8_t { L1 = 0, L2 = 1, Ext = 2 };

inline constexpr std::size_t kNumLevels = 3;

/// Display name ("L1", "L2", "ext").
std::string mem_level_name(MemLevel level);

/// One data array of the application.
struct DataSet {
    std::string name;
    std::uint64_t bytes = 0;
};

/// One (data set, access count) pair within a phase.
struct KernelUse {
    std::size_t dataset = 0;      ///< index into Application::datasets
    std::uint64_t accesses = 0;   ///< 32-bit accesses during the phase
};

/// One kernel execution step.
struct KernelPhase {
    std::string name;
    std::size_t context = 0;      ///< configuration required by this phase
    std::vector<KernelUse> uses;
};

/// A complete application (what the paper calls the task's data flow).
struct Application {
    std::string name;
    std::vector<DataSet> datasets;
    std::vector<KernelPhase> phases;
    std::size_t num_contexts = 1;

    /// Throws memopt::Error if indices are out of range or counts are zero.
    void validate() const;
};

/// Architecture parameters. Energies are per 32-bit access / per byte.
struct ReconfArch {
    std::uint64_t l1_bytes = 2 * 1024;
    std::uint64_t l2_bytes = 8 * 1024;
    double l1_access_pj = 4.0;
    double l2_access_pj = 14.0;
    double ext_access_pj = 130.0;
    std::uint64_t context_bytes = 2 * 1024;   ///< size of one context word plane
    double context_byte_pj = 0.9;             ///< per byte moved into the context store
    std::size_t context_slots = 2;            ///< on-chip context store capacity

    /// Per-word access energy of a level.
    double access_pj(MemLevel level) const;

    /// Energy to move one data set of `bytes` bytes from `from` to `to`
    /// (read at source + write at destination, word by word). Zero if the
    /// levels are equal.
    double move_pj(MemLevel from, MemLevel to, std::uint64_t bytes) const;

    std::uint64_t level_capacity(MemLevel level) const;
};

/// A schedule: assignment[phase][dataset] = level of that data set during
/// that phase. Every data set has an assignment in every phase (unused data
/// sets park on Ext by convention of the generators/solvers).
struct DataSchedule {
    std::vector<std::vector<MemLevel>> assignment;
    bool prefetch_contexts = false;  ///< stage context planes through L2
};

/// Deterministic generator of synthetic multimedia applications (pipelines
/// of filter/transform kernels with shared buffers), used by tests and the
/// E9 bench.
struct AppGenParams {
    std::size_t num_datasets = 6;
    std::size_t num_phases = 8;
    std::size_t num_contexts = 4;
    std::uint64_t min_bytes = 512;
    std::uint64_t max_bytes = 8 * 1024;
    std::uint64_t min_accesses = 2'000;
    std::uint64_t max_accesses = 60'000;
    std::uint64_t seed = 1;
};
Application generate_application(const AppGenParams& params);

}  // namespace memopt
