#include "sched/scheduler.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <list>
#include <vector>

#include "support/assert.hpp"

namespace memopt {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

const std::array<MemLevel, kNumLevels> kLevels = {MemLevel::L1, MemLevel::L2, MemLevel::Ext};

/// Effective L2 capacity, accounting for the context staging reservation.
std::uint64_t l2_capacity(const ReconfArch& arch, bool prefetch_contexts) {
    if (!prefetch_contexts) return arch.l2_bytes;
    require(arch.l2_bytes > arch.context_bytes,
            "ReconfArch: context plane does not fit in L2 for prefetching");
    return arch.l2_bytes - arch.context_bytes;
}

/// Capacity check of one phase assignment.
bool fits(const Application& app, const ReconfArch& arch, bool prefetch,
          const std::vector<MemLevel>& assign) {
    std::uint64_t l1 = 0;
    std::uint64_t l2 = 0;
    for (std::size_t d = 0; d < assign.size(); ++d) {
        if (assign[d] == MemLevel::L1) l1 += app.datasets[d].bytes;
        if (assign[d] == MemLevel::L2) l2 += app.datasets[d].bytes;
    }
    return l1 <= arch.l1_bytes && l2 <= l2_capacity(arch, prefetch);
}

/// Context-store simulation (LRU over `context_slots` slots). Returns the
/// number of context loads (first-use and reloads alike).
std::uint64_t count_context_loads(const Application& app, std::size_t slots) {
    MEMOPT_ASSERT(slots >= 1);
    std::list<std::size_t> lru;  // front = most recent
    std::uint64_t loads = 0;
    for (const KernelPhase& phase : app.phases) {
        const auto it = std::find(lru.begin(), lru.end(), phase.context);
        if (it != lru.end()) {
            lru.erase(it);
        } else {
            ++loads;
            if (lru.size() == slots) lru.pop_back();
        }
        lru.push_front(phase.context);
    }
    return loads;
}

std::size_t distinct_contexts(const Application& app) {
    std::vector<bool> seen(app.num_contexts, false);
    std::size_t n = 0;
    for (const KernelPhase& phase : app.phases) {
        if (!seen[phase.context]) {
            seen[phase.context] = true;
            ++n;
        }
    }
    return n;
}

double context_energy(const Application& app, const ReconfArch& arch, bool prefetch) {
    const std::uint64_t loads = count_context_loads(app, arch.context_slots);
    const auto plane = static_cast<double>(arch.context_bytes);
    if (!prefetch) return static_cast<double>(loads) * plane * arch.context_byte_pj;
    // With staging, each distinct context is fetched from external memory
    // into L2 once; every load into the context store then reads L2, which
    // is cheaper in proportion to the level access energies.
    const double l2_factor = arch.l2_access_pj / arch.ext_access_pj;
    const double stage = static_cast<double>(distinct_contexts(app)) * plane * arch.context_byte_pj;
    return stage + static_cast<double>(loads) * plane * arch.context_byte_pj * l2_factor;
}

}  // namespace

EnergyBreakdown evaluate_schedule(const Application& app, const ReconfArch& arch,
                                  const DataSchedule& schedule) {
    app.validate();
    require(schedule.assignment.size() == app.phases.size(),
            "evaluate_schedule: wrong phase count");

    double access_pj = 0.0;
    double move_pj = 0.0;
    std::vector<MemLevel> prev(app.datasets.size(), MemLevel::Ext);
    for (std::size_t p = 0; p < app.phases.size(); ++p) {
        const auto& assign = schedule.assignment[p];
        require(assign.size() == app.datasets.size(),
                "evaluate_schedule: wrong data set count in phase");
        require(fits(app, arch, schedule.prefetch_contexts, assign),
                "evaluate_schedule: capacity violated in phase " + app.phases[p].name);
        for (std::size_t d = 0; d < assign.size(); ++d)
            move_pj += arch.move_pj(prev[d], assign[d], app.datasets[d].bytes);
        for (const KernelUse& use : app.phases[p].uses)
            access_pj +=
                static_cast<double>(use.accesses) * arch.access_pj(assign[use.dataset]);
        prev = assign;
    }

    EnergyBreakdown breakdown;
    breakdown.add("data_access", access_pj);
    breakdown.add("data_movement", move_pj);
    breakdown.add("context_load", context_energy(app, arch, schedule.prefetch_contexts));
    return breakdown;
}

DataSchedule naive_schedule(const Application& app, const ReconfArch& arch) {
    app.validate();
    std::vector<MemLevel> assign(app.datasets.size(), MemLevel::Ext);
    std::uint64_t l2_used = 0;
    for (std::size_t d = 0; d < app.datasets.size(); ++d) {
        if (l2_used + app.datasets[d].bytes <= arch.l2_bytes) {
            assign[d] = MemLevel::L2;
            l2_used += app.datasets[d].bytes;
        }
    }
    DataSchedule schedule;
    schedule.assignment.assign(app.phases.size(), assign);
    schedule.prefetch_contexts = false;
    return schedule;
}

namespace {

DataSchedule greedy_with_prefetch(const Application& app, const ReconfArch& arch,
                                  bool prefetch) {
    DataSchedule schedule;
    schedule.prefetch_contexts = prefetch;
    std::vector<MemLevel> prev(app.datasets.size(), MemLevel::Ext);

    for (const KernelPhase& phase : app.phases) {
        std::vector<MemLevel> assign(app.datasets.size(), MemLevel::Ext);
        std::uint64_t remaining_l1 = arch.l1_bytes;
        std::uint64_t remaining_l2 = l2_capacity(arch, prefetch);

        // Used data sets first, by access density (accesses per byte).
        std::vector<KernelUse> uses = phase.uses;
        std::sort(uses.begin(), uses.end(), [&](const KernelUse& a, const KernelUse& b) {
            const double da = static_cast<double>(a.accesses) /
                              static_cast<double>(app.datasets[a.dataset].bytes);
            const double db = static_cast<double>(b.accesses) /
                              static_cast<double>(app.datasets[b.dataset].bytes);
            if (da != db) return da > db;
            return a.dataset < b.dataset;  // deterministic tie-break
        });
        for (const KernelUse& use : uses) {
            const std::uint64_t bytes = app.datasets[use.dataset].bytes;
            double best_cost = kInf;
            MemLevel best = MemLevel::Ext;
            for (MemLevel level : kLevels) {
                if (level == MemLevel::L1 && bytes > remaining_l1) continue;
                if (level == MemLevel::L2 && bytes > remaining_l2) continue;
                const double cost =
                    static_cast<double>(use.accesses) * arch.access_pj(level) +
                    arch.move_pj(prev[use.dataset], level, bytes);
                if (cost < best_cost) {
                    best_cost = cost;
                    best = level;
                }
            }
            assign[use.dataset] = best;
            if (best == MemLevel::L1) remaining_l1 -= bytes;
            if (best == MemLevel::L2) remaining_l2 -= bytes;
        }

        // Unused data sets keep their residency when it still fits
        // (avoiding pointless copies), otherwise they spill to Ext.
        for (std::size_t d = 0; d < app.datasets.size(); ++d) {
            bool used = false;
            for (const KernelUse& use : phase.uses) used = used || use.dataset == d;
            if (used) continue;
            const std::uint64_t bytes = app.datasets[d].bytes;
            MemLevel keep = prev[d];
            if (keep == MemLevel::L1 && bytes <= remaining_l1) {
                remaining_l1 -= bytes;
            } else if (keep == MemLevel::L2 && bytes <= remaining_l2) {
                remaining_l2 -= bytes;
            } else {
                keep = MemLevel::Ext;
            }
            assign[d] = keep;
        }

        schedule.assignment.push_back(assign);
        prev = std::move(assign);
    }
    return schedule;
}

}  // namespace

DataSchedule greedy_schedule(const Application& app, const ReconfArch& arch) {
    app.validate();
    DataSchedule no_prefetch = greedy_with_prefetch(app, arch, false);
    DataSchedule with_prefetch = greedy_with_prefetch(app, arch, true);
    const double e0 = evaluate_schedule(app, arch, no_prefetch).total();
    const double e1 = evaluate_schedule(app, arch, with_prefetch).total();
    return e1 < e0 ? with_prefetch : no_prefetch;
}

namespace {

/// All capacity-feasible assignment vectors for `app` (3^D enumeration).
std::vector<std::vector<MemLevel>> feasible_states(const Application& app,
                                                   const ReconfArch& arch, bool prefetch) {
    const std::size_t d = app.datasets.size();
    std::vector<std::vector<MemLevel>> states;
    std::vector<MemLevel> current(d, MemLevel::L1);
    std::size_t total = 1;
    for (std::size_t i = 0; i < d; ++i) total *= kNumLevels;
    for (std::size_t code = 0; code < total; ++code) {
        std::size_t rest = code;
        for (std::size_t i = 0; i < d; ++i) {
            current[i] = kLevels[rest % kNumLevels];
            rest /= kNumLevels;
        }
        if (fits(app, arch, prefetch, current)) states.push_back(current);
    }
    return states;
}

DataSchedule viterbi(const Application& app, const ReconfArch& arch, bool prefetch) {
    const auto states = feasible_states(app, arch, prefetch);
    MEMOPT_ASSERT(!states.empty());  // all-Ext is always feasible
    const std::size_t s = states.size();
    const std::size_t p = app.phases.size();

    // Movement cost matrix between states is phase-independent but large;
    // compute transitions lazily instead.
    auto move_cost = [&](const std::vector<MemLevel>& a, const std::vector<MemLevel>& b) {
        double cost = 0.0;
        for (std::size_t i = 0; i < a.size(); ++i)
            cost += arch.move_pj(a[i], b[i], app.datasets[i].bytes);
        return cost;
    };
    auto access_cost = [&](std::size_t phase, const std::vector<MemLevel>& assign) {
        double cost = 0.0;
        for (const KernelUse& use : app.phases[phase].uses)
            cost += static_cast<double>(use.accesses) * arch.access_pj(assign[use.dataset]);
        return cost;
    };

    const std::vector<MemLevel> start(app.datasets.size(), MemLevel::Ext);
    std::vector<double> best(s, kInf);
    std::vector<std::vector<std::size_t>> parent(p, std::vector<std::size_t>(s, 0));
    for (std::size_t j = 0; j < s; ++j)
        best[j] = move_cost(start, states[j]) + access_cost(0, states[j]);

    for (std::size_t phase = 1; phase < p; ++phase) {
        std::vector<double> next(s, kInf);
        for (std::size_t j = 0; j < s; ++j) {
            const double access = access_cost(phase, states[j]);
            for (std::size_t i = 0; i < s; ++i) {
                if (best[i] == kInf) continue;
                const double cand = best[i] + move_cost(states[i], states[j]) + access;
                if (cand < next[j]) {
                    next[j] = cand;
                    parent[phase][j] = i;
                }
            }
        }
        best = std::move(next);
    }

    std::size_t arg = 0;
    for (std::size_t j = 1; j < s; ++j) {
        if (best[j] < best[arg]) arg = j;
    }

    DataSchedule schedule;
    schedule.prefetch_contexts = prefetch;
    schedule.assignment.assign(p, {});
    for (std::size_t phase = p; phase-- > 0;) {
        schedule.assignment[phase] = states[arg];
        if (phase > 0) arg = parent[phase][arg];
    }
    return schedule;
}

}  // namespace

DataSchedule optimal_schedule(const Application& app, const ReconfArch& arch) {
    app.validate();
    require(app.datasets.size() <= 6, "optimal_schedule: too many data sets (exact DP)");
    DataSchedule no_prefetch = viterbi(app, arch, false);
    DataSchedule with_prefetch = viterbi(app, arch, true);
    const double e0 = evaluate_schedule(app, arch, no_prefetch).total();
    const double e1 = evaluate_schedule(app, arch, with_prefetch).total();
    return e1 < e0 ? with_prefetch : no_prefetch;
}

}  // namespace memopt
