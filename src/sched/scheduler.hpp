// Data schedulers for multi-context reconfigurable architectures (1B-4).
//
// Three solvers produce a DataSchedule for an Application on a ReconfArch;
// evaluate_schedule() is the shared objective. The scheduler's job is to
// decide, phase by phase, which on-chip level each data set occupies —
// trading access energy (hot data wants L1) against movement energy
// (relocating a big array costs a full copy) under the level capacities —
// and whether context planes are staged through L2 (cheaper reconfiguration
// at the price of L2 capacity).
#pragma once

#include "energy/report.hpp"
#include "sched/model.hpp"

namespace memopt {

/// Energy breakdown of running `app` under `schedule`:
/// components "data_access", "data_movement", "context_load".
/// Throws memopt::Error if the schedule violates a capacity constraint or
/// has the wrong shape.
EnergyBreakdown evaluate_schedule(const Application& app, const ReconfArch& arch,
                                  const DataSchedule& schedule);

/// Naive baseline: every data set parks on L2 in declaration order until L2
/// is full, the rest stays external; no movement, no context prefetch.
/// This is the "no data scheduler" configuration of the paper.
DataSchedule naive_schedule(const Application& app, const ReconfArch& arch);

/// Greedy scheduler: per phase, ranks used data sets by access density
/// (accesses per byte), fills L1 then L2, keeps unused data where it was
/// (avoiding spurious moves), and enables context prefetch when L2 retains
/// enough slack in every phase. Moves only when the access-energy gain of
/// the new placement exceeds the movement cost.
DataSchedule greedy_schedule(const Application& app, const ReconfArch& arch);

/// Exact DP (Viterbi over per-phase level assignments). Exponential in the
/// data-set count; requires datasets <= 6. Used by tests and small benches
/// to certify the greedy solver.
DataSchedule optimal_schedule(const Application& app, const ReconfArch& arch);

}  // namespace memopt
