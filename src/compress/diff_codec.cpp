#include "compress/diff_codec.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace memopt {

namespace {

// Stream layout: 2 mode bits, then the payload of the chosen mode.
constexpr unsigned kModeRaw = 0;
constexpr unsigned kModeWordDiff = 1;
constexpr unsigned kModeByteDiff = 2;

// --- word-differential mode ---------------------------------------------

constexpr unsigned kTagZero = 0;
constexpr unsigned kTagByte = 1;
constexpr unsigned kTagHalf = 2;
constexpr unsigned kTagRaw = 3;

unsigned word_tag(std::uint32_t delta) {
    const auto sdelta = static_cast<std::int32_t>(delta);
    if (sdelta == 0) return kTagZero;
    if (sdelta >= -128 && sdelta <= 127) return kTagByte;
    if (sdelta >= -32768 && sdelta <= 32767) return kTagHalf;
    return kTagRaw;
}

unsigned word_payload_bits(unsigned tag) {
    switch (tag) {
        case kTagZero: return 0;
        case kTagByte: return 8;
        case kTagHalf: return 16;
        default: return 32;
    }
}

std::size_t word_diff_bits(const std::vector<std::uint32_t>& words) {
    std::size_t bits = 32;
    for (std::size_t w = 1; w < words.size(); ++w)
        bits += 2 + word_payload_bits(word_tag(words[w] - words[w - 1]));
    return bits;
}

// --- byte-differential mode ---------------------------------------------
// Per byte (after the first, stored raw): 2-bit tag — zero delta, signed
// nibble delta, or raw byte.

constexpr unsigned kByteTagZero = 0;
constexpr unsigned kByteTagNibble = 1;
constexpr unsigned kByteTagRaw = 2;

unsigned byte_tag(std::uint8_t delta) {
    const auto sdelta = static_cast<std::int8_t>(delta);
    if (sdelta == 0) return kByteTagZero;
    if (sdelta >= -8 && sdelta <= 7) return kByteTagNibble;
    return kByteTagRaw;
}

unsigned byte_payload_bits(unsigned tag) {
    switch (tag) {
        case kByteTagZero: return 0;
        case kByteTagNibble: return 4;
        default: return 8;
    }
}

std::size_t byte_diff_bits(std::span<const std::uint8_t> line) {
    std::size_t bits = 8;
    for (std::size_t b = 1; b < line.size(); ++b)
        bits += 2 + byte_payload_bits(byte_tag(static_cast<std::uint8_t>(line[b] - line[b - 1])));
    return bits;
}

}  // namespace

BitWriter DiffCodec::encode(std::span<const std::uint8_t> line) const {
    const std::vector<std::uint32_t> words = line_words(line);
    require(!words.empty(), "DiffCodec: empty line");

    const std::size_t raw_bits = words.size() * 32;
    const std::size_t word_bits = word_diff_bits(words);
    const std::size_t byte_bits = byte_diff_bits(line);

    BitWriter out;
    if (word_bits <= byte_bits && word_bits < raw_bits) {
        out.put_bits(kModeWordDiff, 2);
        out.put_bits(words[0], 32);
        for (std::size_t w = 1; w < words.size(); ++w) {
            const std::uint32_t delta = words[w] - words[w - 1];
            const unsigned tag = word_tag(delta);
            out.put_bits(tag, 2);
            if (word_payload_bits(tag) > 0) out.put_bits(delta, word_payload_bits(tag));
        }
        MEMOPT_ASSERT(out.bit_count() == 2 + word_bits);
    } else if (byte_bits < word_bits && byte_bits < raw_bits) {
        out.put_bits(kModeByteDiff, 2);
        out.put_bits(line[0], 8);
        for (std::size_t b = 1; b < line.size(); ++b) {
            const auto delta = static_cast<std::uint8_t>(line[b] - line[b - 1]);
            const unsigned tag = byte_tag(delta);
            out.put_bits(tag, 2);
            if (byte_payload_bits(tag) > 0) out.put_bits(delta, byte_payload_bits(tag));
        }
        MEMOPT_ASSERT(out.bit_count() == 2 + byte_bits);
    } else {
        out.put_bits(kModeRaw, 2);
        for (std::uint32_t w : words) out.put_bits(w, 32);
    }
    return out;
}

std::vector<std::uint8_t> DiffCodec::decode(std::span<const std::uint8_t> coded,
                                            std::size_t line_bytes) const {
    require(line_bytes % 4 == 0 && line_bytes > 0 && line_bytes <= kMaxLineBytes,
            "DiffCodec: bad line size");
    const std::size_t num_words = line_bytes / 4;
    BitReader in(coded);
    const unsigned mode = in.get_bits(2);

    if (mode == kModeRaw) {
        std::vector<std::uint32_t> words;
        words.reserve(num_words);
        for (std::size_t w = 0; w < num_words; ++w) words.push_back(in.get_bits(32));
        return words_to_line(words);
    }

    if (mode == kModeWordDiff) {
        std::vector<std::uint32_t> words;
        words.reserve(num_words);
        words.push_back(in.get_bits(32));
        for (std::size_t w = 1; w < num_words; ++w) {
            const unsigned tag = in.get_bits(2);
            std::uint32_t delta = 0;
            switch (tag) {
                case kTagZero:
                    break;
                case kTagByte:
                    delta = static_cast<std::uint32_t>(
                        static_cast<std::int32_t>(static_cast<std::int8_t>(in.get_bits(8))));
                    break;
                case kTagHalf:
                    delta = static_cast<std::uint32_t>(
                        static_cast<std::int32_t>(static_cast<std::int16_t>(in.get_bits(16))));
                    break;
                default:
                    delta = in.get_bits(32);
                    break;
            }
            words.push_back(words.back() + delta);
        }
        return words_to_line(words);
    }

    require(mode == kModeByteDiff, "DiffCodec: corrupt mode field");
    std::vector<std::uint8_t> line;
    line.reserve(line_bytes);
    line.push_back(static_cast<std::uint8_t>(in.get_bits(8)));
    for (std::size_t b = 1; b < line_bytes; ++b) {
        const unsigned tag = in.get_bits(2);
        std::uint8_t delta = 0;
        switch (tag) {
            case kByteTagZero:
                break;
            case kByteTagNibble: {
                const std::uint32_t nibble = in.get_bits(4);
                // Sign-extend the 4-bit value.
                delta = static_cast<std::uint8_t>(
                    static_cast<std::int8_t>((nibble ^ 0x8u) - 0x8u));
                break;
            }
            default:
                delta = static_cast<std::uint8_t>(in.get_bits(8));
                break;
        }
        line.push_back(static_cast<std::uint8_t>(line.back() + delta));
    }
    return line;
}

}  // namespace memopt
