#include "compress/codec.hpp"

#include "support/assert.hpp"

namespace memopt {

void BitWriter::put_bit(bool bit) {
    const std::size_t byte_index = bits_ / 8;
    if (byte_index == bytes_.size()) bytes_.push_back(0);
    if (bit) bytes_[byte_index] |= static_cast<std::uint8_t>(1u << (bits_ % 8));
    ++bits_;
}

void BitWriter::put_bits(std::uint32_t value, unsigned count) {
    MEMOPT_ASSERT(count <= 32);
    for (unsigned i = 0; i < count; ++i) put_bit((value >> i) & 1u);
}

bool BitReader::get_bit() {
    require(pos_ < bytes_.size() * 8, "BitReader: read past end of stream");
    const bool bit = (bytes_[pos_ / 8] >> (pos_ % 8)) & 1u;
    ++pos_;
    return bit;
}

std::uint32_t BitReader::get_bits(unsigned count) {
    MEMOPT_ASSERT(count <= 32);
    std::uint32_t value = 0;
    for (unsigned i = 0; i < count; ++i) value |= static_cast<std::uint32_t>(get_bit()) << i;
    return value;
}

std::size_t LineCodec::compressed_bits(std::span<const std::uint8_t> line) const {
    return encode(line).bit_count();
}

std::vector<std::uint32_t> line_words(std::span<const std::uint8_t> line) {
    require(line.size() % 4 == 0, "line size must be a multiple of 4 bytes");
    std::vector<std::uint32_t> words(line.size() / 4);
    for (std::size_t w = 0; w < words.size(); ++w) {
        words[w] = static_cast<std::uint32_t>(line[4 * w]) |
                   (static_cast<std::uint32_t>(line[4 * w + 1]) << 8) |
                   (static_cast<std::uint32_t>(line[4 * w + 2]) << 16) |
                   (static_cast<std::uint32_t>(line[4 * w + 3]) << 24);
    }
    return words;
}

std::vector<std::uint8_t> words_to_line(std::span<const std::uint32_t> words) {
    std::vector<std::uint8_t> line(words.size() * 4);
    for (std::size_t w = 0; w < words.size(); ++w) {
        line[4 * w] = static_cast<std::uint8_t>(words[w]);
        line[4 * w + 1] = static_cast<std::uint8_t>(words[w] >> 8);
        line[4 * w + 2] = static_cast<std::uint8_t>(words[w] >> 16);
        line[4 * w + 3] = static_cast<std::uint8_t>(words[w] >> 24);
    }
    return line;
}

}  // namespace memopt
