// Differential line codec — the 1B-2 compression algorithm.
//
// Three layouts, selected per line by a leading 2-bit mode field (the
// encoder picks the smallest):
//
//  * word-differential — the line is viewed as little-endian 32-bit words;
//    the first word is verbatim, each subsequent word is the difference to
//    its predecessor with a 2-bit size tag:
//      tag 00: delta == 0 (0 bits), 01: signed 8-bit (8), 10: signed 16-bit
//      (16), 11: raw word (32).
//    Wins on pointers, counters and media samples.
//  * byte-differential — same idea at byte granularity (tags: zero / signed
//    nibble / raw byte). Wins on packed small-alphabet data (text, flags).
//  * raw fallback — so the stored size never exceeds raw + 2 bits.
//
// The codec is stateless per line: any line can be decompressed in
// isolation, which is what allows cache refills in arbitrary order.
#pragma once

#include "compress/codec.hpp"

namespace memopt {

/// The differential codec (see file comment).
class DiffCodec final : public LineCodec {
public:
    std::string name() const override { return "diff"; }
    BitWriter encode(std::span<const std::uint8_t> line) const override;
    std::vector<std::uint8_t> decode(std::span<const std::uint8_t> coded,
                                     std::size_t line_bytes) const override;
};

}  // namespace memopt
