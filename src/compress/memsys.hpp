// Compressed-memory system simulation — the 1B-2 experiment engine.
//
// Replays a value-carrying data trace through a write-back D-cache backed
// by main memory. With a codec installed, every dirty line is compressed
// before its write-back burst and lines stored compressed are refetched at
// their compressed size (and decompressed) on refill — exactly the
// Lx-ST200 scheme of the paper. Without a codec the same engine produces
// the uncompressed baseline, so savings compare identical machinery.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>

#include "cache/cache.hpp"
#include "compress/codec.hpp"
#include "energy/dram_model.hpp"
#include "energy/report.hpp"
#include "energy/sram_model.hpp"
#include "trace/trace.hpp"

namespace memopt {

class JsonWriter;
class TraceSource;

/// Fault injection into compressed lines between write-back and refill.
struct MemFaultParams {
    double stored_bit_flip_prob = 0.0;  ///< per stored bit (data + check), at refill
    std::uint64_t seed = 1;             ///< deterministic injection stream
};

/// Configuration of the compressed memory system.
struct CompressedMemConfig {
    CacheConfig cache;                   ///< D-cache geometry (write-back)
    SramTechnology cache_sram;           ///< cache array technology
    DramTechnology dram;                 ///< off-chip path technology
    double compress_pj_per_word = 1.2;   ///< HW compression unit, per 32-bit word
    double decompress_pj_per_word = 0.9; ///< HW decompression unit, per word
    /// Protection of the stored (compressed) lines and the cache array.
    /// Check bits inflate the stored size of every compressed line (the
    /// honest cost of protecting narrow-delta encodings) and add encode/
    /// check logic energy per refill/write-back ("ecc" component).
    ProtectionScheme protection = ProtectionScheme::None;
    /// When set, every refill of a compressed line first flips each stored
    /// bit with the given probability. Detected corruption (ECC-flagged or
    /// codec-reported) degrades gracefully to a modeled re-fetch of the raw
    /// line instead of propagating garbage; undetected corruption is
    /// tallied as a silent refill.
    std::optional<MemFaultParams> faults;
    /// When set, the simulation keeps every compressed blob and, on each
    /// refill of a compressed line, decodes it and checks the bytes against
    /// the shadow memory — an end-to-end losslessness invariant across the
    /// full system (throws memopt::Error on mismatch). Used by tests.
    /// Mutually exclusive with `faults` (corrupted blobs must not trip the
    /// losslessness invariant).
    bool verify_roundtrip = false;
};

/// Result of one simulation run.
struct CompressedMemReport {
    CacheStats cache_stats;
    std::uint64_t writeback_lines = 0;      ///< lines written to main memory
    std::uint64_t fill_lines = 0;           ///< lines fetched from main memory
    std::uint64_t raw_traffic_bytes = 0;    ///< bytes if all bursts were raw
    std::uint64_t actual_traffic_bytes = 0; ///< bytes actually moved
    std::uint64_t faults_injected = 0;      ///< stored bits flipped (faults enabled)
    std::uint64_t corrected_faults = 0;     ///< words repaired by SECDED at refill
    std::uint64_t degraded_refills = 0;     ///< refills degraded to a raw re-fetch
    std::uint64_t silent_refills = 0;       ///< refills delivering undetected corruption
    EnergyBreakdown energy;  ///< "cache", "main_memory", "codec" (+ "ecc", "refetch")

    /// Actual/raw traffic; 1.0 when nothing was compressible (or no codec).
    double traffic_ratio() const {
        return raw_traffic_bytes == 0
                   ? 1.0
                   : static_cast<double>(actual_traffic_bytes) /
                         static_cast<double>(raw_traffic_bytes);
    }
};

/// Serialize one run: cache stats, line traffic, traffic ratio, energy.
void to_json(JsonWriter& w, const CompressedMemReport& report);

/// The simulation engine.
class CompressedMemorySim {
public:
    /// `codec` may be null: then the run is the uncompressed baseline.
    /// The codec must outlive the simulation.
    CompressedMemorySim(const CompressedMemConfig& config, const LineCodec* codec);

    /// Replay `trace` (value-carrying, e.g. from the AR32 ISS).
    /// `image` is the initial memory content at byte address `image_base`
    /// (addresses outside it start as zero). Dirty lines are flushed at the
    /// end so both configurations account for all traffic.
    CompressedMemReport run(const MemTrace& trace, std::span<const std::uint8_t> image,
                            std::uint64_t image_base);

    /// Streaming variant: replay `source` chunk by chunk. The replay is
    /// sequential (cache + shadow memory are stateful), so results are
    /// bit-identical to the MemTrace overload, which delegates here. Memory
    /// is O(chunk + address span) — the shadow memory still covers the
    /// span, which the source's summary provides without materializing.
    CompressedMemReport run(TraceSource& source, std::span<const std::uint8_t> image,
                            std::uint64_t image_base);

private:
    CompressedMemConfig config_;
    const LineCodec* codec_;
};

}  // namespace memopt
