#include "compress/bdi_codec.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace memopt {

namespace {

constexpr unsigned kModeRaw = 0;
constexpr unsigned kModeZero = 1;
constexpr unsigned kModeRepeat = 2;
constexpr unsigned kModeDelta8 = 3;
constexpr unsigned kModeDelta16 = 4;
constexpr unsigned kModeBits = 3;

bool fits_signed(std::uint32_t delta, unsigned bits) {
    const auto sdelta = static_cast<std::int64_t>(static_cast<std::int32_t>(delta));
    const std::int64_t lo = -(1LL << (bits - 1));
    const std::int64_t hi = (1LL << (bits - 1)) - 1;
    return sdelta >= lo && sdelta <= hi;
}

}  // namespace

BitWriter BdiCodec::encode(std::span<const std::uint8_t> line) const {
    const std::vector<std::uint32_t> words = line_words(line);
    require(!words.empty(), "BdiCodec: empty line");

    const bool all_zero = std::all_of(words.begin(), words.end(),
                                      [](std::uint32_t w) { return w == 0; });
    const bool all_equal = std::all_of(words.begin(), words.end(),
                                       [&](std::uint32_t w) { return w == words[0]; });
    const std::uint32_t base = words[0];
    bool d8 = true;
    bool d16 = true;
    for (std::uint32_t w : words) {
        const std::uint32_t delta = w - base;
        d8 = d8 && fits_signed(delta, 8);
        d16 = d16 && fits_signed(delta, 16);
    }

    BitWriter out;
    if (all_zero) {
        out.put_bits(kModeZero, kModeBits);
        return out;
    }
    if (all_equal) {
        out.put_bits(kModeRepeat, kModeBits);
        out.put_bits(base, 32);
        return out;
    }
    const std::size_t raw_bits = words.size() * 32;
    const std::size_t d8_bits = 32 + (words.size() - 1) * 8;
    const std::size_t d16_bits = 32 + (words.size() - 1) * 16;
    if (d8 && kModeBits + d8_bits < kModeBits + raw_bits) {
        out.put_bits(kModeDelta8, kModeBits);
        out.put_bits(base, 32);
        for (std::size_t w = 1; w < words.size(); ++w)
            out.put_bits(words[w] - base, 8);
        MEMOPT_ASSERT(out.bit_count() == kModeBits + d8_bits);
        return out;
    }
    if (d16 && d16_bits < raw_bits) {
        out.put_bits(kModeDelta16, kModeBits);
        out.put_bits(base, 32);
        for (std::size_t w = 1; w < words.size(); ++w)
            out.put_bits(words[w] - base, 16);
        MEMOPT_ASSERT(out.bit_count() == kModeBits + d16_bits);
        return out;
    }
    out.put_bits(kModeRaw, kModeBits);
    for (std::uint32_t w : words) out.put_bits(w, 32);
    return out;
}

std::vector<std::uint8_t> BdiCodec::decode(std::span<const std::uint8_t> coded,
                                           std::size_t line_bytes) const {
    require(line_bytes % 4 == 0 && line_bytes > 0 && line_bytes <= kMaxLineBytes,
            "BdiCodec: bad line size");
    const std::size_t num_words = line_bytes / 4;
    BitReader in(coded);
    const unsigned mode = in.get_bits(kModeBits);
    std::vector<std::uint32_t> words;
    words.reserve(num_words);
    switch (mode) {
        case kModeZero:
            words.assign(num_words, 0);
            break;
        case kModeRepeat: {
            const std::uint32_t base = in.get_bits(32);
            words.assign(num_words, base);
            break;
        }
        case kModeDelta8: {
            const std::uint32_t base = in.get_bits(32);
            words.push_back(base);
            for (std::size_t w = 1; w < num_words; ++w) {
                const auto delta = static_cast<std::uint32_t>(
                    static_cast<std::int32_t>(static_cast<std::int8_t>(in.get_bits(8))));
                words.push_back(base + delta);
            }
            break;
        }
        case kModeDelta16: {
            const std::uint32_t base = in.get_bits(32);
            words.push_back(base);
            for (std::size_t w = 1; w < num_words; ++w) {
                const auto delta = static_cast<std::uint32_t>(
                    static_cast<std::int32_t>(static_cast<std::int16_t>(in.get_bits(16))));
                words.push_back(base + delta);
            }
            break;
        }
        case kModeRaw:
            for (std::size_t w = 0; w < num_words; ++w) words.push_back(in.get_bits(32));
            break;
        default:
            throw Error("BdiCodec: corrupt mode field");
    }
    return words_to_line(words);
}

}  // namespace memopt
