// Zero-aware line codec — the simple comparison point for DiffCodec.
//
// Per word: a 1-bit zero flag, followed by the raw 32 bits only for nonzero
// words. With a leading raw-fallback mode bit, worst case is raw + 1 bit.
// Zero words dominate freshly allocated buffers and sparse structures, so
// this codec is a meaningful baseline despite its simplicity.
#pragma once

#include "compress/codec.hpp"

namespace memopt {

/// The zero-run codec (see file comment).
class ZeroRunCodec final : public LineCodec {
public:
    std::string name() const override { return "zero-run"; }
    BitWriter encode(std::span<const std::uint8_t> line) const override;
    std::vector<std::uint8_t> decode(std::span<const std::uint8_t> coded,
                                     std::size_t line_bytes) const override;
};

}  // namespace memopt
