// Base-delta-immediate line codec (comparison point for DiffCodec).
//
// Classic cache-compression scheme: the whole line is encoded as one base
// word plus uniform-width deltas against that base. Uniform widths decode
// in parallel (a hardware advantage) but lose to the per-word tags of
// DiffCodec whenever one outlier word forces a wide delta for the whole
// line. Modes (3-bit header):
//   0 raw | 1 zero line | 2 repeated word | 3 base+delta8 | 4 base+delta16
#pragma once

#include "compress/codec.hpp"

namespace memopt {

/// The base-delta-immediate codec (see file comment).
class BdiCodec final : public LineCodec {
public:
    std::string name() const override { return "bdi"; }
    BitWriter encode(std::span<const std::uint8_t> line) const override;
    std::vector<std::uint8_t> decode(std::span<const std::uint8_t> coded,
                                     std::size_t line_bytes) const override;
};

}  // namespace memopt
