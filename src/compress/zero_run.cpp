#include "compress/zero_run.hpp"

#include "support/assert.hpp"

namespace memopt {

BitWriter ZeroRunCodec::encode(std::span<const std::uint8_t> line) const {
    const std::vector<std::uint32_t> words = line_words(line);
    require(!words.empty(), "ZeroRunCodec: empty line");

    std::size_t flagged_bits = 1;
    for (std::uint32_t w : words) flagged_bits += w == 0 ? 1 : 33;

    BitWriter out;
    const std::size_t raw_bits = words.size() * 32;
    if (flagged_bits >= 1 + raw_bits) {
        out.put_bit(false);
        for (std::uint32_t w : words) out.put_bits(w, 32);
        return out;
    }
    out.put_bit(true);
    for (std::uint32_t w : words) {
        out.put_bit(w == 0);
        if (w != 0) out.put_bits(w, 32);
    }
    MEMOPT_ASSERT(out.bit_count() == flagged_bits);
    return out;
}

std::vector<std::uint8_t> ZeroRunCodec::decode(std::span<const std::uint8_t> coded,
                                               std::size_t line_bytes) const {
    require(line_bytes % 4 == 0 && line_bytes > 0 && line_bytes <= kMaxLineBytes,
            "ZeroRunCodec: bad line size");
    const std::size_t num_words = line_bytes / 4;
    BitReader in(coded);
    std::vector<std::uint32_t> words;
    words.reserve(num_words);
    if (!in.get_bit()) {
        for (std::size_t w = 0; w < num_words; ++w) words.push_back(in.get_bits(32));
    } else {
        for (std::size_t w = 0; w < num_words; ++w)
            words.push_back(in.get_bit() ? 0u : in.get_bits(32));
    }
    return words_to_line(words);
}

}  // namespace memopt
