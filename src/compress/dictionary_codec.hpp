// Frequent-value dictionary codec.
//
// The dictionary approach the 1B papers argue against: a small table of the
// application's most frequent 32-bit words is trained offline from a
// profiling trace; at run time each word is either a dictionary index
// (1 + log2(N) bits) or an escaped raw word (1 + 32 bits). A per-line raw
// fallback bounds expansion at 1 bit. The training step is exactly the
// "dictionary lookup" hardware (a CAM) whose cost the transformation paper
// avoids — having it in the library makes that comparison concrete.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "compress/codec.hpp"
#include "trace/trace.hpp"

namespace memopt {

/// The frequent-value codec. Construct via train() or from an explicit
/// dictionary.
class DictionaryCodec final : public LineCodec {
public:
    /// Build from an explicit dictionary (size must be a nonzero power of
    /// two, at most 65536 entries; entries must be unique).
    explicit DictionaryCodec(std::vector<std::uint32_t> dictionary);

    /// Train a dictionary of `entries` words from the write values of a
    /// profiling trace (most frequent first; deterministic tie-break).
    static DictionaryCodec train(const MemTrace& trace, std::size_t entries = 16);

    /// Train from a plain word stream.
    static DictionaryCodec train(std::span<const std::uint32_t> words,
                                 std::size_t entries = 16);

    std::string name() const override { return "dictionary"; }
    BitWriter encode(std::span<const std::uint8_t> line) const override;
    std::vector<std::uint8_t> decode(std::span<const std::uint8_t> coded,
                                     std::size_t line_bytes) const override;

    const std::vector<std::uint32_t>& dictionary() const { return dict_; }
    unsigned index_bits() const { return index_bits_; }

private:
    std::vector<std::uint32_t> dict_;
    unsigned index_bits_;
};

}  // namespace memopt
