// Cache-line compression codecs.
//
// A LineCodec losslessly encodes one cache line (a fixed number of bytes)
// into a bitstream. Codecs are used by the compressed-memory simulation
// (1B-2): lines are compressed before write-back to main memory and
// decompressed on refill, so every codec must be stateless per line (random
// line access must remain possible) and must never expand a line by more
// than the 1-bit raw-fallback flag.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace memopt {

/// Upper bound on a decodable line. Every decode() clamps its caller-
/// supplied `line_bytes` against this before any allocation sized from it,
/// so a corrupted or hostile size can never trigger an unbounded reserve.
/// Real caches top out at 256-byte lines; 4 KiB leaves generous headroom.
inline constexpr std::size_t kMaxLineBytes = 4096;

/// Append-only bit stream writer (LSB-first within each byte).
class BitWriter {
public:
    void put_bit(bool bit);
    void put_bits(std::uint32_t value, unsigned count);  ///< low `count` bits, LSB first
    std::size_t bit_count() const { return bits_; }
    const std::vector<std::uint8_t>& bytes() const { return bytes_; }

private:
    std::vector<std::uint8_t> bytes_;
    std::size_t bits_ = 0;
};

/// Sequential bit stream reader matching BitWriter's layout.
class BitReader {
public:
    explicit BitReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}
    bool get_bit();
    std::uint32_t get_bits(unsigned count);
    std::size_t position() const { return pos_; }

private:
    std::span<const std::uint8_t> bytes_;
    std::size_t pos_ = 0;
};

/// Abstract lossless line codec.
class LineCodec {
public:
    virtual ~LineCodec() = default;

    /// Identifier for reports ("diff", "zero-run", ...).
    virtual std::string name() const = 0;

    /// Encode `line` (line.size() must be a multiple of 4).
    /// Returns the bitstream; its bit length is the stored size.
    virtual BitWriter encode(std::span<const std::uint8_t> line) const = 0;

    /// Decode a bitstream produced by encode() back into `line_bytes` bytes.
    /// Throws memopt::Error on malformed input.
    virtual std::vector<std::uint8_t> decode(std::span<const std::uint8_t> coded,
                                             std::size_t line_bytes) const = 0;

    /// Stored size in bits for `line` (default: encode and measure).
    virtual std::size_t compressed_bits(std::span<const std::uint8_t> line) const;
};

/// Split a line into little-endian 32-bit words.
std::vector<std::uint32_t> line_words(std::span<const std::uint8_t> line);

/// Inverse of line_words.
std::vector<std::uint8_t> words_to_line(std::span<const std::uint32_t> words);

}  // namespace memopt
