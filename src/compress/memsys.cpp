#include "compress/memsys.hpp"

#include <algorithm>
#include <vector>

#include "fault/inject.hpp"
#include "fault/protect.hpp"
#include "support/assert.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"
#include "trace/source.hpp"

namespace memopt {

CompressedMemorySim::CompressedMemorySim(const CompressedMemConfig& config,
                                         const LineCodec* codec)
    : config_(config), codec_(codec) {
    require(config.cache.write_policy == WritePolicy::WriteBackAllocate,
            "CompressedMemorySim: compression requires a write-back cache");
    require(!(config.verify_roundtrip && config.faults.has_value()),
            "CompressedMemorySim: verify_roundtrip and fault injection are exclusive");
    if (config.faults.has_value())
        require(config.faults->stored_bit_flip_prob >= 0.0 &&
                    config.faults->stored_bit_flip_prob <= 1.0,
                "CompressedMemorySim: stored_bit_flip_prob must be in [0,1]");
}

CompressedMemReport CompressedMemorySim::run(const MemTrace& trace,
                                             std::span<const std::uint8_t> image,
                                             std::uint64_t image_base) {
    MaterializedSource source(trace);
    return run(source, image, image_base);
}

CompressedMemReport CompressedMemorySim::run(TraceSource& source,
                                             std::span<const std::uint8_t> image,
                                             std::uint64_t image_base) {
    require(source.size() > 0, "CompressedMemorySim: empty trace");

    const unsigned line_bytes = config_.cache.line_bytes;
    const std::uint64_t span =
        std::max(ceil_pow2(std::max(source.summary().max_addr + 1, image_base + image.size())),
                 static_cast<std::uint64_t>(line_bytes));

    // Shadow memory: the current value of every byte. It reflects the
    // program's view (cache + memory combined); at eviction time the victim
    // line's bytes are exactly the values the cache would write back.
    std::vector<std::uint8_t> shadow(span, 0);
    std::copy(image.begin(), image.end(),
              shadow.begin() + static_cast<std::ptrdiff_t>(image_base));

    // Stored layout of each line currently resident in main memory in
    // compressed form; absent means stored raw.
    struct StoredLine {
        std::uint32_t stored_bytes;  ///< blob + check bits, the burst size
        std::uint32_t blob_words;    ///< 64-bit words the checker walks
    };
    std::unordered_map<std::uint64_t, StoredLine> stored_compressed;
    // Stored blobs for the verify_roundtrip invariant and fault injection.
    std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> stored_blobs;
    const bool keep_blobs = config_.verify_roundtrip || config_.faults.has_value();

    CacheModel cache(config_.cache);
    const SramEnergyModel cache_sram(config_.cache.size_bytes, 32, config_.cache_sram,
                                     config_.protection);
    const DramEnergyModel dram(config_.dram);
    const std::size_t words_per_line = line_bytes / 4;
    // Protection accounting for stored compressed lines, at 64-bit word
    // granularity: check bits inflate the burst, the encode/check logic is
    // charged per stored word on both write-back and refill.
    const double ecc_word_pj =
        protection_access_energy(config_.protection, 64, config_.cache_sram);
    Rng fault_rng(config_.faults.has_value() ? config_.faults->seed : 0);

    CompressedMemReport report;
    double cache_pj = 0.0;
    double dram_pj = 0.0;
    double codec_pj = 0.0;
    double ecc_pj = 0.0;
    double refetch_pj = 0.0;

    auto line_span = [&](std::uint64_t line_addr) {
        return std::span<const std::uint8_t>(shadow).subspan(line_addr, line_bytes);
    };

    auto do_writeback = [&](std::uint64_t line_addr) {
        ++report.writeback_lines;
        report.raw_traffic_bytes += line_bytes;
        // Reading the victim line out of the cache array.
        cache_pj += cache_sram.read_energy() * static_cast<double>(words_per_line);
        std::uint64_t burst_bytes = line_bytes;
        if (codec_ != nullptr) {
            const BitWriter coded = codec_->encode(line_span(line_addr));
            const std::size_t blob_bytes = (coded.bit_count() + 7) / 8;
            const std::size_t stored_bytes =
                protected_stored_bytes(blob_bytes, config_.protection);
            codec_pj += config_.compress_pj_per_word * static_cast<double>(words_per_line);
            if (stored_bytes < line_bytes) {
                burst_bytes = stored_bytes;
                const auto blob_words = static_cast<std::uint32_t>((blob_bytes + 7) / 8);
                stored_compressed[line_addr] =
                    StoredLine{static_cast<std::uint32_t>(stored_bytes), blob_words};
                ecc_pj += ecc_word_pj * static_cast<double>(blob_words);
                if (keep_blobs) stored_blobs[line_addr] = coded.bytes();
            } else {
                // Store raw when compression (incl. check bits) does not pay.
                stored_compressed.erase(line_addr);
                if (keep_blobs) stored_blobs.erase(line_addr);
            }
        }
        report.actual_traffic_bytes += burst_bytes;
        dram_pj += dram.burst_energy(burst_bytes);
    };

    auto do_fill = [&](std::uint64_t line_addr) {
        ++report.fill_lines;
        report.raw_traffic_bytes += line_bytes;
        std::uint64_t burst_bytes = line_bytes;
        if (codec_ != nullptr) {
            const auto it = stored_compressed.find(line_addr);
            if (it != stored_compressed.end()) {
                burst_bytes = it->second.stored_bytes;
                codec_pj += config_.decompress_pj_per_word * static_cast<double>(words_per_line);
                // The checker walks every stored word on refill, whether or
                // not faults are being injected.
                ecc_pj += ecc_word_pj * static_cast<double>(it->second.blob_words);
                if (config_.verify_roundtrip) {
                    // Between eviction and this refill nothing wrote the
                    // line (writes allocate first), so the shadow still
                    // holds the bytes that were compressed: decode and
                    // compare, end to end.
                    const auto blob = stored_blobs.find(line_addr);
                    MEMOPT_ASSERT(blob != stored_blobs.end());
                    const std::vector<std::uint8_t> decoded =
                        codec_->decode(blob->second, line_bytes);
                    const auto expected = line_span(line_addr);
                    require(std::equal(decoded.begin(), decoded.end(), expected.begin()),
                            "CompressedMemorySim: stored line failed the round-trip check");
                }
                if (config_.faults.has_value()) {
                    const auto blob = stored_blobs.find(line_addr);
                    MEMOPT_ASSERT(blob != stored_blobs.end());
                    // Corrupt the stored bits, scrub, then decode. Detected
                    // corruption — ECC-flagged or codec-reported — degrades
                    // to a modeled re-fetch of the raw line; garbage never
                    // propagates silently past an enabled checker.
                    ProtectedBuffer buffer(blob->second, config_.protection);
                    report.faults_injected += FaultInjector::flip_bits(
                        buffer, config_.faults->stored_bit_flip_prob, fault_rng);
                    const ProtectedBuffer::ScrubResult scrub = buffer.scrub();
                    report.corrected_faults += scrub.corrected_words;
                    bool degraded = scrub.detected_words > 0;
                    if (!degraded) {
                        try {
                            const std::vector<std::uint8_t> decoded =
                                codec_->decode(buffer.bytes(), line_bytes);
                            const auto expected = line_span(line_addr);
                            if (!std::equal(decoded.begin(), decoded.end(),
                                            expected.begin()))
                                ++report.silent_refills;
                        } catch (const Error&) {
                            degraded = true;
                        }
                    }
                    if (degraded) {
                        ++report.degraded_refills;
                        // Modeled recovery: burst the raw line again.
                        report.actual_traffic_bytes += line_bytes;
                        refetch_pj += dram.burst_energy(line_bytes);
                    }
                }
            }
        }
        report.actual_traffic_bytes += burst_bytes;
        dram_pj += dram.burst_energy(burst_bytes);
        // Installing the line into the cache array.
        cache_pj += cache_sram.write_energy() * static_cast<double>(words_per_line);
    };

    // Chunked columnar replay over the four columns this simulation reads.
    // The cache and shadow state carry across chunk boundaries untouched.
    source.reset();
    TraceChunk chunk;
    while (source.next(chunk)) {
        for (std::size_t i = 0; i < chunk.size(); ++i) {
            const std::uint64_t addr = chunk.addrs[i];
            const AccessKind kind = chunk.kinds[i];
            require(addr + chunk.sizes[i] <= span, "CompressedMemorySim: access outside span");
            const CacheAccessResult r = cache.access(addr, kind);
            // The CPU-side cache access itself.
            cache_pj += kind == AccessKind::Read ? cache_sram.read_energy()
                                                 : cache_sram.write_energy();
            if (r.writeback_line) do_writeback(*r.writeback_line);
            if (r.fill_line) do_fill(*r.fill_line);
            // Update the shadow after the geometric simulation.
            if (kind == AccessKind::Write) {
                for (unsigned b = 0; b < chunk.sizes[i]; ++b)
                    shadow[addr + b] = static_cast<std::uint8_t>(chunk.values[i] >> (8 * b));
            }
        }
    }

    // Flush so that all dirty data is accounted in both configurations.
    for (std::uint64_t line : cache.flush()) do_writeback(line);

    report.cache_stats = cache.stats();
    report.energy.add("cache", cache_pj);
    report.energy.add("main_memory", dram_pj);
    if (codec_ != nullptr) report.energy.add("codec", codec_pj);
    if (ecc_pj > 0.0) report.energy.add("ecc", ecc_pj);
    if (refetch_pj > 0.0) report.energy.add("refetch", refetch_pj);
    return report;
}

void to_json(JsonWriter& w, const CompressedMemReport& report) {
    const CacheStats& cs = report.cache_stats;
    w.begin_object();
    w.key("cache").begin_object();
    w.member("read_hits", cs.read_hits);
    w.member("read_misses", cs.read_misses);
    w.member("write_hits", cs.write_hits);
    w.member("write_misses", cs.write_misses);
    w.member("fills", cs.fills);
    w.member("writebacks", cs.writebacks);
    w.member("miss_rate", cs.miss_rate());
    w.end_object();
    w.member("writeback_lines", report.writeback_lines);
    w.member("fill_lines", report.fill_lines);
    w.member("raw_traffic_bytes", report.raw_traffic_bytes);
    w.member("actual_traffic_bytes", report.actual_traffic_bytes);
    w.member("traffic_ratio", report.traffic_ratio());
    w.member("faults_injected", report.faults_injected);
    w.member("corrected_faults", report.corrected_faults);
    w.member("degraded_refills", report.degraded_refills);
    w.member("silent_refills", report.silent_refills);
    w.key("energy");
    report.energy.to_json(w);
    w.end_object();
}

}  // namespace memopt
