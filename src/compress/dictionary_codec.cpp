#include "compress/dictionary_codec.hpp"

#include <algorithm>
#include <unordered_map>

#include "support/assert.hpp"

namespace memopt {

DictionaryCodec::DictionaryCodec(std::vector<std::uint32_t> dictionary)
    : dict_(std::move(dictionary)) {
    require(!dict_.empty() && dict_.size() <= 65536, "DictionaryCodec: bad dictionary size");
    require(is_pow2(dict_.size()), "DictionaryCodec: dictionary size must be a power of two");
    std::vector<std::uint32_t> sorted = dict_;
    std::sort(sorted.begin(), sorted.end());
    require(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
            "DictionaryCodec: duplicate dictionary entries");
    index_bits_ = log2_exact(dict_.size());
}

namespace {
DictionaryCodec train_from_counts(std::unordered_map<std::uint32_t, std::uint64_t>& counts,
                                  std::size_t entries) {
    require(entries > 0 && is_pow2(entries), "DictionaryCodec: entries must be a power of two");
    // memopt-lint: order-independent -- ranked is immediately std::sort'ed by a
    // strict total order (count desc, then word asc) over unique keys, so the
    // map's hash order never reaches the truncation below. Pinned by
    // DictionaryCodec.TrainingInvariantUnderInsertOrder.
    std::vector<std::pair<std::uint32_t, std::uint64_t>> ranked(counts.begin(), counts.end());
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
        if (a.second != b.second) return a.second > b.second;
        return a.first < b.first;  // deterministic tie-break
    });
    std::vector<std::uint32_t> dict;
    dict.reserve(entries);
    for (const auto& [word, count] : ranked) {
        if (dict.size() == entries) break;
        dict.push_back(word);
    }
    // Pad with distinct unused values if the sample had too few distincts.
    std::uint32_t filler = 0xA5A5A5A5u;
    while (dict.size() < entries) {
        if (std::find(dict.begin(), dict.end(), filler) == dict.end()) dict.push_back(filler);
        ++filler;
    }
    return DictionaryCodec(std::move(dict));
}
}  // namespace

DictionaryCodec DictionaryCodec::train(const MemTrace& trace, std::size_t entries) {
    std::unordered_map<std::uint32_t, std::uint64_t> counts;
    const auto values = trace.values();
    const auto kinds = trace.kinds();
    for (std::size_t i = 0; i < trace.size(); ++i) {
        if (kinds[i] == AccessKind::Write) ++counts[values[i]];
    }
    return train_from_counts(counts, entries);
}

DictionaryCodec DictionaryCodec::train(std::span<const std::uint32_t> words,
                                       std::size_t entries) {
    std::unordered_map<std::uint32_t, std::uint64_t> counts;
    for (std::uint32_t w : words) ++counts[w];
    return train_from_counts(counts, entries);
}

BitWriter DictionaryCodec::encode(std::span<const std::uint8_t> line) const {
    const std::vector<std::uint32_t> words = line_words(line);
    require(!words.empty(), "DictionaryCodec: empty line");

    // Size the dictionary-coded layout first.
    std::size_t coded_bits = 1;
    std::vector<int> indices(words.size(), -1);
    for (std::size_t w = 0; w < words.size(); ++w) {
        const auto it = std::find(dict_.begin(), dict_.end(), words[w]);
        if (it != dict_.end()) {
            indices[w] = static_cast<int>(it - dict_.begin());
            coded_bits += 1 + index_bits_;
        } else {
            coded_bits += 1 + 32;
        }
    }

    BitWriter out;
    const std::size_t raw_bits = words.size() * 32;
    if (coded_bits >= 1 + raw_bits) {
        out.put_bit(false);
        for (std::uint32_t w : words) out.put_bits(w, 32);
        return out;
    }
    out.put_bit(true);
    for (std::size_t w = 0; w < words.size(); ++w) {
        if (indices[w] >= 0) {
            out.put_bit(true);
            out.put_bits(static_cast<std::uint32_t>(indices[w]), index_bits_);
        } else {
            out.put_bit(false);
            out.put_bits(words[w], 32);
        }
    }
    MEMOPT_ASSERT(out.bit_count() == coded_bits);
    return out;
}

std::vector<std::uint8_t> DictionaryCodec::decode(std::span<const std::uint8_t> coded,
                                                  std::size_t line_bytes) const {
    require(line_bytes % 4 == 0 && line_bytes > 0 && line_bytes <= kMaxLineBytes,
            "DictionaryCodec: bad line size");
    const std::size_t num_words = line_bytes / 4;
    BitReader in(coded);
    std::vector<std::uint32_t> words;
    words.reserve(num_words);
    if (!in.get_bit()) {
        for (std::size_t w = 0; w < num_words; ++w) words.push_back(in.get_bits(32));
    } else {
        for (std::size_t w = 0; w < num_words; ++w) {
            if (in.get_bit()) {
                const std::uint32_t index = in.get_bits(index_bits_);
                require(index < dict_.size(), "DictionaryCodec: corrupt index");
                words.push_back(dict_[index]);
            } else {
                words.push_back(in.get_bits(32));
            }
        }
    }
    return words_to_line(words);
}

}  // namespace memopt
