// Platform models for the 1B-2 evaluation.
//
// The paper evaluates write-back compression on two machines: the Lx-ST200
// (a 4-issue VLIW with an on-chip D-cache and an external SDRAM) and a MIPS
// RISC simulated with SimpleScalar. Neither platform is available, so this
// module substitutes parameter sets that preserve what the result actually
// depends on: the D-cache geometry (which sets the write-back/refill
// traffic) and the on-chip vs off-chip energy ratio. The VLIW set has the
// wider, hungrier external interface and the larger line; the RISC set is
// the smaller, narrower configuration.
#pragma once

#include <string>

#include "compress/memsys.hpp"

namespace memopt {

/// A named compressed-memory platform configuration.
struct PlatformModel {
    std::string name;
    std::string description;
    CompressedMemConfig config;
};

/// Lx-ST200-class VLIW platform (32 B lines, 4-way, wide external bus).
PlatformModel vliw_platform();

/// MIPS/SimpleScalar-class RISC platform (16 B lines, 2-way, narrower bus).
PlatformModel risc_platform();

}  // namespace memopt
