#include "compress/platform.hpp"

namespace memopt {

PlatformModel vliw_platform() {
    PlatformModel p;
    p.name = "vliw";
    p.description = "Lx-ST200-class 4-issue VLIW: 2 KiB 4-way D$ with 32 B lines, "
                    "wide external SDRAM interface";
    p.config.cache.size_bytes = 2 * 1024;
    p.config.cache.line_bytes = 32;
    p.config.cache.associativity = 4;
    p.config.cache.write_policy = WritePolicy::WriteBackAllocate;
    p.config.dram.activate_pj = 2200.0;
    p.config.dram.per_byte_pj = 55.0;
    p.config.compress_pj_per_word = 1.2;
    p.config.decompress_pj_per_word = 0.9;
    return p;
}

PlatformModel risc_platform() {
    PlatformModel p;
    p.name = "risc";
    p.description = "MIPS/SimpleScalar-class RISC: 1 KiB 2-way D$ with 16 B lines, "
                    "narrower external memory interface";
    p.config.cache.size_bytes = 1024;
    p.config.cache.line_bytes = 16;
    p.config.cache.associativity = 2;
    p.config.cache.write_policy = WritePolicy::WriteBackAllocate;
    p.config.dram.activate_pj = 1400.0;
    p.config.dram.per_byte_pj = 52.0;
    p.config.compress_pj_per_word = 1.2;
    p.config.decompress_pj_per_word = 0.9;
    return p;
}

}  // namespace memopt
