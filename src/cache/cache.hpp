// Set-associative cache model.
//
// A trace-driven geometric cache simulator: it tracks tags, validity,
// dirtiness and LRU state, and reports hit/miss/fill/write-back events per
// access. It does not store data — data reconstruction is layered on top by
// the compressed-memory simulation (src/compress/memsys), which replays
// access values from the trace.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "trace/trace.hpp"

namespace memopt {

/// Write policy of the cache.
enum class WritePolicy {
    WriteBackAllocate,     ///< write-back, write-allocate (default for D$)
    WriteThroughNoAllocate ///< write-through, no write-allocate
};

/// Replacement policy of the cache.
enum class Replacement {
    Lru,    ///< true least-recently-used (default)
    Fifo,   ///< evict the oldest fill, ignoring later touches
    Random  ///< pseudo-random victim (deterministic: internal xorshift)
};

/// Cache geometry. size_bytes, line_bytes and associativity must make a
/// consistent power-of-two geometry (sets = size / (line * assoc) >= 1).
struct CacheConfig {
    std::uint64_t size_bytes = 8 * 1024;
    unsigned line_bytes = 32;
    unsigned associativity = 4;
    WritePolicy write_policy = WritePolicy::WriteBackAllocate;
    Replacement replacement = Replacement::Lru;
};

/// Counters accumulated by the model.
struct CacheStats {
    std::uint64_t read_hits = 0;
    std::uint64_t read_misses = 0;
    std::uint64_t write_hits = 0;
    std::uint64_t write_misses = 0;
    std::uint64_t fills = 0;           ///< lines fetched from the next level
    std::uint64_t writebacks = 0;      ///< dirty lines evicted to the next level
    std::uint64_t write_throughs = 0;  ///< accesses forwarded by write-through

    bool operator==(const CacheStats&) const = default;

    std::uint64_t accesses() const {
        return read_hits + read_misses + write_hits + write_misses;
    }
    std::uint64_t misses() const { return read_misses + write_misses; }
    double miss_rate() const {
        return accesses() == 0 ? 0.0 : static_cast<double>(misses()) / static_cast<double>(accesses());
    }
};

/// Outcome of one access: what traffic it caused toward the next level.
struct CacheAccessResult {
    bool hit = false;
    std::optional<std::uint64_t> fill_line;       ///< line base addr fetched
    std::optional<std::uint64_t> writeback_line;  ///< dirty line base addr evicted
    std::optional<std::uint64_t> write_through_addr;  ///< word written through
    /// Base address of any valid line the fill replaced, dirty or clean.
    /// writeback_line covers only the dirty case; coherence controllers
    /// need clean replacements too to keep sharer sets precise.
    std::optional<std::uint64_t> evicted_line;
};

/// The cache model (true LRU replacement).
class CacheModel {
public:
    explicit CacheModel(const CacheConfig& config);

    const CacheConfig& config() const { return config_; }
    const CacheStats& stats() const { return stats_; }
    std::size_t num_sets() const { return sets_; }

    /// Simulate one access.
    CacheAccessResult access(std::uint64_t addr, AccessKind kind);

    /// Evict every dirty line (end-of-run flush); returns their base
    /// addresses and counts them as writebacks.
    std::vector<std::uint64_t> flush();

    /// True if the line containing `addr` is resident.
    bool contains(std::uint64_t addr) const;

    /// Residency probe: nullopt when the line containing `addr` is absent,
    /// otherwise its dirty flag. Touches neither statistics nor
    /// replacement state (unlike access()).
    std::optional<bool> probe(std::uint64_t addr) const;

    /// Remove the line containing `addr` (remote invalidation). Returns
    /// the line's dirtiness before removal, or nullopt when it was not
    /// resident. Statistics untouched: the coherence controller owns the
    /// accounting of protocol-induced traffic.
    std::optional<bool> invalidate(std::uint64_t addr);

    /// Clear the dirty flag of the line containing `addr` (remote-read
    /// downgrade: the owner keeps a now-clean copy). Returns true when the
    /// line was resident and dirty, i.e. a write-back of its data is due.
    bool downgrade(std::uint64_t addr);

    /// Number of valid lines currently resident.
    std::size_t resident_lines() const;

    /// Reset tags, statistics, and the replacement RNG: a replay after
    /// reset() is bit-identical to a fresh model (also under
    /// Replacement::Random).
    void reset();

    /// Line base address of `addr` under this geometry.
    std::uint64_t line_base(std::uint64_t addr) const;

private:
    struct Way {
        std::uint64_t tag = 0;
        std::uint64_t lru = 0;  // larger = more recently used
        bool valid = false;
        bool dirty = false;
    };

    /// Seed of the Random-replacement RNG; reset() restores it so replays
    /// after reset() match a fresh model bit for bit.
    static constexpr std::uint64_t kRngSeed = 0x9E3779B97F4A7C15ULL;

    std::size_t set_of(std::uint64_t addr) const;
    std::uint64_t tag_of(std::uint64_t addr) const;
    Way* find_way(std::uint64_t addr);
    const Way* find_way(std::uint64_t addr) const;
    std::uint64_t next_rand();

    CacheConfig config_;
    std::size_t sets_;
    std::vector<Way> ways_;  // sets_ * associativity, row-major by set
    std::uint64_t tick_ = 0;
    std::uint64_t rng_state_ = kRngSeed;  // Random replacement
    CacheStats stats_;
};

}  // namespace memopt
