#include "cache/cache.hpp"

#include <algorithm>
#include <bit>

#include "support/assert.hpp"

namespace memopt {

CacheModel::CacheModel(const CacheConfig& config) : config_(config) {
    require(is_pow2(config.size_bytes), "CacheConfig: size must be a power of two");
    require(is_pow2(config.line_bytes) && config.line_bytes >= 4,
            "CacheConfig: line size must be a power of two >= 4");
    require(config.associativity >= 1, "CacheConfig: associativity must be >= 1");
    const std::uint64_t line_capacity = config.size_bytes / config.line_bytes;
    require(line_capacity >= config.associativity,
            "CacheConfig: fewer lines than ways");
    require(line_capacity % config.associativity == 0,
            "CacheConfig: lines not divisible by associativity");
    sets_ = static_cast<std::size_t>(line_capacity / config.associativity);
    require(is_pow2(sets_), "CacheConfig: set count must be a power of two");
    ways_.assign(sets_ * config.associativity, Way{});
}

std::uint64_t CacheModel::line_base(std::uint64_t addr) const {
    return addr & ~static_cast<std::uint64_t>(config_.line_bytes - 1);
}

std::size_t CacheModel::set_of(std::uint64_t addr) const {
    return static_cast<std::size_t>((addr / config_.line_bytes) & (sets_ - 1));
}

std::uint64_t CacheModel::tag_of(std::uint64_t addr) const {
    return addr / config_.line_bytes / sets_;
}

CacheModel::Way* CacheModel::find_way(std::uint64_t addr) {
    const std::size_t set = set_of(addr);
    const std::uint64_t tag = tag_of(addr);
    Way* base = &ways_[set * config_.associativity];
    for (unsigned w = 0; w < config_.associativity; ++w) {
        if (base[w].valid && base[w].tag == tag) return &base[w];
    }
    return nullptr;
}

const CacheModel::Way* CacheModel::find_way(std::uint64_t addr) const {
    return const_cast<CacheModel*>(this)->find_way(addr);
}

bool CacheModel::contains(std::uint64_t addr) const { return find_way(addr) != nullptr; }

std::optional<bool> CacheModel::probe(std::uint64_t addr) const {
    const Way* way = find_way(addr);
    if (way == nullptr) return std::nullopt;
    return way->dirty;
}

std::optional<bool> CacheModel::invalidate(std::uint64_t addr) {
    Way* way = find_way(addr);
    if (way == nullptr) return std::nullopt;
    const bool dirty = way->dirty;
    *way = Way{};
    return dirty;
}

bool CacheModel::downgrade(std::uint64_t addr) {
    Way* way = find_way(addr);
    if (way == nullptr || !way->dirty) return false;
    way->dirty = false;
    return true;
}

std::size_t CacheModel::resident_lines() const {
    std::size_t count = 0;
    for (const Way& way : ways_)
        if (way.valid) ++count;
    return count;
}

std::uint64_t CacheModel::next_rand() {
    // xorshift64*: deterministic across runs, uniform enough here.
    rng_state_ ^= rng_state_ >> 12;
    rng_state_ ^= rng_state_ << 25;
    rng_state_ ^= rng_state_ >> 27;
    return rng_state_ * 0x2545F4914F6CDD1DULL;
}

CacheAccessResult CacheModel::access(std::uint64_t addr, AccessKind kind) {
    CacheAccessResult result;
    const std::size_t set = set_of(addr);
    const std::uint64_t tag = tag_of(addr);
    Way* base = &ways_[set * config_.associativity];
    ++tick_;

    // Hit path.
    for (unsigned w = 0; w < config_.associativity; ++w) {
        Way& way = base[w];
        if (way.valid && way.tag == tag) {
            // FIFO keeps the fill order: touches do not refresh age.
            if (config_.replacement == Replacement::Lru) way.lru = tick_;
            if (kind == AccessKind::Read) {
                ++stats_.read_hits;
            } else {
                ++stats_.write_hits;
                if (config_.write_policy == WritePolicy::WriteBackAllocate) {
                    way.dirty = true;
                } else {
                    ++stats_.write_throughs;
                    result.write_through_addr = addr;
                }
            }
            result.hit = true;
            return result;
        }
    }

    // Miss path.
    if (kind == AccessKind::Read) {
        ++stats_.read_misses;
    } else {
        ++stats_.write_misses;
    }

    if (kind == AccessKind::Write && config_.write_policy == WritePolicy::WriteThroughNoAllocate) {
        ++stats_.write_throughs;
        result.write_through_addr = addr;
        return result;  // no allocation
    }

    // Choose the victim: an invalid way if any, else by policy.
    Way* victim = nullptr;
    for (unsigned w = 0; w < config_.associativity && victim == nullptr; ++w) {
        if (!base[w].valid) victim = &base[w];
    }
    if (victim == nullptr) {
        if (config_.replacement == Replacement::Random) {
            // Unbiased victim index: draw the next power-of-two's worth of
            // bits and reject values >= associativity (expected < 2 draws).
            // A plain `% associativity` would favour low way indices for
            // non-power-of-two way counts (bias up to 1/ways). Today's
            // geometry checks (pow2 size and line) force a pow2 way count,
            // where the mask never rejects and this reduces to the old
            // modulo — but the reduction stays exact if that ever relaxes.
            const std::uint64_t mask =
                std::bit_ceil<std::uint64_t>(config_.associativity) - 1;
            std::uint64_t idx;
            do {
                idx = next_rand() & mask;
            } while (idx >= config_.associativity);
            victim = &base[idx];
        } else {  // Lru and Fifo both evict the smallest age stamp
            victim = base;
            for (unsigned w = 1; w < config_.associativity; ++w) {
                if (base[w].lru < victim->lru) victim = &base[w];
            }
        }
    }

    if (victim->valid) {
        // Reconstruct the victim's base address from tag and set.
        const std::uint64_t victim_addr =
            (victim->tag * sets_ + set) * config_.line_bytes;
        result.evicted_line = victim_addr;
        if (victim->dirty) {
            ++stats_.writebacks;
            result.writeback_line = victim_addr;
        }
    }

    ++stats_.fills;
    result.fill_line = line_base(addr);
    victim->valid = true;
    victim->dirty = kind == AccessKind::Write &&
                    config_.write_policy == WritePolicy::WriteBackAllocate;
    victim->tag = tag;
    victim->lru = tick_;
    return result;
}

std::vector<std::uint64_t> CacheModel::flush() {
    std::vector<std::uint64_t> dirty_lines;
    for (std::size_t set = 0; set < sets_; ++set) {
        for (unsigned w = 0; w < config_.associativity; ++w) {
            Way& way = ways_[set * config_.associativity + w];
            if (way.valid && way.dirty) {
                dirty_lines.push_back((way.tag * sets_ + set) * config_.line_bytes);
                ++stats_.writebacks;
                way.dirty = false;
            }
        }
    }
    return dirty_lines;
}

void CacheModel::reset() {
    std::fill(ways_.begin(), ways_.end(), Way{});
    tick_ = 0;
    stats_ = CacheStats{};
    // Reseed the Random-replacement RNG: without this a replay after
    // reset() diverges from a fresh model as soon as a random victim is
    // drawn (the stream would continue where the previous run left off).
    rng_state_ = kRngSeed;
}

}  // namespace memopt
