#include "cache/hierarchy.hpp"

#include <algorithm>

#include "support/assert.hpp"
#include "trace/source.hpp"

namespace memopt {

CacheHierarchy::CacheHierarchy(const CacheConfig& l1, const CacheConfig& l2)
    : l1_(l1), l2_(l2) {
    require(l2.line_bytes >= l1.line_bytes,
            "CacheHierarchy: L2 line must be >= L1 line");
    require(l2.size_bytes >= l1.size_bytes,
            "CacheHierarchy: L2 must be at least as large as L1");
}

void CacheHierarchy::l2_access(std::uint64_t addr, AccessKind kind) {
    const CacheAccessResult r = l2_.access(addr, kind);
    if (r.fill_line) ++traffic_.line_fetches;
    if (r.writeback_line) ++traffic_.line_writes;
    if (r.write_through_addr) ++traffic_.word_writes;
}

void CacheHierarchy::access(std::uint64_t addr, AccessKind kind) {
    const CacheAccessResult r = l1_.access(addr, kind);
    // A dirty L1 eviction becomes an L2 write of the victim line.
    if (r.writeback_line) l2_access(*r.writeback_line, AccessKind::Write);
    // An L1 fill becomes an L2 read of the missing line.
    if (r.fill_line) l2_access(*r.fill_line, AccessKind::Read);
    // Write-through traffic from L1 goes into L2 as a word write.
    if (r.write_through_addr) l2_access(*r.write_through_addr, AccessKind::Write);
}

void CacheHierarchy::replay(TraceSource& source) {
    source.reset();
    const std::uint64_t line = l1_.config().line_bytes;
    TraceChunk chunk;
    while (source.next(chunk)) {
        for (std::size_t i = 0; i < chunk.size(); ++i) {
            // Size-aware split: an access that straddles an L1 line
            // boundary touches every covered line, exactly like the
            // byte-accurate replay in compress/memsys — ignoring
            // chunk.sizes here undercounted misses and traffic.
            const std::uint64_t addr = chunk.addrs[i];
            const AccessKind kind = chunk.kinds[i];
            const std::uint64_t last =
                addr + std::max<std::uint64_t>(chunk.sizes[i], 1) - 1;
            access(addr, kind);
            for (std::uint64_t a = l1_.line_base(addr) + line; a <= last; a += line)
                access(a, kind);
        }
    }
}

void CacheHierarchy::replay(const MemTrace& trace) {
    MaterializedSource source(trace);
    replay(source);
}

void CacheHierarchy::flush() {
    for (std::uint64_t line : l1_.flush()) l2_access(line, AccessKind::Write);
    traffic_.line_writes += l2_.flush().size();
}

}  // namespace memopt
