#include "cache/mcache.hpp"

#include <algorithm>

#include "energy/dram_model.hpp"
#include "energy/sram_model.hpp"
#include "support/assert.hpp"
#include "support/json.hpp"
#include "trace/source.hpp"

namespace memopt {

MultiCoreCacheSystem::MultiCoreCacheSystem(const MultiCoreConfig& config)
    : config_(config), directory_(config.cores) {
    require(config.cores >= 1 && config.cores <= 64,
            "MultiCoreCacheSystem: core count must be in [1, 64]");
    require(config.l2_banks >= 1,
            "MultiCoreCacheSystem: need at least one L2 bank");
    require(config.l1.write_policy == WritePolicy::WriteBackAllocate,
            "MultiCoreCacheSystem: MSI requires a write-back/write-allocate L1");
    require(config.l2_bank.line_bytes == config.l1.line_bytes,
            "MultiCoreCacheSystem: L2 bank line size must equal the L1 line size "
            "(the directory tracks L1-line-sized blocks)");
    l1s_.reserve(config.cores);
    for (unsigned c = 0; c < config.cores; ++c) l1s_.emplace_back(config.l1);
    l2_banks_.reserve(config.l2_banks);
    for (unsigned b = 0; b < config.l2_banks; ++b) l2_banks_.emplace_back(config.l2_bank);
}

unsigned MultiCoreCacheSystem::bank_of(std::uint64_t addr) const {
    return static_cast<unsigned>((addr / config_.l1.line_bytes) % config_.l2_banks);
}

void MultiCoreCacheSystem::l2_access(std::uint64_t line, AccessKind kind) {
    const CacheAccessResult r = l2_banks_[bank_of(line)].access(line, kind);
    if (r.fill_line) ++traffic_.line_fetches;
    if (r.writeback_line) ++traffic_.line_writes;
}

void MultiCoreCacheSystem::apply_actions(std::uint64_t line,
                                         const CoherenceActions& actions) {
    // Order matters for the counters: the Modified owner's data reaches its
    // home bank before any copy is killed and before the requester refills.
    if (actions.writeback_owner) {
        const bool was_dirty = l1s_[*actions.writeback_owner].downgrade(line);
        MEMOPT_ASSERT_MSG(was_dirty,
                          "coherence: directory Modified owner held a clean line");
        l2_access(line, AccessKind::Write);
    }
    for (unsigned j = 0; j < config_.cores; ++j) {
        if ((actions.invalidate >> j) & 1) {
            const auto dirty = l1s_[j].invalidate(line);
            MEMOPT_ASSERT_MSG(dirty.has_value(),
                              "coherence: invalidation target does not hold the line");
            // A dirty target is always the flushed owner, handled above.
        }
    }
    if (actions.fetch) l2_access(line, AccessKind::Read);
}

void MultiCoreCacheSystem::access(unsigned core, std::uint64_t addr, AccessKind kind) {
    MEMOPT_ASSERT(core < config_.cores);
    CacheModel& l1 = l1s_[core];
    const std::uint64_t line = l1.line_base(addr);
    // In this protocol the L1 dirty bit IS the Modified indicator: stores
    // set it (M), downgrades clear it (S), fills install clean (S). Probe
    // it before access() mutates the line.
    const std::optional<bool> prior_dirty = l1.probe(addr);

    const CacheAccessResult r = l1.access(addr, kind);

    // Precise sharer maintenance: a replaced victim (clean or dirty)
    // leaves the directory before the new line enters it.
    if (r.evicted_line) {
        directory_.on_evict(core, *r.evicted_line);
        if (r.writeback_line) l2_access(*r.writeback_line, AccessKind::Write);
    }

    if (r.hit) {
        // Load hits and stores to an already-Modified line are
        // coherence-silent; a store to a Shared copy raises an upgrade.
        if (kind == AccessKind::Write && !*prior_dirty)
            apply_actions(line, directory_.on_write(core, line));
        return;
    }

    const CoherenceActions actions = kind == AccessKind::Read
                                         ? directory_.on_read_miss(core, line)
                                         : directory_.on_write(core, line);
    apply_actions(line, actions);
}

void MultiCoreCacheSystem::replay(std::span<const std::unique_ptr<TraceSource>> sources) {
    require(sources.size() == config_.cores,
            "MultiCoreCacheSystem::replay: need exactly one trace source per core");
    struct Cursor {
        TraceChunk chunk;
        std::size_t i = 0;
        bool done = false;
    };
    std::vector<Cursor> cursors(sources.size());
    const auto advance = [&](unsigned c) {
        Cursor& cur = cursors[c];
        while (!cur.done && cur.i >= cur.chunk.size()) {
            cur.i = 0;
            if (!sources[c]->next(cur.chunk)) cur.done = true;
        }
    };
    for (unsigned c = 0; c < sources.size(); ++c) {
        sources[c]->reset();
        advance(c);
    }

    const std::uint64_t line = config_.l1.line_bytes;
    bool live = true;
    while (live) {
        live = false;
        // Fixed arbitration order: one access per live core per turn, in
        // core order — independent of chunk geometry and job count.
        for (unsigned c = 0; c < sources.size(); ++c) {
            Cursor& cur = cursors[c];
            if (cur.done) continue;
            const std::uint64_t addr = cur.chunk.addrs[cur.i];
            const AccessKind kind = cur.chunk.kinds[cur.i];
            const std::uint64_t last =
                addr + std::max<std::uint64_t>(cur.chunk.sizes[cur.i], 1) - 1;
            access(c, addr, kind);
            for (std::uint64_t a = l1s_[c].line_base(addr) + line; a <= last; a += line)
                access(c, a, kind);
            ++cur.i;
            advance(c);
            live = true;
        }
    }
}

void MultiCoreCacheSystem::flush() {
    for (unsigned c = 0; c < config_.cores; ++c) {
        for (const std::uint64_t line : l1s_[c].flush()) {
            directory_.on_flush(c, line);
            l2_access(line, AccessKind::Write);
        }
    }
    for (CacheModel& bank : l2_banks_)
        traffic_.line_writes += bank.flush().size();
}

namespace {
void accumulate(CacheStats& into, const CacheStats& from) {
    into.read_hits += from.read_hits;
    into.read_misses += from.read_misses;
    into.write_hits += from.write_hits;
    into.write_misses += from.write_misses;
    into.fills += from.fills;
    into.writebacks += from.writebacks;
    into.write_throughs += from.write_throughs;
}
}  // namespace

CacheStats MultiCoreCacheSystem::l1_totals() const {
    CacheStats total;
    for (const CacheModel& l1 : l1s_) accumulate(total, l1.stats());
    return total;
}

CacheStats MultiCoreCacheSystem::l2_totals() const {
    CacheStats total;
    for (const CacheModel& bank : l2_banks_) accumulate(total, bank.stats());
    return total;
}

EnergyBreakdown MultiCoreCacheSystem::energy(const CoherenceEnergyModel& coherence) const {
    EnergyBreakdown out;
    const unsigned line_bytes = config_.l1.line_bytes;
    const double words_per_line = static_cast<double>(line_bytes) / 4.0;

    // Array energy: one read/write per access plus the word-wise line
    // install on every fill (the same accounting as the compressed-memory
    // simulation in compress/memsys.cpp).
    const SramEnergyModel l1_model(config_.l1.size_bytes);
    const CacheStats l1 = l1_totals();
    out.add("l1", l1_model.read_energy() * static_cast<double>(l1.read_hits + l1.read_misses) +
                      l1_model.write_energy() *
                          static_cast<double>(l1.write_hits + l1.write_misses) +
                      l1_model.write_energy() * words_per_line * static_cast<double>(l1.fills));

    const SramEnergyModel l2_model(config_.l2_bank.size_bytes);
    const CacheStats l2 = l2_totals();
    out.add("l2", l2_model.read_energy() * static_cast<double>(l2.read_hits + l2.read_misses) +
                      l2_model.write_energy() *
                          static_cast<double>(l2.write_hits + l2.write_misses) +
                      l2_model.write_energy() * words_per_line * static_cast<double>(l2.fills));
    out.add("bank_select",
            bank_select_energy(config_.l2_banks) * static_cast<double>(l2.accesses()));

    const CoherenceStats& cs = directory_.stats();
    out.add("directory", coherence.lookup_energy(cs.lookups));
    out.add("coherence", coherence.message_energy(cs.messages()) +
                             coherence.transfer_energy(cs.dirty_transfers() * line_bytes));

    const DramEnergyModel dram;
    out.add("main_memory",
            dram.burst_energy(line_bytes) *
                static_cast<double>(traffic_.line_fetches + traffic_.line_writes));
    return out;
}

namespace {
void cache_stats_json(JsonWriter& w, const CacheStats& s) {
    w.begin_object();
    w.member("read_hits", s.read_hits);
    w.member("read_misses", s.read_misses);
    w.member("write_hits", s.write_hits);
    w.member("write_misses", s.write_misses);
    w.member("fills", s.fills);
    w.member("writebacks", s.writebacks);
    w.member("miss_rate", s.miss_rate());
    w.end_object();
}
}  // namespace

void to_json(JsonWriter& w, const MultiCoreCacheSystem& system) {
    const MultiCoreConfig& cfg = system.config();
    w.begin_object();
    w.key("config").begin_object();
    w.member("cores", static_cast<std::uint64_t>(cfg.cores));
    w.member("l1_bytes", cfg.l1.size_bytes);
    w.member("l1_line_bytes", static_cast<std::uint64_t>(cfg.l1.line_bytes));
    w.member("l1_ways", static_cast<std::uint64_t>(cfg.l1.associativity));
    w.member("l2_banks", static_cast<std::uint64_t>(cfg.l2_banks));
    w.member("l2_bank_bytes", cfg.l2_bank.size_bytes);
    w.end_object();
    w.key("l1_per_core").begin_array();
    for (unsigned c = 0; c < system.cores(); ++c)
        cache_stats_json(w, system.l1(c).stats());
    w.end_array();
    w.key("l2_per_bank").begin_array();
    for (unsigned b = 0; b < cfg.l2_banks; ++b)
        cache_stats_json(w, system.l2_bank(b).stats());
    w.end_array();
    const CoherenceStats& cs = system.directory().stats();
    w.key("coherence").begin_object();
    w.member("lookups", cs.lookups);
    w.member("upgrades", cs.upgrades);
    w.member("downgrades", cs.downgrades);
    w.member("owner_flushes", cs.owner_flushes);
    w.member("invalidations", cs.invalidations);
    w.member("evictions", cs.evictions);
    w.member("messages", cs.messages());
    w.member("dirty_transfers", cs.dirty_transfers());
    w.end_object();
    w.key("traffic").begin_object();
    w.member("line_fetches", system.traffic().line_fetches);
    w.member("line_writes", system.traffic().line_writes);
    w.member("word_writes", system.traffic().word_writes);
    w.end_object();
    w.key("energy");
    system.energy().to_json(w);
    w.end_object();
}

}  // namespace memopt
