// Two-level cache hierarchy.
//
// Chains an L1 and an L2 CacheModel: L1 fills and write-backs become L2
// accesses; L2 fills and write-backs are main-memory bursts. Used by the
// compression line-size sweeps and by tests that check inclusion-free
// multi-level behaviour.
#pragma once

#include <cstdint>

#include "cache/cache.hpp"

namespace memopt {

class MemTrace;
class TraceSource;

/// Traffic seen by main memory after the hierarchy filters the trace.
struct MemoryTraffic {
    std::uint64_t line_fetches = 0;   ///< L2-line reads from memory
    std::uint64_t line_writes = 0;    ///< L2-line write-backs to memory
    std::uint64_t word_writes = 0;    ///< write-through words reaching memory
};

/// L1 + L2 hierarchy driven by a CPU access stream.
class CacheHierarchy {
public:
    /// L2 line size must be >= L1 line size.
    CacheHierarchy(const CacheConfig& l1, const CacheConfig& l2);

    /// Simulate one CPU access; updates both levels and the traffic counts.
    void access(std::uint64_t addr, AccessKind kind);

    /// Replay a whole chunked trace stream through the hierarchy (does not
    /// flush). Sequential and stateful, so chunking is invisible:
    /// bit-identical to calling access() per covered line. Accesses whose
    /// [addr, addr+size) span straddles an L1 line boundary are split and
    /// charged once per touched line.
    void replay(TraceSource& source);

    /// Convenience overload over an in-memory trace.
    void replay(const MemTrace& trace);

    /// Flush both levels (dirty L1 lines propagate into L2 first).
    void flush();

    const CacheModel& l1() const { return l1_; }
    const CacheModel& l2() const { return l2_; }
    const MemoryTraffic& traffic() const { return traffic_; }

private:
    void l2_access(std::uint64_t addr, AccessKind kind);

    CacheModel l1_;
    CacheModel l2_;
    MemoryTraffic traffic_;
};

}  // namespace memopt
