// Multi-core coherent cache system: private L1s + banked shared L2 + MSI.
//
// N cores each own a private write-back/write-allocate L1 CacheModel. They
// share a banked L2: `l2_banks` address-interleaved CacheModel instances
// (home bank = line index mod bank count — consecutive lines stripe across
// banks, the same interleaving the partitioned-memory experiments assume).
// A directory-based MSI protocol (cache/coherence.hpp) keeps the L1s
// coherent; its messages and dirty-line flushes are counted as coherence
// traffic and priced by CoherenceEnergyModel into the EnergyBreakdown next
// to the L1/L2/DRAM terms.
//
// Determinism contract: replay() interleaves the per-core trace streams by
// round-robin arbitration in fixed core order (core 0 access k, core 1
// access k, ... ), one access per core per turn, independent of chunk
// geometry and of --jobs. The simulation itself is a single serialized
// machine, so results are bit-identical at any job count by construction —
// the jobs-invariance test in tests/test_mcache.cpp polices the wiring.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "cache/cache.hpp"
#include "cache/coherence.hpp"
#include "cache/hierarchy.hpp"
#include "energy/coherence_model.hpp"
#include "energy/report.hpp"

namespace memopt {

class JsonWriter;
class TraceSource;

/// Geometry of the multi-core system. L2 bank line size must equal the L1
/// line size (the directory tracks L1-line-sized blocks), and the L1 must
/// be write-back/write-allocate (MSI has no write-through mode).
struct MultiCoreConfig {
    unsigned cores = 4;
    CacheConfig l1;       ///< private per-core L1 geometry
    CacheConfig l2_bank;  ///< geometry of ONE shared L2 bank
    unsigned l2_banks = 4;

    MultiCoreConfig() {
        l1.size_bytes = 8 * 1024;
        l1.line_bytes = 32;
        l1.associativity = 4;
        l2_bank.size_bytes = 64 * 1024;
        l2_bank.line_bytes = 32;
        l2_bank.associativity = 8;
    }
};

/// The coherent N-core cache machine.
class MultiCoreCacheSystem {
public:
    explicit MultiCoreCacheSystem(const MultiCoreConfig& config);

    const MultiCoreConfig& config() const { return config_; }
    unsigned cores() const { return config_.cores; }

    /// Simulate one access of `core`. Line-granular: callers replaying
    /// sized accesses split line-straddlers first (replay() does).
    void access(unsigned core, std::uint64_t addr, AccessKind kind);

    /// Replay one trace stream per core, interleaved by fixed round-robin
    /// arbitration (see file comment). `sources.size()` must equal the
    /// core count; accesses straddling an L1 line boundary are split per
    /// covered line. Does not flush.
    void replay(std::span<const std::unique_ptr<TraceSource>> sources);

    /// Write every dirty line back (L1s in core order, then L2 banks) and
    /// downgrade the directory's Modified entries to Shared.
    void flush();

    const CacheModel& l1(unsigned core) const { return l1s_[core]; }
    const CacheModel& l2_bank(unsigned bank) const { return l2_banks_[bank]; }
    const MsiDirectory& directory() const { return directory_; }
    const MemoryTraffic& traffic() const { return traffic_; }

    /// Home bank of the line containing `addr`.
    unsigned bank_of(std::uint64_t addr) const;

    /// Element-wise sums of the per-core L1 / per-bank L2 counters.
    CacheStats l1_totals() const;
    CacheStats l2_totals() const;

    /// Full energy breakdown: per-access L1/L2 array energy, bank-select
    /// overhead, directory lookups, coherence messages + dirty transfers,
    /// and the off-chip traffic behind the L2.
    EnergyBreakdown energy(const CoherenceEnergyModel& coherence =
                               CoherenceEnergyModel{}) const;

private:
    void apply_actions(std::uint64_t line, const CoherenceActions& actions);
    void l2_access(std::uint64_t line, AccessKind kind);

    MultiCoreConfig config_;
    std::vector<CacheModel> l1s_;
    std::vector<CacheModel> l2_banks_;
    MsiDirectory directory_;
    MemoryTraffic traffic_;
};

/// Serialize the whole machine: config, per-core L1 stats, per-bank L2
/// stats, coherence counters, memory traffic, energy breakdown.
void to_json(JsonWriter& w, const MultiCoreCacheSystem& system);

}  // namespace memopt
