#include "cache/coherence.hpp"

#include <algorithm>
#include <bit>

#include "support/assert.hpp"

namespace memopt {

namespace {
std::uint64_t core_bit(unsigned core) { return std::uint64_t{1} << core; }
}  // namespace

const char* msi_state_name(MsiState state) {
    switch (state) {
        case MsiState::Invalid: return "I";
        case MsiState::Shared: return "S";
        case MsiState::Modified: return "M";
    }
    MEMOPT_ASSERT_MSG(false, "invalid MsiState");
    return "?";
}

MsiDirectory::MsiDirectory(unsigned cores) : cores_(cores) {
    require(cores >= 1 && cores <= 64,
            "MsiDirectory: core count must be in [1, 64] (sharer bitset width)");
}

unsigned MsiDirectory::owner_of(const DirectoryLine& entry) const {
    MEMOPT_ASSERT_MSG(entry.state == MsiState::Modified &&
                          std::popcount(entry.sharers) == 1,
                      "MsiDirectory: Modified line must have exactly one sharer");
    return static_cast<unsigned>(std::countr_zero(entry.sharers));
}

CoherenceActions MsiDirectory::on_read_miss(unsigned core, std::uint64_t line) {
    MEMOPT_ASSERT(core < cores_);
    ++stats_.lookups;
    CoherenceActions actions;
    actions.fetch = true;  // a load miss always refills from the home bank
    DirectoryLine& entry = entries_[line];
    MEMOPT_ASSERT_MSG((entry.sharers & core_bit(core)) == 0,
                      "MsiDirectory: read miss from a core already sharing the line");
    if (entry.state == MsiState::Modified) {
        // Remote read of a dirty line: the owner flushes to the home bank
        // and keeps a clean copy; both cores end up Shared.
        const unsigned owner = owner_of(entry);
        actions.writeback_owner = owner;
        ++stats_.downgrades;
        entry.state = MsiState::Shared;
    } else {
        entry.state = MsiState::Shared;  // Invalid or already Shared
    }
    entry.sharers |= core_bit(core);
    return actions;
}

CoherenceActions MsiDirectory::on_write(unsigned core, std::uint64_t line) {
    MEMOPT_ASSERT(core < cores_);
    ++stats_.lookups;
    CoherenceActions actions;
    DirectoryLine& entry = entries_[line];
    const bool holder = (entry.sharers & core_bit(core)) != 0;
    if (entry.state == MsiState::Modified) {
        MEMOPT_ASSERT_MSG(!holder,
                          "MsiDirectory: write to an owned Modified line is silent");
        // Remote write to a dirty line: flush the owner's data, then kill
        // its copy; ownership transfers to the writer.
        const unsigned owner = owner_of(entry);
        actions.writeback_owner = owner;
        actions.invalidate = entry.sharers;
        ++stats_.owner_flushes;
    } else if (entry.state == MsiState::Shared) {
        // Kill every other clean copy; a holder upgrades without a fetch.
        actions.invalidate = entry.sharers & ~core_bit(core);
        if (holder) ++stats_.upgrades;
    }
    stats_.invalidations +=
        static_cast<std::uint64_t>(std::popcount(actions.invalidate));
    actions.fetch = !holder;
    entry.state = MsiState::Modified;
    entry.sharers = core_bit(core);
    return actions;
}

void MsiDirectory::on_evict(unsigned core, std::uint64_t line) {
    MEMOPT_ASSERT(core < cores_);
    ++stats_.evictions;
    const auto it = entries_.find(line);
    MEMOPT_ASSERT_MSG(it != entries_.end() && (it->second.sharers & core_bit(core)) != 0,
                      "MsiDirectory: eviction from a core the directory does not track");
    it->second.sharers &= ~core_bit(core);
    if (it->second.sharers == 0) {
        entries_.erase(it);  // last copy gone: line is Invalid again
    } else {
        MEMOPT_ASSERT_MSG(it->second.state == MsiState::Shared,
                          "MsiDirectory: Modified line cannot have residual sharers");
    }
}

void MsiDirectory::on_flush(unsigned core, std::uint64_t line) {
    MEMOPT_ASSERT(core < cores_);
    const auto it = entries_.find(line);
    MEMOPT_ASSERT_MSG(it != entries_.end() && it->second.state == MsiState::Modified &&
                          it->second.sharers == core_bit(core),
                      "MsiDirectory: flush notification must come from the owner");
    it->second.state = MsiState::Shared;
}

DirectoryLine MsiDirectory::line(std::uint64_t line_addr) const {
    const auto it = entries_.find(line_addr);
    return it == entries_.end() ? DirectoryLine{} : it->second;
}

std::uint64_t MsiDirectory::total_sharers() const {
    std::uint64_t total = 0;
    // memopt-lint: order-independent -- exact integer sum over unique keys,
    // commutative in any traversal order.
    for (const auto& [addr, entry] : entries_)
        total += static_cast<std::uint64_t>(std::popcount(entry.sharers));
    return total;
}

std::vector<std::pair<std::uint64_t, DirectoryLine>> MsiDirectory::snapshot() const {
    std::vector<std::pair<std::uint64_t, DirectoryLine>> out;
    out.reserve(entries_.size());
    // memopt-lint: order-independent -- collection order is erased by the
    // sort below; keys are unique within entries_.
    for (const auto& [addr, entry] : entries_) out.emplace_back(addr, entry);
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    return out;
}

}  // namespace memopt
