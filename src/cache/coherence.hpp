// Directory-based MSI coherence protocol.
//
// The directory is the serialization point of the simulated multi-core
// machine (cache/mcache.hpp): it tracks, per L1-line-sized block, the
// protocol state (Modified / Shared / Invalid) and a sharer bitset over the
// cores. Every L1 miss and every store-to-Shared upgrade consults it; the
// actions it returns — invalidate remote copies, flush the Modified owner —
// are what the controller applies to the private L1 models and counts as
// coherence traffic (energy/coherence_model.hpp prices the messages).
//
// The structures mirror the sparse-directory MSI organization of CMP
// simulators (a Graphite-style pr_l1_sh_l2 subsystem), reduced to the
// geometric counters this toolkit models.
//
// Transition table (directory view; `c` = requesting core):
//
//   state     event           next state  actions
//   --------  --------------  ----------  --------------------------------
//   Invalid   read miss (c)   Shared{c}   fetch line from home L2 bank
//   Invalid   write miss (c)  Mod{c}      fetch line from home L2 bank
//   Shared    read miss (c)   Shared+{c}  fetch line from home L2 bank
//   Shared    write (c in)    Mod{c}      invalidate other sharers (upgrade)
//   Shared    write (c out)   Mod{c}      invalidate all sharers, fetch
//   Modified  read miss (c)   Shared      downgrade owner (flush to L2),
//             (c != owner)    {owner,c}   fetch
//   Modified  write miss (c)  Mod{c}      flush + invalidate owner, fetch
//             (c != owner)
//   any       evict (c)       -c; Invalid sharer drop (Modified owner drop
//                             when empty   invalidates the entry)
//
// Reads and writes that hit a line the core already holds in a sufficient
// state (Shared/Modified for loads, Modified for stores) are
// coherence-silent and never reach the directory, as in hardware.
//
// Determinism: every query mutates exactly one entry; no iteration order is
// observable outside the sorted snapshot() helper. All counters are exact
// integer sums, so replays are bit-identical at any job count.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

namespace memopt {

/// Protocol state of one line in the directory.
enum class MsiState : std::uint8_t {
    Invalid,   ///< no cached copy exists (entry absent)
    Shared,    ///< >= 1 clean copies, read-only
    Modified,  ///< exactly one dirty copy, read-write
};

/// Display name ("I", "S", "M").
const char* msi_state_name(MsiState state);

/// Directory record of one tracked line.
struct DirectoryLine {
    MsiState state = MsiState::Invalid;
    std::uint64_t sharers = 0;  ///< bit c set = core c holds the line in L1
};

/// What the controller must apply before the requesting core may proceed.
struct CoherenceActions {
    std::uint64_t invalidate = 0;  ///< bitset of cores whose copy must be killed
    /// Modified owner whose dirty line must be flushed to the home L2 bank
    /// first (a downgrade on a remote read, a kill on a remote write — the
    /// write case also sets the owner's bit in `invalidate`).
    std::optional<unsigned> writeback_owner;
    bool fetch = false;  ///< the requester must fetch the line from its home bank
};

/// Protocol event counters. All messages are also priced as energy by
/// CoherenceEnergyModel (energy/coherence_model.hpp).
struct CoherenceStats {
    std::uint64_t lookups = 0;        ///< directory consultations (misses + upgrades)
    std::uint64_t upgrades = 0;       ///< Shared -> Modified on a local write
    std::uint64_t downgrades = 0;     ///< Modified -> Shared owner flush (remote read)
    std::uint64_t owner_flushes = 0;  ///< Modified owner killed by a remote write
    std::uint64_t invalidations = 0;  ///< invalidation messages sent to remote copies
    std::uint64_t evictions = 0;      ///< sharer drops from L1 replacements

    /// Control messages on the coherence interconnect.
    std::uint64_t messages() const { return invalidations + downgrades; }
    /// Dirty-line payloads pushed to L2 by the protocol (not by capacity).
    std::uint64_t dirty_transfers() const { return downgrades + owner_flushes; }
};

/// The MSI directory. Supports up to 64 cores (sharer bitset width).
class MsiDirectory {
public:
    explicit MsiDirectory(unsigned cores);

    unsigned cores() const { return cores_; }
    const CoherenceStats& stats() const { return stats_; }

    /// Core `core` misses on a load of `line`. Must not be called while
    /// the core is already a sharer (L1 evictions are reported, so the
    /// directory and the L1 models never disagree on residency).
    CoherenceActions on_read_miss(unsigned core, std::uint64_t line);

    /// Core `core` stores to `line`: either a write miss (core not a
    /// sharer; actions include fetch) or an upgrade of a Shared copy the
    /// core already holds (no fetch). Calls on Modified-by-`core` lines
    /// are protocol violations — those store hits are coherence-silent.
    CoherenceActions on_write(unsigned core, std::uint64_t line);

    /// Core `core` replaced `line` in its L1 (clean or dirty victim).
    void on_evict(unsigned core, std::uint64_t line);

    /// End-of-run flush notification: the owner wrote `line` back but keeps
    /// a clean copy, so a Modified entry downgrades to Shared.
    void on_flush(unsigned core, std::uint64_t line);

    /// Directory view of one line (Invalid default for untracked lines).
    DirectoryLine line(std::uint64_t line_addr) const;

    /// Number of tracked (non-Invalid) lines.
    std::size_t tracked_lines() const { return entries_.size(); }

    /// Sum of sharer-bitset popcounts over all tracked lines (equals the
    /// total resident-line count across the private L1s).
    std::uint64_t total_sharers() const;

    /// Deterministic (address-sorted) snapshot of every tracked line, for
    /// invariant checks and reports.
    std::vector<std::pair<std::uint64_t, DirectoryLine>> snapshot() const;

private:
    unsigned owner_of(const DirectoryLine& entry) const;

    unsigned cores_;
    std::unordered_map<std::uint64_t, DirectoryLine> entries_;
    CoherenceStats stats_;
};

}  // namespace memopt
