#include "partition/sleep.hpp"

#include <vector>

#include "energy/sram_model.hpp"
#include "support/assert.hpp"
#include "trace/source.hpp"

namespace memopt {

std::uint64_t SleepReport::total_wakeups() const {
    std::uint64_t total = 0;
    for (const SleepBankStats& b : banks) total += b.wakeups;
    return total;
}

SleepReport evaluate_partition_sleepy(const MemoryArchitecture& arch, const AddressMap& map,
                                      const MemTrace& trace,
                                      const PartitionEnergyParams& energy_params,
                                      const SleepParams& sleep) {
    MaterializedSource source(trace);
    return evaluate_partition_sleepy(arch, map, source, energy_params, sleep);
}

SleepReport evaluate_partition_sleepy(const MemoryArchitecture& arch, const AddressMap& map,
                                      TraceSource& source,
                                      const PartitionEnergyParams& energy_params,
                                      const SleepParams& sleep) {
    require(source.size() > 0, "evaluate_partition_sleepy: empty trace");
    require(map.num_blocks() == arch.num_blocks(),
            "evaluate_partition_sleepy: map does not match architecture");
    require(map.block_size() == arch.block_size(),
            "evaluate_partition_sleepy: block size mismatch");
    require(sleep.sleep_leak_factor >= 0.0 && sleep.sleep_leak_factor <= 1.0,
            "SleepParams: sleep_leak_factor must be in [0,1]");

    const std::size_t num_banks = arch.num_banks();
    std::vector<SramEnergyModel> models;
    models.reserve(num_banks);
    for (const Bank& bank : arch.banks())
        models.emplace_back(bank.size_bytes, 32, energy_params.sram,
                            energy_params.protection);

    struct BankState {
        std::uint64_t last_access = 0;  // cycle of last access
        std::uint64_t awake_since = 0;  // cycle the current awake period began
        bool asleep = false;
        double leak_pj = 0.0;
    };
    std::vector<BankState> states(num_banks);
    std::vector<SleepBankStats> stats(num_banks);

    const double select_pj = bank_select_energy(num_banks, energy_params.sram);
    double access_pj = 0.0;
    double wake_pj = 0.0;

    // Leakage bookkeeping helper: close the interval [from, to) for bank b
    // at its current sleep state.
    auto accrue_leak = [&](std::size_t b, std::uint64_t from, std::uint64_t to) {
        if (to <= from) return;
        const double nominal =
            models[b].leakage_energy(to - from, sleep.cycle_ns);
        states[b].leak_pj += states[b].asleep ? nominal * sleep.sleep_leak_factor : nominal;
    };

    // Chunked columnar replay: addr, cycle and kind are the only fields
    // this model reads. The state machine carries across chunk boundaries
    // untouched — the replay is sequential either way.
    std::uint64_t now = 0;
    std::uint64_t accesses = 0;
    source.reset();
    TraceChunk chunk;
    while (source.next(chunk)) {
        for (std::size_t i = 0; i < chunk.size(); ++i) {
            MEMOPT_ASSERT_MSG(chunk.cycles[i] >= now, "trace cycles must be non-decreasing");
            now = chunk.cycles[i];
            const std::uint64_t phys = map.map_addr(chunk.addrs[i]);
            const std::size_t block = static_cast<std::size_t>(phys / arch.block_size());
            const std::size_t bank = arch.bank_of_block(block);

            // Retire sleep transitions for every bank up to `now`. Only the
            // accessed bank must be exact; the others are settled lazily at
            // the end and at their own next access — but idle detection
            // needs the transition point, so settle all banks whose idle
            // threshold passed.
            for (std::size_t b = 0; b < num_banks; ++b) {
                BankState& s = states[b];
                if (!s.asleep && now > s.last_access + sleep.idle_cycles) {
                    const std::uint64_t sleep_start = s.last_access + sleep.idle_cycles;
                    accrue_leak(b, s.awake_since, sleep_start);
                    s.asleep = true;
                    s.awake_since = sleep_start;  // reused as "state since"
                }
            }

            BankState& s = states[bank];
            if (s.asleep) {
                // Wake up: close the sleeping interval, pay the wake energy.
                const std::uint64_t slept_since = s.awake_since;
                accrue_leak(bank, slept_since, now);
                s.asleep = false;
                s.awake_since = now;
                wake_pj += sleep.wakeup_pj;
                ++stats[bank].wakeups;
                stats[bank].asleep_cycles += now - slept_since;
            }
            access_pj += chunk.kinds[i] == AccessKind::Read ? models[bank].read_energy()
                                                            : models[bank].write_energy();
            ++stats[bank].accesses;
            s.last_access = now;
        }
        accesses += chunk.size();
    }

    // Close out all banks at the final cycle.
    const std::uint64_t end = now + 1;
    for (std::size_t b = 0; b < num_banks; ++b) {
        BankState& s = states[b];
        if (!s.asleep && end > s.last_access + sleep.idle_cycles) {
            const std::uint64_t sleep_start = s.last_access + sleep.idle_cycles;
            accrue_leak(b, s.awake_since, sleep_start);
            s.asleep = true;
            s.awake_since = sleep_start;
        }
        accrue_leak(b, s.awake_since, end);
        if (s.asleep) stats[b].asleep_cycles += end - s.awake_since;
    }

    SleepReport report;
    report.banks = std::move(stats);
    report.energy.add("bank_access", access_pj);
    report.energy.add("bank_select", select_pj * static_cast<double>(accesses));
    if (energy_params.extra_pj_per_access > 0.0)
        report.energy.add("remap",
                          energy_params.extra_pj_per_access * static_cast<double>(accesses));
    if (energy_params.protection != ProtectionScheme::None)
        report.energy.add("ecc",
                          protection_access_energy(energy_params.protection, 32,
                                                   energy_params.sram) *
                              static_cast<double>(accesses));
    double leak_total = 0.0;
    for (const BankState& s : states) leak_total += s.leak_pj;
    report.energy.add("leakage", leak_total);
    report.energy.add("wakeup", wake_pj);
    return report;
}

}  // namespace memopt
