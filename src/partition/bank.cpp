#include "partition/bank.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace memopt {

std::uint64_t MemoryArchitecture::capacity_for(std::uint64_t block_size, std::size_t num_blocks,
                                               std::uint64_t min_bytes) {
    const std::uint64_t needed = block_size * num_blocks;
    return std::max(ceil_pow2(needed), min_bytes);
}

MemoryArchitecture::MemoryArchitecture(std::vector<Bank> banks, std::uint64_t block_size)
    : banks_(std::move(banks)), block_size_(block_size) {
    validate();
}

MemoryArchitecture MemoryArchitecture::monolithic(std::uint64_t block_size,
                                                  std::size_t num_blocks,
                                                  std::uint64_t min_bank_bytes) {
    return from_splits(block_size, num_blocks, {}, min_bank_bytes);
}

MemoryArchitecture MemoryArchitecture::from_splits(std::uint64_t block_size,
                                                   std::size_t num_blocks,
                                                   const std::vector<std::size_t>& splits,
                                                   std::uint64_t min_bank_bytes) {
    require(num_blocks > 0, "from_splits: num_blocks must be > 0");
    std::vector<Bank> banks;
    std::size_t start = 0;
    auto close_bank = [&](std::size_t end) {
        require(end > start, "from_splits: splits must be strictly increasing in range");
        banks.push_back(Bank{start, end - start,
                             capacity_for(block_size, end - start, min_bank_bytes)});
        start = end;
    };
    for (std::size_t split : splits) {
        require(split < num_blocks, "from_splits: split out of range");
        close_bank(split);
    }
    close_bank(num_blocks);
    return MemoryArchitecture(std::move(banks), block_size);
}

void MemoryArchitecture::validate() const {
    require(is_pow2(block_size_), "MemoryArchitecture: block_size must be a power of two");
    require(!banks_.empty(), "MemoryArchitecture: needs at least one bank");
    std::size_t expected_start = 0;
    for (const Bank& bank : banks_) {
        require(bank.num_blocks > 0, "MemoryArchitecture: empty bank");
        require(bank.first_block == expected_start,
                "MemoryArchitecture: banks must tile the block space contiguously");
        require(is_pow2(bank.size_bytes), "MemoryArchitecture: bank capacity must be a power of two");
        require(bank.size_bytes >= bank.num_blocks * block_size_,
                "MemoryArchitecture: bank capacity smaller than its block range");
        expected_start = bank.end_block();
    }
}

std::size_t MemoryArchitecture::num_blocks() const { return banks_.back().end_block(); }

std::size_t MemoryArchitecture::bank_of_block(std::size_t block) const {
    require(block < num_blocks(), "bank_of_block: block out of range");
    // Binary search over ordered, disjoint banks.
    std::size_t lo = 0;
    std::size_t hi = banks_.size() - 1;
    while (lo < hi) {
        const std::size_t mid = (lo + hi) / 2;
        if (block < banks_[mid].end_block()) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    MEMOPT_ASSERT(block >= banks_[lo].first_block && block < banks_[lo].end_block());
    return lo;
}

std::uint64_t MemoryArchitecture::total_capacity() const {
    std::uint64_t total = 0;
    for (const Bank& bank : banks_) total += bank.size_bytes;
    return total;
}

}  // namespace memopt
