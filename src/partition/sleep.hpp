// Trace-driven evaluation with sleepy banks (leakage-aware extension).
//
// The profile-based objective of partition/evaluate.hpp is time-blind: it
// cannot see that a bank which is idle for long stretches could be put into
// a low-leakage sleep state. This module replays the actual trace through a
// (possibly remapped) architecture with a simple sleep controller:
//
//   * a bank not accessed for `idle_cycles` consecutive cycles enters
//     sleep, cutting its leakage to `sleep_leak_factor` of nominal;
//   * the first access after sleep pays `wakeup_pj` and a wake latency is
//     ignored (energy study, not timing).
//
// This is the objective under which *temporal* clustering matters: packing
// co-accessed blocks into the same bank lengthens the idle stretches of the
// other banks. It reproduces the leakage-aware direction that the DATE'03
// partitioning line of work identified as future work.
#pragma once

#include <cstdint>

#include "cluster/address_map.hpp"
#include "energy/report.hpp"
#include "partition/bank.hpp"
#include "partition/evaluate.hpp"
#include "trace/trace.hpp"

namespace memopt {

class TraceSource;

/// Sleep-controller parameters.
struct SleepParams {
    std::uint64_t idle_cycles = 200;    ///< idle time before a bank sleeps
    double sleep_leak_factor = 0.08;    ///< leakage while asleep (fraction)
    double wakeup_pj = 40.0;            ///< energy of one bank wake-up
    double cycle_ns = 10.0;             ///< cycle time
};

/// Per-bank activity statistics from a sleepy replay.
struct SleepBankStats {
    std::uint64_t accesses = 0;
    std::uint64_t wakeups = 0;
    std::uint64_t asleep_cycles = 0;
};

/// Result of a sleepy trace replay.
struct SleepReport {
    EnergyBreakdown energy;  ///< "bank_access", "bank_select", "remap",
                             ///< "leakage", "wakeup"
    std::vector<SleepBankStats> banks;

    /// Total wake-ups across banks.
    std::uint64_t total_wakeups() const;
};

/// Replay `trace` through `arch` under `map` (identity allowed) with the
/// sleep controller. `energy_params.extra_pj_per_access` is charged per
/// access exactly as in the static evaluation; leakage uses the trace's
/// cycle stamps (the last access's cycle is the run length).
SleepReport evaluate_partition_sleepy(const MemoryArchitecture& arch, const AddressMap& map,
                                      const MemTrace& trace,
                                      const PartitionEnergyParams& energy_params,
                                      const SleepParams& sleep);

/// Streaming variant: replay `source` chunk by chunk in O(chunk) memory.
/// The replay is inherently sequential (the sleep controller is a state
/// machine over cycle time), so chunking changes nothing: results are
/// bit-identical to the MemTrace overload, which delegates here.
SleepReport evaluate_partition_sleepy(const MemoryArchitecture& arch, const AddressMap& map,
                                      TraceSource& source,
                                      const PartitionEnergyParams& energy_params,
                                      const SleepParams& sleep);

}  // namespace memopt
