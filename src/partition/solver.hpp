// Memory partitioning solvers.
//
// Given a block profile, find the multi-bank architecture (contiguous block
// ranges, power-of-two capacities, bounded bank count) minimizing the
// energy objective of partition/evaluate.hpp. Three solvers:
//   * solve_partition_optimal — exact dynamic program, O(N^2 * K);
//   * solve_partition_greedy  — iterative best-split refinement, O(K * N),
//     for very large block counts;
//   * solve_partition_brute   — exhaustive split enumeration (tests only,
//     N <= 20).
// The DP is the reference partitioner from the memory-partitioning prior
// art that DATE'03 1B-1's address clustering builds on.
#pragma once

#include <cstddef>

#include "energy/report.hpp"
#include "partition/bank.hpp"
#include "partition/evaluate.hpp"
#include "trace/profile.hpp"

namespace memopt {

/// Solver constraints.
struct PartitionConstraints {
    std::size_t max_banks = 8;  ///< upper bound on bank count (>= 1)
};

/// A solved partition plus its evaluated energy.
struct PartitionSolution {
    MemoryArchitecture arch;
    EnergyBreakdown energy;
};

/// Exact DP solver. Considers every bank count in [1, max_banks] and
/// returns the globally optimal contiguous partition.
PartitionSolution solve_partition_optimal(const BlockProfile& profile,
                                          const PartitionConstraints& constraints,
                                          const PartitionEnergyParams& params);

/// Greedy refinement solver: starts monolithic and repeatedly applies the
/// single most profitable bank split until no split helps or the bank
/// budget is reached. Fast and usually near-optimal.
PartitionSolution solve_partition_greedy(const BlockProfile& profile,
                                         const PartitionConstraints& constraints,
                                         const PartitionEnergyParams& params);

/// Exhaustive solver over all split subsets; requires num_blocks <= 20.
/// Used by tests to certify the DP.
PartitionSolution solve_partition_brute(const BlockProfile& profile,
                                        const PartitionConstraints& constraints,
                                        const PartitionEnergyParams& params);

/// Pool-aware solving entry for hybrid bank pools: the bank budget is
/// additionally capped by the pool's total bank count (`pool_banks`), since
/// a split the pool cannot populate is infeasible. Splits are chosen under
/// the SRAM reference oracle — the gating residency that differentiates the
/// technologies is architecture-determined, so the SRAM-optimal splits are
/// the right geometry for assign_technologies() (partition/hybrid.hpp) to
/// place technologies onto.
PartitionSolution solve_partition_pooled(const BlockProfile& profile,
                                         const PartitionConstraints& constraints,
                                         const PartitionEnergyParams& params,
                                         std::size_t pool_banks, bool use_greedy);

}  // namespace memopt
