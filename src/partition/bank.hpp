// Multi-bank memory architectures.
//
// A partition assigns every profile block to exactly one bank; banks are
// contiguous block ranges (in the — possibly remapped — block address
// space) and their physical capacity is rounded up to a power of two, the
// granularity at which embedded SRAM cuts are available.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/profile.hpp"

namespace memopt {

/// One SRAM bank covering a contiguous block range.
struct Bank {
    std::size_t first_block = 0;  ///< first covered block (inclusive)
    std::size_t num_blocks = 0;   ///< number of covered blocks (> 0)
    std::uint64_t size_bytes = 0; ///< physical capacity (power of two)

    std::size_t end_block() const { return first_block + num_blocks; }
};

/// A complete multi-bank memory architecture over a block profile.
///
/// Invariants (checked by validate()): banks are non-empty, ordered,
/// disjoint, cover every block exactly once, and each bank's capacity is a
/// power of two that holds its block range.
class MemoryArchitecture {
public:
    /// Trivial architecture: one 4 KiB bank over one block. Exists so that
    /// result structs holding a MemoryArchitecture are default-
    /// constructible; replace it before use.
    MemoryArchitecture() : MemoryArchitecture({Bank{0, 1, 4096}}, 4096) {}

    /// Build from bank ranges. `block_size` is the profile's block size;
    /// `min_bank_bytes` is the smallest manufacturable cut (bank capacities
    /// are clamped up to it). Throws memopt::Error on invalid layouts.
    MemoryArchitecture(std::vector<Bank> banks, std::uint64_t block_size);

    /// Monolithic architecture: one bank covering `num_blocks` blocks.
    static MemoryArchitecture monolithic(std::uint64_t block_size, std::size_t num_blocks,
                                         std::uint64_t min_bank_bytes = 256);

    /// Build from split points: `splits` are the first blocks of each bank
    /// after the first (strictly increasing, in (0, num_blocks)).
    static MemoryArchitecture from_splits(std::uint64_t block_size, std::size_t num_blocks,
                                          const std::vector<std::size_t>& splits,
                                          std::uint64_t min_bank_bytes = 256);

    const std::vector<Bank>& banks() const { return banks_; }
    std::size_t num_banks() const { return banks_.size(); }
    std::uint64_t block_size() const { return block_size_; }
    std::size_t num_blocks() const;

    /// Index of the bank holding `block`.
    std::size_t bank_of_block(std::size_t block) const;

    /// Total physical capacity over all banks (>= covered span).
    std::uint64_t total_capacity() const;

    /// Physical capacity (power of two, >= min_bytes) needed for a run of
    /// `num_blocks` blocks of `block_size` bytes.
    static std::uint64_t capacity_for(std::uint64_t block_size, std::size_t num_blocks,
                                      std::uint64_t min_bytes);

private:
    void validate() const;

    std::vector<Bank> banks_;
    std::uint64_t block_size_;
};

}  // namespace memopt
