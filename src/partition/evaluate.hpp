// Energy evaluation of a multi-bank architecture against a block profile.
//
// This is the objective function shared by all partitioning solvers and the
// clustering search: for each bank, every access pays the SRAM access energy
// of *that bank's capacity*; every access additionally pays the bank-select
// overhead of the architecture; leakage (optional) accrues over the run.
#pragma once

#include <cstdint>

#include <vector>

#include "energy/report.hpp"
#include "energy/sram_model.hpp"
#include "energy/tech_model.hpp"
#include "partition/bank.hpp"
#include "trace/profile.hpp"

namespace memopt {

/// Parameters of the evaluation.
struct PartitionEnergyParams {
    SramTechnology sram;                 ///< technology constants
    std::uint64_t min_bank_bytes = 256;  ///< smallest manufacturable cut
    double cycle_ns = 10.0;              ///< cycle time (100 MHz class core)
    std::uint64_t runtime_cycles = 0;    ///< run length for leakage; 0 = ignore leakage
    double extra_pj_per_access = 0.0;    ///< e.g. address-remap table lookup energy
    /// Bank-array protection: check bits widen every bank (array + leakage
    /// terms) and each access pays the encode/check logic as an "ecc"
    /// component. None keeps results bit-identical to the unprotected model.
    ProtectionScheme protection = ProtectionScheme::None;
};

/// Energy breakdown of running `profile` against `arch`.
/// Components: "bank_access", "bank_select", "leakage", "remap", "ecc".
/// The architecture must cover exactly the profile's blocks.
EnergyBreakdown evaluate_partition(const MemoryArchitecture& arch, const BlockProfile& profile,
                                   const PartitionEnergyParams& params);

/// Convenience: total energy [pJ] of the monolithic baseline.
EnergyBreakdown evaluate_monolithic(const BlockProfile& profile,
                                    const PartitionEnergyParams& params);

/// Static heterogeneous evaluation: like evaluate_partition(), but bank b
/// is built in techs[b] (energy/tech_model.hpp) instead of uniform SRAM.
/// Adds a "refresh" component when a dynamic technology is present and
/// params.runtime_cycles > 0 (no gating here — the trace-driven gated
/// evaluation lives in partition/hybrid.hpp). With every bank
/// MemTechnology::Sram the result is bit-identical to evaluate_partition().
EnergyBreakdown evaluate_partition_tech(const MemoryArchitecture& arch,
                                        const std::vector<MemTechnology>& techs,
                                        const BlockProfile& profile,
                                        const PartitionEnergyParams& params);

}  // namespace memopt
