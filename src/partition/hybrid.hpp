// Hybrid (mixed-technology) bank evaluation with dark-silicon gating.
//
// The heterogeneous counterpart of partition/evaluate.hpp + partition/sleep.hpp:
// given an architecture and a BankPool of available technologies, replay the
// trace once to extract each bank's *technology-independent* activity (access
// counts and the power-gating residency the idle-threshold controller would
// produce), then choose the energy-optimal technology per bank with an exact
// assignment DP over the pool's slot counts.
//
// The split matters: the gating state machine only looks at access *times*,
// which are fixed by the architecture and the address map, never by what the
// bank is built in. One sequential replay therefore serves every candidate
// technology, and the per-bank cost of a technology is closed-form in the
// BankActivity — the assignment search costs microseconds, not replays.
//
// Determinism contract: the replay is sequential (state machine over cycle
// time), the DP iterates banks/states/slots in fixed order with strict-<
// improvement (first slot wins ties), and nothing here touches the parallel
// runtime — results are bit-identical at any --jobs.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/address_map.hpp"
#include "energy/report.hpp"
#include "energy/tech_model.hpp"
#include "partition/bank.hpp"
#include "partition/evaluate.hpp"
#include "trace/trace.hpp"

namespace memopt {

class TraceSource;

/// Dark-silicon gating controller parameters (the idle-threshold policy of
/// partition/sleep.hpp, applied per bank of the hybrid pool).
struct HybridGatingParams {
    bool enabled = true;             ///< false = banks never gate (static study)
    std::uint64_t idle_cycles = 200; ///< idle time before a bank is gated
    /// Ablation knob: scales every technology's gate_leak_factor (1 = the
    /// technology's nominal gate, 0 = perfect gates everywhere). Used by
    /// bench/e14_hybrid_sweep to show gating savings are monotone in gate
    /// quality; leave at 1.0 otherwise.
    double gate_leak_scale = 1.0;
};

/// Technology-independent activity of one bank under the gating controller.
struct BankActivity {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t wakeups = 0;        ///< gated -> powered transitions
    std::uint64_t active_cycles = 0;  ///< cycles powered (incl. idle-but-on)
    std::uint64_t gated_cycles = 0;   ///< cycles power-gated

    std::uint64_t accesses() const { return reads + writes; }
    std::uint64_t total_cycles() const { return active_cycles + gated_cycles; }
};

/// Replay `source` through `arch` under `map` and return each bank's
/// activity. The replay spans max(last trace cycle + 1, min_total_cycles)
/// cycles; the tail beyond the last access follows the gating controller
/// like any other idle stretch. Resets `source` before replaying (and
/// leaves it exhausted), so back-to-back evaluations of different pools on
/// one source are independent.
std::vector<BankActivity> replay_bank_activity(const MemoryArchitecture& arch,
                                               const AddressMap& map, TraceSource& source,
                                               const HybridGatingParams& gating,
                                               std::uint64_t min_total_cycles = 0);

/// Convenience overload over a materialized trace.
std::vector<BankActivity> replay_bank_activity(const MemoryArchitecture& arch,
                                               const AddressMap& map, const MemTrace& trace,
                                               const HybridGatingParams& gating,
                                               std::uint64_t min_total_cycles = 0);

/// Closed-form energy [pJ] of one bank built as `model` with activity `a`:
/// access + powered leakage + refresh (over powered cycles) + gated leakage
/// (scaled by gate_leak_scale) + wake-up energy. Excludes the per-access
/// architecture terms (bank select, remap, ecc), which are technology-blind.
double hybrid_bank_energy(const TechEnergyModel& model, const BankActivity& a,
                          double cycle_ns, double gate_leak_scale = 1.0);

/// Energy-optimal technology per bank, drawing at most slot.count banks
/// from each pool slot. Exact DP over (bank, per-slot usage) states;
/// deterministic (earlier pool slots win cost ties). Throws memopt::Error
/// when the pool has fewer banks than the architecture.
std::vector<MemTechnology> assign_technologies(const MemoryArchitecture& arch,
                                               const std::vector<BankActivity>& activity,
                                               const BankPool& pool,
                                               const PartitionEnergyParams& params,
                                               const HybridGatingParams& gating);

/// Per-bank slice of a hybrid evaluation.
struct HybridBankReport {
    MemTechnology tech = MemTechnology::Sram;
    Bank bank;
    BankActivity activity;
    double access_pj = 0.0;
    double leakage_pj = 0.0;   ///< powered (non-gated) leakage
    double refresh_pj = 0.0;
    double gated_pj = 0.0;     ///< residual leakage while gated
    double wakeup_pj = 0.0;

    double total_pj() const {
        return access_pj + leakage_pj + refresh_pj + gated_pj + wakeup_pj;
    }
};

/// Result of a hybrid evaluation: the full breakdown plus per-bank detail.
/// Components: "bank_access", "bank_select", "leakage", "refresh",
/// "gated_leakage", "wakeup", and the usual "remap"/"ecc" when configured.
struct HybridReport {
    EnergyBreakdown energy;
    std::vector<HybridBankReport> banks;
    std::uint64_t total_cycles = 0;

    double total() const { return energy.total(); }
    std::uint64_t total_wakeups() const;
    std::uint64_t total_gated_cycles() const;
};

/// Evaluate `arch` with the given per-bank technologies and activity.
/// With every bank Sram, gating disabled and min_total_cycles >=
/// params.runtime_cycles > 0, "bank_access"/"bank_select"/"leakage" (and
/// "remap"/"ecc") are bit-identical to evaluate_partition() — the legacy
/// arithmetic is delegated to, not reproduced.
HybridReport evaluate_partition_hybrid(const MemoryArchitecture& arch,
                                       const std::vector<MemTechnology>& techs,
                                       const std::vector<BankActivity>& activity,
                                       const PartitionEnergyParams& params,
                                       const HybridGatingParams& gating);

}  // namespace memopt
