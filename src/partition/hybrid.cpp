#include "partition/hybrid.hpp"

#include <algorithm>
#include <limits>

#include "support/assert.hpp"
#include "trace/source.hpp"

namespace memopt {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

void check_arch_map(const MemoryArchitecture& arch, const AddressMap& map) {
    require(map.num_blocks() == arch.num_blocks(),
            "replay_bank_activity: map does not match architecture");
    require(map.block_size() == arch.block_size(),
            "replay_bank_activity: block size mismatch");
}

}  // namespace

std::vector<BankActivity> replay_bank_activity(const MemoryArchitecture& arch,
                                               const AddressMap& map, TraceSource& source,
                                               const HybridGatingParams& gating,
                                               std::uint64_t min_total_cycles) {
    require(source.size() > 0, "replay_bank_activity: empty trace");
    check_arch_map(arch, map);
    require(gating.gate_leak_scale >= 0.0,
            "HybridGatingParams: gate_leak_scale must be >= 0");

    const std::size_t num_banks = arch.num_banks();
    std::vector<BankActivity> activity(num_banks);

    // Same shape as the sleep controller of partition/sleep.cpp, but the
    // replay records *cycles*, not energy: the gate state machine depends
    // only on access times, so one pass serves every candidate technology.
    struct BankState {
        std::uint64_t last_access = 0;
        std::uint64_t state_since = 0;  // cycle the current power state began
        bool gated = false;
    };
    std::vector<BankState> states(num_banks);

    std::uint64_t now = 0;
    source.reset();
    TraceChunk chunk;
    while (source.next(chunk)) {
        for (std::size_t i = 0; i < chunk.size(); ++i) {
            MEMOPT_ASSERT_MSG(chunk.cycles[i] >= now, "trace cycles must be non-decreasing");
            now = chunk.cycles[i];
            const std::uint64_t phys = map.map_addr(chunk.addrs[i]);
            const std::size_t block = static_cast<std::size_t>(phys / arch.block_size());
            const std::size_t bank = arch.bank_of_block(block);

            if (gating.enabled) {
                // Retire gate transitions for every bank whose idle
                // threshold has passed (cf. sleep.cpp: the accessed bank
                // must be exact, the rest need the transition point for
                // their own residency split).
                for (std::size_t b = 0; b < num_banks; ++b) {
                    BankState& s = states[b];
                    if (!s.gated && now > s.last_access + gating.idle_cycles) {
                        const std::uint64_t gate_start = s.last_access + gating.idle_cycles;
                        activity[b].active_cycles += gate_start - s.state_since;
                        s.gated = true;
                        s.state_since = gate_start;
                    }
                }
                BankState& s = states[bank];
                if (s.gated) {
                    activity[bank].gated_cycles += now - s.state_since;
                    s.gated = false;
                    s.state_since = now;
                    ++activity[bank].wakeups;
                }
                s.last_access = now;
            }
            if (chunk.kinds[i] == AccessKind::Read)
                ++activity[bank].reads;
            else
                ++activity[bank].writes;
        }
    }

    // Close out every bank at the end of the observation window. The tail
    // beyond the last access is idle time like any other: banks whose
    // threshold passes inside it gate for the remainder.
    const std::uint64_t end = std::max(now + 1, min_total_cycles);
    for (std::size_t b = 0; b < num_banks; ++b) {
        BankState& s = states[b];
        if (gating.enabled && !s.gated && end > s.last_access + gating.idle_cycles) {
            const std::uint64_t gate_start = s.last_access + gating.idle_cycles;
            activity[b].active_cycles += gate_start - s.state_since;
            s.gated = true;
            s.state_since = gate_start;
        }
        if (s.gated)
            activity[b].gated_cycles += end - s.state_since;
        else
            activity[b].active_cycles += end - s.state_since;
    }
    return activity;
}

std::vector<BankActivity> replay_bank_activity(const MemoryArchitecture& arch,
                                               const AddressMap& map, const MemTrace& trace,
                                               const HybridGatingParams& gating,
                                               std::uint64_t min_total_cycles) {
    MaterializedSource source(trace);
    return replay_bank_activity(arch, map, source, gating, min_total_cycles);
}

double hybrid_bank_energy(const TechEnergyModel& model, const BankActivity& a,
                          double cycle_ns, double gate_leak_scale) {
    return static_cast<double>(a.reads) * model.read_energy() +
           static_cast<double>(a.writes) * model.write_energy() +
           model.leakage_energy(a.active_cycles, cycle_ns) +
           model.refresh_energy(a.active_cycles, cycle_ns) +
           model.gated_leakage_energy(a.gated_cycles, cycle_ns) * gate_leak_scale +
           static_cast<double>(a.wakeups) * model.gate_wake_energy();
}

std::vector<MemTechnology> assign_technologies(const MemoryArchitecture& arch,
                                               const std::vector<BankActivity>& activity,
                                               const BankPool& pool,
                                               const PartitionEnergyParams& params,
                                               const HybridGatingParams& gating) {
    const std::size_t num_banks = arch.num_banks();
    require(activity.size() == num_banks,
            "assign_technologies: activity does not match architecture");
    require(pool.num_slots() > 0, "assign_technologies: empty pool");
    require(pool.total_banks() >= num_banks,
            "assign_technologies: pool has fewer banks than the architecture");

    const std::vector<PoolSlot>& slots = pool.slots();
    const std::size_t num_slots = slots.size();

    // Per-(bank, slot) closed-form cost. Only technology-dependent terms
    // enter the DP; bank select / remap / ecc are per-access constants that
    // cannot change the arg-min.
    std::vector<double> cost(num_banks * num_slots);
    for (std::size_t b = 0; b < num_banks; ++b) {
        for (std::size_t s = 0; s < num_slots; ++s) {
            const TechEnergyModel model(slots[s].tech, arch.banks()[b].size_bytes, 32,
                                        params.sram, params.protection);
            cost[b * num_slots + s] =
                hybrid_bank_energy(model, activity[b], params.cycle_ns,
                                   gating.gate_leak_scale);
        }
    }

    // Exact assignment DP over mixed-radix "banks used per slot" states.
    // Slot counts beyond num_banks can never be exhausted, so each radix is
    // capped — the state space stays small for realistic pools.
    std::vector<std::size_t> cap(num_slots);
    std::vector<std::size_t> stride(num_slots + 1);
    stride[0] = 1;
    for (std::size_t s = 0; s < num_slots; ++s) {
        cap[s] = std::min(slots[s].count, num_banks);
        stride[s + 1] = stride[s] * (cap[s] + 1);
    }
    const std::size_t num_states = stride[num_slots];
    require(num_states <= (std::size_t{1} << 22),
            "assign_technologies: pool too complex (bound the slot counts)");

    std::vector<double> prev(num_states, kInf);
    std::vector<double> cur(num_states, kInf);
    // choice[b * num_states + state]: pool slot of bank b on the best path
    // arriving at `state` after placing banks [0, b].
    std::vector<std::uint8_t> choice(num_banks * num_states, 0xff);
    prev[0] = 0.0;
    for (std::size_t b = 0; b < num_banks; ++b) {
        std::fill(cur.begin(), cur.end(), kInf);
        std::uint8_t* const pick = choice.data() + b * num_states;
        for (std::size_t state = 0; state < num_states; ++state) {
            if (prev[state] == kInf) continue;
            for (std::size_t s = 0; s < num_slots; ++s) {
                const std::size_t used = (state / stride[s]) % (cap[s] + 1);
                if (used == cap[s]) continue;
                const std::size_t next = state + stride[s];
                const double cand = prev[state] + cost[b * num_slots + s];
                // Strict improvement only: with the fixed state/slot
                // iteration order, cost ties resolve to the earliest pool
                // slot and lowest usage state — deterministic everywhere.
                if (cand < cur[next]) {
                    cur[next] = cand;
                    pick[next] = static_cast<std::uint8_t>(s);
                }
            }
        }
        std::swap(prev, cur);
    }

    std::size_t best_state = 0;
    double best = kInf;
    for (std::size_t state = 0; state < num_states; ++state) {
        if (prev[state] < best) {
            best = prev[state];
            best_state = state;
        }
    }
    MEMOPT_ASSERT_MSG(best < kInf, "assign_technologies: no feasible assignment");

    std::vector<MemTechnology> techs(num_banks);
    std::size_t state = best_state;
    for (std::size_t b = num_banks; b-- > 0;) {
        const std::uint8_t s = choice[b * num_states + state];
        MEMOPT_ASSERT_MSG(s != 0xff, "assign_technologies: broken DP path");
        techs[b] = slots[s].tech;
        state -= stride[s];
    }
    MEMOPT_ASSERT(state == 0);
    return techs;
}

std::uint64_t HybridReport::total_wakeups() const {
    std::uint64_t total = 0;
    for (const HybridBankReport& b : banks) total += b.activity.wakeups;
    return total;
}

std::uint64_t HybridReport::total_gated_cycles() const {
    std::uint64_t total = 0;
    for (const HybridBankReport& b : banks) total += b.activity.gated_cycles;
    return total;
}

HybridReport evaluate_partition_hybrid(const MemoryArchitecture& arch,
                                       const std::vector<MemTechnology>& techs,
                                       const std::vector<BankActivity>& activity,
                                       const PartitionEnergyParams& params,
                                       const HybridGatingParams& gating) {
    const std::size_t num_banks = arch.num_banks();
    require(techs.size() == num_banks,
            "evaluate_partition_hybrid: techs do not match architecture");
    require(activity.size() == num_banks,
            "evaluate_partition_hybrid: activity does not match architecture");

    HybridReport report;
    report.banks.reserve(num_banks);
    std::uint64_t accesses = 0;
    double access_pj = 0.0;
    double leak_pj = 0.0;
    double refresh_pj = 0.0;
    double gated_pj = 0.0;
    double wake_pj = 0.0;
    for (std::size_t b = 0; b < num_banks; ++b) {
        const Bank& bank = arch.banks()[b];
        const BankActivity& a = activity[b];
        const TechEnergyModel model(techs[b], bank.size_bytes, 32, params.sram,
                                    params.protection);
        HybridBankReport slice;
        slice.tech = techs[b];
        slice.bank = bank;
        slice.activity = a;
        // Same accumulation shape as evaluate_partition(): one fused
        // read+write term per bank, summed in bank order — the all-SRAM
        // case reproduces the legacy "bank_access" double bit for bit.
        slice.access_pj = static_cast<double>(a.reads) * model.read_energy() +
                          static_cast<double>(a.writes) * model.write_energy();
        slice.leakage_pj = model.leakage_energy(a.active_cycles, params.cycle_ns);
        slice.refresh_pj = model.refresh_energy(a.active_cycles, params.cycle_ns);
        slice.gated_pj = model.gated_leakage_energy(a.gated_cycles, params.cycle_ns) *
                         gating.gate_leak_scale;
        slice.wakeup_pj = static_cast<double>(a.wakeups) * model.gate_wake_energy();
        access_pj += slice.access_pj;
        leak_pj += slice.leakage_pj;
        refresh_pj += slice.refresh_pj;
        gated_pj += slice.gated_pj;
        wake_pj += slice.wakeup_pj;
        accesses += a.accesses();
        report.total_cycles = std::max(report.total_cycles, a.total_cycles());
        report.banks.push_back(slice);
    }

    report.energy.add("bank_access", access_pj);
    const double select_pj = bank_select_energy(num_banks, params.sram);
    report.energy.add("bank_select", select_pj * static_cast<double>(accesses));
    report.energy.add("leakage", leak_pj);
    if (refresh_pj > 0.0) report.energy.add("refresh", refresh_pj);
    if (gating.enabled) {
        report.energy.add("gated_leakage", gated_pj);
        report.energy.add("wakeup", wake_pj);
    }
    if (params.extra_pj_per_access > 0.0)
        report.energy.add("remap",
                          params.extra_pj_per_access * static_cast<double>(accesses));
    if (params.protection != ProtectionScheme::None)
        report.energy.add("ecc", protection_access_energy(params.protection, 32,
                                                          params.sram) *
                                     static_cast<double>(accesses));
    return report;
}

}  // namespace memopt
