#include "partition/solver.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <vector>

#include "support/assert.hpp"

namespace memopt {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Precomputed per-range bank cost oracle: prefix access sums plus a
/// per-bank-length energy table make cost(i, j) a handful of loads and
/// three multiply-adds — it sits in the innermost O(k n^2) DP loop.
class BankCostOracle {
public:
    /// Per-capacity SRAM energies, indexed by bank length (block count).
    struct Entry {
        double read_pj;
        double write_pj;
        double leak_pj;
    };

    BankCostOracle(const BlockProfile& profile, const PartitionEnergyParams& params)
        : block_size_(profile.block_size()), params_(params) {
        const std::size_t n = profile.num_blocks();
        prefix_reads_.assign(n + 1, 0);
        prefix_writes_.assign(n + 1, 0);
        for (std::size_t b = 0; b < n; ++b) {
            prefix_reads_[b + 1] = prefix_reads_[b] + profile.counts(b).reads;
            prefix_writes_[b + 1] = prefix_writes_[b] + profile.counts(b).writes;
        }
        // Cache energies for every capacity that can occur: powers of two
        // from min_bank_bytes up to the full span...
        struct CapEntry {
            std::uint64_t capacity;
            Entry e;
        };
        std::vector<CapEntry> by_capacity;
        const std::uint64_t max_cap =
            MemoryArchitecture::capacity_for(block_size_, n, params.min_bank_bytes);
        for (std::uint64_t cap = params.min_bank_bytes; cap <= max_cap; cap *= 2) {
            const SramEnergyModel model(cap, 32, params.sram);
            const double leak = params.runtime_cycles > 0
                                    ? model.leakage_energy(params.runtime_cycles, params.cycle_ns)
                                    : 0.0;
            by_capacity.push_back(
                CapEntry{cap, Entry{model.read_energy(), model.write_energy(), leak}});
        }
        // ...then flatten to a by-length table so cost() needs no capacity
        // arithmetic or search at all: len_entries_[L] is the energy entry
        // of a bank spanning L blocks.
        len_entries_.resize(n + 1);
        for (std::size_t len = 1; len <= n; ++len) {
            const std::uint64_t cap =
                MemoryArchitecture::capacity_for(block_size_, len, params.min_bank_bytes);
            const CapEntry* found = nullptr;
            for (const CapEntry& c : by_capacity) {
                if (c.capacity == cap) found = &c;
            }
            MEMOPT_ASSERT_MSG(found != nullptr, "BankCostOracle: uncached capacity");
            len_entries_[len] = found->e;
        }
    }

    /// Energy of one bank covering blocks [i, j), excluding bank-select.
    /// Bounds are the caller's responsibility (0 <= i < j <= num_blocks).
    double cost(std::size_t i, std::size_t j) const {
        const Entry& e = len_entries_[j - i];
        const auto reads = static_cast<double>(prefix_reads_[j] - prefix_reads_[i]);
        const auto writes = static_cast<double>(prefix_writes_[j] - prefix_writes_[i]);
        return reads * e.read_pj + writes * e.write_pj + e.leak_pj;
    }

    std::uint64_t total_accesses() const {
        return prefix_reads_.back() + prefix_writes_.back();
    }

    const std::vector<std::uint64_t>& prefix_reads() const { return prefix_reads_; }
    const std::vector<std::uint64_t>& prefix_writes() const { return prefix_writes_; }
    const std::vector<Entry>& len_entries() const { return len_entries_; }

private:
    std::uint64_t block_size_;
    PartitionEnergyParams params_;
    std::vector<std::uint64_t> prefix_reads_;
    std::vector<std::uint64_t> prefix_writes_;
    std::vector<Entry> len_entries_;
};

PartitionSolution make_solution(const BlockProfile& profile,
                                const PartitionEnergyParams& params,
                                const std::vector<std::size_t>& splits) {
    auto arch = MemoryArchitecture::from_splits(profile.block_size(), profile.num_blocks(),
                                                splits, params.min_bank_bytes);
    auto energy = evaluate_partition(arch, profile, params);
    return PartitionSolution{std::move(arch), std::move(energy)};
}

void check_inputs(const BlockProfile& profile, const PartitionConstraints& constraints) {
    require(constraints.max_banks >= 1, "PartitionConstraints: max_banks must be >= 1");
    require(profile.num_blocks() >= 1, "solve_partition: empty profile");
}

}  // namespace

PartitionSolution solve_partition_optimal(const BlockProfile& profile,
                                          const PartitionConstraints& constraints,
                                          const PartitionEnergyParams& params) {
    check_inputs(profile, constraints);
    const std::size_t n = profile.num_blocks();
    const std::size_t kmax = std::min(constraints.max_banks, n);
    const BankCostOracle oracle(profile, params);
    const auto total_accesses = static_cast<double>(oracle.total_accesses());

    // dp[k][j]: min cost of covering blocks [0, j) with exactly k banks
    // (bank-select excluded; it depends only on the final k and is added at
    // the end). Row k only reads row k-1, so the cost table is two flat
    // rows; only the parent table (the start block of the last bank) is
    // kept in full for the reconstruction.
    std::vector<double> prev_row(n + 1, kInf);
    std::vector<double> cur_row(n + 1, kInf);
    std::vector<std::size_t> parent((kmax + 1) * (n + 1), 0);
    std::vector<double> dp_at_n(kmax + 1, kInf);
    const std::vector<std::uint64_t>& pre_reads = oracle.prefix_reads();
    const std::vector<std::uint64_t>& pre_writes = oracle.prefix_writes();
    const std::vector<BankCostOracle::Entry>& len_entries = oracle.len_entries();
    prev_row[0] = 0.0;
    for (std::size_t k = 1; k <= kmax; ++k) {
        std::size_t* const par = parent.data() + k * (n + 1);
        if (k == 1) {
            // Exactly one bank: the only predecessor is the empty prefix.
            for (std::size_t j = 1; j <= n; ++j) {
                cur_row[j] = prev_row[0] + oracle.cost(0, j);
                par[j] = 0;
            }
        } else {
            // Every prefix [0, i) with i >= k-1 is reachable with k-1
            // banks, so no infinity checks are needed in the hot loop.
            // The cost expression is oracle.cost(i, j) written out with
            // the per-j prefix loads hoisted; the evaluation order is
            // unchanged, so dp values stay bit-identical.
            for (std::size_t j = k; j <= n; ++j) {
                const std::uint64_t reads_j = pre_reads[j];
                const std::uint64_t writes_j = pre_writes[j];
                double best = kInf;
                std::size_t best_i = 0;
                for (std::size_t i = k - 1; i < j; ++i) {
                    const BankCostOracle::Entry& e = len_entries[j - i];
                    const auto reads = static_cast<double>(reads_j - pre_reads[i]);
                    const auto writes = static_cast<double>(writes_j - pre_writes[i]);
                    const double cand =
                        prev_row[i] +
                        (reads * e.read_pj + writes * e.write_pj + e.leak_pj);
                    if (cand < best) {
                        best = cand;
                        best_i = i;
                    }
                }
                cur_row[j] = best;
                par[j] = best_i;
            }
        }
        dp_at_n[k] = cur_row[n];
        std::swap(prev_row, cur_row);
        std::fill(cur_row.begin(), cur_row.end(), kInf);
    }

    // Pick the best bank count including the per-access select overhead.
    double best_total = kInf;
    std::size_t best_k = 1;
    for (std::size_t k = 1; k <= kmax; ++k) {
        if (dp_at_n[k] == kInf) continue;
        const double total =
            dp_at_n[k] + total_accesses * bank_select_energy(k, params.sram);
        if (total < best_total) {
            best_total = total;
            best_k = k;
        }
    }
    MEMOPT_ASSERT(best_total < kInf);

    // Reconstruct split points.
    std::vector<std::size_t> splits;
    std::size_t j = n;
    for (std::size_t k = best_k; k >= 1; --k) {
        const std::size_t i = parent[k * (n + 1) + j];
        if (i != 0) splits.push_back(i);
        j = i;
    }
    MEMOPT_ASSERT(j == 0);
    std::reverse(splits.begin(), splits.end());
    return make_solution(profile, params, splits);
}

PartitionSolution solve_partition_greedy(const BlockProfile& profile,
                                         const PartitionConstraints& constraints,
                                         const PartitionEnergyParams& params) {
    check_inputs(profile, constraints);
    const std::size_t n = profile.num_blocks();
    const BankCostOracle oracle(profile, params);
    const auto total_accesses = static_cast<double>(oracle.total_accesses());

    // Current architecture as bank boundaries [b0=0, b1, ..., bk=n].
    std::vector<std::size_t> bounds = {0, n};
    double current_bank_cost = oracle.cost(0, n);

    while (bounds.size() - 1 < constraints.max_banks) {
        const std::size_t k = bounds.size() - 1;
        const double current_total =
            current_bank_cost + total_accesses * bank_select_energy(k, params.sram);
        const double next_select =
            total_accesses * bank_select_energy(k + 1, params.sram);

        // Find the single most profitable split across all banks.
        double best_total = current_total;
        std::size_t best_bank = 0;
        std::size_t best_pos = 0;
        for (std::size_t b = 0; b + 1 < bounds.size(); ++b) {
            const std::size_t lo = bounds[b];
            const std::size_t hi = bounds[b + 1];
            const double old_cost = oracle.cost(lo, hi);
            for (std::size_t pos = lo + 1; pos < hi; ++pos) {
                const double new_bank_cost = current_bank_cost - old_cost +
                                             oracle.cost(lo, pos) + oracle.cost(pos, hi);
                const double total = new_bank_cost + next_select;
                if (total < best_total) {
                    best_total = total;
                    best_bank = b;
                    best_pos = pos;
                }
            }
        }
        if (best_pos == 0) break;  // no profitable split
        const std::size_t lo = bounds[best_bank];
        const std::size_t hi = bounds[best_bank + 1];
        current_bank_cost += oracle.cost(lo, best_pos) + oracle.cost(best_pos, hi) -
                             oracle.cost(lo, hi);
        bounds.insert(bounds.begin() + static_cast<std::ptrdiff_t>(best_bank) + 1, best_pos);
    }

    const std::vector<std::size_t> splits(bounds.begin() + 1, bounds.end() - 1);
    return make_solution(profile, params, splits);
}

PartitionSolution solve_partition_brute(const BlockProfile& profile,
                                        const PartitionConstraints& constraints,
                                        const PartitionEnergyParams& params) {
    check_inputs(profile, constraints);
    const std::size_t n = profile.num_blocks();
    require(n <= 20, "solve_partition_brute: too many blocks (tests only)");

    double best_total = kInf;
    std::vector<std::size_t> best_splits;
    const std::uint64_t combinations = 1ULL << (n - 1);
    for (std::uint64_t mask = 0; mask < combinations; ++mask) {
        const auto bank_count = static_cast<std::size_t>(std::popcount(mask)) + 1;
        if (bank_count > constraints.max_banks) continue;
        std::vector<std::size_t> splits;
        for (std::size_t bit = 0; bit + 1 < n; ++bit) {
            if (mask & (1ULL << bit)) splits.push_back(bit + 1);
        }
        const auto arch = MemoryArchitecture::from_splits(profile.block_size(), n, splits,
                                                          params.min_bank_bytes);
        const double total = evaluate_partition(arch, profile, params).total();
        if (total < best_total) {
            best_total = total;
            best_splits = std::move(splits);
        }
    }
    return make_solution(profile, params, best_splits);
}

PartitionSolution solve_partition_pooled(const BlockProfile& profile,
                                         const PartitionConstraints& constraints,
                                         const PartitionEnergyParams& params,
                                         std::size_t pool_banks, bool use_greedy) {
    require(pool_banks >= 1, "solve_partition_pooled: empty bank pool");
    PartitionConstraints clamped = constraints;
    clamped.max_banks = std::min(constraints.max_banks, pool_banks);
    return use_greedy ? solve_partition_greedy(profile, clamped, params)
                      : solve_partition_optimal(profile, clamped, params);
}

}  // namespace memopt
