#include "partition/evaluate.hpp"

#include "support/assert.hpp"

namespace memopt {

EnergyBreakdown evaluate_partition(const MemoryArchitecture& arch, const BlockProfile& profile,
                                   const PartitionEnergyParams& params) {
    require(arch.num_blocks() == profile.num_blocks(),
            "evaluate_partition: architecture does not cover the profile");
    require(arch.block_size() == profile.block_size(),
            "evaluate_partition: block size mismatch");

    EnergyBreakdown breakdown;
    double access_pj = 0.0;
    double leak_pj = 0.0;
    for (const Bank& bank : arch.banks()) {
        const SramEnergyModel model(bank.size_bytes, 32, params.sram, params.protection);
        std::uint64_t reads = 0;
        std::uint64_t writes = 0;
        for (std::size_t b = bank.first_block; b < bank.end_block(); ++b) {
            reads += profile.counts(b).reads;
            writes += profile.counts(b).writes;
        }
        access_pj += static_cast<double>(reads) * model.read_energy() +
                     static_cast<double>(writes) * model.write_energy();
        if (params.runtime_cycles > 0)
            leak_pj += model.leakage_energy(params.runtime_cycles, params.cycle_ns);
    }
    breakdown.add("bank_access", access_pj);

    const double select_pj = bank_select_energy(arch.num_banks(), params.sram);
    breakdown.add("bank_select",
                  select_pj * static_cast<double>(profile.total_accesses()));
    if (params.runtime_cycles > 0) breakdown.add("leakage", leak_pj);
    if (params.extra_pj_per_access > 0.0)
        breakdown.add("remap",
                      params.extra_pj_per_access * static_cast<double>(profile.total_accesses()));
    if (params.protection != ProtectionScheme::None)
        breakdown.add("ecc", protection_access_energy(params.protection, 32, params.sram) *
                                 static_cast<double>(profile.total_accesses()));
    return breakdown;
}

EnergyBreakdown evaluate_monolithic(const BlockProfile& profile,
                                    const PartitionEnergyParams& params) {
    const auto arch = MemoryArchitecture::monolithic(profile.block_size(), profile.num_blocks(),
                                                     params.min_bank_bytes);
    return evaluate_partition(arch, profile, params);
}

EnergyBreakdown evaluate_partition_tech(const MemoryArchitecture& arch,
                                        const std::vector<MemTechnology>& techs,
                                        const BlockProfile& profile,
                                        const PartitionEnergyParams& params) {
    require(arch.num_blocks() == profile.num_blocks(),
            "evaluate_partition_tech: architecture does not cover the profile");
    require(arch.block_size() == profile.block_size(),
            "evaluate_partition_tech: block size mismatch");
    require(techs.size() == arch.num_banks(),
            "evaluate_partition_tech: techs do not match architecture");

    EnergyBreakdown breakdown;
    double access_pj = 0.0;
    double leak_pj = 0.0;
    double refresh_pj = 0.0;
    for (std::size_t b = 0; b < arch.num_banks(); ++b) {
        const Bank& bank = arch.banks()[b];
        const TechEnergyModel model(techs[b], bank.size_bytes, 32, params.sram,
                                    params.protection);
        std::uint64_t reads = 0;
        std::uint64_t writes = 0;
        for (std::size_t blk = bank.first_block; blk < bank.end_block(); ++blk) {
            reads += profile.counts(blk).reads;
            writes += profile.counts(blk).writes;
        }
        access_pj += static_cast<double>(reads) * model.read_energy() +
                     static_cast<double>(writes) * model.write_energy();
        if (params.runtime_cycles > 0) {
            leak_pj += model.leakage_energy(params.runtime_cycles, params.cycle_ns);
            refresh_pj += model.refresh_energy(params.runtime_cycles, params.cycle_ns);
        }
    }
    breakdown.add("bank_access", access_pj);

    const double select_pj = bank_select_energy(arch.num_banks(), params.sram);
    breakdown.add("bank_select",
                  select_pj * static_cast<double>(profile.total_accesses()));
    if (params.runtime_cycles > 0) breakdown.add("leakage", leak_pj);
    if (refresh_pj > 0.0) breakdown.add("refresh", refresh_pj);
    if (params.extra_pj_per_access > 0.0)
        breakdown.add("remap",
                      params.extra_pj_per_access * static_cast<double>(profile.total_accesses()));
    if (params.protection != ProtectionScheme::None)
        breakdown.add("ecc", protection_access_energy(params.protection, 32, params.sram) *
                                 static_cast<double>(profile.total_accesses()));
    return breakdown;
}

}  // namespace memopt
