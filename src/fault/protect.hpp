// Word-level error protection: parity and Hamming SECDED codewords.
//
// The injectable storage unit of the fault subsystem is a 64-bit word plus
// its check bits. secded_* implement the classic (72,64) extended Hamming
// code: data bits occupy the non-power-of-two positions of a 1-based
// codeword, each check bit p_i covers the positions with bit i set, and an
// overall parity bit upgrades single-error correction to double-error
// detection. ProtectedBuffer wraps an arbitrary byte buffer (a raw cache
// line or a compressed blob) as a sequence of protected 64-bit words and
// exposes the *stored* bit space — data and check bits alike — to the
// fault injector, so campaigns flip exactly the bits real hardware stores.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "energy/sram_model.hpp"

namespace memopt {

/// Check byte (8 bits: 7 Hamming + overall parity) for a 64-bit data word.
std::uint8_t secded_encode(std::uint64_t data);

/// Outcome of checking one protected word.
enum class CheckOutcome {
    Clean,           ///< no error observed
    Corrected,       ///< single-bit error located and repaired
    Detected,        ///< uncorrectable (double-bit) error flagged
};

/// Check `data` against `check`; on a single-bit error both are repaired in
/// place. Returns the outcome (>=3-bit flips may alias to any outcome, as
/// in real SECDED hardware).
CheckOutcome secded_check(std::uint64_t& data, std::uint8_t& check);

/// Even parity bit of a 64-bit word.
std::uint8_t parity_encode(std::uint64_t data);

/// Bytes a `data_bytes`-long buffer occupies in storage under `scheme`
/// (check bits of every started 64-bit word, rounded up to whole bytes).
std::size_t protected_stored_bytes(std::size_t data_bytes, ProtectionScheme scheme);

/// A byte buffer stored as protected 64-bit words. The buffer is padded
/// with zero bytes to a whole number of words; the padding is genuinely
/// stored (and therefore injectable), exactly as a hardware row would be.
class ProtectedBuffer {
public:
    ProtectedBuffer(std::span<const std::uint8_t> bytes, ProtectionScheme scheme);

    /// Stored bits: data (padded) plus one check unit per word.
    std::size_t total_bits() const;

    /// Flip stored bit `index` (0-based over total_bits(): all data bits of
    /// word 0, its check bits, then word 1, ...).
    void flip_bit(std::size_t index);

    /// Run the checker over every word: SECDED corrects/repairs single-bit
    /// words and flags double-bit words; parity flags odd-weight words;
    /// None observes nothing.
    struct ScrubResult {
        std::uint64_t corrected_words = 0;  ///< words repaired in place
        std::uint64_t detected_words = 0;   ///< words flagged uncorrectable
    };
    ScrubResult scrub();

    /// Current data bytes (truncated back to the original length).
    std::vector<std::uint8_t> bytes() const;

    ProtectionScheme scheme() const { return scheme_; }

private:
    ProtectionScheme scheme_;
    std::size_t data_bytes_;
    unsigned check_bits_per_word_;
    std::vector<std::uint64_t> words_;
    std::vector<std::uint8_t> checks_;  ///< one check unit per word (low bits used)
};

}  // namespace memopt
