#include "fault/campaign.hpp"

#include <algorithm>
#include <cstring>
#include <optional>

#include "fault/inject.hpp"
#include "support/assert.hpp"
#include "support/durable/cancel.hpp"
#include "support/durable/checkpoint.hpp"
#include "support/durable/io_faults.hpp"
#include "support/json.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"

namespace memopt {

double FaultCampaignResult::residual_corruption_rate() const {
    return lines_evaluated == 0
               ? 0.0
               : static_cast<double>(silent) / static_cast<double>(lines_evaluated);
}

double FaultCampaignResult::degraded_rate() const {
    return lines_evaluated == 0
               ? 0.0
               : static_cast<double>(degraded) / static_cast<double>(lines_evaluated);
}

double FaultCampaignResult::energy_overhead() const {
    const double base = energy.component("sram_access");
    return base <= 0.0
               ? 0.0
               : (energy.component("protection") + energy.component("refetch")) / base;
}

void to_json(JsonWriter& w, const FaultCampaignResult& result) {
    w.begin_object();
    w.member("lines_evaluated", result.lines_evaluated);
    w.member("faults_injected", result.faults_injected);
    w.member("corrected", result.corrected);
    w.member("detected", result.detected);
    w.member("codec_rejects", result.codec_rejects);
    w.member("degraded", result.degraded);
    w.member("silent", result.silent);
    w.member("clean", result.clean);
    w.member("residual_corruption_rate", result.residual_corruption_rate());
    w.member("degraded_rate", result.degraded_rate());
    w.member("energy_overhead", result.energy_overhead());
    w.key("energy");
    result.energy.to_json(w);
    w.end_object();
}

std::vector<std::vector<std::uint8_t>> line_corpus(std::span<const std::uint8_t> image,
                                                   unsigned line_bytes) {
    require(!image.empty(), "line_corpus: empty image");
    require(line_bytes > 0 && line_bytes % 4 == 0,
            "line_corpus: line size must be a positive multiple of 4");
    const std::size_t num_lines = (image.size() + line_bytes - 1) / line_bytes;
    std::vector<std::vector<std::uint8_t>> corpus(num_lines);
    for (std::size_t i = 0; i < num_lines; ++i) {
        corpus[i].assign(line_bytes, 0);
        const std::size_t begin = i * line_bytes;
        const std::size_t count = std::min<std::size_t>(line_bytes, image.size() - begin);
        std::copy_n(image.begin() + static_cast<std::ptrdiff_t>(begin), count,
                    corpus[i].begin());
    }
    return corpus;
}

std::vector<double> sleepy_line_probabilities(const MemoryArchitecture& arch,
                                              const AddressMap& map, const SleepReport& sleep,
                                              double base_rate, double drowsy_factor,
                                              std::uint64_t image_base, std::size_t num_lines,
                                              unsigned line_bytes, std::uint64_t total_cycles) {
    require(sleep.banks.size() == arch.num_banks(),
            "sleepy_line_probabilities: sleep report does not match architecture");
    const std::uint64_t mapped_span =
        map.block_size() * static_cast<std::uint64_t>(map.num_blocks());
    std::vector<double> probs(num_lines);
    for (std::size_t i = 0; i < num_lines; ++i) {
        const std::uint64_t addr = image_base + static_cast<std::uint64_t>(i) * line_bytes;
        std::uint64_t asleep = 0;
        if (addr < mapped_span) {
            const std::uint64_t phys = map.map_addr(addr);
            const std::size_t block = static_cast<std::size_t>(phys / arch.block_size());
            if (block < arch.num_blocks())
                asleep = sleep.banks[arch.bank_of_block(block)].asleep_cycles;
        }
        probs[i] = sleepy_flip_probability(base_rate, asleep, total_cycles, drowsy_factor);
    }
    return probs;
}

namespace {

/// Shared precondition checks of both campaign drivers.
void validate_campaign(const FaultCampaignConfig& config,
                       std::span<const std::vector<std::uint8_t>> corpus,
                       std::span<const double> line_flip_prob) {
    require(!corpus.empty(), "run_campaign: empty corpus");
    require(config.trials > 0, "run_campaign: need at least one trial");
    require(config.line_bytes > 0 && config.line_bytes % 4 == 0,
            "run_campaign: line size must be a positive multiple of 4");
    require(line_flip_prob.empty() || line_flip_prob.size() == corpus.size(),
            "run_campaign: per-line probabilities must match the corpus");
    for (const std::vector<std::uint8_t>& line : corpus)
        require(line.size() == config.line_bytes, "run_campaign: corpus line size mismatch");
}

/// The stored representation of every line is trial-invariant: encode once,
/// outside the Monte-Carlo loop.
std::vector<std::vector<std::uint8_t>> encode_stored(
    const FaultCampaignConfig& config, std::span<const std::vector<std::uint8_t>> corpus) {
    std::vector<std::vector<std::uint8_t>> stored(corpus.size());
    for (std::size_t i = 0; i < corpus.size(); ++i)
        stored[i] = config.codec != nullptr ? config.codec->encode(corpus[i]).bytes()
                                            : corpus[i];
    return stored;
}

/// One Monte-Carlo trial — a pure function of (config, corpus, trial), the
/// invariant both drivers and the checkpoint format rely on.
FaultTrialStats run_one_trial(const FaultCampaignConfig& config,
                              std::span<const std::vector<std::uint8_t>> corpus,
                              std::span<const std::vector<std::uint8_t>> stored,
                              std::span<const double> line_flip_prob,
                              const FaultInjector& injector, std::size_t trial) {
    CancellationToken::global().check();
    Rng rng = injector.stream_rng(trial);
    FaultTrialStats s;
    for (std::size_t i = 0; i < corpus.size(); ++i) {
        const double p = line_flip_prob.empty() ? config.bit_flip_rate : line_flip_prob[i];
        ProtectedBuffer buffer(stored[i], config.protection);
        s.injected += FaultInjector::flip_bits(buffer, p, rng);
        const ProtectedBuffer::ScrubResult scrub = buffer.scrub();
        s.corrected += scrub.corrected_words;
        s.detected += scrub.detected_words;
        bool degraded = scrub.detected_words > 0;
        if (!degraded) {
            const std::vector<std::uint8_t> bytes = buffer.bytes();
            if (config.codec != nullptr) {
                try {
                    const std::vector<std::uint8_t> decoded =
                        config.codec->decode(bytes, config.line_bytes);
                    if (decoded == corpus[i]) ++s.clean;
                    else ++s.silent;
                } catch (const Error&) {
                    // Codec-reported corruption: degrade, don't crash.
                    ++s.codec_rejects;
                    degraded = true;
                }
            } else {
                if (bytes == corpus[i]) ++s.clean;
                else ++s.silent;
            }
        }
        if (degraded) ++s.degraded;
    }
    return s;
}

/// Fold per-trial tallies (in trial order) into the campaign result and
/// derive the energy breakdown from the integer counters. Both drivers end
/// here with the identical trial sequence, which is what makes a resumed
/// run bit-identical to an uninterrupted one.
FaultCampaignResult reduce_trials(const FaultCampaignConfig& config, std::size_t corpus_size,
                                  std::span<const std::vector<std::uint8_t>> stored,
                                  std::span<const FaultTrialStats> trials) {
    FaultCampaignResult result;
    for (const FaultTrialStats& s : trials) {
        result.faults_injected += s.injected;
        result.corrected += s.corrected;
        result.detected += s.detected;
        result.codec_rejects += s.codec_rejects;
        result.degraded += s.degraded;
        result.silent += s.silent;
        result.clean += s.clean;
    }
    result.lines_evaluated =
        static_cast<std::uint64_t>(trials.size()) * static_cast<std::uint64_t>(corpus_size);

    // Energy, from the integer tallies only — reduction order cannot
    // perturb it. Access cost is charged per stored 64-bit word; the
    // protection component is the delta of the protected array plus the
    // encode/check logic; degraded lines pay a full-line DRAM re-fetch.
    std::uint64_t stored_words = 0;
    for (const std::vector<std::uint8_t>& blob : stored) stored_words += (blob.size() + 7) / 8;
    const double accesses_per_trial = static_cast<double>(stored_words);
    const double total_accesses = accesses_per_trial * static_cast<double>(trials.size());
    const SramEnergyModel base_model(config.sram_bank_bytes, 64, config.sram);
    const SramEnergyModel prot_model(config.sram_bank_bytes, 64, config.sram,
                                     config.protection);
    result.energy.add("sram_access", base_model.read_energy() * total_accesses);
    if (config.protection != ProtectionScheme::None) {
        const double per_word =
            (prot_model.read_energy() - base_model.read_energy()) +
            protection_access_energy(config.protection, 64, config.sram);
        result.energy.add("protection", per_word * total_accesses);
    }
    const DramEnergyModel dram(config.dram);
    result.energy.add("refetch", dram.burst_energy(config.line_bytes) *
                                     static_cast<double>(result.degraded));

    // Observability tallies (never fed back into results).
    MetricsRegistry& metrics = MetricsRegistry::instance();
    metrics.counter("fault.injected").add(result.faults_injected);
    metrics.counter("fault.corrected").add(result.corrected);
    metrics.counter("fault.uncorrected").add(result.detected);
    metrics.counter("fault.degraded").add(result.degraded);
    metrics.counter("fault.silent").add(result.silent);
    return result;
}

}  // namespace

FaultCampaignResult run_campaign(const FaultCampaignConfig& config,
                                 std::span<const std::vector<std::uint8_t>> corpus,
                                 std::span<const double> line_flip_prob) {
    validate_campaign(config, corpus, line_flip_prob);
    const std::vector<std::vector<std::uint8_t>> stored = encode_stored(config, corpus);
    const FaultInjector injector(config.seed);
    std::vector<std::size_t> trial_ids(config.trials);
    for (std::size_t t = 0; t < config.trials; ++t) trial_ids[t] = t;

    const std::vector<FaultTrialStats> trials = parallel_map(
        trial_ids,
        [&](std::size_t trial) {
            return run_one_trial(config, corpus, stored, line_flip_prob, injector, trial);
        },
        config.jobs);
    return reduce_trials(config, corpus.size(), stored, trials);
}

namespace {

void store_u64_at(std::string& out, std::size_t at, std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
        out[at + static_cast<std::size_t>(i)] = static_cast<char>(v >> (8 * i));
}

std::uint64_t load_u64_at(std::string_view in, std::size_t at) {
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | static_cast<std::uint8_t>(in[at + static_cast<std::size_t>(i)]);
    return v;
}

/// Incremental FNV-1a over heterogenous fields (fixed visit order).
struct Hasher {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    void bytes(const void* data, std::size_t n) {
        const auto* p = static_cast<const std::uint8_t*>(data);
        for (std::size_t i = 0; i < n; ++i) {
            h ^= p[i];
            h *= 0x100000001b3ULL;
        }
    }
    void u64(std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= static_cast<std::uint8_t>(v >> (8 * i));
            h *= 0x100000001b3ULL;
        }
    }
    void f64(double v) {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }
};

}  // namespace

std::string encode_trial_record(const FaultTrialStats& stats) {
    std::string out(56, '\0');
    store_u64_at(out, 0, stats.injected);
    store_u64_at(out, 8, stats.corrected);
    store_u64_at(out, 16, stats.detected);
    store_u64_at(out, 24, stats.codec_rejects);
    store_u64_at(out, 32, stats.degraded);
    store_u64_at(out, 40, stats.silent);
    store_u64_at(out, 48, stats.clean);
    return out;
}

FaultTrialStats decode_trial_record(std::string_view record) {
    require(record.size() == 56, "campaign checkpoint: bad trial record size");
    FaultTrialStats s;
    s.injected = load_u64_at(record, 0);
    s.corrected = load_u64_at(record, 8);
    s.detected = load_u64_at(record, 16);
    s.codec_rejects = load_u64_at(record, 24);
    s.degraded = load_u64_at(record, 32);
    s.silent = load_u64_at(record, 40);
    s.clean = load_u64_at(record, 48);
    return s;
}

std::uint64_t campaign_config_hash(const FaultCampaignConfig& config,
                                   std::span<const std::vector<std::uint8_t>> corpus,
                                   std::span<const double> line_flip_prob) {
    Hasher hash;
    hash.u64(config.seed);
    hash.u64(config.trials);
    hash.f64(config.bit_flip_rate);
    hash.u64(static_cast<std::uint64_t>(config.protection));
    hash.u64(config.codec_tag.size());
    hash.bytes(config.codec_tag.data(), config.codec_tag.size());
    hash.u64(config.line_bytes);
    hash.u64(corpus.size());
    for (const std::vector<std::uint8_t>& line : corpus) {
        hash.u64(line.size());
        hash.bytes(line.data(), line.size());
    }
    hash.u64(line_flip_prob.size());
    for (const double p : line_flip_prob) hash.f64(p);
    return hash.h;
}

CampaignCheckpointOutcome run_campaign_checkpointed(
    const FaultCampaignConfig& config, std::span<const std::vector<std::uint8_t>> corpus,
    std::span<const double> line_flip_prob, const CampaignCheckpointOptions& ckpt) {
    validate_campaign(config, corpus, line_flip_prob);
    const std::vector<std::vector<std::uint8_t>> stored = encode_stored(config, corpus);
    const FaultInjector injector(config.seed);
    const std::uint64_t config_hash = campaign_config_hash(config, corpus, line_flip_prob);

    std::vector<FaultTrialStats> done;
    if (ckpt.resume && !ckpt.path.empty()) {
        if (const std::optional<Checkpoint> loaded =
                load_checkpoint_for_resume(ckpt.path, kCkptEngineFault, config_hash)) {
            done.reserve(loaded->records.size());
            for (const std::string& record : loaded->records)
                done.push_back(decode_trial_record(record));
            // The config hash pins `trials`, so a valid checkpoint can
            // never hold more records than the campaign has trials.
            require(done.size() <= config.trials,
                    "campaign checkpoint: more records than trials");
        }
    }

    const auto snapshot = [&] {
        if (ckpt.path.empty()) return;
        Checkpoint snap;
        snap.engine = kCkptEngineFault;
        snap.config_hash = config_hash;
        snap.records.reserve(done.size());
        for (const FaultTrialStats& s : done) snap.records.push_back(encode_trial_record(s));
        save_checkpoint(ckpt.path, snap);
    };

    CampaignCheckpointOutcome out;
    out.trials_total = config.trials;
    const std::size_t every = ckpt.every == 0 ? 1 : ckpt.every;
    std::size_t new_done = 0;
    CancellationToken& token = CancellationToken::global();
    while (done.size() < config.trials) {
        if (token.triggered()) {
            out.stop_reason = token.reason();
            break;
        }
        if (ckpt.max_trials_this_run != 0 && new_done >= ckpt.max_trials_this_run) {
            out.stop_reason = "trial budget for this run exhausted";
            break;
        }
        const std::size_t begin = done.size();
        std::size_t batch = std::min(every, config.trials - begin);
        if (ckpt.max_trials_this_run != 0)
            batch = std::min(batch, ckpt.max_trials_this_run - new_done);
        std::vector<std::size_t> trial_ids(batch);
        for (std::size_t t = 0; t < batch; ++t) trial_ids[t] = begin + t;
        std::vector<FaultTrialStats> stats;
        try {
            stats = parallel_map(
                trial_ids,
                [&](std::size_t trial) {
                    return run_one_trial(config, corpus, stored, line_flip_prob, injector,
                                         trial);
                },
                config.jobs);
        } catch (const CancelledError&) {
            // Mid-batch trip: the batch is discarded (trials are cheap to
            // recompute) and the completed prefix is what gets snapshotted.
            out.stop_reason = token.reason();
            break;
        }
        done.insert(done.end(), stats.begin(), stats.end());
        new_done += batch;
        snapshot();
    }

    out.trials_done = done.size();
    if (done.size() == config.trials) {
        out.completed = true;
        out.result = reduce_trials(config, corpus.size(), stored, done);
    } else {
        if (out.stop_reason.empty()) out.stop_reason = "stopped";
        snapshot();
    }
    return out;
}

}  // namespace memopt
