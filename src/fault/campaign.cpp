#include "fault/campaign.hpp"

#include <algorithm>

#include "fault/inject.hpp"
#include "support/assert.hpp"
#include "support/json.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"

namespace memopt {

double FaultCampaignResult::residual_corruption_rate() const {
    return lines_evaluated == 0
               ? 0.0
               : static_cast<double>(silent) / static_cast<double>(lines_evaluated);
}

double FaultCampaignResult::degraded_rate() const {
    return lines_evaluated == 0
               ? 0.0
               : static_cast<double>(degraded) / static_cast<double>(lines_evaluated);
}

double FaultCampaignResult::energy_overhead() const {
    const double base = energy.component("sram_access");
    return base <= 0.0
               ? 0.0
               : (energy.component("protection") + energy.component("refetch")) / base;
}

void to_json(JsonWriter& w, const FaultCampaignResult& result) {
    w.begin_object();
    w.member("lines_evaluated", result.lines_evaluated);
    w.member("faults_injected", result.faults_injected);
    w.member("corrected", result.corrected);
    w.member("detected", result.detected);
    w.member("codec_rejects", result.codec_rejects);
    w.member("degraded", result.degraded);
    w.member("silent", result.silent);
    w.member("clean", result.clean);
    w.member("residual_corruption_rate", result.residual_corruption_rate());
    w.member("degraded_rate", result.degraded_rate());
    w.member("energy_overhead", result.energy_overhead());
    w.key("energy");
    result.energy.to_json(w);
    w.end_object();
}

std::vector<std::vector<std::uint8_t>> line_corpus(std::span<const std::uint8_t> image,
                                                   unsigned line_bytes) {
    require(!image.empty(), "line_corpus: empty image");
    require(line_bytes > 0 && line_bytes % 4 == 0,
            "line_corpus: line size must be a positive multiple of 4");
    const std::size_t num_lines = (image.size() + line_bytes - 1) / line_bytes;
    std::vector<std::vector<std::uint8_t>> corpus(num_lines);
    for (std::size_t i = 0; i < num_lines; ++i) {
        corpus[i].assign(line_bytes, 0);
        const std::size_t begin = i * line_bytes;
        const std::size_t count = std::min<std::size_t>(line_bytes, image.size() - begin);
        std::copy_n(image.begin() + static_cast<std::ptrdiff_t>(begin), count,
                    corpus[i].begin());
    }
    return corpus;
}

std::vector<double> sleepy_line_probabilities(const MemoryArchitecture& arch,
                                              const AddressMap& map, const SleepReport& sleep,
                                              double base_rate, double drowsy_factor,
                                              std::uint64_t image_base, std::size_t num_lines,
                                              unsigned line_bytes, std::uint64_t total_cycles) {
    require(sleep.banks.size() == arch.num_banks(),
            "sleepy_line_probabilities: sleep report does not match architecture");
    const std::uint64_t mapped_span =
        map.block_size() * static_cast<std::uint64_t>(map.num_blocks());
    std::vector<double> probs(num_lines);
    for (std::size_t i = 0; i < num_lines; ++i) {
        const std::uint64_t addr = image_base + static_cast<std::uint64_t>(i) * line_bytes;
        std::uint64_t asleep = 0;
        if (addr < mapped_span) {
            const std::uint64_t phys = map.map_addr(addr);
            const std::size_t block = static_cast<std::size_t>(phys / arch.block_size());
            if (block < arch.num_blocks())
                asleep = sleep.banks[arch.bank_of_block(block)].asleep_cycles;
        }
        probs[i] = sleepy_flip_probability(base_rate, asleep, total_cycles, drowsy_factor);
    }
    return probs;
}

namespace {

/// Deterministic per-trial tallies, reduced in trial order.
struct TrialStats {
    std::uint64_t injected = 0;
    std::uint64_t corrected = 0;
    std::uint64_t detected = 0;
    std::uint64_t codec_rejects = 0;
    std::uint64_t degraded = 0;
    std::uint64_t silent = 0;
    std::uint64_t clean = 0;
};

}  // namespace

FaultCampaignResult run_campaign(const FaultCampaignConfig& config,
                                 std::span<const std::vector<std::uint8_t>> corpus,
                                 std::span<const double> line_flip_prob) {
    require(!corpus.empty(), "run_campaign: empty corpus");
    require(config.trials > 0, "run_campaign: need at least one trial");
    require(config.line_bytes > 0 && config.line_bytes % 4 == 0,
            "run_campaign: line size must be a positive multiple of 4");
    require(line_flip_prob.empty() || line_flip_prob.size() == corpus.size(),
            "run_campaign: per-line probabilities must match the corpus");
    for (const std::vector<std::uint8_t>& line : corpus)
        require(line.size() == config.line_bytes, "run_campaign: corpus line size mismatch");

    // The stored representation of every line is trial-invariant: encode
    // once, outside the Monte-Carlo loop.
    std::vector<std::vector<std::uint8_t>> stored(corpus.size());
    for (std::size_t i = 0; i < corpus.size(); ++i)
        stored[i] = config.codec != nullptr ? config.codec->encode(corpus[i]).bytes()
                                            : corpus[i];

    const FaultInjector injector(config.seed);
    std::vector<std::size_t> trial_ids(config.trials);
    for (std::size_t t = 0; t < config.trials; ++t) trial_ids[t] = t;

    const std::vector<TrialStats> trials = parallel_map(
        trial_ids,
        [&](std::size_t trial) {
            Rng rng = injector.stream_rng(trial);
            TrialStats s;
            for (std::size_t i = 0; i < corpus.size(); ++i) {
                const double p =
                    line_flip_prob.empty() ? config.bit_flip_rate : line_flip_prob[i];
                ProtectedBuffer buffer(stored[i], config.protection);
                s.injected += FaultInjector::flip_bits(buffer, p, rng);
                const ProtectedBuffer::ScrubResult scrub = buffer.scrub();
                s.corrected += scrub.corrected_words;
                s.detected += scrub.detected_words;
                bool degraded = scrub.detected_words > 0;
                if (!degraded) {
                    const std::vector<std::uint8_t> bytes = buffer.bytes();
                    if (config.codec != nullptr) {
                        try {
                            const std::vector<std::uint8_t> decoded =
                                config.codec->decode(bytes, config.line_bytes);
                            if (decoded == corpus[i]) ++s.clean;
                            else ++s.silent;
                        } catch (const Error&) {
                            // Codec-reported corruption: degrade, don't crash.
                            ++s.codec_rejects;
                            degraded = true;
                        }
                    } else {
                        if (bytes == corpus[i]) ++s.clean;
                        else ++s.silent;
                    }
                }
                if (degraded) ++s.degraded;
            }
            return s;
        },
        config.jobs);

    FaultCampaignResult result;
    for (const TrialStats& s : trials) {
        result.faults_injected += s.injected;
        result.corrected += s.corrected;
        result.detected += s.detected;
        result.codec_rejects += s.codec_rejects;
        result.degraded += s.degraded;
        result.silent += s.silent;
        result.clean += s.clean;
    }
    result.lines_evaluated =
        static_cast<std::uint64_t>(config.trials) * static_cast<std::uint64_t>(corpus.size());

    // Energy, from the integer tallies only — reduction order cannot
    // perturb it. Access cost is charged per stored 64-bit word; the
    // protection component is the delta of the protected array plus the
    // encode/check logic; degraded lines pay a full-line DRAM re-fetch.
    std::uint64_t stored_words = 0;
    for (const std::vector<std::uint8_t>& blob : stored) stored_words += (blob.size() + 7) / 8;
    const double accesses_per_trial = static_cast<double>(stored_words);
    const double total_accesses = accesses_per_trial * static_cast<double>(config.trials);
    const SramEnergyModel base_model(config.sram_bank_bytes, 64, config.sram);
    const SramEnergyModel prot_model(config.sram_bank_bytes, 64, config.sram,
                                     config.protection);
    result.energy.add("sram_access", base_model.read_energy() * total_accesses);
    if (config.protection != ProtectionScheme::None) {
        const double per_word =
            (prot_model.read_energy() - base_model.read_energy()) +
            protection_access_energy(config.protection, 64, config.sram);
        result.energy.add("protection", per_word * total_accesses);
    }
    const DramEnergyModel dram(config.dram);
    result.energy.add("refetch", dram.burst_energy(config.line_bytes) *
                                     static_cast<double>(result.degraded));

    // Observability tallies (never fed back into results).
    MetricsRegistry& metrics = MetricsRegistry::instance();
    metrics.counter("fault.injected").add(result.faults_injected);
    metrics.counter("fault.corrected").add(result.corrected);
    metrics.counter("fault.uncorrected").add(result.detected);
    metrics.counter("fault.degraded").add(result.degraded);
    metrics.counter("fault.silent").add(result.silent);
    return result;
}

}  // namespace memopt
