#include "fault/inject.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace memopt {

namespace {

/// SplitMix64 finalizer — decorrelates (seed, stream) pairs so that
/// neighboring stream ids produce unrelated generators.
std::uint64_t mix64(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

}  // namespace

Rng FaultInjector::stream_rng(std::uint64_t stream) const {
    return Rng(mix64(seed_ ^ mix64(stream)));
}

std::size_t FaultInjector::flip_bits(std::span<std::uint8_t> bytes, double p, Rng& rng) {
    std::size_t flips = 0;
    for (std::uint8_t& byte : bytes) {
        for (unsigned bit = 0; bit < 8; ++bit) {
            if (rng.next_bool(p)) {
                byte = static_cast<std::uint8_t>(byte ^ (1u << bit));
                ++flips;
            }
        }
    }
    return flips;
}

std::size_t FaultInjector::flip_bits(std::string& bytes, double p, Rng& rng) {
    return flip_bits(std::span<std::uint8_t>(reinterpret_cast<std::uint8_t*>(bytes.data()),
                                             bytes.size()),
                     p, rng);
}

std::size_t FaultInjector::flip_bits(ProtectedBuffer& buffer, double p, Rng& rng) {
    std::size_t flips = 0;
    const std::size_t bits = buffer.total_bits();
    for (std::size_t i = 0; i < bits; ++i) {
        if (rng.next_bool(p)) {
            buffer.flip_bit(i);
            ++flips;
        }
    }
    return flips;
}

void FaultInjector::flip_exact(ProtectedBuffer& buffer, std::size_t n, Rng& rng) {
    const std::size_t bits = buffer.total_bits();
    require(n <= bits, "FaultInjector::flip_exact: more flips than stored bits");
    // Partial Fisher-Yates over bit indices: the first n slots end up a
    // uniform n-subset.
    std::vector<std::size_t> indices(bits);
    for (std::size_t i = 0; i < bits; ++i) indices[i] = i;
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t j = i + static_cast<std::size_t>(rng.next_below(bits - i));
        std::swap(indices[i], indices[j]);
        buffer.flip_bit(indices[i]);
    }
}

double sleepy_flip_probability(double base_rate, std::uint64_t asleep_cycles,
                               std::uint64_t total_cycles, double drowsy_factor) {
    require(base_rate >= 0.0, "sleepy_flip_probability: negative base rate");
    require(drowsy_factor >= 0.0, "sleepy_flip_probability: negative drowsy factor");
    const double asleep_fraction =
        total_cycles == 0 ? 0.0
                          : static_cast<double>(std::min(asleep_cycles, total_cycles)) /
                                static_cast<double>(total_cycles);
    return std::clamp(base_rate * (1.0 + drowsy_factor * asleep_fraction), 0.0, 0.5);
}

}  // namespace memopt
