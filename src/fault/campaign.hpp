// Monte-Carlo fault-injection campaigns.
//
// A campaign replays many independent fault trials over a corpus of memory
// lines (a kernel's data image, optionally stored compressed), applies the
// configured protection scheme, and tallies what reaches the consumer:
// corrected, detected-and-degraded (modeled re-fetch), or silent
// corruption. Trials run on the shared thread pool (support/parallel) with
// one deterministic injector sub-stream per trial, so results are
// bit-identical at any --jobs value. Energy accounting separates the base
// SRAM access cost from the incremental cost of protection (check-bit
// storage + encode/check logic) and the re-fetch penalty of degraded
// lines, so studies report the true price of protecting drowsy banks.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/address_map.hpp"
#include "compress/codec.hpp"
#include "energy/dram_model.hpp"
#include "energy/report.hpp"
#include "energy/sram_model.hpp"
#include "partition/bank.hpp"
#include "partition/sleep.hpp"

namespace memopt {

class JsonWriter;

/// Campaign configuration.
struct FaultCampaignConfig {
    std::uint64_t seed = 1;          ///< injector seed (campaigns are pure functions of it)
    std::size_t trials = 64;         ///< Monte-Carlo trials
    double bit_flip_rate = 1e-4;     ///< per stored bit, per trial (uniform default)
    ProtectionScheme protection = ProtectionScheme::None;
    const LineCodec* codec = nullptr;  ///< when set, lines are stored compressed
    std::string codec_tag;             ///< names the codec in the checkpoint config hash
    unsigned line_bytes = 32;          ///< corpus line size (multiple of 4)
    std::uint64_t sram_bank_bytes = 4096;  ///< bank cut for access-energy accounting
    SramTechnology sram;               ///< technology for access/protection energy
    DramTechnology dram;               ///< technology for the re-fetch penalty
    std::size_t jobs = 0;              ///< parallelism; 0 = default_jobs()
};

/// Aggregate outcome of a campaign.
struct FaultCampaignResult {
    std::uint64_t lines_evaluated = 0;  ///< trials x corpus lines
    std::uint64_t faults_injected = 0;  ///< stored bits flipped
    std::uint64_t corrected = 0;        ///< words repaired by SECDED
    std::uint64_t detected = 0;         ///< words flagged uncorrectable
    std::uint64_t codec_rejects = 0;    ///< decodes that threw memopt::Error
    std::uint64_t degraded = 0;         ///< lines degraded to a modeled re-fetch
    std::uint64_t silent = 0;           ///< lines delivering undetected corruption
    std::uint64_t clean = 0;            ///< lines delivered intact
    EnergyBreakdown energy;  ///< "sram_access", "protection", "refetch"

    /// Fraction of delivered lines that were silently corrupt.
    double residual_corruption_rate() const;
    /// Fraction of lines that fell back to the re-fetch path.
    double degraded_rate() const;
    /// Energy overhead of protection + degradation relative to base access
    /// cost [fraction; 0 when the campaign evaluated nothing].
    double energy_overhead() const;
};

/// Serialize the "memopt.fault.v1" results object: counters, rates, energy.
void to_json(JsonWriter& w, const FaultCampaignResult& result);

/// Slice `image` into `line_bytes`-sized lines (zero-padded at the tail).
/// Throws memopt::Error on an empty image or a line size that is not a
/// positive multiple of 4.
std::vector<std::vector<std::uint8_t>> line_corpus(std::span<const std::uint8_t> image,
                                                   unsigned line_bytes);

/// Per-line flip probabilities scaled by drowsy-bank residency: each line's
/// bank (under `map` and `arch`) contributes its asleep_cycles fraction via
/// sleepy_flip_probability(). Lines beyond the mapped span fall back to the
/// nominal `base_rate`. `total_cycles` is the replay length that produced
/// `sleep`.
std::vector<double> sleepy_line_probabilities(const MemoryArchitecture& arch,
                                              const AddressMap& map, const SleepReport& sleep,
                                              double base_rate, double drowsy_factor,
                                              std::uint64_t image_base, std::size_t num_lines,
                                              unsigned line_bytes, std::uint64_t total_cycles);

/// Run the campaign over `corpus`. `line_flip_prob`, when non-empty, gives
/// the per-line per-bit flip probability (same length as the corpus; see
/// sleepy_line_probabilities); otherwise config.bit_flip_rate applies
/// uniformly. Deterministic for a given (config, corpus): bit-identical
/// counters and energy at any jobs value. Polls the global
/// CancellationToken at trial boundaries: a tripped deadline or signal
/// surfaces as CancelledError (use the checkpointed runner to keep the
/// completed trials instead).
FaultCampaignResult run_campaign(const FaultCampaignConfig& config,
                                 std::span<const std::vector<std::uint8_t>> corpus,
                                 std::span<const double> line_flip_prob = {});

// ---------------------------------------------------------------------------
// Checkpoint/resume
//
// Trials are pure functions of (config, corpus, trial index), so the unit
// of durable progress is one trial's integer tallies. The checkpointed
// runner executes trials in index order in batches of `every`, snapshots
// the completed prefix into a memopt.ckpt.v1 file (engine kCkptEngineFault)
// after each batch, and reduces exactly like run_campaign once all trials
// exist — which is why a resumed run is bit-identical to an uninterrupted
// one at any --jobs value.

/// One trial's tallies — the checkpoint record payload.
struct FaultTrialStats {
    std::uint64_t injected = 0;
    std::uint64_t corrected = 0;
    std::uint64_t detected = 0;
    std::uint64_t codec_rejects = 0;
    std::uint64_t degraded = 0;
    std::uint64_t silent = 0;
    std::uint64_t clean = 0;
};

/// Fixed 56-byte little-endian record (7 u64 tallies; the trial index is
/// implicit in the record's position — records form a prefix of the trial
/// sequence by construction).
std::string encode_trial_record(const FaultTrialStats& stats);
/// Throws memopt::Error when the record size is wrong.
FaultTrialStats decode_trial_record(std::string_view record);

/// Fingerprint of everything that shapes per-trial tallies: seed, trials,
/// flip rate, protection, codec tag, line size, corpus bytes, and the
/// per-line probability vector. Resume refuses a checkpoint whose hash
/// differs (the recorded trials would not be prefixes of this campaign).
std::uint64_t campaign_config_hash(const FaultCampaignConfig& config,
                                   std::span<const std::vector<std::uint8_t>> corpus,
                                   std::span<const double> line_flip_prob);

struct CampaignCheckpointOptions {
    std::string path;            ///< checkpoint file; empty = never snapshot
    bool resume = false;         ///< load an existing compatible checkpoint first
    std::size_t every = 16;      ///< snapshot after this many new trials
    /// Test hook: stop (as if cancelled) after this many new trials this
    /// run; 0 = unlimited. Gives deterministic partial runs without timing.
    std::size_t max_trials_this_run = 0;
};

struct CampaignCheckpointOutcome {
    FaultCampaignResult result;   ///< valid only when completed
    std::size_t trials_done = 0;  ///< completed trials (including resumed ones)
    std::size_t trials_total = 0;
    bool completed = false;
    std::string stop_reason;      ///< why the run stopped early; empty when completed
};

/// Checkpointed campaign driver. On cancellation (deadline, signal, or the
/// max_trials_this_run hook) it snapshots the completed prefix and returns
/// completed == false instead of throwing; the caller emits the partial
/// report and exits with the documented code.
CampaignCheckpointOutcome run_campaign_checkpointed(
    const FaultCampaignConfig& config, std::span<const std::vector<std::uint8_t>> corpus,
    std::span<const double> line_flip_prob, const CampaignCheckpointOptions& ckpt);

}  // namespace memopt
