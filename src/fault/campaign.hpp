// Monte-Carlo fault-injection campaigns.
//
// A campaign replays many independent fault trials over a corpus of memory
// lines (a kernel's data image, optionally stored compressed), applies the
// configured protection scheme, and tallies what reaches the consumer:
// corrected, detected-and-degraded (modeled re-fetch), or silent
// corruption. Trials run on the shared thread pool (support/parallel) with
// one deterministic injector sub-stream per trial, so results are
// bit-identical at any --jobs value. Energy accounting separates the base
// SRAM access cost from the incremental cost of protection (check-bit
// storage + encode/check logic) and the re-fetch penalty of degraded
// lines, so studies report the true price of protecting drowsy banks.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cluster/address_map.hpp"
#include "compress/codec.hpp"
#include "energy/dram_model.hpp"
#include "energy/report.hpp"
#include "energy/sram_model.hpp"
#include "partition/bank.hpp"
#include "partition/sleep.hpp"

namespace memopt {

class JsonWriter;

/// Campaign configuration.
struct FaultCampaignConfig {
    std::uint64_t seed = 1;          ///< injector seed (campaigns are pure functions of it)
    std::size_t trials = 64;         ///< Monte-Carlo trials
    double bit_flip_rate = 1e-4;     ///< per stored bit, per trial (uniform default)
    ProtectionScheme protection = ProtectionScheme::None;
    const LineCodec* codec = nullptr;  ///< when set, lines are stored compressed
    unsigned line_bytes = 32;          ///< corpus line size (multiple of 4)
    std::uint64_t sram_bank_bytes = 4096;  ///< bank cut for access-energy accounting
    SramTechnology sram;               ///< technology for access/protection energy
    DramTechnology dram;               ///< technology for the re-fetch penalty
    std::size_t jobs = 0;              ///< parallelism; 0 = default_jobs()
};

/// Aggregate outcome of a campaign.
struct FaultCampaignResult {
    std::uint64_t lines_evaluated = 0;  ///< trials x corpus lines
    std::uint64_t faults_injected = 0;  ///< stored bits flipped
    std::uint64_t corrected = 0;        ///< words repaired by SECDED
    std::uint64_t detected = 0;         ///< words flagged uncorrectable
    std::uint64_t codec_rejects = 0;    ///< decodes that threw memopt::Error
    std::uint64_t degraded = 0;         ///< lines degraded to a modeled re-fetch
    std::uint64_t silent = 0;           ///< lines delivering undetected corruption
    std::uint64_t clean = 0;            ///< lines delivered intact
    EnergyBreakdown energy;  ///< "sram_access", "protection", "refetch"

    /// Fraction of delivered lines that were silently corrupt.
    double residual_corruption_rate() const;
    /// Fraction of lines that fell back to the re-fetch path.
    double degraded_rate() const;
    /// Energy overhead of protection + degradation relative to base access
    /// cost [fraction; 0 when the campaign evaluated nothing].
    double energy_overhead() const;
};

/// Serialize the "memopt.fault.v1" results object: counters, rates, energy.
void to_json(JsonWriter& w, const FaultCampaignResult& result);

/// Slice `image` into `line_bytes`-sized lines (zero-padded at the tail).
/// Throws memopt::Error on an empty image or a line size that is not a
/// positive multiple of 4.
std::vector<std::vector<std::uint8_t>> line_corpus(std::span<const std::uint8_t> image,
                                                   unsigned line_bytes);

/// Per-line flip probabilities scaled by drowsy-bank residency: each line's
/// bank (under `map` and `arch`) contributes its asleep_cycles fraction via
/// sleepy_flip_probability(). Lines beyond the mapped span fall back to the
/// nominal `base_rate`. `total_cycles` is the replay length that produced
/// `sleep`.
std::vector<double> sleepy_line_probabilities(const MemoryArchitecture& arch,
                                              const AddressMap& map, const SleepReport& sleep,
                                              double base_rate, double drowsy_factor,
                                              std::uint64_t image_base, std::size_t num_lines,
                                              unsigned line_bytes, std::uint64_t total_cycles);

/// Run the campaign over `corpus`. `line_flip_prob`, when non-empty, gives
/// the per-line per-bit flip probability (same length as the corpus; see
/// sleepy_line_probabilities); otherwise config.bit_flip_rate applies
/// uniformly. Deterministic for a given (config, corpus): bit-identical
/// counters and energy at any jobs value.
FaultCampaignResult run_campaign(const FaultCampaignConfig& config,
                                 std::span<const std::vector<std::uint8_t>> corpus,
                                 std::span<const double> line_flip_prob = {});

}  // namespace memopt
