#include "fault/protect.hpp"

#include <array>
#include <bit>

#include "support/assert.hpp"

namespace memopt {

namespace {

constexpr unsigned kDataBits = 64;
constexpr unsigned kHammingBits = 7;   // positions 1,2,4,8,16,32,64 of 1..71
constexpr unsigned kCodewordTop = 71;  // highest 1-based codeword position

/// Position tables of the (72,64) code, built once.
struct SecdedTables {
    std::array<std::uint8_t, kDataBits> data_pos{};  // data bit -> codeword position
    std::array<int, kCodewordTop + 1> pos_to_data{};  // position -> data bit, -1 = check
    std::array<std::uint64_t, kHammingBits> cover{};  // check i -> covered data bits

    SecdedTables() {
        pos_to_data.fill(-1);
        unsigned k = 0;
        for (unsigned pos = 1; pos <= kCodewordTop; ++pos) {
            if ((pos & (pos - 1)) == 0) continue;  // power of two: a check position
            data_pos[k] = static_cast<std::uint8_t>(pos);
            pos_to_data[pos] = static_cast<int>(k);
            ++k;
        }
        MEMOPT_ASSERT(k == kDataBits);
        for (unsigned i = 0; i < kHammingBits; ++i) {
            for (unsigned d = 0; d < kDataBits; ++d)
                if (data_pos[d] & (1u << i)) cover[i] |= 1ull << d;
        }
    }
};

const SecdedTables& tables() {
    static const SecdedTables t;
    return t;
}

unsigned parity64(std::uint64_t v) { return static_cast<unsigned>(std::popcount(v)) & 1u; }

std::uint8_t hamming_bits(std::uint64_t data) {
    std::uint8_t h = 0;
    for (unsigned i = 0; i < kHammingBits; ++i)
        h = static_cast<std::uint8_t>(h | (parity64(data & tables().cover[i]) << i));
    return h;
}

}  // namespace

std::uint8_t secded_encode(std::uint64_t data) {
    const std::uint8_t h = hamming_bits(data);
    const unsigned overall = parity64(data) ^ parity64(h);
    return static_cast<std::uint8_t>(h | (overall << 7));
}

CheckOutcome secded_check(std::uint64_t& data, std::uint8_t& check) {
    const std::uint8_t expected = hamming_bits(data);
    const unsigned syndrome = (expected ^ check) & 0x7Fu;
    const unsigned overall_now = parity64(data) ^ parity64(check & 0x7Fu);
    const bool parity_mismatch = overall_now != ((check >> 7) & 1u);

    if (syndrome == 0 && !parity_mismatch) return CheckOutcome::Clean;
    if (syndrome == 0 && parity_mismatch) {
        // The overall parity bit itself flipped; the codeword is intact.
        check = secded_encode(data);
        return CheckOutcome::Corrected;
    }
    if (parity_mismatch) {
        // Odd-weight error with a non-zero syndrome: a single-bit error at
        // codeword position `syndrome` (a syndrome beyond the codeword
        // means aliasing from a >=3-bit flip and is flagged instead).
        if (syndrome > kCodewordTop) return CheckOutcome::Detected;
        const int data_bit = tables().pos_to_data[syndrome];
        if (data_bit >= 0) data ^= 1ull << data_bit;
        check = secded_encode(data);
        return CheckOutcome::Corrected;
    }
    // Non-zero syndrome with matching overall parity: even-weight error.
    return CheckOutcome::Detected;
}

std::uint8_t parity_encode(std::uint64_t data) {
    return static_cast<std::uint8_t>(parity64(data));
}

std::size_t protected_stored_bytes(std::size_t data_bytes, ProtectionScheme scheme) {
    if (scheme == ProtectionScheme::None || data_bytes == 0) return data_bytes;
    const std::size_t words = (data_bytes + 7) / 8;
    const std::size_t check_bits = words * protection_check_bits(scheme, kDataBits);
    return data_bytes + (check_bits + 7) / 8;
}

ProtectedBuffer::ProtectedBuffer(std::span<const std::uint8_t> bytes, ProtectionScheme scheme)
    : scheme_(scheme),
      data_bytes_(bytes.size()),
      check_bits_per_word_(protection_check_bits(scheme, kDataBits)) {
    require(!bytes.empty(), "ProtectedBuffer: empty buffer");
    const std::size_t num_words = (bytes.size() + 7) / 8;
    words_.assign(num_words, 0);
    for (std::size_t b = 0; b < bytes.size(); ++b)
        words_[b / 8] |= static_cast<std::uint64_t>(bytes[b]) << (8 * (b % 8));
    checks_.assign(num_words, 0);
    for (std::size_t w = 0; w < num_words; ++w) {
        switch (scheme_) {
            case ProtectionScheme::None: break;
            case ProtectionScheme::Parity: checks_[w] = parity_encode(words_[w]); break;
            case ProtectionScheme::Secded: checks_[w] = secded_encode(words_[w]); break;
        }
    }
}

std::size_t ProtectedBuffer::total_bits() const {
    return words_.size() * (kDataBits + check_bits_per_word_);
}

void ProtectedBuffer::flip_bit(std::size_t index) {
    MEMOPT_ASSERT_MSG(index < total_bits(), "ProtectedBuffer::flip_bit: out of range");
    const std::size_t stride = kDataBits + check_bits_per_word_;
    const std::size_t word = index / stride;
    const std::size_t offset = index % stride;
    if (offset < kDataBits)
        words_[word] ^= 1ull << offset;
    else
        checks_[word] = static_cast<std::uint8_t>(checks_[word] ^ (1u << (offset - kDataBits)));
}

ProtectedBuffer::ScrubResult ProtectedBuffer::scrub() {
    ScrubResult result;
    for (std::size_t w = 0; w < words_.size(); ++w) {
        switch (scheme_) {
            case ProtectionScheme::None:
                break;
            case ProtectionScheme::Parity:
                if (parity_encode(words_[w]) != (checks_[w] & 1u)) ++result.detected_words;
                break;
            case ProtectionScheme::Secded:
                switch (secded_check(words_[w], checks_[w])) {
                    case CheckOutcome::Clean: break;
                    case CheckOutcome::Corrected: ++result.corrected_words; break;
                    case CheckOutcome::Detected: ++result.detected_words; break;
                }
                break;
        }
    }
    return result;
}

std::vector<std::uint8_t> ProtectedBuffer::bytes() const {
    std::vector<std::uint8_t> out(data_bytes_);
    for (std::size_t b = 0; b < data_bytes_; ++b)
        out[b] = static_cast<std::uint8_t>(words_[b / 8] >> (8 * (b % 8)));
    return out;
}

}  // namespace memopt
