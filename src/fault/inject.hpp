// Deterministic fault injection.
//
// A FaultInjector is a seed plus a family of independent sub-streams: the
// faults of (seed, stream) are a pure function of those two values, never
// of call order or thread schedule. Campaigns assign one stream per Monte-
// Carlo trial, so a parallel campaign is bit-identical to a serial one at
// any job count. Injection targets are byte buffers (sleepy SRAM bank
// contents, compressed lines between write-back and refill, serialized
// trace streams) and the stored bit space of a ProtectedBuffer.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "fault/protect.hpp"
#include "support/rng.hpp"

namespace memopt {

class FaultInjector {
public:
    explicit FaultInjector(std::uint64_t seed) : seed_(seed) {}

    std::uint64_t seed() const { return seed_; }

    /// Independent deterministic sub-stream: equal (seed, stream) pairs
    /// yield equal fault patterns regardless of which streams were drawn
    /// before. Used to give every campaign trial its own generator.
    Rng stream_rng(std::uint64_t stream) const;

    /// Flip every bit of `bytes` independently with probability `p`
    /// (clamped to [0, 1]). Returns the number of flips.
    static std::size_t flip_bits(std::span<std::uint8_t> bytes, double p, Rng& rng);

    /// flip_bits over the bytes of a serialized stream (trace I/O fuzzing).
    static std::size_t flip_bits(std::string& bytes, double p, Rng& rng);

    /// Flip the stored bits (data + check) of a protected buffer with
    /// per-bit probability `p`. Returns the number of flips.
    static std::size_t flip_bits(ProtectedBuffer& buffer, double p, Rng& rng);

    /// Flip exactly `n` distinct stored bits of a protected buffer
    /// (uniformly chosen). Used to exercise exact-multiplicity behavior
    /// (SECDED: 1 flip corrected, 2 flips detected). Requires
    /// n <= buffer.total_bits().
    static void flip_exact(ProtectedBuffer& buffer, std::size_t n, Rng& rng);

private:
    std::uint64_t seed_;
};

/// Per-bit upset probability of a bank whose contents spent `asleep_cycles`
/// of `total_cycles` in the drowsy state: sleeping retention is
/// `drowsy_factor` times more fault-prone than nominal, so
///   p = base_rate * (1 + drowsy_factor * asleep_fraction),
/// clamped to [0, 0.5]. This is the coupling between partition/sleep
/// residency statistics and the fault model.
double sleepy_flip_probability(double base_rate, std::uint64_t asleep_cycles,
                               std::uint64_t total_cycles, double drowsy_factor);

}  // namespace memopt
