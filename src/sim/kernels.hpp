// Bundled embedded benchmark kernels.
//
// Ten kernels written in AR32 assembly, standing in for the MediaBench /
// Ptolemy / DSPstone workloads of the DATE'03 1B evaluations: DSP filters,
// image processing, coding, sorting, searching and pointer chasing. Each
// kernel ends with one or more `out` values (a checksum) whose expected
// value is independently recomputed by the test suite, so a passing test
// run certifies ISA, assembler and simulator end to end.
//
// The .data layouts deliberately interleave hot arrays with cold buffers
// (I/O staging areas, padding) as real firmware images do; this produces the
// scattered-hot-block address profiles that address clustering (DATE'03
// 1B-1) exploits.
#pragma once

#include <string>
#include <vector>

#include "isa/assembler.hpp"
#include "sim/cpu.hpp"

namespace memopt {

/// One benchmark kernel.
struct Kernel {
    std::string name;
    std::string description;
    std::string source;  ///< AR32 assembly
};

/// The full kernel suite, in canonical order.
const std::vector<Kernel>& kernel_suite();

/// Lookup by name; throws memopt::Error if unknown.
const Kernel& kernel_by_name(const std::string& name);

/// Assemble and run a kernel with the given simulator configuration.
RunResult run_kernel(const Kernel& kernel, const CpuConfig& config = CpuConfig{});

}  // namespace memopt
