// AR32 instruction-set simulator.
//
// Executes an AssembledProgram and produces, besides the architectural
// results (output channel, cycle counts), the two artifacts the energy
// optimizations consume:
//   * the data-access trace (for profiling / partitioning / clustering /
//     cache simulation), and
//   * the instruction fetch stream (32-bit words in execution order, for
//     the instruction-bus transformation experiments).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "isa/assembler.hpp"
#include "trace/trace.hpp"

namespace memopt {

/// Simulator configuration.
struct CpuConfig {
    std::uint64_t mem_size = 256 * 1024;       ///< data memory size (power of two)
    std::uint64_t max_instructions = 100'000'000;  ///< runaway guard
    bool record_data_trace = true;             ///< collect the D-side MemTrace
    bool record_fetch_stream = false;          ///< collect executed instruction words
};

/// Result of a simulation run.
struct RunResult {
    std::vector<std::uint32_t> output;       ///< values emitted by `out`
    std::uint64_t instructions = 0;          ///< retired instruction count
    std::uint64_t cycles = 0;                ///< simple timing model (see Cpu)
    MemTrace data_trace;                     ///< D-side accesses (if recorded)
    std::vector<std::uint32_t> fetch_stream; ///< executed instruction words (if recorded)
};

/// The simulator. A fresh Cpu is constructed per run.
///
/// Timing model (documented, deliberately simple): 1 cycle per instruction,
/// +1 for loads/stores, +2 for multiplies, +2 for taken branches/calls/
/// indirect jumps. The optimizations consume traces and access counts, not
/// absolute cycle counts, so a coarse model suffices.
class Cpu {
public:
    explicit Cpu(const CpuConfig& config = CpuConfig{});

    /// Load and run `program` to completion (halt), instruction budget
    /// exhaustion (throws memopt::Error), or a memory fault (propagates
    /// memopt::Error). The stack pointer starts at the top of data memory.
    RunResult run(const AssembledProgram& program);

private:
    CpuConfig config_;
};

/// Convenience: assemble `source` and run it.
RunResult run_source(std::string_view source, const CpuConfig& config = CpuConfig{});

}  // namespace memopt
