// Flat little-endian data memory for the AR32 simulator.
//
// AR32 is modeled as a Harvard machine: instructions execute out of the
// assembled code image while loads/stores go to this data memory. That
// mirrors the embedded SoCs targeted by the DATE'03 1B papers (on-chip
// instruction ROM/flash plus on-chip data SRAM) and keeps the data-side
// address profile — the input to partitioning and clustering — clean.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace memopt {

/// Byte-addressed RAM with alignment-checked typed accessors.
///
/// All accessors throw memopt::Error on out-of-range or misaligned
/// addresses: kernel bugs fail loudly instead of corrupting experiments.
class Memory {
public:
    /// `size_bytes` must be a power of two, >= 4 KiB.
    explicit Memory(std::uint64_t size_bytes);

    std::uint64_t size() const { return bytes_.size(); }

    std::uint8_t load8(std::uint64_t addr) const;
    std::uint16_t load16(std::uint64_t addr) const;  // 2-byte aligned
    std::uint32_t load32(std::uint64_t addr) const;  // 4-byte aligned

    void store8(std::uint64_t addr, std::uint8_t value);
    void store16(std::uint64_t addr, std::uint16_t value);
    void store32(std::uint64_t addr, std::uint32_t value);

    /// Bulk copy into memory (used by the program loader).
    void write_block(std::uint64_t addr, std::span<const std::uint8_t> bytes);

    /// Read-only view of the backing store (used by tests).
    std::span<const std::uint8_t> bytes() const { return bytes_; }

private:
    void check(std::uint64_t addr, std::uint64_t size) const;

    std::vector<std::uint8_t> bytes_;
};

}  // namespace memopt
