#include "sim/cpu.hpp"

#include "isa/encode.hpp"
#include "sim/memory.hpp"
#include "support/string_util.hpp"

namespace memopt {

namespace {

struct Flags {
    bool n = false, z = false, c = false, v = false;
};

Flags compare(std::uint32_t a, std::uint32_t b) {
    const std::uint32_t diff = a - b;
    Flags f;
    f.z = diff == 0;
    f.n = (diff >> 31) != 0;
    f.c = a >= b;  // no borrow
    const bool sa = (a >> 31) != 0;
    const bool sb = (b >> 31) != 0;
    const bool sd = (diff >> 31) != 0;
    f.v = (sa != sb) && (sd != sa);
    return f;
}

bool cond_holds(Cond cond, const Flags& f) {
    switch (cond) {
        case Cond::Eq: return f.z;
        case Cond::Ne: return !f.z;
        case Cond::Lt: return f.n != f.v;
        case Cond::Ge: return f.n == f.v;
        case Cond::Gt: return !f.z && (f.n == f.v);
        case Cond::Le: return f.z || (f.n != f.v);
        case Cond::Lo: return !f.c;
        case Cond::Hs: return f.c;
        case Cond::Al: return true;
        case Cond::Count_: break;
    }
    MEMOPT_ASSERT_MSG(false, "cond_holds: invalid condition");
    return false;
}

}  // namespace

Cpu::Cpu(const CpuConfig& config) : config_(config) {
    require(is_pow2(config.mem_size), "CpuConfig: mem_size must be a power of two");
}

RunResult Cpu::run(const AssembledProgram& program) {
    require(!program.code.empty(), "Cpu::run: empty program");
    require(program.data_base + program.data.size() <= config_.mem_size,
            "Cpu::run: data image does not fit in memory");

    Memory mem(config_.mem_size);
    mem.write_block(program.data_base, program.data);

    std::array<std::uint32_t, kNumRegs> regs{};
    regs[kRegSp] = static_cast<std::uint32_t>(config_.mem_size);
    std::uint32_t pc = 0;
    Flags flags;
    RunResult result;

    // Decode the code image once; execution then indexes this vector.
    std::vector<Instr> decoded;
    decoded.reserve(program.code.size());
    for (std::uint32_t w : program.code) decoded.push_back(decode(w));

    auto trace_access = [&](std::uint64_t addr, std::uint8_t size, AccessKind kind,
                            std::uint32_t value) {
        if (config_.record_data_trace)
            result.data_trace.add(MemAccess{addr, result.cycles, value, size, kind});
    };

    for (;;) {
        if (result.instructions >= config_.max_instructions)
            throw Error("Cpu::run: instruction budget exhausted (runaway program?)");
        if (pc % 4 != 0 || pc / 4 >= decoded.size())
            throw Error(format("Cpu::run: pc out of range: 0x%x", pc));

        const std::size_t index = pc / 4;
        const Instr& instr = decoded[index];
        if (config_.record_fetch_stream) result.fetch_stream.push_back(program.code[index]);
        ++result.instructions;
        ++result.cycles;

        std::uint32_t next_pc = pc + 4;
        const std::uint32_t rn = regs[instr.rn];
        const std::uint32_t rm = regs[instr.rm];
        const auto imm = static_cast<std::uint32_t>(instr.imm);

        switch (instr.op) {
            case Op::Add: regs[instr.rd] = rn + rm; break;
            case Op::Sub: regs[instr.rd] = rn - rm; break;
            case Op::And: regs[instr.rd] = rn & rm; break;
            case Op::Orr: regs[instr.rd] = rn | rm; break;
            case Op::Eor: regs[instr.rd] = rn ^ rm; break;
            case Op::Lsl: regs[instr.rd] = rn << (rm & 31); break;
            case Op::Lsr: regs[instr.rd] = rn >> (rm & 31); break;
            case Op::Asr:
                regs[instr.rd] =
                    static_cast<std::uint32_t>(static_cast<std::int32_t>(rn) >> (rm & 31));
                break;
            case Op::Mul:
                regs[instr.rd] = rn * rm;
                result.cycles += 2;
                break;
            case Op::Mov: regs[instr.rd] = rm; break;
            case Op::Mvn: regs[instr.rd] = ~rm; break;
            case Op::Cmp: flags = compare(rn, rm); break;

            case Op::Addi: regs[instr.rd] = rn + imm; break;
            case Op::Subi: regs[instr.rd] = rn - imm; break;
            case Op::Andi: regs[instr.rd] = rn & imm; break;
            case Op::Orri: regs[instr.rd] = rn | imm; break;
            case Op::Eori: regs[instr.rd] = rn ^ imm; break;
            case Op::Lsli: regs[instr.rd] = rn << (imm & 31); break;
            case Op::Lsri: regs[instr.rd] = rn >> (imm & 31); break;
            case Op::Asri:
                regs[instr.rd] =
                    static_cast<std::uint32_t>(static_cast<std::int32_t>(rn) >> (imm & 31));
                break;
            case Op::Movi: regs[instr.rd] = imm; break;
            case Op::Movhi:
                regs[instr.rd] = (regs[instr.rd] & 0xFFFFu) | (imm << 16);
                break;
            case Op::Cmpi: flags = compare(rn, imm); break;

            case Op::Ldw: {
                const std::uint64_t addr = rn + imm;
                regs[instr.rd] = mem.load32(addr);
                trace_access(addr, 4, AccessKind::Read, regs[instr.rd]);
                ++result.cycles;
                break;
            }
            case Op::Ldh: {
                const std::uint64_t addr = rn + imm;
                regs[instr.rd] = mem.load16(addr);
                trace_access(addr, 2, AccessKind::Read, regs[instr.rd]);
                ++result.cycles;
                break;
            }
            case Op::Ldb: {
                const std::uint64_t addr = rn + imm;
                regs[instr.rd] = mem.load8(addr);
                trace_access(addr, 1, AccessKind::Read, regs[instr.rd]);
                ++result.cycles;
                break;
            }
            case Op::Stw: {
                const std::uint64_t addr = rn + imm;
                mem.store32(addr, regs[instr.rd]);
                trace_access(addr, 4, AccessKind::Write, regs[instr.rd]);
                ++result.cycles;
                break;
            }
            case Op::Sth: {
                const std::uint64_t addr = rn + imm;
                mem.store16(addr, static_cast<std::uint16_t>(regs[instr.rd]));
                trace_access(addr, 2, AccessKind::Write, regs[instr.rd] & 0xFFFFu);
                ++result.cycles;
                break;
            }
            case Op::Stb: {
                const std::uint64_t addr = rn + imm;
                mem.store8(addr, static_cast<std::uint8_t>(regs[instr.rd]));
                trace_access(addr, 1, AccessKind::Write, regs[instr.rd] & 0xFFu);
                ++result.cycles;
                break;
            }
            case Op::Ldwx: {
                const std::uint64_t addr = rn + rm;
                regs[instr.rd] = mem.load32(addr);
                trace_access(addr, 4, AccessKind::Read, regs[instr.rd]);
                ++result.cycles;
                break;
            }
            case Op::Ldbx: {
                const std::uint64_t addr = rn + rm;
                regs[instr.rd] = mem.load8(addr);
                trace_access(addr, 1, AccessKind::Read, regs[instr.rd]);
                ++result.cycles;
                break;
            }
            case Op::Stwx: {
                const std::uint64_t addr = rn + rm;
                mem.store32(addr, regs[instr.rd]);
                trace_access(addr, 4, AccessKind::Write, regs[instr.rd]);
                ++result.cycles;
                break;
            }
            case Op::Stbx: {
                const std::uint64_t addr = rn + rm;
                mem.store8(addr, static_cast<std::uint8_t>(regs[instr.rd]));
                trace_access(addr, 1, AccessKind::Write, regs[instr.rd] & 0xFFu);
                ++result.cycles;
                break;
            }

            case Op::Jr:
                next_pc = rm & ~3u;
                result.cycles += 2;
                break;
            case Op::B:
                if (cond_holds(instr.cond, flags)) {
                    next_pc = pc + 4 + (static_cast<std::uint32_t>(instr.imm) << 2);
                    result.cycles += 2;
                }
                break;
            case Op::Bl:
                regs[kRegLr] = pc + 4;
                next_pc = pc + 4 + (static_cast<std::uint32_t>(instr.imm) << 2);
                result.cycles += 2;
                break;

            case Op::Out:
                result.output.push_back(rm);
                break;
            case Op::Halt:
                return result;
            case Op::Nop:
                break;
            case Op::Count_:
                MEMOPT_ASSERT_MSG(false, "executed invalid opcode");
        }
        pc = next_pc;
    }
}

RunResult run_source(std::string_view source, const CpuConfig& config) {
    return Cpu(config).run(assemble(source));
}

}  // namespace memopt
