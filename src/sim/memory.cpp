#include "sim/memory.hpp"

#include "support/assert.hpp"
#include "support/string_util.hpp"
#include "trace/trace.hpp"

namespace memopt {

Memory::Memory(std::uint64_t size_bytes) {
    require(is_pow2(size_bytes), "Memory: size must be a power of two");
    require(size_bytes >= 4096, "Memory: size must be >= 4 KiB");
    bytes_.assign(size_bytes, 0);
}

void Memory::check(std::uint64_t addr, std::uint64_t size) const {
    if (addr + size > bytes_.size() || addr + size < addr)
        throw Error(format("memory access out of range: addr=0x%llx size=%llu",
                           static_cast<unsigned long long>(addr),
                           static_cast<unsigned long long>(size)));
    if (addr % size != 0)
        throw Error(format("misaligned %llu-byte access at 0x%llx",
                           static_cast<unsigned long long>(size),
                           static_cast<unsigned long long>(addr)));
}

std::uint8_t Memory::load8(std::uint64_t addr) const {
    check(addr, 1);
    return bytes_[addr];
}

std::uint16_t Memory::load16(std::uint64_t addr) const {
    check(addr, 2);
    return static_cast<std::uint16_t>(bytes_[addr] | (bytes_[addr + 1] << 8));
}

std::uint32_t Memory::load32(std::uint64_t addr) const {
    check(addr, 4);
    return static_cast<std::uint32_t>(bytes_[addr]) |
           (static_cast<std::uint32_t>(bytes_[addr + 1]) << 8) |
           (static_cast<std::uint32_t>(bytes_[addr + 2]) << 16) |
           (static_cast<std::uint32_t>(bytes_[addr + 3]) << 24);
}

void Memory::store8(std::uint64_t addr, std::uint8_t value) {
    check(addr, 1);
    bytes_[addr] = value;
}

void Memory::store16(std::uint64_t addr, std::uint16_t value) {
    check(addr, 2);
    bytes_[addr] = static_cast<std::uint8_t>(value);
    bytes_[addr + 1] = static_cast<std::uint8_t>(value >> 8);
}

void Memory::store32(std::uint64_t addr, std::uint32_t value) {
    check(addr, 4);
    bytes_[addr] = static_cast<std::uint8_t>(value);
    bytes_[addr + 1] = static_cast<std::uint8_t>(value >> 8);
    bytes_[addr + 2] = static_cast<std::uint8_t>(value >> 16);
    bytes_[addr + 3] = static_cast<std::uint8_t>(value >> 24);
}

void Memory::write_block(std::uint64_t addr, std::span<const std::uint8_t> bytes) {
    require(addr + bytes.size() <= bytes_.size() && addr + bytes.size() >= addr,
            "write_block out of range");
    std::copy(bytes.begin(), bytes.end(), bytes_.begin() + static_cast<std::ptrdiff_t>(addr));
}

}  // namespace memopt
