#include "sim/kernels.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace memopt {

namespace {

// Each kernel keeps all mutable state in data memory where natural, ends
// with `out <checksum>` + `halt`, and lays out .data with cold padding
// between hot arrays (see kernels.hpp).

const char* const kFirSource = R"(
; fir: 32-tap FIR filter over 256 samples
        li   r1, fin
        li   r2, fcoef
        li   r3, fout
        movi r4, 0              ; i
fi:     movi r5, 0              ; k
        movi r6, 0              ; acc
fk:     add  r7, r4, r5
        lsli r7, r7, 2
        ldwx r8, [r1, r7]       ; in[i+k]
        asri r8, r8, 16         ; scale sample to ~16 bits
        lsli r9, r5, 2
        ldwx r10, [r2, r9]      ; coef[k]
        asri r10, r10, 26       ; small fixed-point coefficient
        mul  r8, r8, r10
        add  r6, r6, r8
        addi r5, r5, 1
        cmpi r5, 32
        blt  fk
        asri r6, r6, 6          ; output scaling
        lsli r9, r4, 2
        stwx r6, [r3, r9]
        addi r4, r4, 1
        cmpi r4, 256
        blt  fi
; checksum over outputs
        movi r4, 0
        movi r6, 0
fc:     lsli r9, r4, 2
        ldwx r8, [r3, r9]
        add  r6, r6, r8
        addi r4, r4, 1
        cmpi r4, 256
        blt  fc
        out  r6
        halt
.data
        .space 4096
fin:    .randsmooth 288, 161, 1048576
        .space 8192
fcoef:  .rand 32, 162
        .space 12288
fout:   .space 1024
)";

const char* const kBiquadSource = R"(
; biquad: two cascaded direct-form-I IIR sections over 512 samples
        li   r10, bqin
        li   r11, bqout
        movi r12, 0             ; i
        movi r15, 0             ; checksum
bqloop: lsli r5, r12, 2
        ldwx r3, [r10, r5]
        asri r3, r3, 16         ; scale sample to ~16 bits
        li   r1, bqc1
        li   r2, bqs1
        bl   bqsec
        li   r1, bqc2
        li   r2, bqs2
        bl   bqsec
        lsli r5, r12, 2
        stwx r3, [r11, r5]
        add  r15, r15, r3
        addi r12, r12, 1
        cmpi r12, 512
        blt  bqloop
        out  r15
        halt
; bqsec: r3 = ((c[0]*x + c[1]*x1 + c[2]*x2 + c[3]*y1 + c[4]*y2) >> 12)
;        r1 = coeffs, r2 = state {x1,x2,y1,y2}; clobbers r4-r9
bqsec:  ldw  r4, [r1, 0]
        mul  r4, r4, r3
        ldw  r5, [r1, 4]
        ldw  r6, [r2, 0]        ; x1
        mul  r5, r5, r6
        add  r4, r4, r5
        ldw  r5, [r1, 8]
        ldw  r7, [r2, 4]        ; x2
        mul  r5, r5, r7
        add  r4, r4, r5
        ldw  r5, [r1, 12]
        ldw  r8, [r2, 8]        ; y1
        mul  r5, r5, r8
        add  r4, r4, r5
        ldw  r5, [r1, 16]
        ldw  r9, [r2, 12]       ; y2
        mul  r5, r5, r9
        add  r4, r4, r5
        asri r4, r4, 12
        stw  r6, [r2, 4]        ; x2 = x1
        stw  r3, [r2, 0]        ; x1 = x
        stw  r8, [r2, 12]       ; y2 = y1
        stw  r4, [r2, 8]        ; y1 = y
        mov  r3, r4
        ret
.data
bqc1:   .word 1024, 2048, 1024, 1638, -819
        .space 2048
bqc2:   .word 512, 1024, 512, 1229, -410
        .space 2048
bqs1:   .word 0, 0, 0, 0
        .space 1024
bqs2:   .word 0, 0, 0, 0
        .space 5120
bqin:   .randsmooth 512, 177, 1048576
        .space 3072
bqout:  .space 2048
)";

const char* const kMatmulSource = R"(
; matmul: C = A * B for 16x16 32-bit matrices
        li   r1, mata
        li   r2, matb
        li   r3, matc
        movi r4, 0              ; i
mi:     movi r5, 0              ; j
mj:     movi r6, 0              ; k
        movi r7, 0              ; acc
mk:     lsli r8, r4, 4
        add  r8, r8, r6
        lsli r8, r8, 2
        ldwx r9, [r1, r8]       ; A[i][k]
        lsli r8, r6, 4
        add  r8, r8, r5
        lsli r8, r8, 2
        ldwx r10, [r2, r8]      ; B[k][j]
        mul  r9, r9, r10
        add  r7, r7, r9
        addi r6, r6, 1
        cmpi r6, 16
        blt  mk
        lsli r8, r4, 4
        add  r8, r8, r5
        lsli r8, r8, 2
        stwx r7, [r3, r8]
        addi r5, r5, 1
        cmpi r5, 16
        blt  mj
        addi r4, r4, 1
        cmpi r4, 16
        blt  mi
; checksum
        movi r4, 0
        movi r7, 0
mc:     lsli r8, r4, 2
        ldwx r9, [r3, r8]
        add  r7, r7, r9
        addi r4, r4, 1
        cmpi r4, 256
        blt  mc
        out  r7
        halt
.data
        .space 2048
mata:   .rand 256, 201
        .space 6144
matb:   .rand 256, 202
        .space 10240
matc:   .space 1024
)";

const char* const kCrc32Source = R"(
; crc32: build the CRC-32 table at runtime, then checksum a 4 KiB message
        li   r1, crctab
        li   r6, 0xEDB88320
        movi r2, 0              ; i
tgen:   mov  r3, r2             ; c = i
        movi r4, 0              ; bit
tbit:   andi r5, r3, 1
        lsri r3, r3, 1
        cmpi r5, 0
        beq  tskip
        eor  r3, r3, r6
tskip:  addi r4, r4, 1
        cmpi r4, 8
        blt  tbit
        lsli r5, r2, 2
        stwx r3, [r1, r5]
        addi r2, r2, 1
        cmpi r2, 256
        blt  tgen
        li   r7, cmsg
        movi r8, 4096
        movi r9, 0              ; index
        movi r10, 0
        mvn  r10, r10           ; crc = 0xFFFFFFFF
cloop:  ldbx r5, [r7, r9]
        eor  r5, r10, r5
        andi r5, r5, 255
        lsli r5, r5, 2
        ldwx r5, [r1, r5]
        lsri r10, r10, 8
        eor  r10, r10, r5
        addi r9, r9, 1
        cmp  r9, r8
        blo  cloop
        mvn  r10, r10
        out  r10
        halt
.data
        .space 2048
crctab: .space 1024
        .space 6144
cmsg:   .randsmooth 1024, 195, 5000
)";

const char* const kQsortSource = R"(
; qsort: iterative quicksort (Lomuto) of 256 random words, unsigned order
        li   r1, qarr
        mov  r12, sp            ; empty-stack sentinel
        movi r2, 0              ; lo
        movi r3, 255            ; hi
        push r2
        push r3
qloop:  pop  r3
        pop  r2
        cmp  r2, r3
        bge  qnext
        lsli r4, r3, 2
        ldwx r5, [r1, r4]       ; pivot = arr[hi]
        mov  r6, r2             ; i
        mov  r7, r2             ; j
qpart:  cmp  r7, r3
        bge  qpdone
        lsli r8, r7, 2
        ldwx r9, [r1, r8]
        cmp  r9, r5
        bhs  qpskip
        lsli r10, r6, 2
        ldwx r11, [r1, r10]
        stwx r9, [r1, r10]
        stwx r11, [r1, r8]
        addi r6, r6, 1
qpskip: addi r7, r7, 1
        b    qpart
qpdone: lsli r10, r6, 2
        ldwx r11, [r1, r10]
        lsli r8, r3, 2
        ldwx r9, [r1, r8]
        stwx r9, [r1, r10]
        stwx r11, [r1, r8]
        subi r8, r6, 1
        push r2
        push r8
        addi r8, r6, 1
        push r8
        push r3
qnext:  cmp  sp, r12
        blo  qloop
; order-sensitive checksum: sum arr[i]*(i+1)
        movi r2, 0
        movi r4, 0
qcks:   lsli r5, r2, 2
        ldwx r6, [r1, r5]
        addi r7, r2, 1
        mul  r6, r6, r7
        add  r4, r4, r6
        addi r2, r2, 1
        cmpi r2, 256
        blt  qcks
        out  r4
        halt
.data
        .space 1024
qarr:   .rand 256, 333
        .space 1024
)";

const char* const kHistogramSource = R"(
; histogram: 256-bin byte histogram of 4 KiB of data
        li   r1, hdat
        li   r2, hbin
        movi r3, 0
hloop:  ldbx r4, [r1, r3]
        lsli r4, r4, 2
        ldwx r5, [r2, r4]
        addi r5, r5, 1
        stwx r5, [r2, r4]
        addi r3, r3, 1
        cmpi r3, 4096
        blt  hloop
; checksum: sum bins[i]*(i+1)
        movi r3, 0
        movi r6, 0
hcks:   lsli r4, r3, 2
        ldwx r5, [r2, r4]
        addi r7, r3, 1
        mul  r5, r5, r7
        add  r6, r6, r5
        addi r3, r3, 1
        cmpi r3, 256
        blt  hcks
        out  r6
        halt
.data
hdat:   .randsmooth 1024, 741, 100
        .space 12288
hbin:   .space 1024
)";

const char* const kStrsearchSource = R"(
; strsearch: naive search of a 4-byte pattern in 2 KiB of alphabet-4 text
        li   r1, ssrc
        li   r2, stxt
        movi r3, 0
sbuild: ldbx r4, [r1, r3]
        andi r4, r4, 3
        stbx r4, [r2, r3]
        addi r3, r3, 1
        cmpi r3, 2048
        blt  sbuild
        li   r5, spat
        movi r6, 0              ; match count
        movi r3, 0              ; i
sloop:  movi r7, 0              ; j
smatch: add  r8, r3, r7
        ldbx r9, [r2, r8]
        ldbx r10, [r5, r7]
        cmp  r9, r10
        bne  snext
        addi r7, r7, 1
        cmpi r7, 4
        blt  smatch
        addi r6, r6, 1
snext:  addi r3, r3, 1
        cmpi r3, 2045
        blt  sloop
        out  r6
        halt
.data
ssrc:   .rand 512, 911
        .space 4096
spat:   .byte 1, 2, 3, 0
        .space 2044
stxt:   .space 2048
)";

const char* const kRleSource = R"(
; rle: run-length encode 4 KiB of alphabet-2 data into (count,value) pairs
        li   r1, rraw
        li   r2, rsrc
        movi r3, 0
rbuild: ldbx r4, [r1, r3]
        andi r4, r4, 1
        stbx r4, [r2, r3]
        addi r3, r3, 1
        cmpi r3, 4096
        blt  rbuild
        li   r5, rout
        movi r6, 0              ; encoded length
        movi r3, 0              ; i
renc:   ldbx r4, [r2, r3]       ; run value
        movi r7, 1              ; run length
rrun:   add  r8, r3, r7
        cmpi r8, 4096
        bge  rstop
        cmpi r7, 255
        bge  rstop
        ldbx r9, [r2, r8]
        cmp  r9, r4
        bne  rstop
        addi r7, r7, 1
        b    rrun
rstop:  stbx r7, [r5, r6]
        addi r6, r6, 1
        stbx r4, [r5, r6]
        addi r6, r6, 1
        add  r3, r3, r7
        cmpi r3, 4096
        blt  renc
        out  r6                 ; encoded length
        movi r3, 0
        movi r10, 0
rcks:   ldbx r4, [r5, r3]
        add  r10, r10, r4
        addi r3, r3, 1
        cmp  r3, r6
        blo  rcks
        out  r10                ; byte checksum of the encoding
        halt
.data
rraw:   .rand 1024, 555
        .space 8192
rsrc:   .space 4096
        .space 4096
rout:   .space 8192
)";

const char* const kConv3x3Source = R"(
; conv3x3: 3x3 Gaussian blur over a 32x32 image (valid region 30x30)
        li   r1, craw
        li   r2, cimg
        movi r3, 0
cpre:   lsli r4, r3, 2
        ldwx r5, [r1, r4]
        asri r5, r5, 20         ; scale pixels to [-2048, 2047]
        stwx r5, [r2, r4]
        addi r3, r3, 1
        cmpi r3, 1024
        blt  cpre
        li   r6, ckern
        li   r7, cout
        movi r8, 0              ; y
cy:     movi r9, 0              ; x
cx:     movi r10, 0             ; acc
        movi r11, 0             ; ky
cky:    movi r12, 0             ; kx
ckx:    add  r3, r8, r11
        lsli r3, r3, 5
        add  r4, r9, r12
        add  r3, r3, r4
        lsli r3, r3, 2
        ldwx r4, [r2, r3]       ; img[y+ky][x+kx]
        lsli r5, r11, 1
        add  r5, r5, r11
        add  r5, r5, r12
        lsli r5, r5, 2
        ldwx r15, [r6, r5]      ; kern[ky][kx]
        mul  r4, r4, r15
        add  r10, r10, r4
        addi r12, r12, 1
        cmpi r12, 3
        blt  ckx
        addi r11, r11, 1
        cmpi r11, 3
        blt  cky
        lsli r3, r8, 5          ; y*30 = y*32 - y*2
        lsli r4, r8, 1
        sub  r3, r3, r4
        add  r3, r3, r9
        lsli r3, r3, 2
        stwx r10, [r7, r3]
        addi r9, r9, 1
        cmpi r9, 30
        blt  cx
        addi r8, r8, 1
        cmpi r8, 30
        blt  cy
; checksum
        movi r8, 0
        movi r10, 0
ccks:   lsli r3, r8, 2
        ldwx r4, [r7, r3]
        add  r10, r10, r4
        addi r8, r8, 1
        cmpi r8, 900
        blt  ccks
        out  r10
        halt
.data
ckern:  .word 1, 2, 1, 2, 4, 2, 1, 2, 1
        .space 3036
craw:   .randsmooth 1024, 808, 50000000
        .space 4096
cimg:   .space 4096
        .space 2048
cout:   .space 3600
)";

const char* const kListchaseSource = R"(
; listchase: build a 1024-node LCG-permuted linked list, chase 8192 steps
        li   r1, nodes
        movi r2, 0              ; x
        movi r3, 0              ; built count
lbuild: lsli r4, r2, 2
        add  r4, r4, r2         ; 5x
        addi r4, r4, 1          ; y = (5x + 1) & 1023
        movi r5, 1023
        and  r4, r4, r5
        lsli r6, r2, 4          ; node[x] offset (16-byte nodes)
        lsli r7, r4, 4
        add  r7, r1, r7         ; &node[y]
        stwx r7, [r1, r6]       ; node[x].next
        addi r6, r6, 4
        stwx r2, [r1, r6]       ; node[x].val = x
        mov  r2, r4
        addi r3, r3, 1
        cmpi r3, 1024
        blt  lbuild
        mov  r8, r1             ; p = &node[0]
        movi r9, 0
        movi r10, 0             ; sum
lchase: ldw  r11, [r8, 4]
        add  r10, r10, r11
        ldw  r8, [r8, 0]
        addi r9, r9, 1
        cmpi r9, 8192
        blt  lchase
        out  r10
        halt
.data
        .space 2048
nodes:  .space 16384
)";


const char* const kFft16Source = R"(
; fft16: 16-point radix-2 DIT integer FFT (Q12 twiddles), 32 iterations
        li   r1, fftiter
        movi r2, 0
        stw  r2, [r1]
fouter:
; phase 1: bit-reversed copy with input scaling
        li   r1, fftin
        li   r2, fftbuf
        li   r3, fftrev
        movi r4, 0              ; i
frev:   ldbx r5, [r3, r4]       ; rev[i]
        lsli r6, r5, 3
        add  r6, r1, r6
        lsli r7, r4, 3
        add  r7, r2, r7
        ldw  r8, [r6, 0]
        asri r8, r8, 20         ; scale re to ~12 bits
        stw  r8, [r7, 0]
        ldw  r8, [r6, 4]
        asri r8, r8, 20         ; scale im
        stw  r8, [r7, 4]
        addi r4, r4, 1
        cmpi r4, 16
        blt  frev
; phase 2: butterfly stages, m = 2, 4, 8, 16
        movi r15, 8             ; twiddle stride = 16/m
        movi r4, 2              ; m
fstage: lsri r5, r4, 1          ; half = m/2
        movi r6, 0              ; k
fgroup: movi r7, 0              ; j
fbfly:  mul  r8, r7, r15
        lsli r8, r8, 2
        li   r9, fftcos
        ldwx r10, [r9, r8]      ; w_re = cos
        li   r9, fftsin
        ldwx r11, [r9, r8]      ; sin
        add  r8, r6, r7
        lsli r8, r8, 3
        li   r9, fftbuf
        add  r8, r9, r8         ; a = &buf[k+j]
        lsli r9, r5, 3
        add  r9, r8, r9         ; b = &buf[k+j+half]
        ldw  r12, [r9, 0]       ; b_re
        ldw  r13, [r9, 4]       ; b_im
        mul  r14, r10, r12      ; t_re = (cos*b_re + sin*b_im) >> 12
        mul  r0, r11, r13
        add  r14, r14, r0
        asri r14, r14, 12
        mul  r0, r10, r13       ; t_im = (cos*b_im - sin*b_re) >> 12
        mul  r13, r11, r12
        sub  r0, r0, r13
        asri r0, r0, 12
        ldw  r12, [r8, 0]       ; u_re
        ldw  r13, [r8, 4]       ; u_im
        add  r10, r12, r14
        stw  r10, [r8, 0]
        add  r11, r13, r0
        stw  r11, [r8, 4]
        sub  r10, r12, r14
        stw  r10, [r9, 0]
        sub  r11, r13, r0
        stw  r11, [r9, 4]
        addi r7, r7, 1
        cmp  r7, r5
        blt  fbfly
        add  r6, r6, r4
        cmpi r6, 16
        blt  fgroup
        lsri r15, r15, 1
        lsli r4, r4, 1
        cmpi r4, 16
        ble  fstage
; accumulate spectrum into the running checksum buffer, next iteration
        li   r1, fftacc
        li   r2, fftbuf
        movi r4, 0
facc:   lsli r7, r4, 2
        ldwx r8, [r2, r7]
        ldwx r9, [r1, r7]
        add  r9, r9, r8
        stwx r9, [r1, r7]
        addi r4, r4, 1
        cmpi r4, 32
        blt  facc
        li   r1, fftiter
        ldw  r2, [r1]
        addi r2, r2, 1
        stw  r2, [r1]
        cmpi r2, 32
        blt  fouter
; checksum over the accumulated spectrum
        li   r2, fftacc
        movi r4, 0
        movi r6, 0
fcks:   lsli r7, r4, 2
        ldwx r8, [r2, r7]
        add  r6, r6, r8
        addi r4, r4, 1
        cmpi r4, 32
        blt  fcks
        out  r6
        halt
.data
fftrev: .byte 0, 8, 4, 12, 2, 10, 6, 14, 1, 9, 5, 13, 3, 11, 7, 15
        .space 1008
fftcos: .word 4096, 3784, 2896, 1567, 0, -1567, -2896, -3784
        .space 2016
fftsin: .word 0, 1567, 2896, 3784, 4096, 3784, 2896, 1567
        .space 4064
fftin:  .randsmooth 32, 404, 80000000
        .space 3968
fftbuf: .space 128
        .space 1920
fftacc: .space 128
fftiter: .word 0
)";

const char* const kDitherSource = R"(
; dither: Floyd-Steinberg error diffusion of a 64x16 grayscale image
;   v = img[y][x] + err[x]; out = v >= 128 ? 255 : 0; e = v - out
;   err_next[x-1] += 3e/16; err_next[x] += 5e/16; err_next[x+1] += e/16;
;   err[x+1] += 7e/16   (err rows are word arrays with 1 word of margin)
        li   r1, dimg
        li   r2, dout
        li   r3, derra          ; current row error (66 words, margin 1)
        li   r4, derrb          ; next row error
        movi r5, 0              ; y
dy:     movi r6, 0              ; x
dx:     ; v = img[y*64+x] + err[x+1]
        lsli r7, r5, 6
        add  r7, r7, r6
        ldbx r8, [r1, r7]       ; pixel
        addi r9, r6, 1
        lsli r9, r9, 2
        ldwx r10, [r3, r9]      ; err[x]
        add  r8, r8, r10
        ; threshold
        movi r10, 0
        cmpi r8, 128
        blt  dblack
        movi r10, 255
dblack: stbx r10, [r2, r7]      ; out pixel
        sub  r8, r8, r10        ; e
        ; distribute: 7/16 right (current row), 3/16, 5/16, 1/16 (next row)
        movi r11, 7
        mul  r11, r8, r11
        asri r11, r11, 4
        addi r12, r6, 2         ; err[x+1] slot = x+2 with margin
        lsli r12, r12, 2
        ldwx r13, [r3, r12]
        add  r13, r13, r11
        stwx r13, [r3, r12]
        movi r11, 3
        mul  r11, r8, r11
        asri r11, r11, 4
        lsli r12, r6, 2         ; err_next[x-1] slot = x with margin
        ldwx r13, [r4, r12]
        add  r13, r13, r11
        stwx r13, [r4, r12]
        movi r11, 5
        mul  r11, r8, r11
        asri r11, r11, 4
        addi r12, r6, 1
        lsli r12, r12, 2
        ldwx r13, [r4, r12]
        add  r13, r13, r11
        stwx r13, [r4, r12]
        asri r11, r8, 4
        addi r12, r6, 2
        lsli r12, r12, 2
        ldwx r13, [r4, r12]
        add  r13, r13, r11
        stwx r13, [r4, r12]
        addi r6, r6, 1
        cmpi r6, 64
        blt  dx
        ; swap error rows; clear the new next row
        mov  r7, r3
        mov  r3, r4
        mov  r4, r7
        movi r6, 0
dclr:   lsli r7, r6, 2
        movi r8, 0
        stwx r8, [r4, r7]
        addi r6, r6, 1
        cmpi r6, 66
        blt  dclr
        addi r5, r5, 1
        cmpi r5, 16
        blt  dy
; checksum: sum of output pixels times position parity
        li   r2, dout
        movi r5, 0
        movi r6, 0
dcks:   ldbx r7, [r2, r5]
        add  r6, r6, r7
        addi r5, r5, 1
        cmpi r5, 1024
        blt  dcks
        out  r6
        halt
.data
dimg:   .randsmooth 256, 606, 3000
        .space 7168
derra:  .space 264
        .space 760
derrb:  .space 264
        .space 760
dout:   .space 1024
)";

std::vector<Kernel> make_suite() {
    return {
        {"fir", "32-tap FIR filter over 256 samples", kFirSource},
        {"biquad", "two-section IIR biquad cascade over 512 samples", kBiquadSource},
        {"matmul", "16x16 integer matrix multiply", kMatmulSource},
        {"crc32", "table-driven CRC-32 of a 4 KiB message", kCrc32Source},
        {"qsort", "iterative quicksort of 256 words", kQsortSource},
        {"histogram", "256-bin byte histogram of 4 KiB", kHistogramSource},
        {"strsearch", "naive 4-byte pattern search in 2 KiB text", kStrsearchSource},
        {"rle", "run-length encoder over 4 KiB", kRleSource},
        {"conv3x3", "3x3 convolution over a 32x32 image", kConv3x3Source},
        {"listchase", "pointer chase over a 1024-node linked list", kListchaseSource},
        {"fft16", "16-point radix-2 integer FFT, 32 frames", kFft16Source},
        {"dither", "Floyd-Steinberg dithering of a 64x16 image", kDitherSource},
    };
}

}  // namespace

const std::vector<Kernel>& kernel_suite() {
    static const std::vector<Kernel> suite = make_suite();
    return suite;
}

const Kernel& kernel_by_name(const std::string& name) {
    const auto& suite = kernel_suite();
    const auto it = std::find_if(suite.begin(), suite.end(),
                                 [&](const Kernel& k) { return k.name == name; });
    require(it != suite.end(), "unknown kernel '" + name + "'");
    return *it;
}

RunResult run_kernel(const Kernel& kernel, const CpuConfig& config) {
    return Cpu(config).run(assemble(kernel.source));
}

}  // namespace memopt
