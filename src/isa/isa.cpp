#include "isa/isa.hpp"

#include "support/assert.hpp"
#include "support/string_util.hpp"

namespace memopt {

Format format_of(Op op) {
    switch (op) {
        case Op::Add:
        case Op::Sub:
        case Op::And:
        case Op::Orr:
        case Op::Eor:
        case Op::Lsl:
        case Op::Lsr:
        case Op::Asr:
        case Op::Mul:
        case Op::Mov:
        case Op::Mvn:
        case Op::Cmp:
        case Op::Ldwx:
        case Op::Ldbx:
        case Op::Stwx:
        case Op::Stbx:
        case Op::Jr:
        case Op::Out:
            return Format::R;
        case Op::Addi:
        case Op::Subi:
        case Op::Andi:
        case Op::Orri:
        case Op::Eori:
        case Op::Lsli:
        case Op::Lsri:
        case Op::Asri:
        case Op::Movi:
        case Op::Movhi:
        case Op::Cmpi:
        case Op::Ldw:
        case Op::Ldh:
        case Op::Ldb:
        case Op::Stw:
        case Op::Sth:
        case Op::Stb:
            return Format::I;
        case Op::B:
            return Format::Branch;
        case Op::Bl:
            return Format::Call;
        case Op::Halt:
        case Op::Nop:
            return Format::None;
        case Op::Count_:
            break;
    }
    MEMOPT_ASSERT_MSG(false, "format_of: invalid opcode");
    return Format::None;
}

bool is_memory_op(Op op) {
    switch (op) {
        case Op::Ldw:
        case Op::Ldh:
        case Op::Ldb:
        case Op::Stw:
        case Op::Sth:
        case Op::Stb:
        case Op::Ldwx:
        case Op::Ldbx:
        case Op::Stwx:
        case Op::Stbx:
            return true;
        default:
            return false;
    }
}

bool is_load_op(Op op) {
    switch (op) {
        case Op::Ldw:
        case Op::Ldh:
        case Op::Ldb:
        case Op::Ldwx:
        case Op::Ldbx:
            return true;
        default:
            return false;
    }
}

std::string_view mnemonic(Op op) {
    switch (op) {
        case Op::Add: return "add";
        case Op::Sub: return "sub";
        case Op::And: return "and";
        case Op::Orr: return "orr";
        case Op::Eor: return "eor";
        case Op::Lsl: return "lsl";
        case Op::Lsr: return "lsr";
        case Op::Asr: return "asr";
        case Op::Mul: return "mul";
        case Op::Mov: return "mov";
        case Op::Mvn: return "mvn";
        case Op::Cmp: return "cmp";
        case Op::Ldwx: return "ldwx";
        case Op::Ldbx: return "ldbx";
        case Op::Stwx: return "stwx";
        case Op::Stbx: return "stbx";
        case Op::Jr: return "jr";
        case Op::Addi: return "addi";
        case Op::Subi: return "subi";
        case Op::Andi: return "andi";
        case Op::Orri: return "orri";
        case Op::Eori: return "eori";
        case Op::Lsli: return "lsli";
        case Op::Lsri: return "lsri";
        case Op::Asri: return "asri";
        case Op::Movi: return "movi";
        case Op::Movhi: return "movhi";
        case Op::Cmpi: return "cmpi";
        case Op::Ldw: return "ldw";
        case Op::Ldh: return "ldh";
        case Op::Ldb: return "ldb";
        case Op::Stw: return "stw";
        case Op::Sth: return "sth";
        case Op::Stb: return "stb";
        case Op::B: return "b";
        case Op::Bl: return "bl";
        case Op::Out: return "out";
        case Op::Halt: return "halt";
        case Op::Nop: return "nop";
        case Op::Count_: break;
    }
    MEMOPT_ASSERT_MSG(false, "mnemonic: invalid opcode");
    return "?";
}

std::string_view cond_name(Cond c) {
    switch (c) {
        case Cond::Eq: return "eq";
        case Cond::Ne: return "ne";
        case Cond::Lt: return "lt";
        case Cond::Ge: return "ge";
        case Cond::Gt: return "gt";
        case Cond::Le: return "le";
        case Cond::Lo: return "lo";
        case Cond::Hs: return "hs";
        case Cond::Al: return "";
        case Cond::Count_: break;
    }
    MEMOPT_ASSERT_MSG(false, "cond_name: invalid condition");
    return "?";
}

std::optional<unsigned> parse_reg(std::string_view name) {
    const std::string lower = to_lower(name);
    if (lower == "sp") return kRegSp;
    if (lower == "lr") return kRegLr;
    if (lower.size() >= 2 && lower[0] == 'r') {
        const auto num = parse_int(lower.substr(1));
        if (num && *num >= 0 && *num < static_cast<std::int64_t>(kNumRegs))
            return static_cast<unsigned>(*num);
    }
    return std::nullopt;
}

std::string reg_name(unsigned r) {
    MEMOPT_ASSERT(r < kNumRegs);
    if (r == kRegSp) return "sp";
    if (r == kRegLr) return "lr";
    return format("r%u", r);
}

}  // namespace memopt
