// AR32 binary encoding and decoding.
//
// encode/decode are exact inverses over the set of valid instructions; this
// round-trip is property-tested across the full opcode space. The encoding
// is the word stream that the instruction-bus transformation experiments
// (src/encoding) operate on.
#pragma once

#include <cstdint>

#include "isa/isa.hpp"

namespace memopt {

/// Encode one instruction into its 32-bit word.
/// Throws memopt::Error if a field is out of range for the format
/// (e.g. a branch offset that does not fit in 22 bits).
std::uint32_t encode(const Instr& instr);

/// Decode a 32-bit word. Throws memopt::Error on an invalid opcode field.
Instr decode(std::uint32_t word);

/// Range limits for immediate fields (inclusive).
inline constexpr std::int32_t kImm16Min = -32768;
inline constexpr std::int32_t kImm16Max = 32767;
inline constexpr std::int32_t kUimm16Max = 65535;
inline constexpr std::int32_t kBranchOffsetMin = -(1 << 21);
inline constexpr std::int32_t kBranchOffsetMax = (1 << 21) - 1;
inline constexpr std::int32_t kCallOffsetMin = -(1 << 25);
inline constexpr std::int32_t kCallOffsetMax = (1 << 25) - 1;

/// True if `imm` is representable in the immediate field of `op`
/// (sign-extended ops accept [-32768, 32767]; zero-extended ops accept
/// [0, 65535]).
bool imm_fits(Op op, std::int32_t imm);

}  // namespace memopt
