// AR32 disassembler: renders decoded instructions back to assembler syntax.
// Primarily a debugging and test aid; the output of disassemble() for any
// valid instruction re-assembles to the same word (round-trip tested).
#pragma once

#include <cstdint>
#include <string>

#include "isa/assembler.hpp"
#include "isa/isa.hpp"

namespace memopt {

/// Render one instruction in assembler syntax. Branch/call targets are
/// rendered as numeric word offsets ("b +12") because label names are not
/// recoverable from the binary.
std::string disassemble(const Instr& instr);

/// Decode and render one binary word.
std::string disassemble_word(std::uint32_t word);

/// Render a full program listing: one line per instruction with its
/// address, raw word, mnemonic rendering, and label annotations from the
/// symbol table; branch/call targets are resolved back to label names when
/// a symbol matches. Data symbols are listed in a trailing section.
std::string disassemble_program(const AssembledProgram& program);

}  // namespace memopt
