#include "isa/assembler.hpp"

#include <algorithm>
#include <cctype>

#include "isa/encode.hpp"
#include "support/assert.hpp"
#include "support/string_util.hpp"
#include "trace/trace.hpp"

namespace memopt {

namespace {

/// A tokenized source line: optional label plus an optional statement.
struct Line {
    int number = 0;              // 1-based source line
    std::string label;           // without ':'
    std::string op;              // lower-cased mnemonic or directive
    std::vector<std::string> operands;  // comma-separated, trimmed
};

[[noreturn]] void fail(int line, const std::string& msg) {
    throw Error(format("asm line %d: %s", line, msg.c_str()));
}

bool is_ident_start(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

bool valid_label(std::string_view s) {
    if (s.empty() || !is_ident_start(s.front()) || s.front() == '.') return false;
    return std::all_of(s.begin(), s.end(), [](char c) {
        return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
    });
}

std::vector<Line> tokenize(std::string_view source) {
    std::vector<Line> lines;
    int number = 0;
    for (std::string_view raw : split(source, '\n')) {
        ++number;
        // Strip comments.
        if (const auto pos = raw.find(';'); pos != std::string_view::npos)
            raw = raw.substr(0, pos);
        std::string_view text = trim(raw);
        if (text.empty()) continue;

        Line line;
        line.number = number;

        // Optional leading label.
        if (const auto colon = text.find(':'); colon != std::string_view::npos) {
            const std::string_view candidate = trim(text.substr(0, colon));
            if (valid_label(candidate)) {
                line.label = std::string(candidate);
                text = trim(text.substr(colon + 1));
            }
        }

        if (!text.empty()) {
            // Mnemonic is the first whitespace-delimited token.
            std::size_t i = 0;
            while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
            line.op = to_lower(text.substr(0, i));
            const std::string_view rest = trim(text.substr(i));
            if (!rest.empty()) {
                for (std::string_view part : split(rest, ','))
                    line.operands.emplace_back(trim(part));
            }
        }
        lines.push_back(std::move(line));
    }
    return lines;
}

enum class Section { Code, Data };

/// Word size (in 4-byte units) a statement contributes to the code section.
std::size_t code_words_of(const Line& line) {
    if (line.op == "li" || line.op == "la" || line.op == "push" || line.op == "pop") return 2;
    return 1;
}

std::uint64_t splitmix64_step(std::uint64_t& x) {
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

/// Branch mnemonic table: "b", "beq", ... -> condition.
std::optional<Cond> branch_cond(std::string_view op) {
    if (op == "b" || op == "bal") return Cond::Al;
    if (op == "beq") return Cond::Eq;
    if (op == "bne") return Cond::Ne;
    if (op == "blt") return Cond::Lt;
    if (op == "bge") return Cond::Ge;
    if (op == "bgt") return Cond::Gt;
    if (op == "ble") return Cond::Le;
    if (op == "blo") return Cond::Lo;
    if (op == "bhs") return Cond::Hs;
    return std::nullopt;
}

std::optional<Op> plain_mnemonic(std::string_view op) {
    for (unsigned i = 0; i < static_cast<unsigned>(Op::Count_); ++i) {
        const Op candidate = static_cast<Op>(i);
        if (candidate == Op::B || candidate == Op::Bl) continue;  // handled separately
        if (mnemonic(candidate) == op) return candidate;
    }
    return std::nullopt;
}

class Assembler {
public:
    Assembler(std::string_view source, const AssembleOptions& options) : options_(options) {
        lines_ = tokenize(source);
        pass1();
        pass2();
    }

    AssembledProgram take() && { return std::move(program_); }

private:
    // ---- pass 1: lay out sections and record symbols -----------------------

    void pass1() {
        Section section = Section::Code;
        std::uint64_t code_bytes = 0;
        std::uint64_t data_bytes = 0;
        for (const Line& line : lines_) {
            std::uint64_t& offset = section == Section::Code ? code_bytes : data_bytes;
            if (!line.label.empty()) {
                const std::uint64_t addr =
                    section == Section::Code ? offset : options_.data_base + offset;
                if (!program_.symbols.emplace(line.label, addr).second)
                    fail(line.number, "duplicate label '" + line.label + "'");
            }
            if (line.op.empty()) continue;
            if (line.op == ".code") {
                section = Section::Code;
            } else if (line.op == ".data") {
                section = Section::Data;
            } else if (line.op[0] == '.') {
                const std::uint64_t size = directive_size(line, offset);
                offset += size;
                if (section == Section::Code && offset % 4 != 0)
                    fail(line.number, "data directive leaves code section misaligned");
            } else {
                if (section == Section::Data)
                    fail(line.number, "instruction in .data section");
                offset += 4 * code_words_of(line);
            }
        }
    }

    std::uint64_t directive_size(const Line& line, std::uint64_t offset) const {
        if (line.op == ".word") return 4 * require_count(line);
        if (line.op == ".half") return 2 * require_count(line);
        if (line.op == ".byte") return 1 * require_count(line);
        if (line.op == ".space") return parse_u64(line, 0);
        if (line.op == ".align") {
            const std::uint64_t n = parse_u64(line, 0);
            if (!is_pow2(n)) fail(line.number, ".align requires a power of two");
            return (n - offset % n) % n;
        }
        if (line.op == ".rand") {
            if (line.operands.size() != 2) fail(line.number, ".rand requires COUNT, SEED");
            return 4 * parse_u64(line, 0);
        }
        if (line.op == ".randsmooth") {
            if (line.operands.size() != 3)
                fail(line.number, ".randsmooth requires COUNT, SEED, MAXDELTA");
            return 4 * parse_u64(line, 0);
        }
        fail(line.number, "unknown directive '" + line.op + "'");
    }

    std::uint64_t require_count(const Line& line) const {
        if (line.operands.empty()) fail(line.number, line.op + " requires at least one value");
        return line.operands.size();
    }

    std::uint64_t parse_u64(const Line& line, std::size_t idx) const {
        if (idx >= line.operands.size()) fail(line.number, "missing operand");
        const auto v = parse_int(line.operands[idx]);
        if (!v || *v < 0) fail(line.number, "expected a non-negative integer operand");
        return static_cast<std::uint64_t>(*v);
    }

    // ---- pass 2: emit ------------------------------------------------------

    void pass2() {
        Section section = Section::Code;
        for (const Line& line : lines_) {
            if (line.op.empty()) continue;
            if (line.op == ".code") {
                section = Section::Code;
            } else if (line.op == ".data") {
                section = Section::Data;
            } else if (line.op[0] == '.') {
                emit_directive(line, section);
            } else {
                emit_instruction(line);
            }
        }
        program_.data_base = options_.data_base;
        require(program_.code.size() * 4 <= options_.data_base,
                "assemble: code section overlaps the data base");
    }

    void emit_byte(Section section, std::uint8_t byte) {
        if (section == Section::Code) {
            code_partial_.push_back(byte);
            if (code_partial_.size() == 4) {
                std::uint32_t w = 0;
                for (int i = 3; i >= 0; --i) w = (w << 8) | code_partial_[static_cast<std::size_t>(i)];
                program_.code.push_back(w);
                code_partial_.clear();
            }
        } else {
            program_.data.push_back(byte);
        }
    }

    void emit_value(Section section, std::uint64_t value, unsigned bytes) {
        for (unsigned i = 0; i < bytes; ++i) emit_byte(section, static_cast<std::uint8_t>(value >> (8 * i)));
    }

    std::uint64_t current_offset(Section section) const {
        return section == Section::Code ? program_.code.size() * 4 + code_partial_.size()
                                        : program_.data.size();
    }

    void emit_directive(const Line& line, Section section) {
        if (line.op == ".word") {
            for (const std::string& operand : line.operands)
                emit_value(section, static_cast<std::uint64_t>(value_of(line, operand)), 4);
        } else if (line.op == ".half") {
            for (const std::string& operand : line.operands) {
                const std::int64_t v = value_of(line, operand);
                if (v < -32768 || v > 65535) fail(line.number, ".half value out of range");
                emit_value(section, static_cast<std::uint64_t>(v), 2);
            }
        } else if (line.op == ".byte") {
            for (const std::string& operand : line.operands) {
                const std::int64_t v = value_of(line, operand);
                if (v < -128 || v > 255) fail(line.number, ".byte value out of range");
                emit_value(section, static_cast<std::uint64_t>(v), 1);
            }
        } else if (line.op == ".space") {
            const std::uint64_t n = parse_u64(line, 0);
            for (std::uint64_t i = 0; i < n; ++i) emit_byte(section, 0);
        } else if (line.op == ".align") {
            const std::uint64_t n = parse_u64(line, 0);
            while (current_offset(section) % n != 0) emit_byte(section, 0);
        } else if (line.op == ".rand") {
            const std::uint64_t count = parse_u64(line, 0);
            const std::uint64_t seed = parse_u64(line, 1);
            for (std::uint32_t w : asm_random_words(count, seed)) emit_value(section, w, 4);
        } else if (line.op == ".randsmooth") {
            const std::uint64_t count = parse_u64(line, 0);
            const std::uint64_t seed = parse_u64(line, 1);
            const std::uint64_t max_delta = parse_u64(line, 2);
            for (std::uint32_t w :
                 asm_smooth_words(count, seed, static_cast<std::uint32_t>(max_delta)))
                emit_value(section, w, 4);
        } else {
            fail(line.number, "unknown directive '" + line.op + "'");
        }
    }

    // Value of an operand that may be an integer or label[+/-offset].
    std::int64_t value_of(const Line& line, std::string_view token) const {
        token = trim(token);
        if (!token.empty() && token.front() == '#') token.remove_prefix(1);
        if (const auto v = parse_int(token)) return *v;
        // label, label+N, label-N
        std::size_t split_pos = std::string_view::npos;
        for (std::size_t i = 1; i < token.size(); ++i) {
            if (token[i] == '+' || token[i] == '-') {
                split_pos = i;
                break;
            }
        }
        const std::string_view name = trim(token.substr(0, split_pos));
        const auto it = program_.symbols.find(std::string(name));
        if (it == program_.symbols.end())
            fail(line.number, format("undefined symbol '%.*s'", static_cast<int>(name.size()),
                                     name.data()));
        std::int64_t value = static_cast<std::int64_t>(it->second);
        if (split_pos != std::string_view::npos) {
            const auto off = parse_int(trim(token.substr(split_pos)));
            if (!off) fail(line.number, "malformed symbol offset");
            value += *off;
        }
        return value;
    }

    unsigned reg_of(const Line& line, std::size_t idx) const {
        if (idx >= line.operands.size()) fail(line.number, "missing register operand");
        const auto r = parse_reg(line.operands[idx]);
        if (!r) fail(line.number, "invalid register '" + line.operands[idx] + "'");
        return *r;
    }

    std::int32_t imm_of(const Line& line, std::size_t idx) const {
        if (idx >= line.operands.size()) fail(line.number, "missing immediate operand");
        const std::int64_t v = value_of(line, line.operands[idx]);
        if (v < INT32_MIN || v > INT32_MAX) fail(line.number, "immediate does not fit in 32 bits");
        return static_cast<std::int32_t>(v);
    }

    // Parse "[rn]" / "[rn, #imm]" / "[rn, rm]" memory operands spread over
    // the already comma-split operand list starting at `idx`.
    struct MemOperand {
        unsigned rn = 0;
        bool reg_offset = false;
        unsigned rm = 0;
        std::int32_t imm = 0;
    };

    MemOperand mem_of(const Line& line, std::size_t idx) const {
        if (idx >= line.operands.size()) fail(line.number, "missing memory operand");
        // Re-join the remaining operands: the tokenizer split on ','.
        std::string joined = line.operands[idx];
        for (std::size_t i = idx + 1; i < line.operands.size(); ++i)
            joined += "," + line.operands[i];
        std::string_view s = trim(joined);
        if (s.size() < 3 || s.front() != '[' || s.back() != ']')
            fail(line.number, "malformed memory operand '" + joined + "'");
        s = s.substr(1, s.size() - 2);
        const auto parts = split(s, ',');
        if (parts.empty() || parts.size() > 2) fail(line.number, "malformed memory operand");
        MemOperand m;
        const auto rn = parse_reg(trim(parts[0]));
        if (!rn) fail(line.number, "invalid base register in memory operand");
        m.rn = *rn;
        if (parts.size() == 2) {
            const std::string_view second = trim(parts[1]);
            if (const auto rm = parse_reg(second)) {
                m.reg_offset = true;
                m.rm = *rm;
            } else {
                const std::int64_t v = value_of(line, second);
                if (v < kImm16Min || v > kImm16Max)
                    fail(line.number, "memory offset out of range");
                m.imm = static_cast<std::int32_t>(v);
            }
        }
        return m;
    }

    void push_instr(const Line& line, const Instr& instr) {
        if (!code_partial_.empty()) fail(line.number, "instruction at misaligned code offset");
        try {
            program_.code.push_back(encode(instr));
        } catch (const Error& e) {
            fail(line.number, e.what());
        }
    }

    std::int32_t branch_offset(const Line& line, std::size_t operand_idx) const {
        const std::int64_t target = value_of(line, line.operands.size() > operand_idx
                                                       ? line.operands[operand_idx]
                                                       : (fail(line.number, "missing branch target"),
                                                          std::string{}));
        const std::int64_t pc = static_cast<std::int64_t>(program_.code.size()) * 4;
        if (target % 4 != 0) fail(line.number, "branch target is not word aligned");
        return static_cast<std::int32_t>((target - (pc + 4)) / 4);
    }

    void emit_instruction(const Line& line) {
        const std::string& op = line.op;

        // Pseudo-instructions first.
        if (op == "li" || op == "la") {
            if (line.operands.size() != 2) fail(line.number, op + " requires rd, value");
            const unsigned rd = reg_of(line, 0);
            const std::int64_t v64 = value_of(line, line.operands[1]);
            const auto value = static_cast<std::uint32_t>(static_cast<std::int64_t>(v64));
            const auto low = static_cast<std::int32_t>(static_cast<std::int16_t>(value & 0xFFFF));
            const auto high = static_cast<std::int32_t>(value >> 16);
            push_instr(line, Instr{.op = Op::Movi, .rd = static_cast<std::uint8_t>(rd), .imm = low});
            push_instr(line,
                       Instr{.op = Op::Movhi, .rd = static_cast<std::uint8_t>(rd), .imm = high});
            return;
        }
        if (op == "ret") {
            push_instr(line, Instr{.op = Op::Jr, .rm = kRegLr});
            return;
        }
        if (op == "push") {
            const unsigned rd = reg_of(line, 0);
            push_instr(line, Instr{.op = Op::Subi, .rd = kRegSp, .rn = kRegSp, .imm = 4});
            push_instr(line, Instr{.op = Op::Stw, .rd = static_cast<std::uint8_t>(rd),
                                   .rn = kRegSp, .imm = 0});
            return;
        }
        if (op == "pop") {
            const unsigned rd = reg_of(line, 0);
            push_instr(line, Instr{.op = Op::Ldw, .rd = static_cast<std::uint8_t>(rd),
                                   .rn = kRegSp, .imm = 0});
            push_instr(line, Instr{.op = Op::Addi, .rd = kRegSp, .rn = kRegSp, .imm = 4});
            return;
        }

        // Branches.
        if (const auto cond = branch_cond(op)) {
            Instr instr{.op = Op::B, .cond = *cond, .imm = branch_offset(line, 0)};
            push_instr(line, instr);
            return;
        }
        if (op == "bl") {
            push_instr(line, Instr{.op = Op::Bl, .imm = branch_offset(line, 0)});
            return;
        }

        const auto opcode = plain_mnemonic(op);
        if (!opcode) fail(line.number, "unknown mnemonic '" + op + "'");
        Instr instr{.op = *opcode};

        switch (*opcode) {
            case Op::Add:
            case Op::Sub:
            case Op::And:
            case Op::Orr:
            case Op::Eor:
            case Op::Lsl:
            case Op::Lsr:
            case Op::Asr:
            case Op::Mul:
                instr.rd = static_cast<std::uint8_t>(reg_of(line, 0));
                instr.rn = static_cast<std::uint8_t>(reg_of(line, 1));
                instr.rm = static_cast<std::uint8_t>(reg_of(line, 2));
                break;
            case Op::Mov:
            case Op::Mvn:
                instr.rd = static_cast<std::uint8_t>(reg_of(line, 0));
                instr.rm = static_cast<std::uint8_t>(reg_of(line, 1));
                break;
            case Op::Cmp:
                instr.rn = static_cast<std::uint8_t>(reg_of(line, 0));
                instr.rm = static_cast<std::uint8_t>(reg_of(line, 1));
                break;
            case Op::Jr:
            case Op::Out:
                instr.rm = static_cast<std::uint8_t>(reg_of(line, 0));
                break;
            case Op::Addi:
            case Op::Subi:
            case Op::Andi:
            case Op::Orri:
            case Op::Eori:
            case Op::Lsli:
            case Op::Lsri:
            case Op::Asri:
                instr.rd = static_cast<std::uint8_t>(reg_of(line, 0));
                instr.rn = static_cast<std::uint8_t>(reg_of(line, 1));
                instr.imm = imm_of(line, 2);
                break;
            case Op::Movi:
            case Op::Movhi:
                instr.rd = static_cast<std::uint8_t>(reg_of(line, 0));
                instr.imm = imm_of(line, 1);
                break;
            case Op::Cmpi:
                instr.rn = static_cast<std::uint8_t>(reg_of(line, 0));
                instr.imm = imm_of(line, 1);
                break;
            case Op::Ldw:
            case Op::Ldh:
            case Op::Ldb:
            case Op::Stw:
            case Op::Sth:
            case Op::Stb:
            case Op::Ldwx:
            case Op::Ldbx:
            case Op::Stwx:
            case Op::Stbx: {
                instr.rd = static_cast<std::uint8_t>(reg_of(line, 0));
                const MemOperand m = mem_of(line, 1);
                instr.rn = static_cast<std::uint8_t>(m.rn);
                if (m.reg_offset) {
                    // Promote immediate-form mnemonics to the register form.
                    switch (*opcode) {
                        case Op::Ldw: instr.op = Op::Ldwx; break;
                        case Op::Ldb: instr.op = Op::Ldbx; break;
                        case Op::Stw: instr.op = Op::Stwx; break;
                        case Op::Stb: instr.op = Op::Stbx; break;
                        case Op::Ldwx:
                        case Op::Ldbx:
                        case Op::Stwx:
                        case Op::Stbx:
                            break;
                        default:
                            fail(line.number, "register offset unsupported for this mnemonic");
                    }
                    instr.rm = static_cast<std::uint8_t>(m.rm);
                } else {
                    if (instr.op == Op::Ldwx || instr.op == Op::Ldbx || instr.op == Op::Stwx ||
                        instr.op == Op::Stbx)
                        fail(line.number, "x-form load/store requires a register offset");
                    instr.imm = m.imm;
                }
                break;
            }
            case Op::Halt:
            case Op::Nop:
                break;
            default:
                fail(line.number, "unsupported mnemonic '" + op + "'");
        }
        push_instr(line, instr);
    }

    AssembleOptions options_;
    std::vector<Line> lines_;
    AssembledProgram program_;
    std::vector<std::uint8_t> code_partial_;  // sub-word bytes pending in .code
};

}  // namespace

std::uint64_t AssembledProgram::symbol(const std::string& name) const {
    const auto it = symbols.find(name);
    require(it != symbols.end(), "undefined symbol '" + name + "'");
    return it->second;
}

AssembledProgram assemble(std::string_view source, const AssembleOptions& options) {
    require(is_pow2(options.data_base) || options.data_base == 0,
            "assemble: data_base must be a power of two");
    return Assembler(source, options).take();
}

std::vector<std::uint32_t> asm_random_words(std::size_t count, std::uint64_t seed) {
    std::vector<std::uint32_t> words;
    words.reserve(count);
    std::uint64_t state = seed;
    for (std::size_t i = 0; i < count; ++i)
        words.push_back(static_cast<std::uint32_t>(splitmix64_step(state)));
    return words;
}

std::vector<std::uint32_t> asm_smooth_words(std::size_t count, std::uint64_t seed,
                                            std::uint32_t max_delta) {
    std::vector<std::uint32_t> words;
    words.reserve(count);
    std::uint64_t state = seed;
    std::uint32_t value = static_cast<std::uint32_t>(splitmix64_step(state));
    const std::uint64_t steps = 2ULL * max_delta + 1;
    for (std::size_t i = 0; i < count; ++i) {
        words.push_back(value);
        const auto step =
            static_cast<std::int64_t>(splitmix64_step(state) % steps) - max_delta;
        value = static_cast<std::uint32_t>(static_cast<std::int64_t>(value) + step);
    }
    return words;
}

}  // namespace memopt
