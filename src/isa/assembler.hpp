// AR32 two-pass assembler.
//
// Turns textual AR32 assembly into an AssembledProgram: a code image (based
// at address 0), a data image (based at a configurable data base), and a
// symbol table. The bundled benchmark kernels (src/sim/kernels.cpp) are
// written in this syntax.
//
// Syntax summary (one statement per line, ';' starts a comment):
//
//   label:                       ; labels may share a line with a statement
//   .code                        ; switch to the code section (default)
//   .data                        ; switch to the data section
//   .word  v[, v...]             ; 32-bit values (integers or label[+/-off])
//   .half  v[, v...]             ; 16-bit values
//   .byte  v[, v...]             ; 8-bit values
//   .space N                     ; N zero bytes
//   .align N                     ; pad with zeros to an N-byte boundary
//   .rand  COUNT, SEED           ; COUNT deterministic pseudo-random words
//   .randsmooth COUNT, SEED, D   ; COUNT random-walk words (|step| <= D) —
//                                ; models smooth media/sensor data
//
//   add  r1, r2, r3              ; R-type ALU
//   addi r1, r2, #-4             ; I-type ALU ('#' on immediates optional)
//   ldw  r1, [r2, #8]            ; load/store, offset defaults to 0
//   ldwx r1, [r2, r3]            ; register-offset load/store
//   cmp  r1, r2 / cmpi r1, #5    ; set flags
//   beq loop / b done / bl fn    ; branches and calls take label operands
//   jr lr                        ; indirect jump
//
// Pseudo-instructions (expanded by the assembler):
//   li  rd, value-or-label       ; 32-bit constant load (always 2 words)
//   la  rd, label                ; alias of li
//   ret                          ; jr lr
//   push rd / pop rd             ; full-descending stack ops (2 words each)
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>


namespace memopt {

/// Assembler configuration.
struct AssembleOptions {
    std::uint64_t data_base = 0x10000;  ///< byte address of the data section
};

/// Output of the assembler.
struct AssembledProgram {
    std::vector<std::uint32_t> code;             ///< instruction words, based at 0
    std::vector<std::uint8_t> data;              ///< data image, based at data_base
    std::uint64_t data_base = 0;                 ///< byte address of data[0]
    std::map<std::string, std::uint64_t> symbols;  ///< label -> byte address

    /// Byte address of a symbol; throws memopt::Error if undefined.
    std::uint64_t symbol(const std::string& name) const;
};

/// Assemble AR32 source. Throws memopt::Error with a line-numbered message
/// on any syntax or range error.
AssembledProgram assemble(std::string_view source, const AssembleOptions& options = {});

/// The deterministic word stream behind the `.rand` directive (SplitMix64).
/// Exposed so tests can reproduce kernel input data exactly.
std::vector<std::uint32_t> asm_random_words(std::size_t count, std::uint64_t seed);

/// The deterministic random-walk stream behind `.randsmooth`: word i+1 =
/// word i + step, with step uniform in [-max_delta, +max_delta] (wrapping
/// 32-bit arithmetic). Exposed so tests can reproduce kernel input data.
std::vector<std::uint32_t> asm_smooth_words(std::size_t count, std::uint64_t seed,
                                            std::uint32_t max_delta);

}  // namespace memopt
