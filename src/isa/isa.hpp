// AR32: a 32-bit fixed-width load/store RISC instruction set.
//
// AR32 is the "ARM7-class simulator baseline" substrate of this repository:
// a compact RISC ISA with 16 registers, condition flags set by explicit
// compares, 16-bit immediates, and word-relative branches. It is expressive
// enough to implement the bundled embedded kernels while keeping the
// encoder, decoder and simulator small enough to verify exhaustively.
//
// Binary encoding (little-endian 32-bit words):
//   [31:26] opcode
//   R-type : rd[25:22] rn[21:18] rm[17:14]
//   I-type : rd[25:22] rn[21:18] imm16[15:0]
//   B      : cond[25:22] offset22[21:0]   (signed word offset from pc+4)
//   BL     : offset26[25:0]               (signed word offset from pc+4)
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace memopt {

/// AR32 opcodes. The enumerator value is the 6-bit opcode field.
enum class Op : std::uint8_t {
    // R-type arithmetic/logic: rd = rn <op> rm
    Add = 0,
    Sub,
    And,
    Orr,
    Eor,
    Lsl,
    Lsr,
    Asr,
    Mul,
    Mov,   // rd = rm
    Mvn,   // rd = ~rm
    Cmp,   // flags from rn - rm
    // R-type memory: rd <-> mem[rn + rm]
    Ldwx,
    Ldbx,
    Stwx,
    Stbx,
    // Indirect jump: pc = rm
    Jr,
    // I-type arithmetic/logic: rd = rn <op> imm
    Addi,  // imm sign-extended
    Subi,  // imm sign-extended
    Andi,  // imm zero-extended
    Orri,  // imm zero-extended
    Eori,  // imm zero-extended
    Lsli,  // shift amount = imm & 31
    Lsri,
    Asri,
    Movi,   // rd = sext(imm16)
    Movhi,  // rd = (rd & 0xFFFF) | imm16 << 16
    Cmpi,   // flags from rn - sext(imm16)
    // I-type memory: rd <-> mem[rn + sext(imm16)]
    Ldw,
    Ldh,  // zero-extending halfword load
    Ldb,  // zero-extending byte load
    Stw,
    Sth,
    Stb,
    // Control
    B,   // conditional branch (cond field)
    Bl,  // call: lr = pc + 4; pc += offset
    // Miscellaneous
    Out,   // append value of rm to the simulator output channel
    Halt,  // stop the simulator
    Nop,

    Count_,  // number of opcodes (not a real instruction)
};

/// Branch condition codes (evaluated against the N/Z/C/V flags set by
/// Cmp/Cmpi; signed comparisons use N^V, unsigned use C).
enum class Cond : std::uint8_t {
    Eq = 0,  // Z
    Ne,      // !Z
    Lt,      // signed <
    Ge,      // signed >=
    Gt,      // signed >
    Le,      // signed <=
    Lo,      // unsigned <
    Hs,      // unsigned >=
    Al,      // always

    Count_,
};

/// Number of general-purpose registers. r13 = sp, r14 = lr by convention;
/// the program counter is architectural state outside the register file.
inline constexpr unsigned kNumRegs = 16;
inline constexpr unsigned kRegSp = 13;
inline constexpr unsigned kRegLr = 14;

/// A decoded AR32 instruction.
struct Instr {
    Op op = Op::Nop;
    std::uint8_t rd = 0;
    std::uint8_t rn = 0;
    std::uint8_t rm = 0;
    Cond cond = Cond::Al;  // branches only
    std::int32_t imm = 0;  // I-type immediate, or branch word offset

    bool operator==(const Instr&) const = default;
};

/// Instruction format classes used by the encoder/decoder and assembler.
enum class Format : std::uint8_t { R, I, Branch, Call, None };

/// Format of an opcode.
Format format_of(Op op);

/// True for opcodes that read or write data memory.
bool is_memory_op(Op op);

/// True for loads (Ldw/Ldh/Ldb/Ldwx/Ldbx).
bool is_load_op(Op op);

/// Lower-case mnemonic ("add", "ldw", ...).
std::string_view mnemonic(Op op);

/// Condition suffix ("eq", "ne", ..., "" for Al).
std::string_view cond_name(Cond c);

/// Parse a register name: "r0".."r15", "sp", "lr". Returns nullopt if invalid.
std::optional<unsigned> parse_reg(std::string_view name);

/// Register display name ("r4", "sp", "lr").
std::string reg_name(unsigned r);

}  // namespace memopt
