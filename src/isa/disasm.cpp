#include "isa/disasm.hpp"

#include <map>

#include "isa/encode.hpp"
#include "support/string_util.hpp"

namespace memopt {

std::string disassemble(const Instr& i) {
    const std::string m(mnemonic(i.op));
    switch (i.op) {
        // Three-register ALU ops.
        case Op::Add:
        case Op::Sub:
        case Op::And:
        case Op::Orr:
        case Op::Eor:
        case Op::Lsl:
        case Op::Lsr:
        case Op::Asr:
        case Op::Mul:
            return format("%s %s, %s, %s", m.c_str(), reg_name(i.rd).c_str(),
                          reg_name(i.rn).c_str(), reg_name(i.rm).c_str());
        case Op::Mov:
        case Op::Mvn:
            return format("%s %s, %s", m.c_str(), reg_name(i.rd).c_str(), reg_name(i.rm).c_str());
        case Op::Cmp:
            return format("cmp %s, %s", reg_name(i.rn).c_str(), reg_name(i.rm).c_str());
        case Op::Ldwx:
        case Op::Ldbx:
        case Op::Stwx:
        case Op::Stbx:
            return format("%s %s, [%s, %s]", m.c_str(), reg_name(i.rd).c_str(),
                          reg_name(i.rn).c_str(), reg_name(i.rm).c_str());
        case Op::Jr:
            return format("jr %s", reg_name(i.rm).c_str());
        case Op::Addi:
        case Op::Subi:
        case Op::Andi:
        case Op::Orri:
        case Op::Eori:
        case Op::Lsli:
        case Op::Lsri:
        case Op::Asri:
            return format("%s %s, %s, #%d", m.c_str(), reg_name(i.rd).c_str(),
                          reg_name(i.rn).c_str(), i.imm);
        case Op::Movi:
        case Op::Movhi:
            return format("%s %s, #%d", m.c_str(), reg_name(i.rd).c_str(), i.imm);
        case Op::Cmpi:
            return format("cmpi %s, #%d", reg_name(i.rn).c_str(), i.imm);
        case Op::Ldw:
        case Op::Ldh:
        case Op::Ldb:
        case Op::Stw:
        case Op::Sth:
        case Op::Stb:
            return format("%s %s, [%s, #%d]", m.c_str(), reg_name(i.rd).c_str(),
                          reg_name(i.rn).c_str(), i.imm);
        case Op::B: {
            const std::string suffix(cond_name(i.cond));
            return format("b%s %+d", suffix.c_str(), i.imm);
        }
        case Op::Bl:
            return format("bl %+d", i.imm);
        case Op::Out:
            return format("out %s", reg_name(i.rm).c_str());
        case Op::Halt:
            return "halt";
        case Op::Nop:
            return "nop";
        case Op::Count_:
            break;
    }
    return "<invalid>";
}

std::string disassemble_word(std::uint32_t word) { return disassemble(decode(word)); }

std::string disassemble_program(const AssembledProgram& program) {
    // Reverse the symbol table for annotation. Code symbols are < data_base.
    std::map<std::uint64_t, std::string> code_labels;
    std::map<std::uint64_t, std::string> data_labels;
    for (const auto& [name, addr] : program.symbols) {
        if (addr < program.data_base && addr < program.code.size() * 4) {
            code_labels.emplace(addr, name);
        } else {
            data_labels.emplace(addr, name);
        }
    }

    std::string out;
    for (std::size_t index = 0; index < program.code.size(); ++index) {
        const std::uint64_t addr = index * 4;
        if (const auto it = code_labels.find(addr); it != code_labels.end())
            out += it->second + ":\n";
        const std::uint32_t word = program.code[index];
        const Instr instr = decode(word);
        std::string text = disassemble(instr);
        // Resolve branch/call targets back to labels when one exists.
        if (instr.op == Op::B || instr.op == Op::Bl) {
            const std::uint64_t target =
                addr + 4 + (static_cast<std::int64_t>(instr.imm) * 4);
            if (const auto it = code_labels.find(target); it != code_labels.end()) {
                const std::size_t space = text.rfind(' ');
                text = text.substr(0, space + 1) + it->second;
            }
        }
        out += format("  %06llx: %08x  %s\n", static_cast<unsigned long long>(addr), word,
                      text.c_str());
    }
    if (!data_labels.empty()) {
        out += "\ndata symbols:\n";
        for (const auto& [addr, name] : data_labels)
            out += format("  %06llx: %s\n", static_cast<unsigned long long>(addr), name.c_str());
    }
    return out;
}

}  // namespace memopt
