#include "isa/encode.hpp"

#include "support/assert.hpp"
#include "support/string_util.hpp"

namespace memopt {

namespace {

// Zero-extended immediates for logical ops; sign-extended for the rest.
bool imm_is_unsigned(Op op) {
    switch (op) {
        case Op::Andi:
        case Op::Orri:
        case Op::Eori:
        case Op::Movhi:
        case Op::Lsli:
        case Op::Lsri:
        case Op::Asri:
            return true;
        default:
            return false;
    }
}

std::uint32_t field(std::uint32_t value, unsigned shift) { return value << shift; }

std::int32_t sext(std::uint32_t value, unsigned bits) {
    const std::uint32_t mask = (bits >= 32) ? ~0u : ((1u << bits) - 1);
    value &= mask;
    const std::uint32_t sign = 1u << (bits - 1);
    return static_cast<std::int32_t>((value ^ sign) - sign);
}

}  // namespace

bool imm_fits(Op op, std::int32_t imm) {
    if (imm_is_unsigned(op)) return imm >= 0 && imm <= kUimm16Max;
    return imm >= kImm16Min && imm <= kImm16Max;
}

std::uint32_t encode(const Instr& instr) {
    require(static_cast<unsigned>(instr.op) < static_cast<unsigned>(Op::Count_),
            "encode: invalid opcode");
    require(instr.rd < kNumRegs && instr.rn < kNumRegs && instr.rm < kNumRegs,
            "encode: register out of range");
    std::uint32_t w = field(static_cast<std::uint32_t>(instr.op), 26);
    switch (format_of(instr.op)) {
        case Format::R:
            w |= field(instr.rd, 22) | field(instr.rn, 18) | field(instr.rm, 14);
            break;
        case Format::I: {
            require(imm_fits(instr.op, instr.imm),
                    format("encode: immediate %d out of range for %.*s", instr.imm,
                           static_cast<int>(mnemonic(instr.op).size()), mnemonic(instr.op).data()));
            const auto imm16 = static_cast<std::uint32_t>(instr.imm) & 0xFFFFu;
            w |= field(instr.rd, 22) | field(instr.rn, 18) | imm16;
            break;
        }
        case Format::Branch: {
            require(static_cast<unsigned>(instr.cond) < static_cast<unsigned>(Cond::Count_),
                    "encode: invalid condition");
            require(instr.imm >= kBranchOffsetMin && instr.imm <= kBranchOffsetMax,
                    "encode: branch offset out of range");
            const auto off = static_cast<std::uint32_t>(instr.imm) & 0x3FFFFFu;
            w |= field(static_cast<std::uint32_t>(instr.cond), 22) | off;
            break;
        }
        case Format::Call: {
            require(instr.imm >= kCallOffsetMin && instr.imm <= kCallOffsetMax,
                    "encode: call offset out of range");
            w |= static_cast<std::uint32_t>(instr.imm) & 0x3FFFFFFu;
            break;
        }
        case Format::None:
            break;
    }
    return w;
}

Instr decode(std::uint32_t word) {
    const std::uint32_t opfield = word >> 26;
    require(opfield < static_cast<std::uint32_t>(Op::Count_), "decode: invalid opcode field");
    Instr instr;
    instr.op = static_cast<Op>(opfield);
    switch (format_of(instr.op)) {
        case Format::R:
            instr.rd = static_cast<std::uint8_t>((word >> 22) & 0xF);
            instr.rn = static_cast<std::uint8_t>((word >> 18) & 0xF);
            instr.rm = static_cast<std::uint8_t>((word >> 14) & 0xF);
            break;
        case Format::I:
            instr.rd = static_cast<std::uint8_t>((word >> 22) & 0xF);
            instr.rn = static_cast<std::uint8_t>((word >> 18) & 0xF);
            instr.imm = imm_is_unsigned(instr.op) ? static_cast<std::int32_t>(word & 0xFFFFu)
                                                  : sext(word, 16);
            break;
        case Format::Branch: {
            const std::uint32_t condfield = (word >> 22) & 0xF;
            require(condfield < static_cast<std::uint32_t>(Cond::Count_),
                    "decode: invalid condition field");
            instr.cond = static_cast<Cond>(condfield);
            instr.imm = sext(word, 22);
            break;
        }
        case Format::Call:
            instr.imm = sext(word, 26);
            break;
        case Format::None:
            break;
    }
    return instr;
}

}  // namespace memopt
