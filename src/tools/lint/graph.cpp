#include "tools/lint/graph.hpp"

#include <algorithm>
#include <functional>
#include <sstream>

#include "support/assert.hpp"

namespace memopt::lint {

namespace {

// ---------------------------------------------------------------------------
// TOML-lite reader for layering.toml

struct TomlLine {
    enum class Kind { Table, KeyValue };
    Kind kind;
    std::string table;  // for Table: name inside [[...]]
    std::string key;
    std::string value;  // raw value text, quotes intact
    int line = 0;
};

std::string trim(std::string s) {
    const auto notspace = [](unsigned char c) { return !std::isspace(c); };
    s.erase(s.begin(), std::find_if(s.begin(), s.end(), notspace));
    s.erase(std::find_if(s.rbegin(), s.rend(), notspace).base(), s.end());
    return s;
}

[[noreturn]] void toml_error(const std::string& path, int line, const std::string& what) {
    throw Error("memopt_lint: " + path + ":" + std::to_string(line) + ": " + what);
}

std::vector<TomlLine> toml_lines(std::string_view text, const std::string& path) {
    std::vector<TomlLine> out;
    std::istringstream in{std::string(text)};
    std::string raw;
    int lineno = 0;
    while (std::getline(in, raw)) {
        ++lineno;
        // Strip comments outside strings.
        bool in_string = false;
        for (std::size_t i = 0; i < raw.size(); ++i) {
            if (raw[i] == '"') in_string = !in_string;
            else if (raw[i] == '#' && !in_string) {
                raw.erase(i);
                break;
            }
        }
        const std::string line = trim(raw);
        if (line.empty()) continue;
        if (line.starts_with("[[") && line.ends_with("]]")) {
            out.push_back(TomlLine{TomlLine::Kind::Table,
                                   trim(line.substr(2, line.size() - 4)), "", "", lineno});
            continue;
        }
        const std::size_t eq = line.find('=');
        if (eq == std::string::npos) toml_error(path, lineno, "expected `key = value`");
        out.push_back(TomlLine{TomlLine::Kind::KeyValue, "", trim(line.substr(0, eq)),
                               trim(line.substr(eq + 1)), lineno});
    }
    return out;
}

std::string toml_string(const TomlLine& l, const std::string& path) {
    if (l.value.size() < 2 || l.value.front() != '"' || l.value.back() != '"') {
        toml_error(path, l.line, "value of '" + l.key + "' must be a \"string\"");
    }
    return l.value.substr(1, l.value.size() - 2);
}

bool toml_bool(const TomlLine& l, const std::string& path) {
    if (l.value == "true") return true;
    if (l.value == "false") return false;
    toml_error(path, l.line, "value of '" + l.key + "' must be true or false");
}

int toml_int(const TomlLine& l, const std::string& path) {
    try {
        return std::stoi(l.value);
    } catch (const std::exception&) {
        toml_error(path, l.line, "value of '" + l.key + "' must be an integer");
    }
}

std::vector<std::string> toml_string_array(const TomlLine& l, const std::string& path) {
    if (l.value.size() < 2 || l.value.front() != '[' || l.value.back() != ']') {
        toml_error(path, l.line, "value of '" + l.key + "' must be [\"a\", \"b\", ...]");
    }
    std::vector<std::string> out;
    std::string body = l.value.substr(1, l.value.size() - 2);
    std::size_t pos = 0;
    while (pos < body.size()) {
        const std::size_t open = body.find('"', pos);
        if (open == std::string::npos) break;
        const std::size_t close = body.find('"', open + 1);
        if (close == std::string::npos) {
            toml_error(path, l.line, "unterminated string in array");
        }
        out.push_back(body.substr(open + 1, close - open - 1));
        pos = close + 1;
    }
    return out;
}

/// Collapse "." and ".." path components ('/' separators assumed).
std::string normalize_path(const std::string& p) {
    std::vector<std::string> parts;
    std::string part;
    for (std::size_t i = 0; i <= p.size(); ++i) {
        const char c = i < p.size() ? p[i] : '/';
        if (c == '/') {
            if (part == "..") {
                if (!parts.empty()) parts.pop_back();
            } else if (!part.empty() && part != ".") {
                parts.push_back(part);
            }
            part.clear();
        } else {
            part += c;
        }
    }
    std::string out;
    for (const std::string& s : parts) {
        if (!out.empty()) out += '/';
        out += s;
    }
    return out;
}

std::string dirname_of(const std::string& p) {
    const std::size_t slash = p.rfind('/');
    return slash == std::string::npos ? std::string() : p.substr(0, slash);
}

std::string strip_extension(const std::string& p) {
    const std::size_t slash = p.rfind('/');
    const std::size_t dot = p.rfind('.');
    if (dot == std::string::npos || (slash != std::string::npos && dot < slash)) return p;
    return p.substr(0, dot);
}

bool is_implementation_file(const std::string& p) {
    return p.ends_with(".cpp") || p.ends_with(".cc") || p.ends_with(".cxx");
}

}  // namespace

bool LayeringConfig::exception_allows(const std::string& from, const std::string& to) const {
    for (const auto& [f, t] : exceptions) {
        if (f == from && t == to) return true;
    }
    return false;
}

LayeringConfig parse_layering(std::string_view text, const std::string& path) {
    LayeringConfig config;
    bool saw_schema = false;

    enum class Table { Root, Layer, Exception };
    Table table = Table::Root;
    int rank = -1;
    std::vector<std::string> modules;
    std::string exc_from, exc_to, exc_reason;
    int table_line = 0;

    auto flush = [&] {
        if (table == Table::Layer) {
            if (rank < 0) toml_error(path, table_line, "[[layer]] needs a `rank`");
            if (modules.empty()) toml_error(path, table_line, "[[layer]] needs `modules`");
            for (const std::string& m : modules) {
                if (!config.module_layers.emplace(m, rank).second) {
                    toml_error(path, table_line,
                               "module '" + m + "' is listed in more than one layer");
                }
            }
        } else if (table == Table::Exception) {
            if (exc_from.empty() || exc_to.empty()) {
                toml_error(path, table_line, "[[exception]] needs `from` and `to`");
            }
            if (exc_reason.empty()) {
                toml_error(path, table_line,
                           "[[exception]] needs a `reason` — undocumented back-edges "
                           "defeat the point of the DAG");
            }
            config.exceptions.emplace_back(exc_from, exc_to);
        }
        rank = -1;
        modules.clear();
        exc_from.clear();
        exc_to.clear();
        exc_reason.clear();
    };

    for (const TomlLine& l : toml_lines(text, path)) {
        if (l.kind == TomlLine::Kind::Table) {
            flush();
            table_line = l.line;
            if (l.table == "layer") table = Table::Layer;
            else if (l.table == "exception") table = Table::Exception;
            else toml_error(path, l.line, "unknown table [[" + l.table + "]]");
            continue;
        }
        switch (table) {
            case Table::Root:
                if (l.key == "schema") {
                    if (toml_string(l, path) != "memopt.layering.v1") {
                        toml_error(path, l.line,
                                   "unsupported layering schema (want memopt.layering.v1)");
                    }
                    saw_schema = true;
                } else if (l.key == "allow_same_layer") {
                    config.allow_same_layer = toml_bool(l, path);
                } else {
                    toml_error(path, l.line, "unknown key '" + l.key + "'");
                }
                break;
            case Table::Layer:
                if (l.key == "rank") rank = toml_int(l, path);
                else if (l.key == "modules") modules = toml_string_array(l, path);
                else toml_error(path, l.line, "unknown [[layer]] key '" + l.key + "'");
                break;
            case Table::Exception:
                if (l.key == "from") exc_from = toml_string(l, path);
                else if (l.key == "to") exc_to = toml_string(l, path);
                else if (l.key == "reason") exc_reason = toml_string(l, path);
                else toml_error(path, l.line, "unknown [[exception]] key '" + l.key + "'");
                break;
        }
    }
    flush();
    if (!saw_schema) toml_error(path, 1, "missing `schema = \"memopt.layering.v1\"`");
    if (config.module_layers.empty()) toml_error(path, 1, "no [[layer]] tables");
    return config;
}

std::string module_of(const std::string& path) {
    std::vector<std::string> parts;
    std::string part;
    for (std::size_t i = 0; i <= path.size(); ++i) {
        const char c = i < path.size() ? path[i] : '/';
        if (c == '/') {
            if (!part.empty()) parts.push_back(part);
            part.clear();
        } else {
            part += c;
        }
    }
    if (parts.empty()) return {};
    if (parts[0] == "src" && parts.size() >= 2) return parts[1];
    return parts[0];
}

IncludeGraph build_include_graph(const std::map<std::string, FileIndex>& indexes) {
    IncludeGraph graph;
    for (const auto& [path, idx] : indexes) {
        std::set<std::string> neighbours;
        for (std::size_t s = 0; s < idx.includes.size(); ++s) {
            const IncludeSite& site = idx.includes[s];
            if (site.system) continue;
            std::string resolved;
            for (const std::string& candidate :
                 {std::string("src/") + site.target, site.target,
                  normalize_path(dirname_of(path) + "/" + site.target)}) {
                if (indexes.count(candidate) != 0) {
                    resolved = candidate;
                    break;
                }
            }
            if (resolved.empty()) continue;
            graph.resolved[path][s] = resolved;
            neighbours.insert(std::move(resolved));
        }
        graph.edges[path].assign(neighbours.begin(), neighbours.end());
    }
    return graph;
}

std::vector<std::vector<std::string>> include_cycles(const IncludeGraph& graph) {
    // Tarjan SCC, recursive. Include chains are shallow (tens of frames at
    // worst), so recursion depth is not a concern at repo scale.
    struct State {
        int index = -1;
        int lowlink = 0;
        bool on_stack = false;
    };
    std::map<std::string, State> state;
    std::vector<std::string> stack;
    std::vector<std::vector<std::string>> cycles;
    int counter = 0;

    std::function<void(const std::string&)> strongconnect = [&](const std::string& v) {
        State& sv = state[v];
        sv.index = sv.lowlink = counter++;
        sv.on_stack = true;
        stack.push_back(v);

        const auto it = graph.edges.find(v);
        if (it != graph.edges.end()) {
            for (const std::string& w : it->second) {
                State& sw = state[w];
                if (sw.index < 0) {
                    strongconnect(w);
                    sv.lowlink = std::min(sv.lowlink, state[w].lowlink);
                } else if (sw.on_stack) {
                    sv.lowlink = std::min(sv.lowlink, sw.index);
                }
            }
        }
        if (sv.lowlink == sv.index) {
            std::vector<std::string> component;
            for (;;) {
                std::string w = stack.back();
                stack.pop_back();
                state[w].on_stack = false;
                const bool done = w == v;
                component.push_back(std::move(w));
                if (done) break;
            }
            bool self_loop = false;
            if (component.size() == 1) {
                const auto eit = graph.edges.find(component[0]);
                self_loop = eit != graph.edges.end() &&
                            std::find(eit->second.begin(), eit->second.end(),
                                      component[0]) != eit->second.end();
            }
            if (component.size() > 1 || self_loop) {
                std::sort(component.begin(), component.end());
                cycles.push_back(std::move(component));
            }
        }
    };

    for (const auto& [v, _] : graph.edges) {
        if (state[v].index < 0) strongconnect(v);
    }
    std::sort(cycles.begin(), cycles.end());
    return cycles;
}

void resolve_layering(const std::map<std::string, FileIndex>& indexes,
                      const IncludeGraph& graph, const LayeringConfig& config,
                      std::vector<Finding>& findings) {
    for (const auto& [path, idx] : indexes) {
        const std::string from = module_of(path);
        const auto layer_from = config.module_layers.find(from);
        if (layer_from == config.module_layers.end()) continue;  // unmapped module
        const auto rit = graph.resolved.find(path);
        if (rit == graph.resolved.end()) continue;
        for (const auto& [site_idx, target_path] : rit->second) {
            const IncludeSite& site = idx.includes[site_idx];
            if (site.layer_exempt) continue;
            const std::string to = module_of(target_path);
            if (to == from) continue;
            const auto layer_to = config.module_layers.find(to);
            if (layer_to == config.module_layers.end()) continue;
            if (layer_to->second < layer_from->second) continue;
            if (layer_to->second == layer_from->second && config.allow_same_layer) continue;
            if (config.exception_allows(from, to)) continue;
            findings.push_back(Finding{
                path, site.line, "L1",
                "include of '" + site.target + "' violates the layering DAG: module '" +
                    from + "' (layer " + std::to_string(layer_from->second) +
                    ") may not depend on '" + to + "' (layer " +
                    std::to_string(layer_to->second) +
                    "); invert the dependency, move the shared piece to a lower layer, "
                    "or record a [[exception]] with a rationale in tools/layering.toml",
                false});
        }
    }
}

void resolve_cycles(const IncludeGraph& graph, std::vector<Finding>& findings) {
    for (const std::vector<std::string>& cycle : include_cycles(graph)) {
        std::string members;
        for (const std::string& m : cycle) {
            if (!members.empty()) members += " -> ";
            members += m;
        }
        findings.push_back(Finding{
            cycle.front(), 1, "L2",
            "include cycle: " + members + " -> " + cycle.front() +
                "; break it with a forward declaration or by splitting the shared "
                "interface into its own header",
            false});
    }
}

void resolve_unused_includes(const std::map<std::string, FileIndex>& indexes,
                             const IncludeGraph& graph, std::vector<Finding>& findings) {
    // closure_syms[H] = every symbol declared by H or anything reachable
    // from H through resolved quoted includes (H inclusive). Memoized
    // across the whole scan — headers are shared, files are many.
    std::map<std::string, std::set<std::string>> closure_syms;
    std::function<const std::set<std::string>&(const std::string&)> closure =
        [&](const std::string& h) -> const std::set<std::string>& {
        const auto hit = closure_syms.find(h);
        if (hit != closure_syms.end()) return hit->second;
        // Insert the entry first so include cycles terminate (the partial
        // set is a sound under-approximation during the recursion).
        std::set<std::string>& syms = closure_syms[h];
        const auto idx = indexes.find(h);
        if (idx != indexes.end()) {
            syms.insert(idx->second.declared_symbols.begin(),
                        idx->second.declared_symbols.end());
        }
        const auto eit = graph.edges.find(h);
        if (eit != graph.edges.end()) {
            for (const std::string& next : eit->second) {
                if (next == h) continue;
                const std::set<std::string>& sub = closure(next);
                // `syms` may have been rehashed-free (std::set), but take a
                // fresh reference in case the recursive call added to it.
                closure_syms[h].insert(sub.begin(), sub.end());
            }
        }
        return closure_syms[h];
    };

    for (const auto& [path, idx] : indexes) {
        const auto rit = graph.resolved.find(path);
        if (rit == graph.resolved.end()) continue;
        const std::set<std::string> used(idx.used_identifiers.begin(),
                                         idx.used_identifiers.end());
        const std::string own_stem = strip_extension(path);

        for (const auto& [site_idx, target_path] : rit->second) {
            const IncludeSite& site = idx.includes[site_idx];
            if (site.keep_annotated) continue;
            // A .cpp keeps its primary header unconditionally: it is the
            // declaration/definition pairing, not a symbol import.
            if (is_implementation_file(path) && strip_extension(target_path) == own_stem)
                continue;

            const auto target_idx = indexes.find(target_path);
            if (target_idx == indexes.end()) continue;

            // Directly-declared symbol referenced -> used, done.
            bool direct_use = false;
            for (const std::string& s : target_idx->second.declared_symbols) {
                if (used.count(s) != 0) {
                    direct_use = true;
                    break;
                }
            }
            if (direct_use) continue;

            // Referenced symbols this include provides only transitively.
            std::vector<std::string> transitive_needs;
            for (const std::string& s : closure(target_path)) {
                if (used.count(s) != 0) transitive_needs.push_back(s);
            }

            if (!transitive_needs.empty()) {
                // Keep unless every one of those symbols also arrives via
                // the file's other direct includes.
                std::set<std::string> covered;
                for (const auto& [other_idx, other_path] : rit->second) {
                    if (other_idx == site_idx) continue;
                    const std::set<std::string>& sub = closure(other_path);
                    covered.insert(sub.begin(), sub.end());
                }
                bool all_covered = true;
                for (const std::string& s : transitive_needs) {
                    if (covered.count(s) == 0) {
                        all_covered = false;
                        break;
                    }
                }
                if (!all_covered) continue;
            }

            findings.push_back(Finding{
                path, site.line, "I1",
                "unused include '" + site.target +
                    "': nothing it declares (directly, or transitively beyond what the "
                    "other includes already provide) is referenced here; drop it or "
                    "annotate `memopt-lint: keep-include` with a rationale",
                false});
        }
    }
}

void resolve_schemas(const std::map<std::string, FileIndex>& indexes,
                     const std::vector<SchemaGolden>& goldens,
                     std::vector<Finding>& findings) {
    for (const SchemaGolden& golden : goldens) {
        // First emission site per key, in sorted (source, line) order.
        std::map<std::string, std::pair<std::string, int>> emitted;
        std::vector<std::string> sources(golden.sources);
        std::sort(sources.begin(), sources.end());
        for (const std::string& source : sources) {
            const auto it = indexes.find(source);
            if (it == indexes.end()) {
                findings.push_back(Finding{
                    golden.path, 1, "S1",
                    "schema " + golden.id + " lists source '" + source +
                        "' which is not in the scanned tree; fix the golden's sources",
                    false});
                continue;
            }
            for (const FileIndex::JsonKey& k : it->second.json_keys) {
                emitted.emplace(k.key, std::make_pair(source, k.line));
            }
        }
        for (const auto& [key, where] : emitted) {
            if (golden.keys.count(key) != 0) continue;
            findings.push_back(Finding{
                where.first, where.second, "S1",
                "JSON key '" + key + "' is not part of frozen schema " + golden.id + " (" +
                    golden.path +
                    "); update the golden in the same change or stop emitting the key",
                false});
        }
        for (const std::string& key : golden.keys) {
            if (emitted.count(key) != 0) continue;
            findings.push_back(Finding{
                golden.path, 1, "S1",
                "frozen key '" + key + "' of schema " + golden.id +
                    " is no longer emitted by any of its sources; remove it from the "
                    "golden or restore the writer",
                false});
        }
    }
}

}  // namespace memopt::lint
