// memopt_lint semantic index — pass 1 of the two-pass engine.
//
// The project-wide rule families (module layering L1/L2, IWYU-lite I1,
// cross-file unordered-member D1, JSON-schema conformance S1) cannot be
// answered one file at a time: they need the include graph, every header's
// declared-symbol table, and the JSON keys each writer emits. Pass 1
// distils each source file into a small, content-derived `FileIndex` —
// includes, declared symbols, used identifiers, unordered-container
// declarations, D1 iteration candidates, JsonWriter key emissions, and the
// file's token-local findings. Pass 2 (lint.cpp) then runs the global
// rules over the index set alone, never re-touching tokens.
//
// Because a FileIndex depends only on the file's bytes (and its path), it
// is the unit of the incremental cache: the driver persists every index
// keyed by FNV-1a-64 content hash, and a warm re-lint re-tokenizes only
// files whose hash changed. Global rules are recomputed from the cached
// indexes on every run, so cross-file facts (a member added to a header,
// a layering-config edit, a schema golden change) are always honoured
// without invalidating unrelated per-file entries.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "tools/lint/rules.hpp"

namespace memopt::lint {

/// Bump when the tokenizer, index extraction, or any token-local rule
/// changes behaviour: the driver folds it into the cache header, so stale
/// caches from an older engine are discarded wholesale.
inline constexpr std::string_view kEngineVersion = "memopt-lint-2";

/// One #include directive, as seen in the source.
struct IncludeSite {
    std::string target;  // path between the delimiters, verbatim
    int line = 0;
    bool system = false;          // <...> form (never checked by I1/L1)
    bool keep_annotated = false;  // `memopt-lint: keep-include` / `I1`
    bool layer_exempt = false;    // `memopt-lint: layering` / `L1`
};

/// Everything the global pass needs to know about one file. Derived from
/// file content + path only — never from other files — so it can be cached
/// by content hash.
struct FileIndex {
    std::string path;  // root-relative, '/' separators
    std::uint64_t content_hash = 0;
    bool is_header = false;

    std::vector<IncludeSite> includes;
    /// Header-declared names (types, functions, macros, enumerators,
    /// members); deliberately generous, see collect_declared_symbols.
    std::vector<std::string> declared_symbols;
    /// Every identifier mentioned in the file (tokens + directive bodies),
    /// sorted unique; I1 intersects this with header symbol tables.
    std::vector<std::string> used_identifiers;
    /// Names declared as unordered containers (all, and the trailing-'_'
    /// member subset that feeds the cross-file D1 union).
    std::vector<std::string> unordered_locals;
    std::vector<std::string> unordered_members;
    /// D1 iteration candidates, resolved against the member union in pass 2.
    std::vector<D1Site> d1_sites;
    /// String arguments of JsonWriter member("…")/key("…") calls.
    struct JsonKey {
        std::string key;
        int line = 0;
    };
    std::vector<JsonKey> json_keys;
    /// Findings from the token-local rules (D2–D5, R1, A1, H1).
    std::vector<Finding> local_findings;
};

/// FNV-1a-64 over raw bytes — the cache's content fingerprint.
std::uint64_t fnv1a64(std::string_view bytes) noexcept;

/// Build the index for one tokenized file (pass 1 work unit).
FileIndex build_file_index(const SourceFile& file, std::uint64_t content_hash);

// ---------------------------------------------------------------------------
// Incremental cache (text format, one block per file)

/// Serialize indexes for persistence. `tool_stamp` identifies the engine +
/// rule versions; parse_cache rejects a document with a different stamp.
std::string serialize_cache(std::string_view tool_stamp,
                            const std::vector<FileIndex>& indexes);

/// Parse a cache document into path -> FileIndex. Returns an empty map (and
/// sets `stale` when given) if the document is unreadable, malformed, or
/// stamped by a different engine version — a cache miss, never an error.
std::map<std::string, FileIndex> parse_cache(std::string_view text,
                                             std::string_view tool_stamp);

// ---------------------------------------------------------------------------
// Minimal JSON reader (for schema goldens; memopt has a writer only)

/// Parsed JSON value — just enough structure for the lint configs.
struct JsonValue {
    enum class Kind { Null, Bool, Number, String, Array, Object };
    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> items;                            // Array
    std::vector<std::pair<std::string, JsonValue>> members;  // Object, in order

    /// Object member by key, or nullptr.
    const JsonValue* find(std::string_view key) const;
};

/// Parse a complete JSON document. Throws memopt::Error (with `name` in the
/// message) on malformed input or trailing garbage.
JsonValue parse_json(std::string_view text, const std::string& name);

// ---------------------------------------------------------------------------
// Schema goldens (docs/schemas/*.v1.json)

/// One frozen schema: the flat set of JSON keys the named source files are
/// allowed to emit through JsonWriter member()/key() literals.
struct SchemaGolden {
    std::string path;  // root-relative golden path (for diagnostics)
    std::string id;    // e.g. "memopt.report.v1"
    std::vector<std::string> sources;  // root-relative emitting files
    std::set<std::string> keys;
};

/// Parse one golden document (schema "memopt.schema-freeze.v1"). Throws
/// memopt::Error on malformed documents.
SchemaGolden parse_schema_golden(std::string_view text, const std::string& path);

}  // namespace memopt::lint
