#include "tools/lint/lint.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <tuple>

#include "support/assert.hpp"
#include "support/durable/atomic_file.hpp"
#include "support/json.hpp"
#include "support/parallel.hpp"
#include "tools/lint/graph.hpp"
#include "tools/lint/index.hpp"

namespace fs = std::filesystem;

namespace memopt::lint {

namespace {

bool lintable_extension(const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" || ext == ".h" ||
           ext == ".hh" || ext == ".hxx" || ext == ".inl";
}

bool excluded(const fs::path& p, const std::vector<std::string>& exclude_dirs) {
    for (const fs::path& part : p) {
        for (const std::string& ex : exclude_dirs) {
            if (part.string() == ex) return true;
        }
    }
    return false;
}

/// All lintable files under `path` (or `path` itself), sorted by their
/// root-relative diagnostic path for a deterministic scan order.
void collect_files(const fs::path& root, const std::string& rel_path,
                   const std::vector<std::string>& exclude_dirs,
                   std::vector<std::string>& out) {
    const fs::path abs = fs::path(rel_path).is_absolute() ? fs::path(rel_path) : root / rel_path;
    if (!fs::exists(abs)) throw Error("memopt_lint: no such path: " + abs.string());
    if (fs::is_regular_file(abs)) {
        out.push_back(fs::relative(abs, root).generic_string());
        return;
    }
    for (const auto& entry : fs::recursive_directory_iterator(abs)) {
        if (!entry.is_regular_file() || !lintable_extension(entry.path())) continue;
        const fs::path rel = fs::relative(entry.path(), root);
        if (excluded(rel, exclude_dirs)) continue;
        out.push_back(rel.generic_string());
    }
}

std::string read_file(const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    if (!in) throw Error("memopt_lint: cannot read " + p.string());
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/// Resolve an optional config path: explicit values must exist; an empty
/// value falls back to `auto_rel` when present under root, else "".
std::string resolve_config(const fs::path& root, const std::string& configured,
                           const char* auto_rel, const char* what) {
    if (!configured.empty()) {
        const fs::path p = fs::path(configured).is_absolute() ? fs::path(configured)
                                                              : root / configured;
        if (!fs::exists(p)) {
            throw Error(std::string("memopt_lint: ") + what + " not found: " + p.string());
        }
        return configured;
    }
    return fs::exists(root / auto_rel) ? std::string(auto_rel) : std::string();
}

}  // namespace

std::size_t LintReport::active_count() const {
    return static_cast<std::size_t>(
        std::count_if(findings.begin(), findings.end(),
                      [](const Finding& f) { return !f.baselined; }));
}

std::size_t LintReport::baselined_count() const {
    return findings.size() - active_count();
}

std::vector<BaselineEntry> parse_baseline(std::istream& in, const std::string& name) {
    std::vector<BaselineEntry> entries;
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos) line.erase(hash);
        while (!line.empty() && (line.back() == ' ' || line.back() == '\t' ||
                                 line.back() == '\r')) {
            line.pop_back();
        }
        if (line.empty()) continue;
        // file:line:rule — split on the *last* two colons so Windows-style
        // or otherwise exotic paths survive.
        const std::size_t c2 = line.rfind(':');
        const std::size_t c1 = c2 == std::string::npos ? std::string::npos
                                                       : line.rfind(':', c2 - 1);
        BaselineEntry e;
        if (c1 == std::string::npos || c1 == 0 || c2 == c1 + 1 || c2 + 1 >= line.size()) {
            throw Error("memopt_lint: malformed baseline entry at " + name + ":" +
                        std::to_string(lineno) + ": '" + line + "' (want file:line:rule)");
        }
        e.file = line.substr(0, c1);
        e.rule = line.substr(c2 + 1);
        try {
            e.line = std::stoi(line.substr(c1 + 1, c2 - c1 - 1));
        } catch (const std::exception&) {
            throw Error("memopt_lint: malformed baseline line number at " + name + ":" +
                        std::to_string(lineno) + ": '" + line + "'");
        }
        entries.push_back(std::move(e));
    }
    return entries;
}

LintReport run_lint(const LintOptions& options) {
    const fs::path root(options.root);
    if (!fs::is_directory(root)) {
        throw Error("memopt_lint: root is not a directory: " + options.root);
    }

    std::vector<std::string> files;
    for (const std::string& p : options.paths) collect_files(root, p, options.exclude_dirs, files);
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    // Warm-cache load. A missing, unreadable, malformed, or version-
    // mismatched cache is a silent full miss, never an error.
    std::map<std::string, FileIndex> cached;
    if (!options.cache_path.empty()) {
        std::ifstream in(fs::path(options.cache_path), std::ios::binary);
        if (in) {
            std::ostringstream ss;
            ss << in.rdbuf();
            cached = parse_cache(ss.str(), kEngineVersion);
        }
    }

    // Pass 1: read + hash every file; reuse the cached index when the
    // content hash matches, otherwise tokenize and re-index. parallel_map
    // preserves input order, so the index set is identical at any jobs.
    struct Slot {
        FileIndex index;
        bool from_cache = false;
    };
    std::vector<Slot> slots = parallel_map(
        files,
        [&](const std::string& rel) -> Slot {
            const std::string content = read_file(root / rel);
            const std::uint64_t hash = fnv1a64(content);
            const auto it = cached.find(rel);
            if (it != cached.end() && it->second.content_hash == hash) {
                return Slot{it->second, true};
            }
            return Slot{build_file_index(tokenize(rel, content), hash), false};
        },
        options.jobs);

    LintReport report;
    report.files_scanned = slots.size();
    std::map<std::string, FileIndex> indexes;
    for (Slot& slot : slots) {
        if (slot.from_cache) ++report.files_from_cache;
        indexes.emplace(slot.index.path, std::move(slot.index));
    }

    // Rewrite the cache only when it would change: every entry a hit and no
    // stale entries to prune means the document on disk is already exact,
    // and skipping the write (and its fsync) keeps warm re-lints cheap.
    const bool cache_current =
        report.files_from_cache == indexes.size() && cached.size() == indexes.size();
    if (!options.cache_path.empty() && !cache_current) {
        std::vector<FileIndex> ordered;
        ordered.reserve(indexes.size());
        for (const auto& [_, idx] : indexes) ordered.push_back(idx);
        atomic_write(options.cache_path, serialize_cache(kEngineVersion, ordered));
    }

    // Pass 2: token-local findings straight from the indexes, then the
    // project-wide rules over the index set.
    std::set<std::string> member_union;
    for (const auto& [_, idx] : indexes) {
        member_union.insert(idx.unordered_members.begin(), idx.unordered_members.end());
    }
    for (const auto& [path, idx] : indexes) {
        report.findings.insert(report.findings.end(), idx.local_findings.begin(),
                               idx.local_findings.end());
        std::set<std::string> names(member_union);
        names.insert(idx.unordered_locals.begin(), idx.unordered_locals.end());
        resolve_d1(path, idx.d1_sites, names, report.findings);
    }

    const IncludeGraph graph = build_include_graph(indexes);
    const std::string layering =
        resolve_config(root, options.layering_path, "tools/layering.toml", "layering config");
    if (!layering.empty()) {
        const fs::path p = fs::path(layering).is_absolute() ? fs::path(layering)
                                                            : root / layering;
        const LayeringConfig config = parse_layering(read_file(p), layering);
        resolve_layering(indexes, graph, config, report.findings);
    }
    resolve_cycles(graph, report.findings);
    resolve_unused_includes(indexes, graph, report.findings);

    const std::string schemas_dir =
        resolve_config(root, options.schemas_dir, "docs/schemas", "schemas directory");
    if (!schemas_dir.empty()) {
        const fs::path dir = fs::path(schemas_dir).is_absolute() ? fs::path(schemas_dir)
                                                                 : root / schemas_dir;
        std::vector<fs::path> golden_paths;
        for (const auto& entry : fs::directory_iterator(dir)) {
            if (entry.is_regular_file() && entry.path().extension() == ".json") {
                golden_paths.push_back(entry.path());
            }
        }
        std::sort(golden_paths.begin(), golden_paths.end());
        std::vector<SchemaGolden> goldens;
        goldens.reserve(golden_paths.size());
        for (const fs::path& p : golden_paths) {
            const std::string rel = fs::relative(p, root).generic_string();
            goldens.push_back(parse_schema_golden(read_file(p), rel));
        }
        resolve_schemas(indexes, goldens, report.findings);
    }

    std::sort(report.findings.begin(), report.findings.end(),
              [](const Finding& a, const Finding& b) {
                  return std::tie(a.file, a.line, a.rule, a.message) <
                         std::tie(b.file, b.line, b.rule, b.message);
              });

    // Baseline: each entry may suppress exactly one finding; entries that
    // match nothing are reported as stale so the file can be pruned.
    if (!options.baseline_path.empty()) {
        std::ifstream in(options.baseline_path);
        if (!in) throw Error("memopt_lint: cannot read baseline " + options.baseline_path);
        for (const BaselineEntry& e : parse_baseline(in, options.baseline_path)) {
            bool matched = false;
            for (Finding& f : report.findings) {
                if (!f.baselined && f.file == e.file && f.line == e.line && f.rule == e.rule) {
                    f.baselined = true;
                    matched = true;
                    break;
                }
            }
            if (!matched) {
                report.stale_baseline.push_back(e.file + ":" + std::to_string(e.line) + ":" +
                                                e.rule);
            }
        }
    }
    return report;
}

void write_json(JsonWriter& w, const LintOptions& options, const LintReport& report) {
    w.begin_object();
    w.member("schema", "memopt.lint.v1");
    w.member("root", options.root);
    w.key("paths").begin_array();
    for (const std::string& p : options.paths) w.value(p);
    w.end_array();
    w.member("files_scanned", static_cast<std::uint64_t>(report.files_scanned));
    w.member("files_from_cache", static_cast<std::uint64_t>(report.files_from_cache));
    w.key("rules").begin_array();
    for (const RuleInfo& r : rule_catalogue()) {
        w.begin_object();
        w.member("id", r.id);
        w.member("summary", r.summary);
        w.end_object();
    }
    w.end_array();
    w.key("findings").begin_array();
    for (const Finding& f : report.findings) {
        w.begin_object();
        w.member("file", f.file);
        w.member("line", static_cast<std::int64_t>(f.line));
        w.member("rule", f.rule);
        w.member("message", f.message);
        w.member("baselined", f.baselined);
        w.end_object();
    }
    w.end_array();
    w.key("stale_baseline").begin_array();
    for (const std::string& s : report.stale_baseline) w.value(s);
    w.end_array();
    w.key("summary").begin_object();
    w.member("active", static_cast<std::uint64_t>(report.active_count()));
    w.member("baselined", static_cast<std::uint64_t>(report.baselined_count()));
    w.member("stale_baseline", static_cast<std::uint64_t>(report.stale_baseline.size()));
    w.end_object();
    w.end_object();
}

void write_sarif(JsonWriter& w, const LintOptions& options, const LintReport& report) {
    (void)options;
    const std::vector<RuleInfo>& rules = rule_catalogue();
    auto rule_index = [&](const std::string& id) -> std::int64_t {
        for (std::size_t i = 0; i < rules.size(); ++i) {
            if (id == rules[i].id) return static_cast<std::int64_t>(i);
        }
        return -1;
    };

    w.begin_object();
    w.member("version", "2.1.0");
    w.member("$schema", "https://json.schemastore.org/sarif-2.1.0.json");
    w.key("runs").begin_array();
    w.begin_object();

    w.key("tool").begin_object();
    w.key("driver").begin_object();
    w.member("name", "memopt_lint");
    w.member("version", "2.0.0");
    w.member("informationUri", "https://example.invalid/memopt/docs/DESIGN.md");
    w.key("rules").begin_array();
    for (const RuleInfo& r : rules) {
        w.begin_object();
        w.member("id", r.id);
        w.key("shortDescription").begin_object();
        w.member("text", r.summary);
        w.end_object();
        w.key("defaultConfiguration").begin_object();
        w.member("level", "error");
        w.end_object();
        w.end_object();
    }
    w.end_array();
    w.end_object();  // driver
    w.end_object();  // tool

    w.member("columnKind", "utf16CodeUnits");

    w.key("results").begin_array();
    for (const Finding& f : report.findings) {
        w.begin_object();
        w.member("ruleId", f.rule);
        const std::int64_t idx = rule_index(f.rule);
        if (idx >= 0) w.member("ruleIndex", idx);
        w.member("level", "error");
        w.key("message").begin_object();
        w.member("text", f.message);
        w.end_object();
        w.key("locations").begin_array();
        w.begin_object();
        w.key("physicalLocation").begin_object();
        w.key("artifactLocation").begin_object();
        w.member("uri", f.file);
        w.end_object();
        w.key("region").begin_object();
        w.member("startLine", static_cast<std::int64_t>(f.line > 0 ? f.line : 1));
        w.end_object();
        w.end_object();  // physicalLocation
        w.end_object();  // location
        w.end_array();
        if (f.baselined) {
            w.key("suppressions").begin_array();
            w.begin_object();
            w.member("kind", "external");
            w.member("justification", "listed in tools/lint_baseline.txt");
            w.end_object();
            w.end_array();
        }
        w.end_object();  // result
    }
    w.end_array();

    w.end_object();  // run
    w.end_array();
    w.end_object();
}

}  // namespace memopt::lint
