#include "tools/lint/lint.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <tuple>

#include "support/assert.hpp"
#include "support/json.hpp"

namespace fs = std::filesystem;

namespace memopt::lint {

namespace {

bool lintable_extension(const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" || ext == ".h" ||
           ext == ".hh" || ext == ".hxx" || ext == ".inl";
}

bool excluded(const fs::path& p, const std::vector<std::string>& exclude_dirs) {
    for (const fs::path& part : p) {
        for (const std::string& ex : exclude_dirs) {
            if (part.string() == ex) return true;
        }
    }
    return false;
}

/// All lintable files under `path` (or `path` itself), sorted by their
/// root-relative diagnostic path for a deterministic scan order.
void collect_files(const fs::path& root, const std::string& rel_path,
                   const std::vector<std::string>& exclude_dirs,
                   std::vector<std::string>& out) {
    const fs::path abs = fs::path(rel_path).is_absolute() ? fs::path(rel_path) : root / rel_path;
    if (!fs::exists(abs)) throw Error("memopt_lint: no such path: " + abs.string());
    if (fs::is_regular_file(abs)) {
        out.push_back(fs::relative(abs, root).generic_string());
        return;
    }
    for (const auto& entry : fs::recursive_directory_iterator(abs)) {
        if (!entry.is_regular_file() || !lintable_extension(entry.path())) continue;
        const fs::path rel = fs::relative(entry.path(), root);
        if (excluded(rel, exclude_dirs)) continue;
        out.push_back(rel.generic_string());
    }
}

std::string read_file(const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    if (!in) throw Error("memopt_lint: cannot read " + p.string());
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

}  // namespace

std::size_t LintReport::active_count() const {
    return static_cast<std::size_t>(
        std::count_if(findings.begin(), findings.end(),
                      [](const Finding& f) { return !f.baselined; }));
}

std::size_t LintReport::baselined_count() const {
    return findings.size() - active_count();
}

std::vector<BaselineEntry> parse_baseline(std::istream& in, const std::string& name) {
    std::vector<BaselineEntry> entries;
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos) line.erase(hash);
        while (!line.empty() && (line.back() == ' ' || line.back() == '\t' ||
                                 line.back() == '\r')) {
            line.pop_back();
        }
        if (line.empty()) continue;
        // file:line:rule — split on the *last* two colons so Windows-style
        // or otherwise exotic paths survive.
        const std::size_t c2 = line.rfind(':');
        const std::size_t c1 = c2 == std::string::npos ? std::string::npos
                                                       : line.rfind(':', c2 - 1);
        BaselineEntry e;
        if (c1 == std::string::npos || c1 == 0 || c2 == c1 + 1 || c2 + 1 >= line.size()) {
            throw Error("memopt_lint: malformed baseline entry at " + name + ":" +
                        std::to_string(lineno) + ": '" + line + "' (want file:line:rule)");
        }
        e.file = line.substr(0, c1);
        e.rule = line.substr(c2 + 1);
        try {
            e.line = std::stoi(line.substr(c1 + 1, c2 - c1 - 1));
        } catch (const std::exception&) {
            throw Error("memopt_lint: malformed baseline line number at " + name + ":" +
                        std::to_string(lineno) + ": '" + line + "'");
        }
        entries.push_back(std::move(e));
    }
    return entries;
}

LintReport run_lint(const LintOptions& options) {
    const fs::path root(options.root);
    if (!fs::is_directory(root)) {
        throw Error("memopt_lint: root is not a directory: " + options.root);
    }

    std::vector<std::string> files;
    for (const std::string& p : options.paths) collect_files(root, p, options.exclude_dirs, files);
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    // Pass 1: tokenize everything and union the member-style unordered
    // container names so a map declared in a header is recognized in the
    // .cpp that iterates it.
    std::vector<SourceFile> sources;
    sources.reserve(files.size());
    std::set<std::string> members;
    for (const std::string& rel : files) {
        SourceFile sf = tokenize(rel, read_file(root / rel));
        const std::set<std::string> m = collect_unordered_members(sf);
        members.insert(m.begin(), m.end());
        sources.push_back(std::move(sf));
    }

    // Pass 2: rules.
    LintReport report;
    report.files_scanned = sources.size();
    for (const SourceFile& sf : sources) check_file(sf, members, report.findings);
    std::sort(report.findings.begin(), report.findings.end(),
              [](const Finding& a, const Finding& b) {
                  return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
              });

    // Baseline: each entry may suppress exactly one finding; entries that
    // match nothing are reported as stale so the file can be pruned.
    if (!options.baseline_path.empty()) {
        std::ifstream in(options.baseline_path);
        if (!in) throw Error("memopt_lint: cannot read baseline " + options.baseline_path);
        for (const BaselineEntry& e : parse_baseline(in, options.baseline_path)) {
            bool matched = false;
            for (Finding& f : report.findings) {
                if (!f.baselined && f.file == e.file && f.line == e.line && f.rule == e.rule) {
                    f.baselined = true;
                    matched = true;
                    break;
                }
            }
            if (!matched) {
                report.stale_baseline.push_back(e.file + ":" + std::to_string(e.line) + ":" +
                                                e.rule);
            }
        }
    }
    return report;
}

void write_json(JsonWriter& w, const LintOptions& options, const LintReport& report) {
    w.begin_object();
    w.member("schema", "memopt.lint.v1");
    w.member("root", options.root);
    w.key("paths").begin_array();
    for (const std::string& p : options.paths) w.value(p);
    w.end_array();
    w.member("files_scanned", static_cast<std::uint64_t>(report.files_scanned));
    w.key("rules").begin_array();
    for (const RuleInfo& r : rule_catalogue()) {
        w.begin_object();
        w.member("id", r.id);
        w.member("summary", r.summary);
        w.end_object();
    }
    w.end_array();
    w.key("findings").begin_array();
    for (const Finding& f : report.findings) {
        w.begin_object();
        w.member("file", f.file);
        w.member("line", static_cast<std::int64_t>(f.line));
        w.member("rule", f.rule);
        w.member("message", f.message);
        w.member("baselined", f.baselined);
        w.end_object();
    }
    w.end_array();
    w.key("stale_baseline").begin_array();
    for (const std::string& s : report.stale_baseline) w.value(s);
    w.end_array();
    w.key("summary").begin_object();
    w.member("active", static_cast<std::uint64_t>(report.active_count()));
    w.member("baselined", static_cast<std::uint64_t>(report.baselined_count()));
    w.member("stale_baseline", static_cast<std::uint64_t>(report.stale_baseline.size()));
    w.end_object();
    w.end_object();
}

}  // namespace memopt::lint
