// memopt_lint driver: the two-pass project engine.
//
// Pass 1 (parallel, incremental): walk the scan roots in sorted order,
// read + hash every file, and either reuse its cached FileIndex (content
// hash unchanged) or tokenize and re-index it. The scan fans out on the
// shared memopt thread pool; parallel_map preserves input order, so the
// index set — and therefore every downstream finding — is bit-identical
// at any --jobs count.
//
// Pass 2 (serial, cheap): resolve the project-wide rules over the index
// set — cross-file D1, layering L1 (tools/layering.toml), include cycles
// L2, IWYU-lite I1, and JSON-schema conformance S1 (docs/schemas) — then
// sort findings by (file, line, rule) and fold in the suppression
// baseline. Global rules are recomputed on every run from the cached
// indexes, so a header edit, a layering change, or a golden update takes
// effect immediately without any cache invalidation protocol.
//
// Reports render as text, memopt.lint.v1 JSON, or SARIF 2.1.0 (for GitHub
// code scanning upload). The cache file itself is written through
// atomic_write — the linter holds itself to the invariants it enforces.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "tools/lint/rules.hpp"

namespace memopt {
class JsonWriter;
}

namespace memopt::lint {

struct LintOptions {
    /// Directory all scan paths and diagnostics are relative to.
    std::string root = ".";
    /// Files or directories to scan, relative to root (or absolute).
    std::vector<std::string> paths = {"src", "bench", "tests", "examples", "tools"};
    /// Suppression baseline file; empty = no baseline.
    std::string baseline_path;
    /// Directory names excluded from the walk wherever they appear.
    std::vector<std::string> exclude_dirs = {"lint_fixtures"};
    /// Parallelism of pass 1; 0 = the process default (MEMOPT_JOBS /
    /// hardware concurrency). Findings are identical at any value.
    std::size_t jobs = 0;
    /// Incremental index cache file; empty = scan cold every run. A cache
    /// written by a different engine version is silently a full miss.
    std::string cache_path;
    /// Layering config for L1, relative to root. Empty = use
    /// tools/layering.toml when it exists, else skip L1. An explicit path
    /// that does not exist is an error.
    std::string layering_path;
    /// Directory of S1 schema goldens, relative to root. Empty = use
    /// docs/schemas when it exists, else skip S1. An explicit directory
    /// that does not exist is an error.
    std::string schemas_dir;
};

struct LintReport {
    std::vector<Finding> findings;  // sorted; includes baselined entries
    std::vector<std::string> stale_baseline;  // baseline entries that matched nothing
    std::size_t files_scanned = 0;
    std::size_t files_from_cache = 0;  // pass-1 cache hits (subset of scanned)

    std::size_t active_count() const;     // findings not matched by the baseline
    std::size_t baselined_count() const;  // findings matched by the baseline
};

/// One baseline entry: `file:line:rule` (see parse_baseline).
struct BaselineEntry {
    std::string file;
    int line = 0;
    std::string rule;
};

/// Parse a baseline document: one `file:line:rule` entry per line, `#`
/// comments and blank lines ignored. Throws memopt::Error on malformed
/// entries (with the offending line number).
std::vector<BaselineEntry> parse_baseline(std::istream& in, const std::string& name);

/// Run the full lint: walk, index (incrementally, in parallel), resolve
/// the global rules, sort, and fold the baseline in. Throws memopt::Error
/// on unreadable paths, a malformed baseline, or malformed configs.
LintReport run_lint(const LintOptions& options);

/// Write the memopt.lint.v1 report document.
void write_json(JsonWriter& w, const LintOptions& options, const LintReport& report);

/// Write the report as SARIF 2.1.0 (github.com code-scanning dialect):
/// one run, the full rule catalogue as reportingDescriptors, one result
/// per finding with a physical location; baselined findings carry an
/// `external` suppression so code scanning shows them as dismissed.
void write_sarif(JsonWriter& w, const LintOptions& options, const LintReport& report);

}  // namespace memopt::lint
