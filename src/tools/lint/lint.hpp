// memopt_lint driver: walk source trees, run the rule catalogue, apply the
// suppression baseline, and render text / memopt.lint.v1 JSON reports.
//
// The scan is fully deterministic: files are visited in sorted path order,
// findings are sorted by (file, line, rule), and the JSON report is written
// through the streaming JsonWriter, so two runs over the same tree produce
// byte-identical reports — the linter holds itself to the invariant it
// enforces.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "tools/lint/rules.hpp"

namespace memopt {
class JsonWriter;
}

namespace memopt::lint {

struct LintOptions {
    /// Directory all scan paths and diagnostics are relative to.
    std::string root = ".";
    /// Files or directories to scan, relative to root (or absolute).
    std::vector<std::string> paths = {"src", "bench", "tests", "examples", "tools"};
    /// Suppression baseline file; empty = no baseline.
    std::string baseline_path;
    /// Directory names excluded from the walk wherever they appear.
    std::vector<std::string> exclude_dirs = {"lint_fixtures"};
};

struct LintReport {
    std::vector<Finding> findings;  // sorted; includes baselined entries
    std::vector<std::string> stale_baseline;  // baseline entries that matched nothing
    std::size_t files_scanned = 0;

    std::size_t active_count() const;     // findings not matched by the baseline
    std::size_t baselined_count() const;  // findings matched by the baseline
};

/// One baseline entry: `file:line:rule` (see parse_baseline).
struct BaselineEntry {
    std::string file;
    int line = 0;
    std::string rule;
};

/// Parse a baseline document: one `file:line:rule` entry per line, `#`
/// comments and blank lines ignored. Throws memopt::Error on malformed
/// entries (with the offending line number).
std::vector<BaselineEntry> parse_baseline(std::istream& in, const std::string& name);

/// Run the full lint: walk, tokenize, check, and fold the baseline in.
/// Throws memopt::Error on unreadable paths or a malformed baseline.
LintReport run_lint(const LintOptions& options);

/// Write the memopt.lint.v1 report document.
void write_json(JsonWriter& w, const LintOptions& options, const LintReport& report);

}  // namespace memopt::lint
