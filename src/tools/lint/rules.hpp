// memopt_lint rule catalogue — project invariants as named, suppressible
// static checks.
//
// Every headline result in this repository depends on replay, clustering,
// search, and campaign results being bit-identical at any --jobs count.
// These rules make the hazards that historically break that invariant
// (unordered-container iteration feeding results, ambient entropy sources,
// racy accumulation), plus the architectural contracts the next subsystems
// stand on (module layering, include hygiene, frozen JSON schemas),
// machine-checked at lint time instead of discovered at replay time.
//
// Token-local rules (checked per file, cacheable by content hash):
//  D2  no nondeterministic seed sources (std::random_device, time(),
//      rand(), srand()) outside src/support/rng — all randomness flows
//      from an explicit memopt::Rng seed.
//  D3  floating-point accumulation into shared (captured) state inside
//      parallel_for / parallel_map / submit / stream_accumulate lambdas
//      must go through shard-local partial sums reduced in order.
//  D4  no std::atomic<float|double>: atomic FP read-modify-write makes the
//      accumulation order scheduling-dependent by construction.
//  D5  no compound mutation (`+=`, `++`, …) of captured state inside
//      parallel lambdas at all — the type-agnostic generalization of D3:
//      even an exact integer tally is a data race unless it is shard-local
//      or lock-protected (annotate `memopt-lint: guarded` with the lock).
//  R1  final artifacts are published through the durable layer
//      (atomic_write / AtomicOstream, support/durable/atomic_file.hpp).
//  A1  invariant checks use MEMOPT_ASSERT / MEMOPT_ASSERT_MSG, never raw
//      assert( — raw assert vanishes under NDEBUG and prints no context.
//  H1  header hygiene: every header starts with #pragma once (or a classic
//      include guard) and contains no `using namespace`.
//
// Project-wide rules (need the semantic index, resolved by the driver):
//  D1  iteration over std::unordered_map/unordered_set that feeds results
//      must be sorted before order-sensitive consumption or carry a
//      `// memopt-lint: order-independent` annotation. Member containers
//      (trailing '_') are recognized across files via the index union.
//  L1  module layering: a file may include only its own module, lower
//      layers of the declared DAG (tools/layering.toml), or same-layer
//      modules when the config allows; back-edges are findings.
//  L2  the include graph is acyclic; every cycle is a finding on its
//      lexicographically-smallest member.
//  I1  IWYU-lite: a quoted include no symbol of which (directly or via its
//      include closure, net of other includes) is referenced is unused;
//      intentional keeps annotate `memopt-lint: keep-include` with a
//      rationale.
//  S1  JSON-schema freeze: the keys emitted through JsonWriter
//      member("…")/key("…") literals in each schema's source files must
//      equal the checked-in golden (docs/schemas/<id>.json); a key added
//      or removed without updating the golden is a finding.
//
// Suppression: a finding on line L is suppressed by an annotation comment
// `// memopt-lint: <word>` on line L or L-1, where <word> is the rule id
// (e.g. `D1`) or the rule's named allowance (`order-independent` for
// D1/D3, `guarded` for D5, `durable-write` for R1, `keep-include` for I1,
// `layering` for L1). Legacy findings can instead be listed in the
// checked-in baseline (tools/lint_baseline.txt) and burned down
// incrementally.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "tools/lint/tokenizer.hpp"

namespace memopt::lint {

struct Finding {
    std::string file;
    int line = 0;
    std::string rule;
    std::string message;
    bool baselined = false;  // matched by the suppression baseline

    /// Canonical diagnostic rendering: `file:line: rule: message`.
    std::string render() const;
};

struct RuleInfo {
    const char* id;
    const char* summary;
};

/// The rule catalogue, in report order.
const std::vector<RuleInfo>& rule_catalogue();

/// One D1 candidate: an identifier in iteration position (range-for range
/// expression or a .begin()-family call). Sites sharing a `group` belong to
/// one range-for — only the first whose name resolves to an unordered
/// container emits. `suppressed` records the annotation state at the site,
/// so cached indexes keep annotation semantics without tokens.
struct D1Site {
    std::string name;
    int line = 0;
    int group = 0;
    bool suppressed = false;
};

/// All D1 candidates in `file`, in token order.
std::vector<D1Site> collect_d1_sites(const SourceFile& file);

/// Names declared as unordered containers in `file` (locals, parameters,
/// members — everything D1 may match in-file).
std::set<std::string> collect_unordered_locals(const SourceFile& file);

/// Member-style names (trailing '_') declared as unordered containers in
/// `file`. The driver unions these across all scanned files so that a
/// container member declared in a header is recognized when its .cpp
/// iterates it (rule D1's cross-file case).
std::set<std::string> collect_unordered_members(const SourceFile& file);

/// Resolve D1 candidates against the full name set (file-local unordered
/// declarations plus the cross-file member union), appending findings.
void resolve_d1(const std::string& path, const std::vector<D1Site>& sites,
                const std::set<std::string>& names, std::vector<Finding>& findings);

/// Run the token-local rules (D2–D5, R1, A1, H1) against one file.
/// Findings suppressed by annotations are dropped here; baseline matching
/// is the driver's job (see lint.hpp).
void check_local(const SourceFile& file, std::vector<Finding>& findings);

/// Single-file convenience used by tests and in-isolation lints: the
/// token-local rules plus D1 resolved against this file's declarations
/// unioned with `cross_file_members`.
void check_file(const SourceFile& file, const std::set<std::string>& cross_file_members,
                std::vector<Finding>& findings);

}  // namespace memopt::lint
