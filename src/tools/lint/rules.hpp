// memopt_lint rule catalogue — project invariants as named, suppressible
// static checks.
//
// Every headline result in this repository depends on replay, clustering,
// search, and campaign results being bit-identical at any --jobs count.
// These rules make the hazards that historically break that invariant
// (unordered-container iteration feeding results, ambient entropy sources,
// racy floating-point accumulation) machine-checked at lint time instead
// of discovered at replay time.
//
//  D1  iteration over std::unordered_map/unordered_set that feeds results
//      must be sorted before order-sensitive consumption or carry a
//      `// memopt-lint: order-independent` annotation with a rationale.
//  D2  no nondeterministic seed sources (std::random_device, time(),
//      rand(), srand()) outside src/support/rng — all randomness flows
//      from an explicit memopt::Rng seed.
//  D3  floating-point accumulation into shared (captured) state inside
//      parallel_for / parallel_map / pool-submit lambdas must go through
//      shard-local partial sums reduced in order, not direct `+=`.
//  D4  no std::atomic<float|double>: atomic FP read-modify-write makes the
//      accumulation order scheduling-dependent by construction.
//  R1  final artifacts are published through the durable layer
//      (atomic_write / AtomicOstream, support/durable/atomic_file.hpp):
//      a raw std::ofstream or fopen() outside support/durable writes the
//      destination in place, so a crash mid-write leaves a truncated file
//      under the final name. Scratch writes carry a
//      `// memopt-lint: durable-write` annotation with a rationale; test
//      sources (tests/) are exempt wholesale.
//  A1  invariant checks use MEMOPT_ASSERT / MEMOPT_ASSERT_MSG, never raw
//      assert( — raw assert vanishes under NDEBUG and prints no context.
//  H1  header hygiene: every header starts with #pragma once (or a classic
//      include guard) and contains no `using namespace`.
//
// Suppression: a finding on line L is suppressed by an annotation comment
// `// memopt-lint: <word>` on line L or L-1, where <word> is the rule id
// (e.g. `D1`) or the rule's named allowance (`order-independent` for
// D1/D3). Legacy findings can instead be listed in the checked-in baseline
// (tools/lint_baseline.txt) and burned down incrementally.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "tools/lint/tokenizer.hpp"

namespace memopt::lint {

struct Finding {
    std::string file;
    int line = 0;
    std::string rule;
    std::string message;
    bool baselined = false;  // matched by the suppression baseline

    /// Canonical diagnostic rendering: `file:line: rule: message`.
    std::string render() const;
};

struct RuleInfo {
    const char* id;
    const char* summary;
};

/// The rule catalogue, in report order.
const std::vector<RuleInfo>& rule_catalogue();

/// Member-style names (trailing '_') declared as unordered containers in
/// `file`. The driver unions these across all scanned files so that a
/// container member declared in a header is recognized when its .cpp
/// iterates it (rule D1's cross-file case).
std::set<std::string> collect_unordered_members(const SourceFile& file);

/// Run every rule against one tokenized file, appending findings.
/// `cross_file_members` is the union of collect_unordered_members() over
/// the whole scan (pass {} to lint a file in isolation). Findings
/// suppressed by annotations are dropped here; baseline matching is the
/// driver's job (see lint.hpp).
void check_file(const SourceFile& file, const std::set<std::string>& cross_file_members,
                std::vector<Finding>& findings);

}  // namespace memopt::lint
