#include "tools/lint/rules.hpp"

#include <set>
#include <string>

namespace memopt::lint {

namespace {

bool is_ident(const Token& t, std::string_view text) {
    return t.kind == TokKind::Identifier && t.text == text;
}

bool is_punct(const Token& t, std::string_view text) {
    return t.kind == TokKind::Punct && t.text == text;
}

bool any_of_ident(const Token& t, std::initializer_list<std::string_view> names) {
    if (t.kind != TokKind::Identifier) return false;
    for (std::string_view n : names) {
        if (t.text == n) return true;
    }
    return false;
}

/// Index just past a balanced template-argument list starting at `i`
/// (which must point at `<`), or `i` if the list never closes.
std::size_t skip_template_args(const std::vector<Token>& t, std::size_t i) {
    std::size_t depth = 0;
    const std::size_t start = i;
    for (; i < t.size(); ++i) {
        if (t[i].kind != TokKind::Punct) continue;
        if (t[i].text == "<") ++depth;
        else if (t[i].text == ">") {
            if (--depth == 0) return i + 1;
        } else if (t[i].text == ";" || t[i].text == "{") {
            break;  // not actually a template argument list
        }
    }
    return start;
}

/// Index just past a balanced parenthesis group starting at `i` (which must
/// point at `(`), or t.size() if unbalanced.
std::size_t skip_parens(const std::vector<Token>& t, std::size_t i) {
    std::size_t depth = 0;
    for (; i < t.size(); ++i) {
        if (t[i].kind != TokKind::Punct) continue;
        if (t[i].text == "(") ++depth;
        else if (t[i].text == ")" && --depth == 0) return i + 1;
    }
    return t.size();
}

/// The declared-variable name following a type spelling that ends at `i`
/// (skipping cv-qualifiers and declarator punctuation), or npos when the
/// next tokens do not look like a variable declaration.
std::size_t declared_name_index(const std::vector<Token>& t, std::size_t i) {
    while (i < t.size() &&
           (is_punct(t[i], "&") || is_punct(t[i], "*") || is_ident(t[i], "const"))) {
        ++i;
    }
    if (i >= t.size() || t[i].kind != TokKind::Identifier) return std::string::npos;
    // `Type name(` is a function declaration, not a variable.
    if (i + 1 < t.size() && is_punct(t[i + 1], "(")) return std::string::npos;
    return i;
}

constexpr std::string_view kUnorderedContainers[] = {
    "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"};

bool is_unordered_container(const Token& t) {
    if (t.kind != TokKind::Identifier) return false;
    for (std::string_view n : kUnorderedContainers) {
        if (t.text == n) return true;
    }
    return false;
}

/// Entry points that hand a lambda to the parallel runtime; D3/D5 police
/// the state those lambdas capture.
bool is_parallel_entry(const Token& t) {
    return any_of_ident(t, {"parallel_for", "parallel_map", "submit", "stream_accumulate"});
}

/// Keywords that can precede an identifier without making it a declaration
/// (`return foo(...)` is a call, not `foo` being declared).
bool is_nondecl_keyword(const std::string& text) {
    static const std::set<std::string> kw = {
        "return", "if",    "else",  "while",  "for",     "switch",    "case",
        "goto",   "new",   "delete", "throw", "sizeof",  "typeid",    "operator",
        "do",     "co_return", "co_yield", "co_await",  "not",       "and",
        "or",     "using", "namespace", "public", "private", "protected"};
    return kw.count(text) != 0;
}

/// True when the identifier at `i` is in declaration position: preceded
/// (after cv/ref/ptr qualifiers) by a type-ish identifier or a closed
/// template-argument list, and not part of a member access or qualified
/// name. Token-level heuristic; over-matching is harmless for its D5 use
/// (a name "declared inside" a lambda is exempted, the safe direction).
bool looks_declared_at(const std::vector<Token>& t, std::size_t i) {
    if (t[i].kind != TokKind::Identifier) return false;
    std::size_t p = i;
    while (p > 0 && (is_punct(t[p - 1], "&") || is_punct(t[p - 1], "*") ||
                     is_ident(t[p - 1], "const"))) {
        --p;
    }
    if (p == 0) return false;
    const Token& prev = t[p - 1];
    if (is_punct(prev, ">")) return true;  // std::vector<int> name
    if (prev.kind != TokKind::Identifier) return false;
    if (is_nondecl_keyword(prev.text)) return false;
    // (`a::b` / `x.y` candidates never reach here: their preceding token is
    // punctuation, rejected above. `ns::Type name` does, and is a decl.)
    return true;
}

struct Emitter {
    const SourceFile& file;
    std::vector<Finding>& findings;

    /// Append a finding unless an annotation (rule id or named allowance)
    /// covers the line.
    void emit(const char* rule, int line, std::string message,
              std::string_view allowance = {}) {
        if (file.annotated(line, rule)) return;
        if (!allowance.empty() && file.annotated(line, allowance)) return;
        findings.push_back(Finding{file.path, line, rule, std::move(message), false});
    }
};

// ---------------------------------------------------------------------------
// D1 — unordered-container iteration feeding results

/// Names declared as unordered containers in this file (locals, parameters,
/// members). Member-style names (trailing '_') also feed the cross-file set
/// so that a container member declared in a header is recognized in its .cpp.
void collect_unordered_names(const SourceFile& file, std::set<std::string>& local,
                             std::set<std::string>& members) {
    const auto& t = file.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (!is_unordered_container(t[i])) continue;
        std::size_t j = i + 1;
        if (j < t.size() && is_punct(t[j], "<")) j = skip_template_args(t, j);
        const std::size_t name = declared_name_index(t, j);
        if (name == std::string::npos) continue;
        local.insert(t[name].text);
        if (t[name].text.ends_with("_")) members.insert(t[name].text);
    }
}

std::string d1_message(const std::string& name) {
    return "iteration over unordered container '" + name +
           "' visits elements in hash order; sort before any order-sensitive "
           "consumption or annotate `memopt-lint: order-independent` with a rationale";
}

// ---------------------------------------------------------------------------
// D2 — nondeterministic seed sources

void check_d2(const SourceFile& file, Emitter& out) {
    if (file.path.find("support/rng") != std::string::npos) return;
    const auto& t = file.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::Identifier) continue;
        // Member calls (x.time(), obj->rand()) are unrelated APIs.
        if (i > 0 && (is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->"))) continue;
        // Any mention of random_device is a violation; the C seed functions
        // only in call position (rand, srand, time are common identifiers).
        const bool called = i + 1 < t.size() && is_punct(t[i + 1], "(");
        if (!(is_ident(t[i], "random_device") ||
              (called && any_of_ident(t[i], {"rand", "srand", "time"}))))
            continue;
        out.emit("D2", t[i].line,
                 "nondeterministic seed source '" + t[i].text +
                     "'; all randomness must flow from an explicit memopt::Rng seed "
                     "(src/support/rng)");
    }
}

// ---------------------------------------------------------------------------
// D3 — floating-point accumulation inside parallel regions

/// Scalar float/double variable names declared in this file, with the token
/// index of each declaration (used to distinguish shard-local partials from
/// captured shared state).
std::set<std::pair<std::string, std::size_t>> collect_fp_scalars(const SourceFile& file) {
    std::set<std::pair<std::string, std::size_t>> decls;
    const auto& t = file.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (!any_of_ident(t[i], {"double", "float"})) continue;
        // `long double` — the name scan below works from the last keyword.
        const std::size_t name = declared_name_index(t, i + 1);
        if (name == std::string::npos) continue;
        decls.insert({t[name].text, name});
    }
    return decls;
}

void check_d3(const SourceFile& file, Emitter& out) {
    const auto& t = file.tokens;
    const auto fp_decls = collect_fp_scalars(file);
    if (fp_decls.empty()) return;

    auto declared_in = [&](const std::string& name, std::size_t lo, std::size_t hi) {
        for (const auto& [n, idx] : fp_decls) {
            if (n == name && idx >= lo && idx < hi) return true;
        }
        return false;
    };
    auto declared_at_all = [&](const std::string& name) {
        for (const auto& [n, idx] : fp_decls) {
            if (n == name) return true;
        }
        return false;
    };

    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (!is_parallel_entry(t[i])) continue;
        if (!is_punct(t[i + 1], "(")) continue;
        const std::size_t begin = i + 1;
        const std::size_t end = skip_parens(t, begin);
        for (std::size_t j = begin; j + 1 < end; ++j) {
            if (t[j].kind != TokKind::Identifier) continue;
            const Token& op = t[j + 1];
            if (!(is_punct(op, "+=") || is_punct(op, "-=") || is_punct(op, "*=") ||
                  is_punct(op, "/=")))
                continue;
            if (!declared_at_all(t[j].text)) continue;
            if (declared_in(t[j].text, begin, j)) continue;  // shard-local partial
            out.emit("D3", t[j].line,
                     "floating-point accumulation into captured '" + t[j].text +
                         "' inside a parallel region makes the summation order "
                         "scheduling-dependent; accumulate into a shard-local partial "
                         "and reduce in shard order",
                     "order-independent");
        }
        i = end > i ? end - 1 : i;
    }
}

// ---------------------------------------------------------------------------
// D4 — atomic floating point

void check_d4(const SourceFile& file, Emitter& out) {
    const auto& t = file.tokens;
    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
        if (!is_ident(t[i], "atomic") || !is_punct(t[i + 1], "<")) continue;
        std::size_t j = i + 2;
        while (j < t.size() && (is_ident(t[j], "const") || is_ident(t[j], "volatile") ||
                                is_ident(t[j], "std") || is_ident(t[j], "long") ||
                                is_punct(t[j], "::"))) {
            ++j;
        }
        if (j < t.size() && any_of_ident(t[j], {"float", "double"})) {
            out.emit("D4", t[i].line,
                     "std::atomic<" + t[j].text +
                         "> accumulates in scheduling order by construction; keep "
                         "per-thread partials and reduce deterministically instead");
        }
    }
}

// ---------------------------------------------------------------------------
// D5 — compound mutation of captured state inside parallel regions
// (the type-agnostic generalization of D3: even an exact integer tally is
// a data race when several shards hit it unsynchronized)

/// Leftmost identifier of the postfix chain ending at `j` (walks back over
/// `a.b`, `a->b`, and `a[expr]` links), or npos when the chain does not
/// start at a plain identifier.
std::size_t root_of_lvalue(const std::vector<Token>& t, std::size_t j) {
    std::size_t r = j;
    for (;;) {
        if (t[r].kind == TokKind::Punct && t[r].text == "]") {
            // Skip back over the bracket group to the expression before it.
            std::size_t depth = 0;
            std::size_t k = r;
            for (;; --k) {
                if (is_punct(t[k], "]")) ++depth;
                else if (is_punct(t[k], "[") && --depth == 0) break;
                if (k == 0) return std::string::npos;
            }
            if (k == 0) return std::string::npos;
            r = k - 1;
            continue;
        }
        if (t[r].kind != TokKind::Identifier) return std::string::npos;
        if (r >= 2 && (is_punct(t[r - 1], ".") || is_punct(t[r - 1], "->"))) {
            r -= 2;
            continue;
        }
        // A `::`-qualified root (`Class::static_member`) is outside state
        // this heuristic can attribute; leave it to review.
        if (r >= 1 && is_punct(t[r - 1], "::")) return std::string::npos;
        return r;
    }
}

void check_d5(const SourceFile& file, Emitter& out) {
    const auto& t = file.tokens;
    const auto fp_decls = collect_fp_scalars(file);

    auto is_fp_scalar = [&](const std::string& name) {
        for (const auto& [n, idx] : fp_decls) {
            if (n == name) return true;
        }
        return false;
    };

    // Token indexes at which each identifier is (heuristically) declared,
    // anywhere in the file.
    auto declared_between = [&](const std::string& name, std::size_t lo, std::size_t hi) {
        for (std::size_t k = lo; k < hi; ++k) {
            if (t[k].kind == TokKind::Identifier && t[k].text == name &&
                looks_declared_at(t, k))
                return true;
        }
        return false;
    };

    auto compound_op = [&](const Token& tok) {
        return is_punct(tok, "+=") || is_punct(tok, "-=") || is_punct(tok, "*=") ||
               is_punct(tok, "/=") || is_punct(tok, "%=") || is_punct(tok, "&=") ||
               is_punct(tok, "|=") || is_punct(tok, "^=");
    };
    auto incdec_op = [&](const Token& tok) {
        return is_punct(tok, "++") || is_punct(tok, "--");
    };

    auto message = [](const std::string& root, const std::string& op) {
        return "'" + op + "' on captured '" + root +
               "' inside a parallel region is a data race unless externally "
               "synchronized; make it shard-local and reduce in shard order, or "
               "annotate `memopt-lint: guarded` naming the lock that protects it";
    };

    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (!is_parallel_entry(t[i])) continue;
        if (!is_punct(t[i + 1], "(")) continue;
        const std::size_t begin = i + 1;
        const std::size_t end = skip_parens(t, begin);

        auto flag_if_captured = [&](std::size_t target_end, const std::string& op,
                                    int line) {
            const std::size_t root = root_of_lvalue(t, target_end);
            if (root == std::string::npos) return;
            const std::string& name = t[root].text;
            if (declared_between(name, begin, root)) return;  // shard-local
            // Captured state is either declared earlier in this file or a
            // member by the project's trailing-'_' convention; anything
            // else (globals from other TUs) is out of scope here.
            if (!declared_between(name, 0, begin) && !name.ends_with("_")) return;
            // FP compound-assign is D3's finding; do not double-report.
            if (op != "++" && op != "--" && is_fp_scalar(name)) return;
            out.emit("D5", line, message(name, op), "guarded");
        };

        for (std::size_t j = begin + 1; j + 1 < end; ++j) {
            if (compound_op(t[j + 1]) &&
                (t[j].kind == TokKind::Identifier || is_punct(t[j], "]"))) {
                flag_if_captured(j, t[j + 1].text, t[j + 1].line);
            } else if (incdec_op(t[j])) {
                if (j > begin && (t[j - 1].kind == TokKind::Identifier ||
                                  is_punct(t[j - 1], "]"))) {
                    flag_if_captured(j - 1, t[j].text, t[j].line);  // postfix
                } else if (t[j + 1].kind == TokKind::Identifier) {
                    // Prefix: the chain's root is the identifier right after
                    // the operator (`++region->count_`).
                    std::size_t root = j + 1;
                    const std::string& name = t[root].text;
                    if (declared_between(name, begin, root)) continue;
                    if (!declared_between(name, 0, begin) && !name.ends_with("_"))
                        continue;
                    out.emit("D5", t[j].line, message(name, t[j].text), "guarded");
                }
            }
        }
        i = end > i ? end - 1 : i;
    }
}

// ---------------------------------------------------------------------------
// R1 — raw final-artifact writes bypassing the durable layer

void check_r1(const SourceFile& file, Emitter& out) {
    // The durable layer itself owns the one raw write (temp -> fsync ->
    // rename); tests write scratch files that nothing consumes as results.
    if (file.path.find("support/durable") != std::string::npos) return;
    if (file.path.rfind("tests/", 0) == 0 || file.path.find("/tests/") != std::string::npos)
        return;
    const auto& t = file.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (i > 0 && (is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->"))) continue;
        const bool raw_stream = is_ident(t[i], "ofstream");
        const bool raw_fopen =
            is_ident(t[i], "fopen") && i + 1 < t.size() && is_punct(t[i + 1], "(");
        if (!raw_stream && !raw_fopen) continue;
        out.emit("R1", t[i].line,
                 std::string("raw ") + (raw_stream ? "std::ofstream" : "fopen()") +
                     " writes the destination in place, so a crash mid-write leaves a "
                     "truncated artifact under the final name; stage through "
                     "atomic_write / AtomicOstream (support/durable/atomic_file.hpp) or "
                     "annotate `memopt-lint: durable-write` with a rationale",
                 "durable-write");
    }
}

// ---------------------------------------------------------------------------
// A1 — raw assert()

void check_a1(const SourceFile& file, Emitter& out) {
    if (file.path.find("support/assert") != std::string::npos) return;
    const auto& t = file.tokens;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (!is_ident(t[i], "assert") || !is_punct(t[i + 1], "(")) continue;
        if (i > 0 && (is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->"))) continue;
        out.emit("A1", t[i].line,
                 "raw assert() vanishes under NDEBUG and prints no context; use "
                 "MEMOPT_ASSERT / MEMOPT_ASSERT_MSG (support/assert.hpp)");
    }
}

// ---------------------------------------------------------------------------
// H1 — header hygiene

/// First whitespace-separated words of a preprocessor directive, '#' stripped.
std::vector<std::string> directive_words(const std::string& text, std::size_t max_words) {
    std::vector<std::string> words;
    std::string word;
    for (std::size_t i = 0; i <= text.size() && words.size() < max_words; ++i) {
        const char c = i < text.size() ? text[i] : ' ';
        if (c == '#' || c == ' ' || c == '\t') {
            if (!word.empty()) words.push_back(word);
            word.clear();
        } else {
            word += c;
        }
    }
    return words;
}

void check_h1(const SourceFile& file, Emitter& out) {
    if (!file.is_header) return;
    const auto& t = file.tokens;

    bool guarded = false;
    std::string first_directive;  // first two words of the first directive
    for (const Token& tok : t) {
        if (tok.kind != TokKind::PPDirective) continue;
        const auto words = directive_words(tok.text, 2);
        if (words.size() >= 2 && words[0] == "pragma" && words[1] == "once") {
            guarded = true;
            break;
        }
        if (first_directive.empty() && !words.empty()) {
            first_directive = words[0];
            // Classic guard: the first directive is `#ifndef NAME`.
            if (words[0] == "ifndef") guarded = true;
            if (!guarded) break;  // first directive is neither guard style
        }
    }
    if (!guarded) {
        out.emit("H1", 1,
                 "header has no #pragma once / include guard; double inclusion is an ODR "
                 "time bomb");
    }

    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (is_ident(t[i], "using") && is_ident(t[i + 1], "namespace")) {
            out.emit("H1", t[i].line,
                     "`using namespace` in a header leaks into every includer; qualify "
                     "names instead");
        }
    }
}

}  // namespace

std::string Finding::render() const {
    return file + ":" + std::to_string(line) + ": " + rule + ": " + message;
}

const std::vector<RuleInfo>& rule_catalogue() {
    static const std::vector<RuleInfo> rules = {
        {"D1", "unordered-container iteration must be sorted or annotated order-independent"},
        {"D2", "no nondeterministic seeds (random_device/time/rand/srand) outside support/rng"},
        {"D3", "no captured floating-point accumulation inside parallel lambdas"},
        {"D4", "no std::atomic<float|double>"},
        {"D5", "no compound mutation of captured state inside parallel lambdas; "
               "shard-local or annotated `guarded` only"},
        {"L1", "module includes follow the layering DAG declared in tools/layering.toml"},
        {"L2", "the include graph is acyclic"},
        {"I1", "every quoted include is used (IWYU-lite); intentional keeps annotate "
               "`keep-include`"},
        {"S1", "JSON keys emitted via JsonWriter literals match the frozen schema "
               "goldens (docs/schemas)"},
        {"R1", "final artifacts are written through support/durable (atomic_write/"
               "AtomicOstream), never raw ofstream/fopen"},
        {"A1", "invariant checks use MEMOPT_ASSERT, never raw assert()"},
        {"H1", "headers carry include guards and no `using namespace`"},
    };
    return rules;
}

std::vector<D1Site> collect_d1_sites(const SourceFile& file) {
    std::vector<D1Site> sites;
    const auto& t = file.tokens;
    int group = 0;
    for (std::size_t i = 0; i < t.size(); ++i) {
        // Range-for: record every identifier of the range expression, in
        // order, under one group — resolution emits on the first that names
        // an unordered container, exactly as the in-line rule did.
        if (is_ident(t[i], "for") && i + 1 < t.size() && is_punct(t[i + 1], "(")) {
            std::size_t depth = 0;
            bool classic_for = false;
            std::size_t colon = std::string::npos;
            std::size_t close = t.size();
            for (std::size_t j = i + 1; j < t.size(); ++j) {
                if (t[j].kind != TokKind::Punct) continue;
                if (t[j].text == "(") ++depth;
                else if (t[j].text == ")") {
                    if (--depth == 0) {
                        close = j;
                        break;
                    }
                } else if (depth == 1 && t[j].text == ";") {
                    classic_for = true;
                } else if (depth == 1 && t[j].text == ":" && colon == std::string::npos) {
                    colon = j;
                }
            }
            if (!classic_for && colon != std::string::npos) {
                ++group;
                for (std::size_t j = colon + 1; j < close; ++j) {
                    if (t[j].kind != TokKind::Identifier) continue;
                    sites.push_back(D1Site{t[j].text, t[j].line, group,
                                           file.annotated(t[j].line, "D1") ||
                                               file.annotated(t[j].line,
                                                              "order-independent")});
                }
            }
            continue;
        }
        // name.begin() / name.cbegin() / name.rbegin(): ordered traversal
        // of an unordered container (iterator loops, range constructors).
        if (t[i].kind == TokKind::Identifier && i + 2 < t.size() &&
            (is_punct(t[i + 1], ".") || is_punct(t[i + 1], "->")) &&
            any_of_ident(t[i + 2], {"begin", "cbegin", "rbegin"})) {
            ++group;
            sites.push_back(D1Site{t[i].text, t[i].line, group,
                                   file.annotated(t[i].line, "D1") ||
                                       file.annotated(t[i].line, "order-independent")});
        }
    }
    return sites;
}

std::set<std::string> collect_unordered_locals(const SourceFile& file) {
    std::set<std::string> local;
    std::set<std::string> members;
    collect_unordered_names(file, local, members);
    return local;
}

std::set<std::string> collect_unordered_members(const SourceFile& file) {
    std::set<std::string> local;
    std::set<std::string> members;
    collect_unordered_names(file, local, members);
    return members;
}

void resolve_d1(const std::string& path, const std::vector<D1Site>& sites,
                const std::set<std::string>& names, std::vector<Finding>& findings) {
    if (names.empty()) return;
    int done_group = 0;
    for (const D1Site& site : sites) {
        if (site.group == done_group) continue;  // group already resolved
        if (names.count(site.name) == 0) continue;
        done_group = site.group;
        if (site.suppressed) continue;
        findings.push_back(Finding{path, site.line, "D1", d1_message(site.name), false});
    }
}

void check_local(const SourceFile& file, std::vector<Finding>& findings) {
    Emitter out{file, findings};
    check_d2(file, out);
    check_d3(file, out);
    check_d4(file, out);
    check_d5(file, out);
    check_r1(file, out);
    check_a1(file, out);
    check_h1(file, out);
}

void check_file(const SourceFile& file, const std::set<std::string>& cross_file_members,
                std::vector<Finding>& findings) {
    std::set<std::string> names(cross_file_members);
    const std::set<std::string> locals = collect_unordered_locals(file);
    names.insert(locals.begin(), locals.end());
    resolve_d1(file.path, collect_d1_sites(file), names, findings);
    check_local(file, findings);
}

}  // namespace memopt::lint
