// memopt_lint project graph — pass 2 of the two-pass engine.
//
// The global rules consume the per-file indexes (index.hpp) as a whole:
// the include graph (L2 cycles, I1 include closures), the module layering
// DAG declared in tools/layering.toml (L1), and the JSON-schema goldens
// (S1). Everything here is pure set/graph computation over already-cached
// facts, so it is cheap enough to recompute on every run — which is what
// makes the incremental cache sound: a header edit, a layering change, or
// a golden update is honoured immediately without invalidating unrelated
// per-file cache entries.
#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "tools/lint/index.hpp"

namespace memopt::lint {

// ---------------------------------------------------------------------------
// Module layering (tools/layering.toml)

/// The declared layering DAG. Parsed from a small TOML subset:
///   schema = "memopt.layering.v1"
///   allow_same_layer = true
///   [[layer]]
///   rank = 0
///   modules = ["support"]
///   [[exception]]
///   from = "trace"
///   to = "compress"
///   reason = "..."
struct LayeringConfig {
    std::map<std::string, int> module_layers;  // module -> rank
    bool allow_same_layer = true;
    /// Documented back-edges: `from` may include `to` despite the ranks.
    std::vector<std::pair<std::string, std::string>> exceptions;

    bool exception_allows(const std::string& from, const std::string& to) const;
};

/// Parse a layering document. Throws memopt::Error on malformed input,
/// unknown keys, a missing/unsupported schema tag, or a module listed in
/// two layers.
LayeringConfig parse_layering(std::string_view text, const std::string& path);

/// The layering module a root-relative path belongs to: the second path
/// component under src/ ("src/cache/..." -> "cache"), otherwise the first
/// component ("tests/..." -> "tests", "bench/..." -> "bench").
std::string module_of(const std::string& path);

// ---------------------------------------------------------------------------
// Include graph

/// Resolved quoted-include edges between scanned files.
struct IncludeGraph {
    /// file -> (include site array index -> resolved target path). Sites
    /// whose target does not resolve to a scanned file (system headers,
    /// generated files) are absent.
    std::map<std::string, std::map<std::size_t, std::string>> resolved;
    /// file -> resolved neighbour set (dedup'd), for traversals.
    std::map<std::string, std::vector<std::string>> edges;
};

/// Resolve each index's quoted includes against the scanned file set.
/// A target `T` in file `F` resolves to, in order: `src/T` (the project
/// include root), `T` verbatim, or `dirname(F)/T` normalized.
IncludeGraph build_include_graph(const std::map<std::string, FileIndex>& indexes);

/// Strongly connected components of the include graph with more than one
/// member (plus self-loops), each sorted, sorted by first member — the L2
/// findings' raw material.
std::vector<std::vector<std::string>> include_cycles(const IncludeGraph& graph);

// ---------------------------------------------------------------------------
// Global rule resolution (appends findings; caller sorts)

/// L1: quoted includes must follow the layering DAG.
void resolve_layering(const std::map<std::string, FileIndex>& indexes,
                      const IncludeGraph& graph, const LayeringConfig& config,
                      std::vector<Finding>& findings);

/// L2: one finding per include cycle, anchored on its lexicographically
/// smallest member.
void resolve_cycles(const IncludeGraph& graph, std::vector<Finding>& findings);

/// I1 (IWYU-lite): a quoted include is unused when no symbol its header
/// declares is referenced AND every referenced symbol reachable through its
/// include closure is also covered by the closures of the file's other
/// direct includes. A .cpp's primary header (same directory + stem) and
/// `keep-include`-annotated sites are exempt.
void resolve_unused_includes(const std::map<std::string, FileIndex>& indexes,
                             const IncludeGraph& graph, std::vector<Finding>& findings);

/// S1: per golden, the union of JSON keys its source files emit through
/// JsonWriter member()/key() literals must equal the frozen key set.
/// Unknown emitted keys anchor on the emitting line; no-longer-emitted
/// frozen keys anchor on the golden document itself.
void resolve_schemas(const std::map<std::string, FileIndex>& indexes,
                     const std::vector<SchemaGolden>& goldens,
                     std::vector<Finding>& findings);

}  // namespace memopt::lint
