// Lightweight C++ tokenizer for memopt_lint.
//
// This is not a compiler front-end: it splits a translation unit into the
// token categories the lint rules pattern-match against (identifiers,
// numbers, string/char literals, punctuation, whole preprocessor
// directives) while keeping the things that produce false positives in
// grep-style linting — comments and string-literal contents — out of the
// identifier stream. String contents are retained on the String token
// itself (the schema-conformance rule reads JSON keys out of them) but are
// never visible to identifier-matching rules. Lines are tracked per token
// so diagnostics are clickable.
//
// Comments are not discarded entirely: a comment of the form
//     // memopt-lint: <word> [<word>...]
// (or its /* ... */ equivalent) is recorded as a suppression annotation on
// the line it starts on. The rule engine treats an annotation as covering
// its own line and the line that follows, so both trailing and preceding
// annotation styles work:
//     for (const auto& [k, v] : map) {    // memopt-lint: order-independent
//     // memopt-lint: order-independent -- exact integer sums, see below
//     for (const auto& [k, v] : map) {
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace memopt::lint {

enum class TokKind {
    Identifier,   // identifiers and keywords (no distinction needed)
    Number,       // numeric literal (integer or floating, any base)
    String,       // string literal, raw content retained
    CharLit,      // character literal, text not retained
    Punct,        // operator/punctuation; common two-char operators fused
    PPDirective,  // whole preprocessor logical line, continuations folded
};

struct Token {
    TokKind kind;
    std::string text;  // identifier/number/punct spelling; directive text for
                       // PPDirective; raw literal content (escapes unprocessed,
                       // delimiters stripped) for String — the semantic pass
                       // reads JSON keys out of JsonWriter call chains
    int line = 0;      // 1-based line of the token's first character
};

/// A tokenized source file plus the lint annotations found in its comments.
struct SourceFile {
    std::string path;  // diagnostic path (relative to the lint root)
    bool is_header = false;
    std::vector<Token> tokens;
    /// line -> annotation words from `memopt-lint:` comments on that line.
    std::map<int, std::vector<std::string>> annotations;
    int last_line = 0;

    /// True when annotation `word` covers `line` (present on the line
    /// itself or on the line immediately above).
    bool annotated(int line, std::string_view word) const;
};

/// Tokenize `content`. `path` is stored verbatim for diagnostics; headers
/// are recognized by extension (.hpp/.h/.hh/.hxx/.inl).
SourceFile tokenize(std::string_view path, std::string_view content);

}  // namespace memopt::lint
