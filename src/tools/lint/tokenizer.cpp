#include "tools/lint/tokenizer.hpp"

#include <algorithm>
#include <cctype>

namespace memopt::lint {

namespace {

bool is_ident_start(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool is_ident_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool is_header_path(std::string_view path) {
    for (std::string_view ext : {".hpp", ".h", ".hh", ".hxx", ".inl"}) {
        if (path.size() > ext.size() && path.substr(path.size() - ext.size()) == ext) return true;
    }
    return false;
}

/// Operators the rules care about seeing as one token. `>>` is deliberately
/// absent: keeping `>` single-character makes template-argument depth
/// counting trivial for the declaration scans.
constexpr std::string_view kFusedOps[] = {
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "::", "->",
    "==", "!=", "<=", ">=", "&&", "||", "++", "--",
};

/// Parse the words of a `memopt-lint:` annotation out of comment text.
/// Words run until a `--` separator (free-form rationale) or end of text.
void record_annotation(std::string_view comment, int line,
                       std::map<int, std::vector<std::string>>& annotations) {
    const std::string_view tag = "memopt-lint:";
    const std::size_t pos = comment.find(tag);
    if (pos == std::string_view::npos) return;
    std::string_view rest = comment.substr(pos + tag.size());
    std::vector<std::string>& words = annotations[line];
    std::string word;
    for (std::size_t i = 0; i <= rest.size(); ++i) {
        const char c = i < rest.size() ? rest[i] : ' ';
        if (std::isspace(static_cast<unsigned char>(c)) || c == ',') {
            if (word == "--") break;  // rationale separator: stop collecting
            if (!word.empty()) words.push_back(word);
            word.clear();
        } else {
            word += c;
        }
    }
}

class Tokenizer {
public:
    Tokenizer(std::string_view path, std::string_view src) : src_(src) {
        out_.path = std::string(path);
        out_.is_header = is_header_path(path);
    }

    SourceFile run() {
        // UTF-8 BOM: editors on some platforms prepend EF BB BF. Skipping it
        // keeps `#` directives on line 1 recognized as directives (the BOM
        // bytes otherwise tokenize as punctuation and clear at_line_start_,
        // so a leading `#pragma once` would miss H1's guard detection).
        if (src_.size() >= 3 && src_[0] == '\xEF' && src_[1] == '\xBB' && src_[2] == '\xBF') {
            pos_ = 3;
        }
        while (pos_ < src_.size()) step();
        out_.last_line = line_;
        propagate_annotations();
        return std::move(out_);
    }

private:
    char peek(std::size_t ahead = 0) const {
        return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
    }

    void advance() {
        if (src_[pos_] == '\n') ++line_;
        ++pos_;
    }

    void push(TokKind kind, std::string text, int line) {
        out_.tokens.push_back(Token{kind, std::move(text), line});
    }

    void step() {
        const char c = peek();
        if (c == '\n' || std::isspace(static_cast<unsigned char>(c))) {
            at_line_start_ = c == '\n' || (at_line_start_ && c != '\n');
            advance();
            return;
        }
        if (c == '/' && peek(1) == '/') {
            line_comment();
            return;
        }
        if (c == '/' && peek(1) == '*') {
            block_comment();
            return;
        }
        if (c == '#' && at_line_start_) {
            directive();
            return;
        }
        at_line_start_ = false;
        if (c == '"') {
            if (!out_.tokens.empty() && out_.tokens.back().kind == TokKind::Identifier &&
                !out_.tokens.back().text.empty() && out_.tokens.back().text.back() == 'R') {
                raw_string();
            } else {
                quoted('"', TokKind::String);
            }
            return;
        }
        if (c == '\'') {
            quoted('\'', TokKind::CharLit);
            return;
        }
        if (is_ident_start(c)) {
            identifier();
            return;
        }
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
            number();
            return;
        }
        punct();
    }

    void line_comment() {
        const int start = line_;
        std::string text;
        while (pos_ < src_.size() && peek() != '\n') {
            // A backslash-newline splice extends a // comment onto the next
            // physical line (translation phase 2 runs before comment
            // removal); without this the continuation line would tokenize
            // as code and feed false findings.
            if (peek() == '\\' && (peek(1) == '\n' || (peek(1) == '\r' && peek(2) == '\n'))) {
                advance();  // '\'
                if (peek() == '\r') advance();
                advance();  // '\n'
                text += ' ';
                continue;
            }
            text += peek();
            advance();
        }
        record_annotation(text, start, out_.annotations);
    }

    void block_comment() {
        const int start = line_;
        std::string text;
        advance();  // '/'
        advance();  // '*'
        while (pos_ < src_.size() && !(peek() == '*' && peek(1) == '/')) {
            text += peek();
            advance();
        }
        if (pos_ < src_.size()) {
            advance();
            advance();
        }
        record_annotation(text, start, out_.annotations);
    }

    /// A whole preprocessor logical line, backslash continuations folded in.
    /// Comments inside the directive are skipped (annotations still apply);
    /// string and character literals are copied opaquely so a `//` inside
    /// one (`#define URL "http://…"`) cannot truncate the directive.
    void directive() {
        const int start = line_;
        std::string text;
        while (pos_ < src_.size()) {
            const char c = peek();
            if (c == '\\' && (peek(1) == '\n' || (peek(1) == '\r' && peek(2) == '\n'))) {
                advance();
                if (peek() == '\r') advance();
                advance();
                text += ' ';
                continue;
            }
            if (c == '\n') break;
            if (c == '"' || c == '\'') {
                directive_literal(c, text);
                continue;
            }
            if (c == '/' && peek(1) == '/') {
                line_comment();
                break;
            }
            if (c == '/' && peek(1) == '*') {
                block_comment();
                text += ' ';
                continue;
            }
            text += c;
            advance();
        }
        push(TokKind::PPDirective, std::move(text), start);
        at_line_start_ = true;
    }

    /// Copy a quoted literal inside a preprocessor directive verbatim,
    /// honouring escapes and backslash-newline splices. Stops at an
    /// unterminated literal's end of line (the directive ends there too).
    void directive_literal(char delim, std::string& text) {
        text += peek();
        advance();  // opening delimiter
        while (pos_ < src_.size() && peek() != '\n') {
            const char c = peek();
            if (c == '\\') {
                if (peek(1) == '\n' || (peek(1) == '\r' && peek(2) == '\n')) {
                    advance();
                    if (peek() == '\r') advance();
                    advance();
                    continue;
                }
                text += peek();
                advance();
                if (pos_ < src_.size() && peek() != '\n') {
                    text += peek();
                    advance();
                }
                continue;
            }
            text += c;
            advance();
            if (c == delim) return;
        }
    }

    void quoted(char delim, TokKind kind) {
        const int start = line_;
        std::string text;
        advance();  // opening delimiter
        while (pos_ < src_.size()) {
            const char c = peek();
            if (c == '\\') {
                // Backslash-newline inside a literal is a phase-2 splice,
                // not an escape sequence: the literal continues on the next
                // physical line with nothing added to its value.
                if (peek(1) == '\n' || (peek(1) == '\r' && peek(2) == '\n')) {
                    advance();
                    if (peek() == '\r') advance();
                    advance();
                    continue;
                }
                text += peek();
                advance();
                if (pos_ < src_.size()) {
                    text += peek();
                    advance();
                }
                continue;
            }
            advance();
            if (c == delim) break;
            text += c;
        }
        push(kind, kind == TokKind::String ? std::move(text) : std::string(), start);
    }

    /// R"delim( ... )delim" — the preceding R identifier token has already
    /// been emitted; drop it and emit one String token in its place. The
    /// d-char-seq cannot legally contain parentheses, backslashes, or
    /// spaces, so the delimiter scan stops at the first of those (treating
    /// a malformed prefix as an ordinary string rather than swallowing the
    /// rest of the file).
    void raw_string() {
        const int start = out_.tokens.back().line;
        std::string& prev = out_.tokens.back().text;
        if (prev == "R" || prev == "u8R" || prev == "uR" || prev == "UR" || prev == "LR") {
            out_.tokens.pop_back();
        } else {
            // Identifier merely ends in R (e.g. `VAR"..."` macro paste);
            // treat as an ordinary string start.
            quoted('"', TokKind::String);
            return;
        }
        advance();  // '"'
        std::string delim;
        while (pos_ < src_.size() && peek() != '(') {
            const char c = peek();
            if (c == ')' || c == '\\' || c == ' ' || c == '"' || c == '\n' || delim.size() >= 16) {
                // Not a valid raw-string prefix after all; re-lex the tail
                // as ordinary tokens (the opening quote is already behind
                // us, so emit the prefix as an opaque string token).
                push(TokKind::String, std::move(delim), start);
                return;
            }
            delim += c;
            advance();
        }
        const std::string close = ")" + delim + "\"";
        std::string text;
        while (pos_ < src_.size() && src_.compare(pos_, close.size(), close) != 0) {
            text += peek();
            advance();
        }
        for (std::size_t i = 0; i < close.size() && pos_ < src_.size(); ++i) advance();
        push(TokKind::String, std::move(text), start);
    }

    void identifier() {
        const int start = line_;
        std::string text;
        while (pos_ < src_.size() && is_ident_char(peek())) {
            text += peek();
            advance();
        }
        push(TokKind::Identifier, std::move(text), start);
    }

    void number() {
        const int start = line_;
        std::string text;
        while (pos_ < src_.size()) {
            const char c = peek();
            if (is_ident_char(c) || c == '.' || c == '\'') {
                text += c;
                advance();
                // Exponent signs: 1e-5, 0x1p+3
                if ((c == 'e' || c == 'E' || c == 'p' || c == 'P') &&
                    (peek() == '+' || peek() == '-') && !text.starts_with("0x") &&
                    !text.starts_with("0X")) {
                    text += peek();
                    advance();
                } else if ((c == 'p' || c == 'P') && (peek() == '+' || peek() == '-')) {
                    text += peek();
                    advance();
                }
            } else {
                break;
            }
        }
        push(TokKind::Number, std::move(text), start);
    }

    void punct() {
        const int start = line_;
        for (std::string_view op : kFusedOps) {
            if (src_.compare(pos_, op.size(), op) == 0) {
                advance();
                advance();
                push(TokKind::Punct, std::string(op), start);
                return;
            }
        }
        std::string text(1, peek());
        advance();
        push(TokKind::Punct, std::move(text), start);
    }

    /// An annotation covers its own line and the next *code* line, however
    /// many comment-only rationale lines sit in between. Comment lines
    /// produce no tokens, so "first token line after the annotation" is
    /// exactly the code line the comment is attached to.
    void propagate_annotations() {
        std::vector<int> token_lines;
        token_lines.reserve(out_.tokens.size());
        for (const Token& t : out_.tokens) token_lines.push_back(t.line);
        std::sort(token_lines.begin(), token_lines.end());
        std::vector<std::pair<int, std::vector<std::string>>> extra;
        for (const auto& [line, words] : out_.annotations) {
            const auto it =
                std::upper_bound(token_lines.begin(), token_lines.end(), line);
            if (it != token_lines.end()) extra.emplace_back(*it, words);
        }
        for (auto& [line, words] : extra) {
            std::vector<std::string>& dst = out_.annotations[line];
            dst.insert(dst.end(), words.begin(), words.end());
        }
    }

    std::string_view src_;
    std::size_t pos_ = 0;
    int line_ = 1;
    bool at_line_start_ = true;
    SourceFile out_;
};

}  // namespace

bool SourceFile::annotated(int line, std::string_view word) const {
    for (int l : {line, line - 1}) {
        const auto it = annotations.find(l);
        if (it == annotations.end()) continue;
        if (std::find(it->second.begin(), it->second.end(), word) != it->second.end())
            return true;
    }
    return false;
}

SourceFile tokenize(std::string_view path, std::string_view content) {
    return Tokenizer(path, content).run();
}

}  // namespace memopt::lint
