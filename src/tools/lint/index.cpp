#include "tools/lint/index.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "support/assert.hpp"

namespace memopt::lint {

namespace {

bool is_ident_token(const Token& t, std::string_view text) {
    return t.kind == TokKind::Identifier && t.text == text;
}

bool is_punct_token(const Token& t, std::string_view text) {
    return t.kind == TokKind::Punct && t.text == text;
}

/// Split a preprocessor directive body into identifier-shaped words.
void directive_identifiers(const std::string& text, std::vector<std::string>& out) {
    std::string word;
    bool in_string = false;
    char delim = '\0';
    for (std::size_t i = 0; i <= text.size(); ++i) {
        const char c = i < text.size() ? text[i] : ' ';
        if (in_string) {
            if (c == '\\') {
                ++i;
            } else if (c == delim) {
                in_string = false;
            }
            continue;
        }
        if (c == '"' || c == '\'') {
            in_string = true;
            delim = c;
            if (!word.empty()) out.push_back(word);
            word.clear();
            continue;
        }
        if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
            word += c;
        } else {
            if (!word.empty() && !std::isdigit(static_cast<unsigned char>(word[0]))) {
                out.push_back(word);
            }
            word.clear();
        }
    }
}

/// Keywords that never count as a declared symbol of a header.
bool is_cpp_keyword(const std::string& w) {
    static const std::set<std::string> kw = {
        "alignas",  "alignof",  "auto",      "bool",      "break",    "case",
        "catch",    "char",     "class",     "concept",   "const",    "consteval",
        "constexpr","constinit","continue",  "decltype",  "default",  "delete",
        "do",       "double",   "else",      "enum",      "explicit", "export",
        "extern",   "false",    "float",     "for",       "friend",   "goto",
        "if",       "inline",   "int",       "long",      "mutable",  "namespace",
        "new",      "noexcept", "nullptr",   "operator",  "private",  "protected",
        "public",   "register", "requires",  "return",    "short",    "signed",
        "sizeof",   "static",   "struct",    "switch",    "template", "this",
        "throw",    "true",     "try",       "typedef",   "typeid",   "typename",
        "union",    "unsigned", "using",     "virtual",   "void",     "volatile",
        "while",    "final",    "override",  "co_await",  "co_return","co_yield",
        "static_assert", "static_cast", "dynamic_cast", "const_cast",
        "reinterpret_cast", "std"};
    return kw.count(w) != 0;
}

/// Names a header offers to its includers. Deliberately generous — an
/// over-collected symbol can only make an include look *used* (I1's safe
/// direction) — but grounded in declaration shapes, not a bag of every
/// identifier, so genuinely unused includes still surface:
///  - type names after class/struct/union/enum/concept
///  - alias and namespace names after using/typedef/namespace
///  - enumerators (all identifiers inside an enum's braces)
///  - function names (identifier directly followed by `(`)
///  - variable/member/constant names in declaration position
///  - object-like and function-like macro names from #define
void collect_declared_symbols(const SourceFile& file, std::set<std::string>& out) {
    const auto& t = file.tokens;
    auto add = [&](const std::string& name) {
        if (!name.empty() && !is_cpp_keyword(name)) out.insert(name);
    };
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind == TokKind::PPDirective) {
            // "#define NAME ..." / "#define NAME(args) ..."
            std::vector<std::string> words;
            directive_identifiers(t[i].text, words);
            if (words.size() >= 2 && words[0] == "define") add(words[1]);
            continue;
        }
        if (t[i].kind != TokKind::Identifier) continue;
        const std::string& w = t[i].text;
        if (w == "namespace") {
            // A namespace *block* (`namespace x {`, `namespace x::y {`) is
            // not a symbol the header provides: any file re-opens a
            // namespace without including anything, so counting the name
            // would mark every include as used by every file sharing the
            // project's root namespace. A namespace *alias*
            // (`namespace x = y;`) is a real declaration.
            std::size_t j = i + 1;
            while (j + 1 < t.size() && t[j].kind == TokKind::Identifier &&
                   is_punct_token(t[j + 1], "::")) {
                j += 2;
            }
            if (j + 1 < t.size() && t[j].kind == TokKind::Identifier &&
                is_punct_token(t[j + 1], "=")) {
                add(t[j].text);
            }
            continue;
        }
        if (w == "class" || w == "struct" || w == "union" || w == "concept" ||
            w == "typedef" || w == "using") {
            // Skip attributes / `enum class`; take the next identifier.
            std::size_t j = i + 1;
            while (j < t.size() && t[j].kind == TokKind::Identifier &&
                   (t[j].text == "alignas" || t[j].text == "class" || t[j].text == "struct")) {
                ++j;
            }
            if (j < t.size() && t[j].kind == TokKind::Identifier) add(t[j].text);
            continue;
        }
        if (w == "enum") {
            std::size_t j = i + 1;
            if (j < t.size() &&
                (is_ident_token(t[j], "class") || is_ident_token(t[j], "struct"))) {
                ++j;
            }
            if (j < t.size() && t[j].kind == TokKind::Identifier) {
                add(t[j].text);
                ++j;
            }
            // Optional underlying type, then the enumerator list.
            while (j < t.size() && !is_punct_token(t[j], "{") && !is_punct_token(t[j], ";")) {
                ++j;
            }
            if (j < t.size() && is_punct_token(t[j], "{")) {
                std::size_t depth = 0;
                for (; j < t.size(); ++j) {
                    if (is_punct_token(t[j], "{")) ++depth;
                    else if (is_punct_token(t[j], "}")) {
                        if (--depth == 0) break;
                    } else if (t[j].kind == TokKind::Identifier) {
                        add(t[j].text);
                    }
                }
                i = j;
            }
            continue;
        }
        // Function names: identifier directly followed by `(`, not reached
        // through a member access (those belong to another type).
        if (i + 1 < t.size() && is_punct_token(t[i + 1], "(")) {
            if (i > 0 && (is_punct_token(t[i - 1], ".") || is_punct_token(t[i - 1], "->")))
                continue;
            add(w);
            continue;
        }
        // Variable / member / constant declarations: identifier followed by
        // a declarator terminator and preceded (after cv/ref/ptr) by a
        // type-ish token.
        if (i + 1 < t.size() &&
            (is_punct_token(t[i + 1], "=") || is_punct_token(t[i + 1], ";") ||
             is_punct_token(t[i + 1], "{") || is_punct_token(t[i + 1], ","))) {
            std::size_t p = i;
            while (p > 0 && (is_punct_token(t[p - 1], "&") || is_punct_token(t[p - 1], "*") ||
                             is_ident_token(t[p - 1], "const"))) {
                --p;
            }
            if (p == 0) continue;
            if (is_punct_token(t[p - 1], ">") ||
                (t[p - 1].kind == TokKind::Identifier && !is_cpp_keyword(t[p - 1].text)) ||
                is_ident_token(t[p - 1], "bool") || is_ident_token(t[p - 1], "int") ||
                is_ident_token(t[p - 1], "double") || is_ident_token(t[p - 1], "float") ||
                is_ident_token(t[p - 1], "char") || is_ident_token(t[p - 1], "auto")) {
                add(w);
            }
        }
    }
}

/// Parse one `#include` directive body; returns false for other directives.
bool parse_include(const std::string& text, std::string& target, bool& system) {
    std::size_t i = 0;
    auto skip_ws = [&] {
        while (i < text.size() && (text[i] == ' ' || text[i] == '\t' || text[i] == '#')) ++i;
    };
    skip_ws();
    const std::string_view kw = "include";
    if (text.compare(i, kw.size(), kw) != 0) return false;
    i += kw.size();
    skip_ws();
    if (i >= text.size()) return false;
    char close;
    if (text[i] == '"') close = '"';
    else if (text[i] == '<') close = '>';
    else return false;
    system = close == '>';
    const std::size_t end = text.find(close, i + 1);
    if (end == std::string::npos) return false;
    target = text.substr(i + 1, end - i - 1);
    return true;
}

void write_finding(std::ostringstream& out, const Finding& f) {
    out << "lf " << f.line << ' ' << f.rule << ' ' << f.message << '\n';
}

}  // namespace

std::uint64_t fnv1a64(std::string_view bytes) noexcept {
    std::uint64_t h = 14695981039346656037ull;
    for (const char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return h;
}

FileIndex build_file_index(const SourceFile& file, std::uint64_t content_hash) {
    FileIndex idx;
    idx.path = file.path;
    idx.content_hash = content_hash;
    idx.is_header = file.is_header;

    std::set<std::string> used;
    std::set<std::string> declared;
    for (std::size_t i = 0; i < file.tokens.size(); ++i) {
        const Token& t = file.tokens[i];
        if (t.kind == TokKind::Identifier) {
            if (!is_cpp_keyword(t.text)) used.insert(t.text);
        } else if (t.kind == TokKind::PPDirective) {
            std::string target;
            bool system = false;
            if (parse_include(t.text, target, system)) {
                IncludeSite site;
                site.target = std::move(target);
                site.line = t.line;
                site.system = system;
                site.keep_annotated = file.annotated(t.line, "keep-include") ||
                                      file.annotated(t.line, "I1");
                site.layer_exempt = file.annotated(t.line, "layering") ||
                                    file.annotated(t.line, "L1");
                idx.includes.push_back(std::move(site));
            } else {
                std::vector<std::string> words;
                directive_identifiers(t.text, words);
                // First word is the directive name; macro operands after it
                // are genuine uses (`#if MEMOPT_HAS_FOO`).
                for (std::size_t w = 1; w < words.size(); ++w) {
                    if (!is_cpp_keyword(words[w])) used.insert(words[w]);
                }
            }
        }
    }
    if (file.is_header) collect_declared_symbols(file, declared);

    idx.declared_symbols.assign(declared.begin(), declared.end());
    idx.used_identifiers.assign(used.begin(), used.end());
    const std::set<std::string> ul = collect_unordered_locals(file);
    const std::set<std::string> um = collect_unordered_members(file);
    idx.unordered_locals.assign(ul.begin(), ul.end());
    idx.unordered_members.assign(um.begin(), um.end());
    idx.d1_sites = collect_d1_sites(file);

    for (std::size_t i = 0; i + 2 < file.tokens.size(); ++i) {
        const Token& t = file.tokens[i];
        // w.member("key", ...) / w.key("key") — JsonWriter call chains.
        if (t.kind != TokKind::Identifier || (t.text != "member" && t.text != "key"))
            continue;
        if (i == 0 || !(is_punct_token(file.tokens[i - 1], ".") ||
                        is_punct_token(file.tokens[i - 1], "->")))
            continue;
        if (!is_punct_token(file.tokens[i + 1], "(")) continue;
        if (file.tokens[i + 2].kind != TokKind::String) continue;
        idx.json_keys.push_back(FileIndex::JsonKey{file.tokens[i + 2].text, t.line});
    }

    check_local(file, idx.local_findings);
    return idx;
}

// ---------------------------------------------------------------------------
// Incremental cache
//
// Line-oriented text, one block per file. The first line carries the tool
// stamp; a stamp or shape mismatch anywhere makes the whole document a
// cache miss (parse_cache returns empty), never an error — the driver just
// rescans. Fields that may contain spaces (include targets, finding
// messages, JSON keys) go last on their line.

std::string serialize_cache(std::string_view tool_stamp,
                            const std::vector<FileIndex>& indexes) {
    std::ostringstream out;
    out << "memopt-lint-cache " << tool_stamp << '\n';
    for (const FileIndex& idx : indexes) {
        out << "file " << idx.path << '\n';
        out << "hash " << std::hex << idx.content_hash << std::dec << '\n';
        out << "header " << (idx.is_header ? 1 : 0) << '\n';
        for (const IncludeSite& inc : idx.includes) {
            out << "inc " << inc.line << ' ' << (inc.system ? 1 : 0) << ' '
                << (inc.keep_annotated ? 1 : 0) << ' ' << (inc.layer_exempt ? 1 : 0)
                << ' ' << inc.target << '\n';
        }
        for (const std::string& s : idx.declared_symbols) out << "sym " << s << '\n';
        for (const std::string& s : idx.used_identifiers) out << "use " << s << '\n';
        for (const std::string& s : idx.unordered_locals) out << "ul " << s << '\n';
        for (const std::string& s : idx.unordered_members) out << "um " << s << '\n';
        for (const D1Site& d : idx.d1_sites) {
            out << "d1 " << d.line << ' ' << d.group << ' ' << (d.suppressed ? 1 : 0)
                << ' ' << d.name << '\n';
        }
        for (const FileIndex::JsonKey& k : idx.json_keys) {
            out << "jk " << k.line << ' ' << k.key << '\n';
        }
        for (const Finding& f : idx.local_findings) write_finding(out, f);
    }
    return out.str();
}

std::map<std::string, FileIndex> parse_cache(std::string_view text,
                                             std::string_view tool_stamp) {
    std::map<std::string, FileIndex> result;
    std::istringstream in{std::string(text)};
    std::string line;
    if (!std::getline(in, line)) return {};
    if (line != "memopt-lint-cache " + std::string(tool_stamp)) return {};

    FileIndex current;
    bool have_file = false;
    auto flush = [&] {
        if (have_file) result[current.path] = std::move(current);
        current = FileIndex{};
    };
    // Split "tag rest"; then pull space-separated fields off `rest`.
    auto fail = [&]() -> std::map<std::string, FileIndex> { return {}; };
    while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (line.empty()) continue;
        const std::size_t sp = line.find(' ');
        if (sp == std::string::npos) return fail();
        const std::string tag = line.substr(0, sp);
        std::string rest = line.substr(sp + 1);
        auto take_int = [&](long& value) {
            const std::size_t s = rest.find(' ');
            const std::string head = s == std::string::npos ? rest : rest.substr(0, s);
            rest = s == std::string::npos ? std::string() : rest.substr(s + 1);
            try {
                value = std::stol(head);
            } catch (const std::exception&) {
                return false;
            }
            return true;
        };
        if (tag == "file") {
            flush();
            current.path = rest;
            have_file = true;
        } else if (!have_file) {
            return fail();
        } else if (tag == "hash") {
            try {
                current.content_hash = std::stoull(rest, nullptr, 16);
            } catch (const std::exception&) {
                return fail();
            }
        } else if (tag == "header") {
            current.is_header = rest == "1";
        } else if (tag == "inc") {
            long ln = 0, sys = 0, keep = 0, exempt = 0;
            if (!take_int(ln) || !take_int(sys) || !take_int(keep) || !take_int(exempt))
                return fail();
            current.includes.push_back(IncludeSite{rest, static_cast<int>(ln), sys != 0,
                                                   keep != 0, exempt != 0});
        } else if (tag == "sym") {
            current.declared_symbols.push_back(rest);
        } else if (tag == "use") {
            current.used_identifiers.push_back(rest);
        } else if (tag == "ul") {
            current.unordered_locals.push_back(rest);
        } else if (tag == "um") {
            current.unordered_members.push_back(rest);
        } else if (tag == "d1") {
            long ln = 0, group = 0, sup = 0;
            if (!take_int(ln) || !take_int(group) || !take_int(sup)) return fail();
            current.d1_sites.push_back(
                D1Site{rest, static_cast<int>(ln), static_cast<int>(group), sup != 0});
        } else if (tag == "jk") {
            long ln = 0;
            if (!take_int(ln)) return fail();
            current.json_keys.push_back(FileIndex::JsonKey{rest, static_cast<int>(ln)});
        } else if (tag == "lf") {
            long ln = 0;
            if (!take_int(ln)) return fail();
            const std::size_t s = rest.find(' ');
            if (s == std::string::npos) return fail();
            Finding f;
            f.file = current.path;
            f.line = static_cast<int>(ln);
            f.rule = rest.substr(0, s);
            f.message = rest.substr(s + 1);
            current.local_findings.push_back(std::move(f));
        } else {
            return fail();
        }
    }
    flush();
    return result;
}

// ---------------------------------------------------------------------------
// Minimal JSON reader

namespace {

class JsonParser {
public:
    JsonParser(std::string_view text, const std::string& name) : text_(text), name_(name) {}

    JsonValue parse_document() {
        JsonValue v = parse_value();
        skip_ws();
        if (pos_ != text_.size()) error("trailing characters after document");
        return v;
    }

private:
    [[noreturn]] void error(const std::string& what) const {
        throw Error("memopt_lint: " + name_ + ": JSON parse error at offset " +
                    std::to_string(pos_) + ": " + what);
    }

    void skip_ws() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
                text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char peek() {
        skip_ws();
        if (pos_ >= text_.size()) error("unexpected end of document");
        return text_[pos_];
    }

    void expect(char c) {
        if (peek() != c) error(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool consume_literal(std::string_view lit) {
        if (text_.compare(pos_, lit.size(), lit) != 0) return false;
        pos_ += lit.size();
        return true;
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"') return out;
            if (c == '\\') {
                if (pos_ >= text_.size()) break;
                const char e = text_[pos_++];
                switch (e) {
                    case '"': out += '"'; break;
                    case '\\': out += '\\'; break;
                    case '/': out += '/'; break;
                    case 'b': out += '\b'; break;
                    case 'f': out += '\f'; break;
                    case 'n': out += '\n'; break;
                    case 'r': out += '\r'; break;
                    case 't': out += '\t'; break;
                    case 'u': {
                        // The lint configs are ASCII; keep the escape verbatim
                        // rather than transcoding.
                        out += "\\u";
                        for (int i = 0; i < 4 && pos_ < text_.size(); ++i) out += text_[pos_++];
                        break;
                    }
                    default: error("bad escape sequence");
                }
            } else {
                out += c;
            }
        }
        error("unterminated string");
    }

    JsonValue parse_value() {
        const char c = peek();
        JsonValue v;
        if (c == '{') {
            v.kind = JsonValue::Kind::Object;
            ++pos_;
            if (peek() == '}') {
                ++pos_;
                return v;
            }
            for (;;) {
                std::string key = parse_string();
                expect(':');
                v.members.emplace_back(std::move(key), parse_value());
                const char n = peek();
                ++pos_;
                if (n == '}') return v;
                if (n != ',') error("expected ',' or '}' in object");
                skip_ws();
            }
        }
        if (c == '[') {
            v.kind = JsonValue::Kind::Array;
            ++pos_;
            if (peek() == ']') {
                ++pos_;
                return v;
            }
            for (;;) {
                v.items.push_back(parse_value());
                const char n = peek();
                ++pos_;
                if (n == ']') return v;
                if (n != ',') error("expected ',' or ']' in array");
            }
        }
        if (c == '"') {
            v.kind = JsonValue::Kind::String;
            v.string = parse_string();
            return v;
        }
        skip_ws();
        if (consume_literal("true")) {
            v.kind = JsonValue::Kind::Bool;
            v.boolean = true;
            return v;
        }
        if (consume_literal("false")) {
            v.kind = JsonValue::Kind::Bool;
            return v;
        }
        if (consume_literal("null")) return v;
        // Number.
        const std::size_t start = pos_;
        if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
                text_[pos_] == '-' || text_[pos_] == '+')) {
            ++pos_;
        }
        if (pos_ == start) error("unexpected character");
        v.kind = JsonValue::Kind::Number;
        try {
            v.number = std::stod(std::string(text_.substr(start, pos_ - start)));
        } catch (const std::exception&) {
            error("bad number");
        }
        return v;
    }

    std::string_view text_;
    std::string name_;
    std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
    if (kind != Kind::Object) return nullptr;
    for (const auto& [k, v] : members) {
        if (k == key) return &v;
    }
    return nullptr;
}

JsonValue parse_json(std::string_view text, const std::string& name) {
    return JsonParser(text, name).parse_document();
}

SchemaGolden parse_schema_golden(std::string_view text, const std::string& path) {
    const JsonValue doc = parse_json(text, path);
    auto require_string = [&](const char* key) -> const std::string& {
        const JsonValue* v = doc.find(key);
        if (v == nullptr || v->kind != JsonValue::Kind::String) {
            throw Error("memopt_lint: " + path + ": missing string field '" + key + "'");
        }
        return v->string;
    };
    if (require_string("schema") != "memopt.schema-freeze.v1") {
        throw Error("memopt_lint: " + path +
                    ": unsupported schema document (want memopt.schema-freeze.v1)");
    }
    SchemaGolden g;
    g.path = path;
    g.id = require_string("id");
    auto require_array = [&](const char* key) -> const std::vector<JsonValue>& {
        const JsonValue* v = doc.find(key);
        if (v == nullptr || v->kind != JsonValue::Kind::Array) {
            throw Error("memopt_lint: " + path + ": missing array field '" + key + "'");
        }
        return v->items;
    };
    for (const JsonValue& v : require_array("sources")) {
        if (v.kind != JsonValue::Kind::String) {
            throw Error("memopt_lint: " + path + ": 'sources' entries must be strings");
        }
        g.sources.push_back(v.string);
    }
    for (const JsonValue& v : require_array("keys")) {
        if (v.kind != JsonValue::Kind::String) {
            throw Error("memopt_lint: " + path + ": 'keys' entries must be strings");
        }
        g.keys.insert(v.string);
    }
    return g;
}

}  // namespace memopt::lint
