#include "core/flow.hpp"

#include <optional>

#include "cluster/frequency.hpp"
#include "cluster/heat.hpp"
#include "support/assert.hpp"
#include "support/json.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"
#include "support/stats.hpp"
#include "trace/source.hpp"

namespace memopt {

namespace {

// Per-stage observability. References are cached so the name lookup is
// paid once per process; recording is lock-free (support/metrics.hpp) and
// never influences results.
MetricTimer& profile_timer() {
    static MetricTimer& t = MetricsRegistry::instance().timer("flow.profile");
    return t;
}
MetricTimer& cluster_timer() {
    static MetricTimer& t = MetricsRegistry::instance().timer("flow.cluster");
    return t;
}
MetricTimer& partition_timer() {
    static MetricTimer& t = MetricsRegistry::instance().timer("flow.partition");
    return t;
}
MetricTimer& evaluate_timer() {
    static MetricTimer& t = MetricsRegistry::instance().timer("flow.evaluate");
    return t;
}

}  // namespace

std::string cluster_method_name(ClusterMethod method) {
    switch (method) {
        case ClusterMethod::None: return "none";
        case ClusterMethod::Frequency: return "frequency";
        case ClusterMethod::Affinity: return "affinity";
    }
    MEMOPT_ASSERT_MSG(false, "invalid ClusterMethod");
    return "?";
}

MemoryOptimizationFlow::MemoryOptimizationFlow(const FlowParams& params) : params_(params) {
    require(is_pow2(params.block_size), "FlowParams: block_size must be a power of two");
    require(params.affinity_window >= 2, "FlowParams: affinity_window must be >= 2");
}

FlowResult MemoryOptimizationFlow::run(const MemTrace& trace, ClusterMethod method) const {
    if (method == ClusterMethod::Affinity) {
        // Fused path: the profile and the windowed affinity come out of one
        // streaming replay of the trace (bit-identical to the two-pass
        // build, roughly half the replay cost).
        ProfileAffinity pa = [&] {
            const ScopedTimer scope(profile_timer());
            return build_profile_and_affinity(trace, params_.block_size,
                                              params_.affinity_window);
        }();
        return run_prepared(pa.profile, method, &trace, &pa.affinity);
    }
    const BlockProfile profile = [&] {
        const ScopedTimer scope(profile_timer());
        return BlockProfile::from_trace(trace, params_.block_size);
    }();
    return run(profile, method, &trace);
}

FlowResult MemoryOptimizationFlow::run(TraceSource& source, ClusterMethod method) const {
    if (method == ClusterMethod::Affinity) {
        ProfileAffinity pa = [&] {
            const ScopedTimer scope(profile_timer());
            return build_profile_and_affinity(source, params_.block_size,
                                              params_.affinity_window);
        }();
        return run_prepared(pa.profile, method, nullptr, &pa.affinity);
    }
    const BlockProfile profile = [&] {
        const ScopedTimer scope(profile_timer());
        return BlockProfile::from_source(source, params_.block_size);
    }();
    return run_prepared(profile, method, nullptr, nullptr);
}

FlowResult MemoryOptimizationFlow::run(const BlockProfile& profile, ClusterMethod method,
                                       const MemTrace* trace) const {
    return run_prepared(profile, method, trace, nullptr);
}

FlowResult MemoryOptimizationFlow::run_prepared(const BlockProfile& profile,
                                                ClusterMethod method, const MemTrace* trace,
                                                const AffinityMatrix* affinity,
                                                std::size_t pool_banks) const {
    static MetricCounter& runs = MetricsRegistry::instance().counter("flow.runs");
    runs.add();

    AddressMap map = AddressMap::identity(profile.block_size(), profile.num_blocks());
    {
        const ScopedTimer scope(cluster_timer());
        switch (method) {
            case ClusterMethod::None:
                break;
            case ClusterMethod::Frequency:
                map = frequency_clustering(profile);
                break;
            case ClusterMethod::Affinity: {
                if (affinity != nullptr) {
                    map = affinity_clustering(profile, *affinity, params_.affinity);
                    break;
                }
                require(trace != nullptr,
                        "affinity clustering requires the trace, not just the profile");
                const AffinityMatrix built =
                    windowed_affinity(*trace, profile, params_.affinity_window);
                map = affinity_clustering(profile, built, params_.affinity);
                break;
            }
        }
    }

    const BlockProfile physical = map.apply(profile);

    // The remap table adds a constant per-access energy; being constant it
    // does not change the partitioner's arg-min, so it is added at
    // evaluation time only.
    PartitionEnergyParams energy_params = params_.energy;
    if (method != ClusterMethod::None) {
        const RemapTableModel remap(physical.num_blocks(), params_.remap);
        energy_params.extra_pj_per_access = remap.lookup_energy();
    }

    const bool greedy = params_.use_greedy_solver ||
                        physical.num_blocks() > params_.auto_greedy_blocks;
    PartitionSolution solution = [&] {
        const ScopedTimer scope(partition_timer());
        if (pool_banks > 0)
            return solve_partition_pooled(physical, params_.constraints, energy_params,
                                          pool_banks, greedy);
        return greedy ? solve_partition_greedy(physical, params_.constraints, energy_params)
                      : solve_partition_optimal(physical, params_.constraints, energy_params);
    }();

    FlowResult result{method, std::move(map), std::move(solution), EnergyBreakdown{}};
    result.energy = result.solution.energy;
    return result;
}

HybridFlowResult MemoryOptimizationFlow::run_hybrid(const MemTrace& trace,
                                                    ClusterMethod method, const BankPool& pool,
                                                    const HybridGatingParams& gating) const {
    MaterializedSource source(trace);
    return run_hybrid(source, method, pool, gating);
}

HybridFlowResult MemoryOptimizationFlow::run_hybrid(TraceSource& source, ClusterMethod method,
                                                    const BankPool& pool,
                                                    const HybridGatingParams& gating) const {
    require(pool.num_slots() > 0, "run_hybrid: empty bank pool");
    if (method == ClusterMethod::Affinity) {
        ProfileAffinity pa = [&] {
            const ScopedTimer scope(profile_timer());
            return build_profile_and_affinity(source, params_.block_size,
                                              params_.affinity_window);
        }();
        return run_hybrid_prepared(pa.profile, method, &pa.affinity, source, pool, gating);
    }
    const BlockProfile profile = [&] {
        const ScopedTimer scope(profile_timer());
        return BlockProfile::from_source(source, params_.block_size);
    }();
    return run_hybrid_prepared(profile, method, nullptr, source, pool, gating);
}

HybridFlowResult MemoryOptimizationFlow::run_hybrid_prepared(
    const BlockProfile& profile, ClusterMethod method, const AffinityMatrix* affinity,
    TraceSource& source, const BankPool& pool, const HybridGatingParams& gating) const {
    static MetricCounter& runs = MetricsRegistry::instance().counter("flow.hybrid_runs");
    runs.add();

    FlowResult base = run_prepared(profile, method, nullptr, affinity, pool.total_banks());

    // The remap-table per-access overhead enters the hybrid evaluation the
    // same way it enters the legacy one (constant per access, added at
    // evaluation time).
    PartitionEnergyParams energy_params = params_.energy;
    if (method != ClusterMethod::None) {
        const RemapTableModel remap(profile.num_blocks(), params_.remap);
        energy_params.extra_pj_per_access = remap.lookup_energy();
    }

    const std::vector<BankActivity> activity = [&] {
        const ScopedTimer scope(evaluate_timer());
        return replay_bank_activity(base.solution.arch, base.map, source, gating,
                                    params_.energy.runtime_cycles);
    }();
    std::vector<MemTechnology> techs =
        assign_technologies(base.solution.arch, activity, pool, energy_params, gating);
    HybridReport report =
        evaluate_partition_hybrid(base.solution.arch, techs, activity, energy_params, gating);

    const BlockProfile physical = base.map.apply(profile);
    const std::vector<std::size_t> rank = bank_heat_rank(bank_heat(base.solution.arch, physical));
    return HybridFlowResult{std::move(base), pool, std::move(techs), rank, std::move(report)};
}

FlowComparison MemoryOptimizationFlow::compare(const MemTrace& trace,
                                               ClusterMethod method) const {
    require(method != ClusterMethod::None, "compare: pick a real clustering method");
    static MetricCounter& compares = MetricsRegistry::instance().counter("flow.compares");
    compares.add();
    const BlockProfile profile = [&] {
        const ScopedTimer scope(profile_timer());
        return BlockProfile::from_trace(trace, params_.block_size);
    }();
    EnergyBreakdown monolithic = [&] {
        const ScopedTimer scope(evaluate_timer());
        return evaluate_monolithic(profile, params_.energy);
    }();
    FlowComparison cmp{
        std::move(monolithic),
        run(profile, ClusterMethod::None, &trace),
        run(profile, method, &trace),
    };
    return cmp;
}

FlowComparison MemoryOptimizationFlow::compare(TraceSource& source,
                                               ClusterMethod method) const {
    require(method != ClusterMethod::None, "compare: pick a real clustering method");
    static MetricCounter& compares = MetricsRegistry::instance().counter("flow.compares");
    compares.add();
    const BlockProfile profile = [&] {
        const ScopedTimer scope(profile_timer());
        return BlockProfile::from_source(source, params_.block_size);
    }();
    EnergyBreakdown monolithic = [&] {
        const ScopedTimer scope(evaluate_timer());
        return evaluate_monolithic(profile, params_.energy);
    }();
    // Affinity needs the trace a second time; re-replay the source instead
    // of materializing. The builder is the same one the MemTrace path uses,
    // so the comparison stays bit-identical to compare() on the trace.
    std::optional<AffinityMatrix> built;
    if (method == ClusterMethod::Affinity) {
        const ScopedTimer scope(cluster_timer());
        built.emplace(windowed_affinity(source, profile, params_.affinity_window));
    }
    FlowComparison cmp{
        std::move(monolithic),
        run_prepared(profile, ClusterMethod::None, nullptr, nullptr),
        run_prepared(profile, method, nullptr, built ? &*built : nullptr),
    };
    return cmp;
}

std::vector<FlowComparison> MemoryOptimizationFlow::compare_all(
    std::span<const MemTrace* const> traces, ClusterMethod method,
    std::size_t jobs) const {
    for (const MemTrace* trace : traces)
        require(trace != nullptr, "compare_all: null trace");
    // Each configuration is an independent pure evaluation; the parallel
    // runtime preserves input order, so the batch is bit-identical to the
    // serial loop at every job count.
    return parallel_map(
        traces, [&](const MemTrace* trace) { return compare(*trace, method); }, jobs);
}

std::vector<FlowComparison> MemoryOptimizationFlow::compare_all(
    std::span<const MemTrace> traces, ClusterMethod method, std::size_t jobs) const {
    return parallel_map(
        traces, [&](const MemTrace& trace) { return compare(trace, method); }, jobs);
}

double FlowComparison::clustering_savings_pct() const {
    return percent_savings(partitioned.energy.total(), clustered.energy.total());
}

double FlowComparison::partitioning_savings_pct() const {
    return percent_savings(monolithic.total(), partitioned.energy.total());
}

void to_json(JsonWriter& w, const FlowResult& result) {
    const MemoryArchitecture& arch = result.solution.arch;
    w.begin_object();
    w.member("method", cluster_method_name(result.method));
    w.member("num_banks", static_cast<std::uint64_t>(arch.num_banks()));
    w.member("total_capacity_bytes", arch.total_capacity());
    w.key("banks").begin_array();
    for (const Bank& bank : arch.banks()) {
        w.begin_object();
        w.member("first_block", static_cast<std::uint64_t>(bank.first_block));
        w.member("num_blocks", static_cast<std::uint64_t>(bank.num_blocks));
        w.member("size_bytes", bank.size_bytes);
        w.end_object();
    }
    w.end_array();
    w.key("energy");
    result.energy.to_json(w);
    w.end_object();
}

void to_json(JsonWriter& w, const HybridFlowResult& result) {
    const MemoryArchitecture& arch = result.base.solution.arch;
    w.begin_object();
    w.member("method", cluster_method_name(result.base.method));
    w.member("pool", result.pool.to_string());
    w.member("num_banks", static_cast<std::uint64_t>(arch.num_banks()));
    w.member("total_capacity_bytes", arch.total_capacity());
    w.member("total_cycles", result.report.total_cycles);
    w.key("banks").begin_array();
    for (std::size_t b = 0; b < arch.num_banks(); ++b) {
        const Bank& bank = arch.banks()[b];
        const HybridBankReport& slice = result.report.banks[b];
        w.begin_object();
        w.member("first_block", static_cast<std::uint64_t>(bank.first_block));
        w.member("num_blocks", static_cast<std::uint64_t>(bank.num_blocks));
        w.member("size_bytes", bank.size_bytes);
        w.member("tech", technology_name(result.techs[b]));
        w.member("heat_rank", static_cast<std::uint64_t>(result.heat_rank[b]));
        w.member("reads", slice.activity.reads);
        w.member("writes", slice.activity.writes);
        w.member("wakeups", slice.activity.wakeups);
        w.member("active_cycles", slice.activity.active_cycles);
        w.member("gated_cycles", slice.activity.gated_cycles);
        w.member("energy_pj", slice.total_pj());
        w.end_object();
    }
    w.end_array();
    w.key("energy");
    result.report.energy.to_json(w);
    w.end_object();
}

void to_json(JsonWriter& w, const FlowComparison& cmp) {
    w.begin_object();
    w.key("monolithic");
    cmp.monolithic.to_json(w);
    w.key("partitioned");
    to_json(w, cmp.partitioned);
    w.key("clustered");
    to_json(w, cmp.clustered);
    w.member("partitioning_savings_pct", cmp.partitioning_savings_pct());
    w.member("clustering_savings_pct", cmp.clustering_savings_pct());
    w.end_object();
}

}  // namespace memopt
