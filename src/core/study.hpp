// One-call kernel study: every optimization of the toolkit applied to one
// program, with a combined report.
//
// This is the "what can memopt do for my application?" entry point: run a
// kernel (or adopt an external trace + fetch stream), and get back the
// 1B-1 partition/clustering comparison, the 1B-2 compression result on a
// platform model, and the 1B-3 bus-transform result, each with its energy
// numbers.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "compress/diff_codec.hpp"
#include "compress/memsys.hpp"
#include "compress/platform.hpp"
#include "core/flow.hpp"
#include "encoding/search.hpp"
#include "sim/kernels.hpp"

namespace memopt {

/// Configuration of a study.
struct StudyParams {
    FlowParams flow;                        ///< partition/clustering settings
    ClusterMethod cluster_method = ClusterMethod::Frequency;
    PlatformModel platform = vliw_platform();  ///< compression platform
    TransformSearchParams encoding;         ///< bus-transform search budget
};

/// Combined results of a study.
struct StudyReport {
    std::string name;

    // 1B-1: data-memory partitioning and clustering.
    FlowComparison memory;

    // 1B-2: write-back compression (baseline vs diff codec).
    CompressedMemReport compression_baseline;
    CompressedMemReport compression;

    // 1B-3: instruction-bus transformation.
    TransformSearchResult encoding;

    /// Clustering savings vs plain partitioning [%] (the E1 metric).
    double clustering_savings_pct() const { return memory.clustering_savings_pct(); }

    /// Compression savings over the main-memory path [%] (the E4 metric).
    double compression_savings_pct() const;

    /// Bus-transition reduction [%] (the E7 metric).
    double encoding_reduction_pct() const { return 100.0 * encoding.reduction(); }
};

/// Serialize the full study: memory comparison, compression baseline vs
/// codec, encoding search, and the three headline savings percentages.
void to_json(JsonWriter& w, const StudyReport& report);

/// Run the full study on a bundled kernel.
StudyReport study_kernel(const Kernel& kernel, const StudyParams& params = StudyParams{});

/// Run the full study on externally supplied artifacts: a value-carrying
/// data trace, the initial data image (may be empty), and the instruction
/// fetch stream (may be empty: the encoding section is then skipped and
/// left value-initialized).
StudyReport study_trace(const std::string& name, const MemTrace& data_trace,
                        std::span<const std::uint8_t> image, std::uint64_t image_base,
                        std::span<const std::uint32_t> fetch_stream,
                        const StudyParams& params = StudyParams{});

/// Batch study_kernel(): study many kernels concurrently on the parallel
/// runtime (support/parallel.hpp). Reports preserve input order and are
/// bit-identical to a serial loop of study_kernel() calls at any job count.
/// `jobs == 0` means default_jobs() (the MEMOPT_JOBS knob).
std::vector<StudyReport> study_suite(std::span<const Kernel> kernels,
                                     const StudyParams& params = StudyParams{},
                                     std::size_t jobs = 0);

// ---------------------------------------------------------------------------
// Checkpoint/resume
//
// A suite's unit of durable progress is one kernel's finished study. The
// checkpoint record stores the kernel's name, its fully rendered results
// JSON (deterministic JsonWriter output at root depth), and the three
// headline percentages — enough for the CLI to splice resumed kernels into
// the envelope byte-identically via JsonWriter::raw_fragment without
// re-running them.

/// One kernel's durable study outcome (checkpoint record payload).
struct StudyOutcome {
    std::string name;
    std::string json;  ///< rendered StudyReport object (root depth, indent 2)
    double clustering_savings_pct = 0.0;
    double compression_savings_pct = 0.0;
    double encoding_reduction_pct = 0.0;
};

/// Render a finished report into its durable outcome form.
StudyOutcome to_outcome(const StudyReport& report);

std::string encode_study_record(const StudyOutcome& outcome);
/// Throws memopt::Error on a malformed record.
StudyOutcome decode_study_record(std::string_view record);

struct StudyCheckpointOptions {
    std::string path;        ///< checkpoint file; empty = never snapshot
    bool resume = false;     ///< load an existing compatible checkpoint first
    std::size_t every = 1;   ///< snapshot after this many new kernels
    /// The caller's fingerprint of every StudyParams knob that shapes
    /// results (the CLI builds it from its flags). Hashed together with
    /// the kernel-name sequence; resume refuses a mismatch.
    std::string config_tag;
    /// Test hook: stop (as if cancelled) after this many new kernels; 0 =
    /// unlimited.
    std::size_t max_kernels_this_run = 0;
};

struct StudySuiteOutcome {
    std::vector<StudyOutcome> outcomes;  ///< completed prefix, kernel order
    std::size_t total = 0;
    bool completed = false;
    std::string stop_reason;  ///< why the run stopped early; empty when completed
};

/// Checkpointed suite driver: kernels run in order in batches of `every`,
/// the finished prefix snapshots to a memopt.ckpt.v1 file (engine
/// kCkptEngineStudy) after each batch, and cancellation (deadline, signal,
/// max_kernels_this_run) returns completed == false with the prefix intact.
/// A resumed run's outcome sequence is byte-identical to an uninterrupted
/// one at any job count.
StudySuiteOutcome study_suite_checkpointed(std::span<const Kernel> kernels,
                                           const StudyParams& params, std::size_t jobs,
                                           const StudyCheckpointOptions& ckpt);

}  // namespace memopt
