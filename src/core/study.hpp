// One-call kernel study: every optimization of the toolkit applied to one
// program, with a combined report.
//
// This is the "what can memopt do for my application?" entry point: run a
// kernel (or adopt an external trace + fetch stream), and get back the
// 1B-1 partition/clustering comparison, the 1B-2 compression result on a
// platform model, and the 1B-3 bus-transform result, each with its energy
// numbers.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "compress/diff_codec.hpp"
#include "compress/memsys.hpp"
#include "compress/platform.hpp"
#include "core/flow.hpp"
#include "encoding/search.hpp"
#include "sim/kernels.hpp"

namespace memopt {

/// Configuration of a study.
struct StudyParams {
    FlowParams flow;                        ///< partition/clustering settings
    ClusterMethod cluster_method = ClusterMethod::Frequency;
    PlatformModel platform = vliw_platform();  ///< compression platform
    TransformSearchParams encoding;         ///< bus-transform search budget
};

/// Combined results of a study.
struct StudyReport {
    std::string name;

    // 1B-1: data-memory partitioning and clustering.
    FlowComparison memory;

    // 1B-2: write-back compression (baseline vs diff codec).
    CompressedMemReport compression_baseline;
    CompressedMemReport compression;

    // 1B-3: instruction-bus transformation.
    TransformSearchResult encoding;

    /// Clustering savings vs plain partitioning [%] (the E1 metric).
    double clustering_savings_pct() const { return memory.clustering_savings_pct(); }

    /// Compression savings over the main-memory path [%] (the E4 metric).
    double compression_savings_pct() const;

    /// Bus-transition reduction [%] (the E7 metric).
    double encoding_reduction_pct() const { return 100.0 * encoding.reduction(); }
};

/// Serialize the full study: memory comparison, compression baseline vs
/// codec, encoding search, and the three headline savings percentages.
void to_json(JsonWriter& w, const StudyReport& report);

/// Run the full study on a bundled kernel.
StudyReport study_kernel(const Kernel& kernel, const StudyParams& params = StudyParams{});

/// Run the full study on externally supplied artifacts: a value-carrying
/// data trace, the initial data image (may be empty), and the instruction
/// fetch stream (may be empty: the encoding section is then skipped and
/// left value-initialized).
StudyReport study_trace(const std::string& name, const MemTrace& data_trace,
                        std::span<const std::uint8_t> image, std::uint64_t image_base,
                        std::span<const std::uint32_t> fetch_stream,
                        const StudyParams& params = StudyParams{});

/// Batch study_kernel(): study many kernels concurrently on the parallel
/// runtime (support/parallel.hpp). Reports preserve input order and are
/// bit-identical to a serial loop of study_kernel() calls at any job count.
/// `jobs == 0` means default_jobs() (the MEMOPT_JOBS knob).
std::vector<StudyReport> study_suite(std::span<const Kernel> kernels,
                                     const StudyParams& params = StudyParams{},
                                     std::size_t jobs = 0);

}  // namespace memopt
