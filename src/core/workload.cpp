#include "core/workload.hpp"

#include "sim/kernels.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"

namespace memopt {

WorkloadRepository& WorkloadRepository::instance() {
    static WorkloadRepository repository;
    return repository;
}

KernelRunPtr WorkloadRepository::run(const std::string& kernel_name, bool fetch) {
    const Kernel& kernel = kernel_by_name(kernel_name);  // validate before caching

    std::promise<KernelRunPtr> promise;
    std::shared_future<KernelRunPtr> future;
    bool builder = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!fetch) {
            // A with-fetch artifact is a strict superset; reuse it.
            const auto superset = cache_.find(Key{kernel_name, true});
            if (superset != cache_.end()) future = superset->second;
        }
        if (!future.valid()) {
            const auto [it, inserted] = cache_.try_emplace(Key{kernel_name, fetch});
            if (inserted) {
                it->second = promise.get_future().share();
                builder = true;
            }
            future = it->second;
        }
    }

    static MetricCounter& hits = MetricsRegistry::instance().counter("workload.hits");
    static MetricCounter& misses = MetricsRegistry::instance().counter("workload.misses");
    (builder ? misses : hits).add();

    if (builder) {
        // Simulate outside the lock; waiters block on the future, not the
        // cache, so other kernels stay buildable concurrently.
        const ScopedTimer scope(MetricsRegistry::instance().timer("workload.simulate"));
        try {
            auto artifact = std::make_shared<KernelRun>();
            artifact->name = kernel.name;
            artifact->program = assemble(kernel.source);
            CpuConfig config;
            config.record_fetch_stream = fetch;
            artifact->result = Cpu(config).run(artifact->program);
            simulations_.fetch_add(1, std::memory_order_relaxed);
            promise.set_value(std::move(artifact));
        } catch (...) {
            promise.set_exception(std::current_exception());
        }
    }
    return future.get();
}

std::vector<KernelRunPtr> WorkloadRepository::suite(bool fetch, std::size_t jobs) {
    return parallel_map(
        kernel_suite(), [&](const Kernel& kernel) { return run(kernel.name, fetch); },
        jobs);
}

void WorkloadRepository::clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    cache_.clear();
}

}  // namespace memopt
