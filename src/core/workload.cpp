#include "core/workload.hpp"

#include "sim/kernels.hpp"
#include "support/assert.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"
#include "trace/io.hpp"
#include "trace/source.hpp"
#include "trace/stream_file.hpp"
#include "trace/synthetic.hpp"

namespace memopt {

WorkloadRepository& WorkloadRepository::instance() {
    static WorkloadRepository repository;
    return repository;
}

KernelRunPtr WorkloadRepository::run(const std::string& kernel_name, bool fetch) {
    const Kernel& kernel = kernel_by_name(kernel_name);  // validate before caching

    std::promise<KernelRunPtr> promise;
    std::shared_future<KernelRunPtr> future;
    bool builder = false;
    {
        MutexLock lock(mutex_);
        if (!fetch) {
            // A with-fetch artifact is a strict superset; reuse it.
            const auto superset = cache_.find(Key{kernel_name, true});
            if (superset != cache_.end()) future = superset->second;
        }
        if (!future.valid()) {
            const auto [it, inserted] = cache_.try_emplace(Key{kernel_name, fetch});
            if (inserted) {
                it->second = promise.get_future().share();
                builder = true;
            }
            future = it->second;
        }
    }

    static MetricCounter& hits = MetricsRegistry::instance().counter("workload.hits");
    static MetricCounter& misses = MetricsRegistry::instance().counter("workload.misses");
    (builder ? misses : hits).add();

    if (builder) {
        // Simulate outside the lock; waiters block on the future, not the
        // cache, so other kernels stay buildable concurrently.
        const ScopedTimer scope(MetricsRegistry::instance().timer("workload.simulate"));
        try {
            auto artifact = std::make_shared<KernelRun>();
            artifact->name = kernel.name;
            artifact->program = assemble(kernel.source);
            CpuConfig config;
            config.record_fetch_stream = fetch;
            artifact->result = Cpu(config).run(artifact->program);
            simulations_.fetch_add(1, std::memory_order_relaxed);
            promise.set_value(std::move(artifact));
        } catch (...) {
            promise.set_exception(std::current_exception());
        }
    }
    return future.get();
}

std::vector<KernelRunPtr> WorkloadRepository::suite(bool fetch, std::size_t jobs) {
    return parallel_map(
        kernel_suite(), [&](const Kernel& kernel) { return run(kernel.name, fetch); },
        jobs);
}

std::unique_ptr<TraceSource> WorkloadRepository::open_trace_source(
    const std::string& spec, std::size_t chunk_accesses) {
    if (chunk_accesses == 0) chunk_accesses = kDefaultTraceChunk;
    const auto ends_with = [&](const char* suffix) {
        const std::string s(suffix);
        return spec.size() >= s.size() &&
               spec.compare(spec.size() - s.size(), s.size(), s) == 0;
    };
    if (spec.rfind("synthetic:", 0) == 0)
        return std::make_unique<SyntheticSource>(
            parse_synthetic_spec(spec.substr(std::string("synthetic:").size())),
            chunk_accesses);
    if (ends_with(".mtsc")) return std::make_unique<MmapBinarySource>(spec);
    if (ends_with(".mtrc")) return std::make_unique<BinaryFileSource>(spec, chunk_accesses);
    if (spec.find('.') != std::string::npos || spec.find('/') != std::string::npos)
        return std::make_unique<MaterializedSource>(
            std::make_shared<const MemTrace>(load_trace(spec)), chunk_accesses);
    // A bundled kernel: alias the cached artifact so the source shares the
    // repository's immutable trace instead of copying it.
    const KernelRunPtr artifact = run(spec);
    return std::make_unique<MaterializedSource>(
        std::shared_ptr<const MemTrace>(artifact, &artifact->result.data_trace),
        chunk_accesses);
}

std::vector<std::unique_ptr<TraceSource>> WorkloadRepository::open_core_trace_sources(
    const std::string& spec, unsigned cores, std::size_t chunk_accesses) {
    require(cores >= 1 && cores <= 64,
            "open_core_trace_sources: cores must be in [1, 64]");
    std::vector<std::unique_ptr<TraceSource>> out;
    out.reserve(cores);
    if (spec.rfind("synthetic:", 0) == 0) {
        if (chunk_accesses == 0) chunk_accesses = kDefaultTraceChunk;
        SyntheticSpec parsed =
            parse_synthetic_spec(spec.substr(std::string("synthetic:").size()));
        parsed.cores = cores;  // the caller's core count wins over a cores= key
        for (const SyntheticSpec& core_spec : per_core_specs(parsed))
            out.push_back(std::make_unique<SyntheticSource>(core_spec, chunk_accesses));
        return out;
    }
    for (unsigned c = 0; c < cores; ++c)
        out.push_back(open_trace_source(spec, chunk_accesses));
    return out;
}

void WorkloadRepository::clear() {
    MutexLock lock(mutex_);
    cache_.clear();
}

}  // namespace memopt
