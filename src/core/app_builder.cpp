#include "core/app_builder.hpp"

#include <algorithm>

#include "sim/kernels.hpp"
#include "support/assert.hpp"
#include "trace/symbolize.hpp"

namespace memopt {

Application application_from_kernels(const std::vector<std::string>& kernel_names,
                                     const AppBuildOptions& options) {
    require(!kernel_names.empty(), "application_from_kernels: no kernels");
    require(options.max_datasets_per_kernel >= 1,
            "application_from_kernels: need at least one data set per kernel");

    Application app;
    app.name = "kernel-pipeline";
    app.num_contexts = kernel_names.size();

    for (std::size_t k = 0; k < kernel_names.size(); ++k) {
        const Kernel& kernel = kernel_by_name(kernel_names[k]);
        const AssembledProgram program = assemble(kernel.source);
        const RunResult run = Cpu(CpuConfig{}).run(program);
        const std::vector<SymbolTraffic> traffic = symbolize_trace(program, run.data_trace);

        KernelPhase phase;
        phase.name = kernel.name;
        phase.context = k;  // every kernel needs its own configuration

        std::size_t taken = 0;
        for (const SymbolTraffic& symbol : traffic) {
            if (taken == options.max_datasets_per_kernel) break;
            // The stack/anon region has no meaningful size; approximate it
            // with a fixed small scratch area. Symbol regions keep their
            // measured extent, clamped up to the minimum and rounded to
            // words.
            std::uint64_t bytes = symbol.name == "<stack/anon>" ? 256 : symbol.bytes;
            bytes = std::max<std::uint64_t>(bytes, options.min_dataset_bytes);
            bytes = (bytes + 3) & ~std::uint64_t{3};

            const std::size_t dataset_index = app.datasets.size();
            app.datasets.push_back(DataSet{kernel.name + "." + symbol.name, bytes});
            phase.uses.push_back(KernelUse{dataset_index, symbol.total()});
            ++taken;
        }
        MEMOPT_ASSERT(!phase.uses.empty());
        app.phases.push_back(std::move(phase));
    }
    app.validate();
    return app;
}

}  // namespace memopt
