#include "core/report.hpp"

#include "support/assert.hpp"
#include "support/stats.hpp"
#include "support/string_util.hpp"

namespace memopt {

TablePrinter energy_comparison_table(const std::vector<NamedEnergy>& rows) {
    require(!rows.empty(), "energy_comparison_table: no rows");
    TablePrinter table({"configuration", "energy", "vs baseline [%]"});
    const double baseline = rows.front().energy.total();
    for (const NamedEnergy& row : rows) {
        const double total = row.energy.total();
        table.add_row({row.name, format_energy_pj(total),
                       baseline == 0.0 ? "-" : format_fixed(-percent_savings(baseline, total), 2)});
    }
    return table;
}

TablePrinter benchmark_energy_table(
    const std::vector<std::string>& columns,
    const std::vector<std::pair<std::string, std::vector<double>>>& rows) {
    require(columns.size() >= 2, "benchmark_energy_table: need at least two columns");
    std::vector<std::string> header = {"benchmark"};
    for (const std::string& c : columns) header.push_back(c + " [nJ]");
    header.push_back("savings [%]");
    TablePrinter table(header);
    for (const auto& [name, values] : rows) {
        require(values.size() == columns.size(),
                "benchmark_energy_table: row width mismatch");
        std::vector<std::string> cells = {name};
        for (double v : values) cells.push_back(format_fixed(v / 1e3, 2));
        const double base = values[values.size() - 2];
        const double opt = values.back();
        cells.push_back(format_fixed(percent_savings(base, opt), 1));
        table.add_row(cells);
    }
    return table;
}

}  // namespace memopt
