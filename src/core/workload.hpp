// Shared workload repository: each bundled kernel is assembled and
// simulated at most once per process, and every consumer — benches,
// examples, batch studies — shares the same immutable artifacts.
//
// The twelve E-benches used to carry private `run_suite` copies that
// re-simulated the entire suite per binary; the repository replaces them
// with one lazy, thread-safe cache. Concurrent requests for the same
// kernel deduplicate onto a single simulation (waiters block on the
// builder's future), and suite() fans the first-touch simulations out over
// the parallel runtime (support/parallel.hpp).
//
// Artifacts are cached per (kernel, fetch-stream) variant; a request
// without the fetch stream is satisfied from a cached with-fetch artifact
// (a strict superset), so a process that only ever asks one way simulates
// each kernel exactly once — simulation_count() lets tests certify that.
#pragma once

#include <atomic>
#include <cstddef>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "isa/assembler.hpp"
#include "sim/cpu.hpp"
#include "support/thread_safety.hpp"

namespace memopt {

class TraceSource;

/// A kernel together with its simulation artifacts.
struct KernelRun {
    std::string name;
    AssembledProgram program;
    RunResult result;
};

/// Shared immutable simulation artifact. Repository entries live for the
/// process lifetime, so holding the pointer (or references into it) is
/// always safe.
using KernelRunPtr = std::shared_ptr<const KernelRun>;

/// Lazy, thread-safe cache of kernel simulation artifacts.
class WorkloadRepository {
public:
    WorkloadRepository() = default;

    WorkloadRepository(const WorkloadRepository&) = delete;
    WorkloadRepository& operator=(const WorkloadRepository&) = delete;

    /// The process-wide repository (what benches and examples share).
    static WorkloadRepository& instance();

    /// Artifact for one bundled kernel, simulated on first request. With
    /// `fetch` set the artifact also carries the instruction fetch stream.
    /// Throws memopt::Error for unknown kernel names.
    KernelRunPtr run(const std::string& kernel_name, bool fetch = false);

    /// Artifacts for the whole bundled suite, in canonical suite order.
    /// First-touch simulations run concurrently (jobs 0 = default_jobs()).
    std::vector<KernelRunPtr> suite(bool fetch = false, std::size_t jobs = 0);

    /// Open a chunked trace stream for a source spec (the CLI's trace
    /// syntax). Resolution order:
    ///
    ///   "synthetic:<kind>[,k=v]..."  on-the-fly generator, never materialized
    ///   "*.mtsc"                     memory-mapped stream container
    ///   "*.mtrc"                     chunked reader over the binary format
    ///   contains '.' or '/'          text/binary trace file, materialized
    ///   anything else                bundled kernel (cached artifact; the
    ///                                source aliases it, no trace copy)
    ///
    /// `chunk_accesses == 0` picks the default chunk size. Throws
    /// memopt::Error for unknown kernels or unreadable/corrupt files.
    std::unique_ptr<TraceSource> open_trace_source(const std::string& spec,
                                                   std::size_t chunk_accesses = 0);

    /// Open one trace stream per core for a multi-core replay. Synthetic
    /// specs fan out via per_core_specs (per-core seed remix + core_id, with
    /// `cores` overriding any cores= key in the spec); every other spec kind
    /// opens `cores` independent streams over the same trace, so all cores
    /// replay identical access sequences (a worst-case sharing workload).
    std::vector<std::unique_ptr<TraceSource>> open_core_trace_sources(
        const std::string& spec, unsigned cores, std::size_t chunk_accesses = 0);

    /// Number of CPU simulations performed so far — the "suite simulated
    /// exactly once" certificate.
    std::size_t simulation_count() const noexcept {
        return simulations_.load(std::memory_order_relaxed);
    }

    /// Drop all cached artifacts (testing aid).
    void clear();

private:
    using Key = std::pair<std::string, bool>;  ///< (kernel name, fetch variant)

    mutable Mutex mutex_;
    std::map<Key, std::shared_future<KernelRunPtr>> cache_ MEMOPT_GUARDED_BY(mutex_);
    std::atomic<std::size_t> simulations_{0};
};

}  // namespace memopt
