// Comparative energy reporting helpers shared by benches and examples.
#pragma once

#include <string>
#include <vector>

#include "energy/report.hpp"
#include "support/table.hpp"

namespace memopt {

/// One labelled configuration in a comparison table.
struct NamedEnergy {
    std::string name;
    EnergyBreakdown energy;
};

/// Build a table with one row per configuration: total energy and savings
/// versus the first entry (the baseline).
TablePrinter energy_comparison_table(const std::vector<NamedEnergy>& rows);

/// Build a per-benchmark results table: columns are configuration totals
/// plus savings of the last configuration vs the second-to-last. `rows`
/// maps benchmark name -> energies in column order; all rows must have
/// `columns.size()` entries.
TablePrinter benchmark_energy_table(const std::vector<std::string>& columns,
                                    const std::vector<std::pair<std::string, std::vector<double>>>& rows);

}  // namespace memopt
