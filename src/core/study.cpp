#include "core/study.hpp"

#include <cstring>
#include <optional>
#include <sstream>

#include "support/assert.hpp"
#include "support/durable/cancel.hpp"
#include "support/durable/checkpoint.hpp"
#include "support/json.hpp"
#include "support/parallel.hpp"
#include "support/stats.hpp"

namespace memopt {

double StudyReport::compression_savings_pct() const {
    const double base = compression_baseline.energy.component("main_memory");
    if (base == 0.0) return 0.0;
    const double opt =
        compression.energy.component("main_memory") + compression.energy.component("codec");
    return percent_savings(base, opt);
}

StudyReport study_trace(const std::string& name, const MemTrace& data_trace,
                        std::span<const std::uint8_t> image, std::uint64_t image_base,
                        std::span<const std::uint32_t> fetch_stream,
                        const StudyParams& params) {
    require(!data_trace.empty(), "study_trace: empty data trace");
    StudyReport report;
    report.name = name;

    const MemoryOptimizationFlow flow(params.flow);
    report.memory = flow.compare(data_trace, params.cluster_method);

    const DiffCodec codec;
    report.compression_baseline =
        CompressedMemorySim(params.platform.config, nullptr).run(data_trace, image, image_base);
    report.compression =
        CompressedMemorySim(params.platform.config, &codec).run(data_trace, image, image_base);

    if (!fetch_stream.empty())
        report.encoding = search_transform(fetch_stream, params.encoding);
    return report;
}

StudyReport study_kernel(const Kernel& kernel, const StudyParams& params) {
    CpuConfig config;
    config.record_fetch_stream = true;
    const AssembledProgram program = assemble(kernel.source);
    const RunResult run = Cpu(config).run(program);
    return study_trace(kernel.name, run.data_trace, program.data, program.data_base,
                       run.fetch_stream, params);
}

void to_json(JsonWriter& w, const StudyReport& report) {
    w.begin_object();
    w.member("name", report.name);
    w.key("memory");
    to_json(w, report.memory);
    w.key("compression_baseline");
    to_json(w, report.compression_baseline);
    w.key("compression");
    to_json(w, report.compression);
    w.key("encoding");
    to_json(w, report.encoding);
    w.member("clustering_savings_pct", report.clustering_savings_pct());
    w.member("compression_savings_pct", report.compression_savings_pct());
    w.member("encoding_reduction_pct", report.encoding_reduction_pct());
    w.end_object();
}

std::vector<StudyReport> study_suite(std::span<const Kernel> kernels,
                                     const StudyParams& params, std::size_t jobs) {
    return parallel_map(
        kernels, [&](const Kernel& kernel) { return study_kernel(kernel, params); },
        jobs);
}

// ---------------------------------------------------------------------------
// Checkpoint/resume

namespace {

void append_u32(std::string& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void append_u64(std::string& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void append_f64(std::string& out, double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    append_u64(out, bits);
}

struct RecordCursor {
    std::string_view record;
    std::size_t at = 0;

    std::uint32_t u32() {
        require(at + 4 <= record.size(), "study checkpoint: truncated record");
        std::uint32_t v = 0;
        for (int i = 3; i >= 0; --i)
            v = (v << 8) | static_cast<std::uint8_t>(record[at + static_cast<std::size_t>(i)]);
        at += 4;
        return v;
    }
    std::uint64_t u64() {
        require(at + 8 <= record.size(), "study checkpoint: truncated record");
        std::uint64_t v = 0;
        for (int i = 7; i >= 0; --i)
            v = (v << 8) | static_cast<std::uint8_t>(record[at + static_cast<std::size_t>(i)]);
        at += 8;
        return v;
    }
    double f64() {
        const std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }
    std::string str() {
        const std::uint32_t len = u32();
        require(at + len <= record.size(), "study checkpoint: truncated record string");
        std::string s(record.substr(at, len));
        at += len;
        return s;
    }
};

std::uint64_t suite_config_hash(std::span<const Kernel> kernels, std::string_view tag) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    const auto mix = [&h](std::string_view text) {
        for (const char c : text) {
            h ^= static_cast<std::uint8_t>(c);
            h *= 0x100000001b3ULL;
        }
        h ^= 0xFF;  // field separator
        h *= 0x100000001b3ULL;
    };
    mix(tag);
    for (const Kernel& kernel : kernels) mix(kernel.name);
    return h;
}

}  // namespace

StudyOutcome to_outcome(const StudyReport& report) {
    StudyOutcome out;
    out.name = report.name;
    std::ostringstream os;
    JsonWriter w(os);
    to_json(w, report);
    out.json = os.str();
    out.clustering_savings_pct = report.clustering_savings_pct();
    out.compression_savings_pct = report.compression_savings_pct();
    out.encoding_reduction_pct = report.encoding_reduction_pct();
    return out;
}

std::string encode_study_record(const StudyOutcome& outcome) {
    std::string out;
    out.reserve(28 + outcome.name.size() + outcome.json.size());
    append_u32(out, static_cast<std::uint32_t>(outcome.name.size()));
    out += outcome.name;
    append_f64(out, outcome.clustering_savings_pct);
    append_f64(out, outcome.compression_savings_pct);
    append_f64(out, outcome.encoding_reduction_pct);
    append_u32(out, static_cast<std::uint32_t>(outcome.json.size()));
    out += outcome.json;
    return out;
}

StudyOutcome decode_study_record(std::string_view record) {
    RecordCursor cursor{record};
    StudyOutcome out;
    out.name = cursor.str();
    out.clustering_savings_pct = cursor.f64();
    out.compression_savings_pct = cursor.f64();
    out.encoding_reduction_pct = cursor.f64();
    out.json = cursor.str();
    require(cursor.at == record.size(), "study checkpoint: trailing bytes in record");
    require(!out.json.empty(), "study checkpoint: empty report in record");
    return out;
}

StudySuiteOutcome study_suite_checkpointed(std::span<const Kernel> kernels,
                                           const StudyParams& params, std::size_t jobs,
                                           const StudyCheckpointOptions& ckpt) {
    const std::uint64_t config_hash = suite_config_hash(kernels, ckpt.config_tag);

    StudySuiteOutcome out;
    out.total = kernels.size();
    if (ckpt.resume && !ckpt.path.empty()) {
        if (const std::optional<Checkpoint> loaded =
                load_checkpoint_for_resume(ckpt.path, kCkptEngineStudy, config_hash)) {
            out.outcomes.reserve(loaded->records.size());
            for (const std::string& record : loaded->records)
                out.outcomes.push_back(decode_study_record(record));
            require(out.outcomes.size() <= kernels.size(),
                    "study checkpoint: more records than kernels");
        }
    }

    const auto snapshot = [&] {
        if (ckpt.path.empty()) return;
        Checkpoint snap;
        snap.engine = kCkptEngineStudy;
        snap.config_hash = config_hash;
        snap.records.reserve(out.outcomes.size());
        for (const StudyOutcome& outcome : out.outcomes)
            snap.records.push_back(encode_study_record(outcome));
        save_checkpoint(ckpt.path, snap);
    };

    const std::size_t every = ckpt.every == 0 ? 1 : ckpt.every;
    std::size_t new_done = 0;
    CancellationToken& token = CancellationToken::global();
    while (out.outcomes.size() < kernels.size()) {
        if (token.triggered()) {
            out.stop_reason = token.reason();
            break;
        }
        if (ckpt.max_kernels_this_run != 0 && new_done >= ckpt.max_kernels_this_run) {
            out.stop_reason = "kernel budget for this run exhausted";
            break;
        }
        const std::size_t begin = out.outcomes.size();
        std::size_t batch = std::min(every, kernels.size() - begin);
        if (ckpt.max_kernels_this_run != 0)
            batch = std::min(batch, ckpt.max_kernels_this_run - new_done);
        std::vector<StudyOutcome> finished;
        try {
            finished = parallel_map(
                kernels.subspan(begin, batch),
                [&](const Kernel& kernel) { return to_outcome(study_kernel(kernel, params)); },
                jobs);
        } catch (const CancelledError&) {
            out.stop_reason = token.reason();
            break;
        }
        out.outcomes.insert(out.outcomes.end(), std::make_move_iterator(finished.begin()),
                            std::make_move_iterator(finished.end()));
        new_done += batch;
        snapshot();
    }

    if (out.outcomes.size() == kernels.size()) {
        out.completed = true;
    } else {
        if (out.stop_reason.empty()) out.stop_reason = "stopped";
        snapshot();
    }
    return out;
}

}  // namespace memopt
