#include "core/study.hpp"

#include "support/assert.hpp"
#include "support/json.hpp"
#include "support/parallel.hpp"
#include "support/stats.hpp"

namespace memopt {

double StudyReport::compression_savings_pct() const {
    const double base = compression_baseline.energy.component("main_memory");
    if (base == 0.0) return 0.0;
    const double opt =
        compression.energy.component("main_memory") + compression.energy.component("codec");
    return percent_savings(base, opt);
}

StudyReport study_trace(const std::string& name, const MemTrace& data_trace,
                        std::span<const std::uint8_t> image, std::uint64_t image_base,
                        std::span<const std::uint32_t> fetch_stream,
                        const StudyParams& params) {
    require(!data_trace.empty(), "study_trace: empty data trace");
    StudyReport report;
    report.name = name;

    const MemoryOptimizationFlow flow(params.flow);
    report.memory = flow.compare(data_trace, params.cluster_method);

    const DiffCodec codec;
    report.compression_baseline =
        CompressedMemorySim(params.platform.config, nullptr).run(data_trace, image, image_base);
    report.compression =
        CompressedMemorySim(params.platform.config, &codec).run(data_trace, image, image_base);

    if (!fetch_stream.empty())
        report.encoding = search_transform(fetch_stream, params.encoding);
    return report;
}

StudyReport study_kernel(const Kernel& kernel, const StudyParams& params) {
    CpuConfig config;
    config.record_fetch_stream = true;
    const AssembledProgram program = assemble(kernel.source);
    const RunResult run = Cpu(config).run(program);
    return study_trace(kernel.name, run.data_trace, program.data, program.data_base,
                       run.fetch_stream, params);
}

void to_json(JsonWriter& w, const StudyReport& report) {
    w.begin_object();
    w.member("name", report.name);
    w.key("memory");
    to_json(w, report.memory);
    w.key("compression_baseline");
    to_json(w, report.compression_baseline);
    w.key("compression");
    to_json(w, report.compression);
    w.key("encoding");
    to_json(w, report.encoding);
    w.member("clustering_savings_pct", report.clustering_savings_pct());
    w.member("compression_savings_pct", report.compression_savings_pct());
    w.member("encoding_reduction_pct", report.encoding_reduction_pct());
    w.end_object();
}

std::vector<StudyReport> study_suite(std::span<const Kernel> kernels,
                                     const StudyParams& params, std::size_t jobs) {
    return parallel_map(
        kernels, [&](const Kernel& kernel) { return study_kernel(kernel, params); },
        jobs);
}

}  // namespace memopt
