// Build reconfigurable-scheduler applications from real kernel runs.
//
// The 1B-4 experiments need Applications (phase sequences with data-set
// access counts). Besides the synthetic generator in sched/model.hpp, this
// builder derives an Application from actual AR32 kernels: each kernel
// becomes one phase (requiring its own context), and its data sets are the
// assembler symbols of its image with their measured traffic — so the E9
// table can also be driven by the same workloads as every other experiment.
#pragma once

#include <string>
#include <vector>

#include "sched/model.hpp"

namespace memopt {

/// Options for the builder.
struct AppBuildOptions {
    std::size_t max_datasets_per_kernel = 4;  ///< keep the hottest N symbols
    std::uint64_t min_dataset_bytes = 64;     ///< merge tiny symbols upward
};

/// Build an Application whose phases are the named kernels, executed in
/// order. Each kernel is simulated once; its top symbols (by traffic)
/// become data sets. Kernel data sets are distinct across kernels (no
/// sharing — each kernel owns its image), which models a pipeline of
/// independent tasks on one reconfigurable fabric.
/// Throws memopt::Error on unknown kernel names.
Application application_from_kernels(const std::vector<std::string>& kernel_names,
                                     const AppBuildOptions& options = {});

}  // namespace memopt
