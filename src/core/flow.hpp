// End-to-end memory-optimization flow (the library's main entry point).
//
// Wires the full DATE'03 1B-1 pipeline together:
//
//   trace -> block profile -> [address clustering] -> partitioning -> energy
//
// and evaluates each configuration with the same objective, including the
// remap-table overhead when clustering is enabled. Used by the examples and
// by the E1/E2/E3 reproduction benches.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "cluster/address_map.hpp"
#include "cluster/affinity_cluster.hpp"
#include "cluster/remap_cost.hpp"
#include "energy/report.hpp"
#include "energy/tech_model.hpp"
#include "partition/hybrid.hpp"
#include "partition/solver.hpp"
#include "trace/affinity.hpp"
#include "trace/trace.hpp"

namespace memopt {

class JsonWriter;

/// Which clustering policy to apply before partitioning.
enum class ClusterMethod {
    None,       ///< partition the raw profile (1B-1's baseline)
    Frequency,  ///< hot-first block reordering
    Affinity,   ///< greedy temporal-affinity chain
};

/// Display name ("none", "frequency", "affinity").
std::string cluster_method_name(ClusterMethod method);

/// Flow configuration.
struct FlowParams {
    std::uint64_t block_size = 256;          ///< profile granularity [bytes]
    PartitionConstraints constraints;        ///< bank budget
    PartitionEnergyParams energy;            ///< technology + objective knobs
    AffinityClusterParams affinity;          ///< affinity-chain tuning
    std::size_t affinity_window = 32;        ///< co-access window [accesses]
    RemapTechnology remap;                   ///< remap-table technology
    bool use_greedy_solver = false;          ///< greedy instead of exact DP
    /// Profiles larger than this fall back to the greedy solver even when
    /// use_greedy_solver is false — the exact DP is O(N^2 K) and a 2 MiB
    /// span at 256 B blocks is where it stops being interactive.
    std::size_t auto_greedy_blocks = 4096;
};

/// Result of one flow configuration.
struct FlowResult {
    ClusterMethod method = ClusterMethod::None;
    AddressMap map;               ///< applied remap (identity for None)
    PartitionSolution solution;   ///< architecture in physical block space
    EnergyBreakdown energy;       ///< full breakdown incl. remap overhead
};

/// Result of one flow configuration over a hybrid bank pool.
struct HybridFlowResult {
    FlowResult base;                  ///< clustering + splits (SRAM oracle)
    BankPool pool;                    ///< the pool the banks were drawn from
    std::vector<MemTechnology> techs; ///< technology of each bank
    std::vector<std::size_t> heat_rank; ///< 0 = hottest bank (cluster/heat.hpp)
    HybridReport report;              ///< gated heterogeneous energy

    double total() const { return report.total(); }
};

/// Side-by-side evaluation of one trace under all configurations.
struct FlowComparison {
    EnergyBreakdown monolithic;   ///< single-bank baseline
    FlowResult partitioned;       ///< ClusterMethod::None
    FlowResult clustered;         ///< the requested clustering method

    /// Savings of clustering vs partitioning alone [%], the paper's metric.
    double clustering_savings_pct() const;
    /// Savings of partitioning alone vs monolithic [%].
    double partitioning_savings_pct() const;
};

/// The flow driver. Stateless apart from its parameters; thread-compatible.
class MemoryOptimizationFlow {
public:
    explicit MemoryOptimizationFlow(const FlowParams& params);

    const FlowParams& params() const { return params_; }

    /// Run one configuration on a trace.
    FlowResult run(const MemTrace& trace, ClusterMethod method) const;

    /// Streaming variant: run one configuration off a chunked trace stream
    /// in O(chunk) trace memory (the profile and affinity builders replay
    /// the source; the trace is never materialized). Bit-identical to the
    /// MemTrace overload on the materialized equivalent.
    FlowResult run(TraceSource& source, ClusterMethod method) const;

    /// Run one configuration on a pre-built profile (no affinity methods:
    /// Affinity requires the trace; throws if requested).
    FlowResult run(const BlockProfile& profile, ClusterMethod method,
                   const MemTrace* trace = nullptr) const;

    /// Hybrid-pool variant of run(): cluster and split as usual (bank
    /// budget capped by the pool size), replay the trace once to extract
    /// per-bank gating residency, then place the pool's technologies onto
    /// the banks with the exact assignment DP (partition/hybrid.hpp).
    /// Sequential and --jobs-invariant; resets `source` before replaying,
    /// so back-to-back pool evaluations on one source are independent.
    HybridFlowResult run_hybrid(const MemTrace& trace, ClusterMethod method,
                                const BankPool& pool,
                                const HybridGatingParams& gating = {}) const;
    HybridFlowResult run_hybrid(TraceSource& source, ClusterMethod method,
                                const BankPool& pool,
                                const HybridGatingParams& gating = {}) const;

    /// Monolithic / partitioned / clustered comparison on one trace.
    FlowComparison compare(const MemTrace& trace,
                           ClusterMethod method = ClusterMethod::Frequency) const;

    /// Streaming variant of compare() (see the streaming run() overload).
    FlowComparison compare(TraceSource& source,
                           ClusterMethod method = ClusterMethod::Frequency) const;

    /// Batch compare(): evaluate many traces concurrently on the parallel
    /// runtime (support/parallel.hpp). Results preserve input order and are
    /// bit-identical to a serial loop of compare() calls at any job count.
    /// `jobs == 0` means default_jobs() (the MEMOPT_JOBS knob).
    std::vector<FlowComparison> compare_all(
        std::span<const MemTrace* const> traces,
        ClusterMethod method = ClusterMethod::Frequency, std::size_t jobs = 0) const;

    /// Convenience overload over owned traces.
    std::vector<FlowComparison> compare_all(
        std::span<const MemTrace> traces,
        ClusterMethod method = ClusterMethod::Frequency, std::size_t jobs = 0) const;

private:
    /// Shared implementation: cluster + partition + evaluate one profile.
    /// `affinity` is the pre-built windowed affinity from the fused trace
    /// replay (nullptr to build it from `trace` on demand).
    /// `pool_banks` > 0 additionally caps the bank budget at the hybrid
    /// pool size (solve_partition_pooled); 0 is the legacy path.
    FlowResult run_prepared(const BlockProfile& profile, ClusterMethod method,
                            const MemTrace* trace, const AffinityMatrix* affinity,
                            std::size_t pool_banks = 0) const;

    /// Shared hybrid implementation: split (pool-capped), replay, assign.
    HybridFlowResult run_hybrid_prepared(const BlockProfile& profile, ClusterMethod method,
                                         const AffinityMatrix* affinity, TraceSource& source,
                                         const BankPool& pool,
                                         const HybridGatingParams& gating) const;

    FlowParams params_;
};

/// Serialize one configuration: method, bank geometry, energy breakdown.
void to_json(JsonWriter& w, const FlowResult& result);

/// Serialize the monolithic/partitioned/clustered comparison with both
/// savings percentages.
void to_json(JsonWriter& w, const FlowComparison& cmp);

/// Serialize a hybrid-pool run: pool spec, per-bank technology/activity/
/// heat rank, and the gated energy breakdown.
void to_json(JsonWriter& w, const HybridFlowResult& result);

}  // namespace memopt
