#include "trace/stream_file.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <fstream>

#include "compress/codec.hpp"
#include "compress/diff_codec.hpp"
#include "compress/zero_run.hpp"
#include "support/durable/atomic_file.hpp"
#include "support/durable/cancel.hpp"
#include "support/durable/retry.hpp"
#include "support/string_util.hpp"

#if defined(__unix__) || (defined(__APPLE__) && defined(__MACH__))
#define MEMOPT_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace memopt {

namespace {

constexpr char kStreamMagic[4] = {'M', 'T', 'S', 'C'};
constexpr char kBlockMagic[4] = {'M', 'T', 'S', 'B'};
constexpr std::uint32_t kStreamVersion = 1;
constexpr std::uint32_t kFlagCompressed = 1u;
constexpr std::size_t kHeaderBytes = 64;
constexpr std::size_t kBlockHeaderBytes = 24;
constexpr std::size_t kBytesPerAccess = 22;  // 8 addr + 8 cycle + 4 value + 1 size + 1 kind

// Line codec ids inside a compressed payload.
constexpr std::uint8_t kLineRaw = 0;
constexpr std::uint8_t kLineDiff = 1;
constexpr std::uint8_t kLineZeroRun = 2;

void require_little_endian() {
    require(std::endian::native == std::endian::little,
            "stream trace: the '.mtsc' zero-copy layout requires a little-endian host");
}

std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t n) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

// Endianness-independent little-endian loads/stores (byte assembly, same
// technique as the '.mtrc' reader).
std::uint32_t le_u32(const std::uint8_t* p) {
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
    return v;
}

std::uint64_t le_u64(const std::uint8_t* p) {
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
    return v;
}

void store_u32(std::uint8_t* p, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void store_u64(std::uint8_t* p, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::size_t pad8(std::size_t n) { return (n + 7) & ~std::size_t{7}; }

// Split the raw column image into 4 KiB lines and store each as the
// smallest of {raw, diff-coded, zero-run-coded}. Line framing: u8 codec id,
// u32 stored length, then the stored bytes.
std::vector<std::uint8_t> compress_image(std::span<const std::uint8_t> image) {
    const DiffCodec diff;
    const ZeroRunCodec zero;
    std::vector<std::uint8_t> out;
    for (std::size_t off = 0; off < image.size(); off += kMaxLineBytes) {
        const std::size_t len = std::min(kMaxLineBytes, image.size() - off);
        const auto line = image.subspan(off, len);
        const std::vector<std::uint8_t> d = diff.encode(line).bytes();
        const std::vector<std::uint8_t> z = zero.encode(line).bytes();
        std::uint8_t id = kLineRaw;
        std::span<const std::uint8_t> stored = line;
        if (d.size() < stored.size()) {
            id = kLineDiff;
            stored = d;
        }
        if (z.size() < stored.size()) {
            id = kLineZeroRun;
            stored = z;
        }
        std::uint8_t frame[5];
        frame[0] = id;
        store_u32(frame + 1, static_cast<std::uint32_t>(stored.size()));
        out.insert(out.end(), frame, frame + 5);
        out.insert(out.end(), stored.begin(), stored.end());
    }
    return out;
}

// Inverse of compress_image: decode `payload` into the `image_bytes`-byte
// raw image at `image`. Throws memopt::Error on any structural corruption.
void decode_image(std::span<const std::uint8_t> payload, std::uint8_t* image,
                  std::size_t image_bytes, std::uint32_t block) {
    const DiffCodec diff;
    const ZeroRunCodec zero;
    std::size_t pos = 0;
    std::size_t out = 0;
    while (out < image_bytes) {
        require(pos + 5 <= payload.size(),
                format("stream trace: block %u: truncated compressed payload", block));
        const std::uint8_t id = payload[pos];
        const std::uint32_t len = le_u32(payload.data() + pos + 1);
        pos += 5;
        require(len <= payload.size() - pos,
                format("stream trace: block %u: truncated compressed payload", block));
        const std::size_t line_bytes = std::min(kMaxLineBytes, image_bytes - out);
        const auto stored = payload.subspan(pos, len);
        switch (id) {
            case kLineRaw:
                require(len == line_bytes,
                        format("stream trace: block %u: bad raw line length", block));
                std::memcpy(image + out, stored.data(), line_bytes);
                break;
            case kLineDiff:
            case kLineZeroRun: {
                const LineCodec& codec =
                    id == kLineDiff ? static_cast<const LineCodec&>(diff)
                                    : static_cast<const LineCodec&>(zero);
                const std::vector<std::uint8_t> line = codec.decode(stored, line_bytes);
                require(line.size() == line_bytes,
                        format("stream trace: block %u: bad decoded line length", block));
                std::memcpy(image + out, line.data(), line_bytes);
                break;
            }
            default:
                throw Error(format("stream trace: block %u: unknown line codec id %u", block,
                                   static_cast<unsigned>(id)));
        }
        pos += len;
        out += line_bytes;
    }
    require(pos == payload.size(),
            format("stream trace: block %u: trailing bytes in compressed payload", block));
}

}  // namespace

// ---------------------------------------------------------------------------
// Writer

TraceSummary write_trace_stream(const std::string& path, TraceSource& source,
                                const StreamWriteOptions& opts) {
    require_little_endian();
    require(opts.chunk_accesses > 0 && opts.chunk_accesses <= kMaxStreamChunkAccesses,
            "write_trace_stream: chunk_accesses out of range");
    const std::uint64_t count = source.size();
    const std::uint64_t blocks64 =
        count == 0 ? 0 : (count + opts.chunk_accesses - 1) / opts.chunk_accesses;
    require(blocks64 <= 0xFFFFFFFFULL, "write_trace_stream: too many blocks");
    const auto block_count = static_cast<std::uint32_t>(blocks64);

    TraceSummary s;
    // Crash-safe: blocks stream into <path>.tmp and the container appears
    // under its final name only on commit, so a killed writer never leaves
    // a truncated '.mtsc' where a reader could find it. The body is
    // restartable (it resets the source and all staging state on entry),
    // which is what lets atomic_write retry the whole cycle on a transient
    // fault.
    atomic_write(path, [&](std::ostream& os) {
    // Header + offset table placeholders; rewritten once the summary and
    // the block offsets are known.
    {
        const std::vector<char> zeros(kHeaderBytes + std::size_t{block_count} * 8, 0);
        os.write(zeros.data(), static_cast<std::streamsize>(zeros.size()));
    }
    std::uint64_t file_off = kHeaderBytes + std::uint64_t{block_count} * 8;
    std::vector<std::uint64_t> offsets;
    offsets.reserve(block_count);

    s = TraceSummary{};
    // Staging columns: the source's chunking need not match the container's.
    std::vector<std::uint64_t> addrs;
    std::vector<std::uint64_t> cycles;
    std::vector<std::uint32_t> values;
    std::vector<std::uint8_t> sizes;
    std::vector<AccessKind> kinds;

    const auto emit_block = [&](std::size_t n) {
        const std::size_t raw = n * kBytesPerAccess;
        std::vector<std::uint8_t> image(pad8(raw), 0);
        std::memcpy(image.data(), addrs.data(), n * 8);
        std::memcpy(image.data() + n * 8, cycles.data(), n * 8);
        std::memcpy(image.data() + n * 16, values.data(), n * 4);
        std::memcpy(image.data() + n * 20, sizes.data(), n);
        std::memcpy(image.data() + n * 21, kinds.data(), n);

        std::vector<std::uint8_t> compressed;
        if (opts.compress) compressed = compress_image(image);
        const std::uint8_t* payload = opts.compress ? compressed.data() : image.data();
        const std::size_t payload_bytes = opts.compress ? compressed.size() : raw;

        std::uint8_t head[kBlockHeaderBytes];
        std::memcpy(head, kBlockMagic, 4);
        store_u32(head + 4, static_cast<std::uint32_t>(n));
        store_u64(head + 8, payload_bytes);
        store_u64(head + 16, fnv1a64(payload, payload_bytes));
        os.write(reinterpret_cast<const char*>(head), kBlockHeaderBytes);
        os.write(reinterpret_cast<const char*>(payload),
                 static_cast<std::streamsize>(payload_bytes));
        const std::size_t pad = pad8(payload_bytes) - payload_bytes;
        const char zeros[8] = {0};
        os.write(zeros, static_cast<std::streamsize>(pad));

        offsets.push_back(file_off);
        file_off += kBlockHeaderBytes + payload_bytes + pad;

        const auto dn = static_cast<std::ptrdiff_t>(n);
        addrs.erase(addrs.begin(), addrs.begin() + dn);
        cycles.erase(cycles.begin(), cycles.begin() + dn);
        values.erase(values.begin(), values.begin() + dn);
        sizes.erase(sizes.begin(), sizes.begin() + dn);
        kinds.erase(kinds.begin(), kinds.begin() + dn);
    };

    source.reset();
    TraceChunk c;
    while (source.next(c)) {
        for (std::size_t i = 0; i < c.size(); ++i) {
            const std::uint64_t lo = c.addrs[i];
            const std::uint64_t hi = lo + c.sizes[i] - 1;
            if (s.accesses == 0) {
                s.min_addr = lo;
                s.max_addr = hi;
            } else {
                s.min_addr = std::min(s.min_addr, lo);
                s.max_addr = std::max(s.max_addr, hi);
            }
            if (c.kinds[i] == AccessKind::Read) ++s.reads;
            else ++s.writes;
            ++s.accesses;
        }
        addrs.insert(addrs.end(), c.addrs.begin(), c.addrs.end());
        cycles.insert(cycles.end(), c.cycles.begin(), c.cycles.end());
        values.insert(values.end(), c.values.begin(), c.values.end());
        sizes.insert(sizes.end(), c.sizes.begin(), c.sizes.end());
        kinds.insert(kinds.end(), c.kinds.begin(), c.kinds.end());
        while (addrs.size() >= opts.chunk_accesses) emit_block(opts.chunk_accesses);
    }
    if (!addrs.empty()) emit_block(addrs.size());

    require(s.accesses == count,
            "write_trace_stream: source delivered a different access count than size()");
    MEMOPT_ASSERT(offsets.size() == block_count);

    std::uint8_t head[kHeaderBytes] = {};
    std::memcpy(head, kStreamMagic, 4);
    store_u32(head + 4, kStreamVersion);
    store_u64(head + 8, count);
    store_u32(head + 16, static_cast<std::uint32_t>(opts.chunk_accesses));
    store_u32(head + 20, block_count);
    store_u32(head + 24, opts.compress ? kFlagCompressed : 0u);
    store_u64(head + 32, s.min_addr);
    store_u64(head + 40, s.max_addr);
    store_u64(head + 48, s.reads);
    store_u64(head + 56, s.writes);
    os.seekp(0);
    os.write(reinterpret_cast<const char*>(head), kHeaderBytes);
    std::vector<std::uint8_t> table(std::size_t{block_count} * 8);
    for (std::uint32_t b = 0; b < block_count; ++b) store_u64(table.data() + 8 * b, offsets[b]);
    os.write(reinterpret_cast<const char*>(table.data()),
             static_cast<std::streamsize>(table.size()));
    require(os.good(), "write_trace_stream: write failed for '" + path + "'");
    }, std::ios::binary);
    return s;
}

TraceSummary write_trace_stream(const std::string& path, const MemTrace& trace,
                                const StreamWriteOptions& opts) {
    MaterializedSource source(trace, std::max<std::size_t>(opts.chunk_accesses, 1));
    return write_trace_stream(path, source, opts);
}

MemTrace read_trace_stream(const std::string& path) {
    MmapBinarySource source(path);
    MemTrace trace;
    // The header count is only loosely bounded at open time (a compressed
    // container's payloads have no fixed per-access size, so a crafted
    // block_count/chunk pair can still claim up to block_count * 2^24
    // accesses), so it must not drive an unbounded up-front allocation.
    // Cap the hint like the '.mtrc' reader (src/trace/io.cpp) and let the
    // columns grow normally: a lying header fails fast on the first
    // block's access-count mismatch instead of in the allocator.
    constexpr std::uint64_t kMaxReserveRecords = std::uint64_t{1} << 16;
    trace.reserve(
        static_cast<std::size_t>(std::min<std::uint64_t>(source.size(), kMaxReserveRecords)));
    TraceChunk chunk;
    while (source.next(chunk)) {
        // Chunk boundaries are the cooperative cancellation points of the
        // replay: a tripped deadline or signal stops between blocks.
        CancellationToken::global().check();
        for (std::size_t i = 0; i < chunk.size(); ++i) {
            MemAccess a;
            a.addr = chunk.addrs[i];
            a.cycle = chunk.cycles[i];
            a.value = chunk.values[i];
            a.size = chunk.sizes[i];
            a.kind = chunk.kinds[i];
            trace.add(a);
        }
    }
    return trace;
}

// ---------------------------------------------------------------------------
// MmapBinarySource

MmapBinarySource::MmapBinarySource(const std::string& path) : path_(path) {
    require_little_endian();
    open_file();
    try {
        parse_header();
    } catch (...) {
        // The destructor does not run when the constructor throws.
        close_file();
        throw;
    }
}

MmapBinarySource::~MmapBinarySource() { close_file(); }

void MmapBinarySource::open_file() {
    // Transient open failures (injected or real EINTR-class flake) retry
    // under the process policy; a genuinely missing file throws plain
    // Error on the first attempt and is never retried.
    const std::uint64_t unit = memopt::fnv1a64(std::string_view{path_});
#if MEMOPT_HAS_MMAP
    fd_ = RetryPolicy::process().run("mtsc.open", unit, [&](std::uint32_t attempt) {
        io_faults().maybe_fail("mtsc.open", unit, attempt);
        const int fd = ::open(path_.c_str(), O_RDONLY);
        require(fd >= 0, "stream trace: cannot open '" + path_ + "'");
        return fd;
    });
    struct stat st{};
    if (::fstat(fd_, &st) != 0 || st.st_size < 0) {
        close_file();
        throw Error("stream trace: cannot stat '" + path_ + "'");
    }
    map_bytes_ = static_cast<std::size_t>(st.st_size);
    if (map_bytes_ > 0) {
        void* p = ::mmap(nullptr, map_bytes_, PROT_READ, MAP_PRIVATE, fd_, 0);
        if (p == MAP_FAILED) {
            close_file();
            throw Error("stream trace: mmap failed for '" + path_ + "'");
        }
        map_ = static_cast<const std::uint8_t*>(p);
        mapped_ = true;
    }
#else
    // No mmap on this platform: read the whole file (same semantics, not
    // out-of-core).
    std::ifstream is = RetryPolicy::process().run("mtsc.open", unit, [&](std::uint32_t attempt) {
        io_faults().maybe_fail("mtsc.open", unit, attempt);
        std::ifstream candidate(path_, std::ios::binary);
        require(candidate.is_open(), "stream trace: cannot open '" + path_ + "'");
        return candidate;
    });
    is.seekg(0, std::ios::end);
    const std::streamoff end = is.tellg();
    is.seekg(0, std::ios::beg);
    fallback_.resize(end > 0 ? static_cast<std::size_t>(end) : 0);
    if (!fallback_.empty()) {
        is.read(reinterpret_cast<char*>(fallback_.data()),
                static_cast<std::streamsize>(fallback_.size()));
        require(is.gcount() == static_cast<std::streamsize>(fallback_.size()),
                "stream trace: short read for '" + path_ + "'");
    }
    map_ = fallback_.data();
    map_bytes_ = fallback_.size();
#endif
}

void MmapBinarySource::close_file() {
#if MEMOPT_HAS_MMAP
    if (mapped_ && map_ != nullptr) {
        ::munmap(const_cast<std::uint8_t*>(map_), map_bytes_);
    }
    if (fd_ >= 0) ::close(fd_);
#endif
    map_ = nullptr;
    mapped_ = false;
    fd_ = -1;
}

void MmapBinarySource::parse_header() {
    require(map_bytes_ >= kHeaderBytes, "stream trace: truncated header");
    require(std::memcmp(map_, kStreamMagic, 4) == 0, "stream trace: bad magic");
    require(le_u32(map_ + 4) == kStreamVersion, "stream trace: unsupported version");
    count_ = le_u64(map_ + 8);
    chunk_accesses_ = le_u32(map_ + 16);
    block_count_ = le_u32(map_ + 20);
    const std::uint32_t flags = le_u32(map_ + 24);
    require((flags & ~kFlagCompressed) == 0, "stream trace: unknown flags");
    compressed_ = (flags & kFlagCompressed) != 0;
    require(chunk_accesses_ > 0 && chunk_accesses_ <= kMaxStreamChunkAccesses,
            "stream trace: invalid chunk size");
    const std::uint64_t expected =
        count_ == 0 ? 0 : (count_ + chunk_accesses_ - 1) / chunk_accesses_;
    require(block_count_ == expected, "stream trace: block count mismatch");
    // Bound the table against the file size BEFORE sizing anything from it.
    require(std::uint64_t{block_count_} * 8 <= map_bytes_ - kHeaderBytes,
            "stream trace: truncated block table");
    // An uncompressed container stores kBytesPerAccess payload bytes per
    // access, so the header count is bounded by the file size; reject a
    // lying count here instead of letting it size downstream allocations.
    // (Compressed containers have no fixed per-access size — their readers
    // clamp count-driven reserves instead.)
    if (!compressed_) {
        require(count_ <= (map_bytes_ - kHeaderBytes) / kBytesPerAccess,
                "stream trace: access count exceeds file size");
    }
    offset_table_ = map_ + kHeaderBytes;
    verified_.assign(block_count_, false);

    const std::uint64_t min_addr = le_u64(map_ + 32);
    const std::uint64_t max_addr = le_u64(map_ + 40);
    const std::uint64_t reads = le_u64(map_ + 48);
    require(reads <= count_, "stream trace: corrupt summary counts");
    const std::uint64_t writes = le_u64(map_ + 56);
    require(writes == count_ - reads, "stream trace: corrupt summary counts");
    require(count_ == 0 || min_addr <= max_addr, "stream trace: corrupt summary range");
    TraceSummary s;
    s.accesses = count_;
    s.reads = reads;
    s.writes = writes;
    s.min_addr = min_addr;
    s.max_addr = max_addr;
    set_summary(s);
}

std::uint32_t MmapBinarySource::expected_block_accesses(std::uint32_t block) const {
    if (block + 1 < block_count_) return chunk_accesses_;
    return static_cast<std::uint32_t>(count_ - std::uint64_t{block} * chunk_accesses_);
}

const std::uint8_t* MmapBinarySource::validate_block(std::uint32_t block,
                                                     std::uint32_t* out_count,
                                                     std::uint64_t* out_payload_bytes) {
    const std::uint64_t off = le_u64(offset_table_ + std::size_t{block} * 8);
    const std::uint64_t blocks_start = kHeaderBytes + std::uint64_t{block_count_} * 8;
    require(off >= blocks_start && off % 8 == 0 && off <= map_bytes_ &&
                map_bytes_ - off >= kBlockHeaderBytes,
            format("stream trace: block %u: bad offset", block));
    const std::uint8_t* p = map_ + off;
    require(std::memcmp(p, kBlockMagic, 4) == 0,
            format("stream trace: block %u: bad block magic", block));
    const std::uint32_t n = le_u32(p + 4);
    require(n == expected_block_accesses(block),
            format("stream trace: block %u: access count mismatch", block));
    const std::uint64_t payload_bytes = le_u64(p + 8);
    require(payload_bytes <= map_bytes_ - off - kBlockHeaderBytes,
            format("stream trace: block %u: truncated payload", block));
    if (!compressed_) {
        require(payload_bytes == std::uint64_t{n} * kBytesPerAccess,
                format("stream trace: block %u: bad payload size", block));
    }
    if (!verified_[block]) {
        // A checksum mismatch can be a transient misread (injected here as
        // a bit flip into the computed hash), so the verification re-reads
        // the payload under the retry policy before giving up. Persistent
        // corruption exhausts the retries and surfaces with the same
        // diagnostic as before (TransientIoError is an Error).
        const std::uint64_t want = le_u64(p + 16);
        RetryPolicy::process().run("mtsc.block", block, [&](std::uint32_t attempt) {
            std::uint64_t got =
                fnv1a64(p + kBlockHeaderBytes, static_cast<std::size_t>(payload_bytes));
            if (io_faults().should_fail("mtsc.block", block, attempt)) got ^= 1;
            if (got != want) {
                throw TransientIoError(
                    format("stream trace: block %u: checksum mismatch", block));
            }
            return 0;
        });
    }
    *out_count = n;
    *out_payload_bytes = payload_bytes;
    return p + kBlockHeaderBytes;
}

bool MmapBinarySource::next(TraceChunk& chunk) {
    if (block_ >= block_count_) {
        chunk = TraceChunk{};
        return false;
    }
    const std::uint32_t b = block_;
    std::uint32_t n = 0;
    std::uint64_t payload_bytes = 0;
    const std::uint8_t* payload = validate_block(b, &n, &payload_bytes);

    const std::uint8_t* image = payload;
    if (compressed_) {
        const std::size_t raw = std::size_t{n} * kBytesPerAccess;
        // uint64_t backing guarantees the 8-byte alignment the column
        // reinterpret_casts below rely on.
        decoded_.assign(pad8(raw) / 8, 0);
        decode_image({payload, static_cast<std::size_t>(payload_bytes)},
                     reinterpret_cast<std::uint8_t*>(decoded_.data()), pad8(raw), b);
        image = reinterpret_cast<const std::uint8_t*>(decoded_.data());
    }

    const auto* a = reinterpret_cast<const std::uint64_t*>(image);
    const auto* cy = reinterpret_cast<const std::uint64_t*>(image + std::size_t{n} * 8);
    const auto* v = reinterpret_cast<const std::uint32_t*>(image + std::size_t{n} * 16);
    const std::uint8_t* sz = image + std::size_t{n} * 20;
    const auto* kd = reinterpret_cast<const AccessKind*>(image + std::size_t{n} * 21);

    if (!verified_[b]) {
        // Downstream replay loops (e.g. BlockProfile::from_source) size
        // their buffers from the header summary and then index them by
        // address without per-access bounds checks, so the one-time
        // content validation must also pin every record's [addr,
        // addr+size-1] inside the header's [min_addr, max_addr]. A block
        // checksum only proves the payload matches its own seal — a
        // crafted payload with a resealed FNV-1a must fail here with a
        // block diagnostic, not corrupt memory in a consumer.
        const TraceSummary& s = summary();
        for (std::uint32_t i = 0; i < n; ++i) {
            const std::uint8_t size = sz[i];
            const auto kind = static_cast<std::uint8_t>(kd[i]);
            const std::uint64_t addr = a[i];
            // Branch first so the happy path never materializes a message.
            if ((size != 1 && size != 2 && size != 4 && size != 8) || kind > 1) {
                require(size == 1 || size == 2 || size == 4 || size == 8,
                        format("stream trace: block %u: record %u has invalid access size %u", b,
                               i, static_cast<unsigned>(size)));
                throw Error(
                    format("stream trace: block %u: record %u has invalid access kind", b, i));
            }
            if (addr < s.min_addr || addr > s.max_addr ||
                s.max_addr - addr < std::uint64_t{size} - 1) {
                throw Error(format(
                    "stream trace: block %u: record %u address outside the header summary range",
                    b, i));
            }
        }
        verified_[b] = true;
    }

    chunk = TraceChunk(std::uint64_t{b} * chunk_accesses_, std::span(a, n), std::span(cy, n),
                       std::span(v, n), std::span(sz, n), std::span(kd, n));
    ++block_;
    return true;
}

// ---------------------------------------------------------------------------
// BinaryFileSource

struct BinaryFileSource::Stream {
    std::ifstream is;
};

BinaryFileSource::BinaryFileSource(const std::string& path, std::size_t chunk_accesses)
    : path_(path), chunk_(chunk_accesses), stream_(std::make_shared<Stream>()) {
    require(chunk_ > 0 && chunk_ <= kMaxStreamChunkAccesses,
            "BinaryFileSource: chunk_accesses out of range");
    stream_->is.open(path_, std::ios::binary);
    require(stream_->is.is_open(), "BinaryFileSource: cannot open '" + path_ + "'");
    char magic[4];
    stream_->is.read(magic, 4);
    require(stream_->is.gcount() == 4 && std::memcmp(magic, "MTRC", 4) == 0,
            "trace: bad binary magic");
    std::uint8_t word[8];
    stream_->is.read(reinterpret_cast<char*>(word), 4);
    require(stream_->is.gcount() == 4, "trace: truncated binary stream");
    require(le_u32(word) == 1, "trace: unsupported binary version");
    stream_->is.read(reinterpret_cast<char*>(word), 8);
    require(stream_->is.gcount() == 8, "trace: truncated binary stream");
    count_ = le_u64(word);
    data_start_ = 16;
    buffer_.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(chunk_, count_)));
}

bool BinaryFileSource::next(TraceChunk& chunk) {
    if (pos_ >= count_) {
        chunk = TraceChunk{};
        return false;
    }
    const std::size_t n =
        static_cast<std::size_t>(std::min<std::uint64_t>(chunk_, count_ - pos_));
    raw_.resize(n * 24);
    // Each attempt re-seeks to the chunk's absolute offset, so a short read
    // (injected below by delivering half the bytes, or a real transient
    // one) is healed by simply reading again. A file that is genuinely too
    // short fails the gcount check with a plain Error and is not retried.
    RetryPolicy::process().run("mtrc.read", pos_, [&](std::uint32_t attempt) {
        stream_->is.clear();
        stream_->is.seekg(static_cast<std::streamoff>(data_start_ + pos_ * 24));
        if (!stream_->is.good()) {
            throw TransientIoError("BinaryFileSource: seek failed for '" + path_ + "'");
        }
        if (io_faults().should_fail("mtrc.read", pos_, attempt)) {
            stream_->is.read(reinterpret_cast<char*>(raw_.data()),
                             static_cast<std::streamsize>(raw_.size() / 2));
            throw TransientIoError("injected short read: '" + path_ + "' chunk at " +
                                   std::to_string(pos_));
        }
        stream_->is.read(reinterpret_cast<char*>(raw_.data()),
                         static_cast<std::streamsize>(raw_.size()));
        require(stream_->is.gcount() == static_cast<std::streamsize>(raw_.size()),
                "trace: truncated binary stream");
        return 0;
    });
    buffer_.begin(pos_);
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint8_t* r = raw_.data() + i * 24;
        MemAccess a;
        a.addr = le_u64(r);
        a.cycle = le_u64(r + 8);
        a.value = le_u32(r + 16);
        const std::uint32_t meta = le_u32(r + 20);
        const std::uint32_t size = meta & 0xFF;
        // Branch first so the happy path never materializes a message.
        if ((size != 1 && size != 2 && size != 4 && size != 8) || (meta & ~0x1FFu) != 0) {
            require(size == 1 || size == 2 || size == 4 || size == 8,
                    format("trace: record %llu has invalid access size %u",
                           static_cast<unsigned long long>(pos_ + i), size));
            throw Error(format("trace: record %llu has unknown meta bits set",
                               static_cast<unsigned long long>(pos_ + i)));
        }
        a.size = static_cast<std::uint8_t>(size);
        a.kind = (meta & 0x100u) ? AccessKind::Write : AccessKind::Read;
        buffer_.push_back(a);
    }
    pos_ += n;
    chunk = buffer_.view();
    return true;
}

void BinaryFileSource::reset() {
    stream_->is.clear();
    stream_->is.seekg(static_cast<std::streamoff>(data_start_));
    require(stream_->is.good(), "BinaryFileSource: seek failed for '" + path_ + "'");
    pos_ = 0;
}

}  // namespace memopt
