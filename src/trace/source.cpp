#include "trace/source.hpp"

#include <algorithm>

namespace memopt {

const TraceSummary& TraceSource::summary() {
    if (summary_.has_value()) return *summary_;
    // One streaming pass; the accumulation mirrors the counters MemTrace
    // maintains incrementally (max_addr covers the access width).
    TraceSummary s;
    reset();
    TraceChunk chunk;
    while (next(chunk)) {
        for (std::size_t i = 0; i < chunk.size(); ++i) {
            const std::uint64_t lo = chunk.addrs[i];
            const std::uint64_t hi = lo + chunk.sizes[i] - 1;
            if (s.accesses == 0) {
                s.min_addr = lo;
                s.max_addr = hi;
            } else {
                s.min_addr = std::min(s.min_addr, lo);
                s.max_addr = std::max(s.max_addr, hi);
            }
            if (chunk.kinds[i] == AccessKind::Read) ++s.reads;
            else ++s.writes;
            ++s.accesses;
        }
    }
    reset();
    summary_ = s;
    return *summary_;
}

// ---------------------------------------------------------------------------
// MaterializedSource

MaterializedSource::MaterializedSource(const MemTrace& trace, std::size_t chunk_accesses)
    : trace_(&trace), chunk_(chunk_accesses) {
    require(chunk_ > 0, "MaterializedSource: chunk_accesses must be > 0");
    seed_summary();
}

MaterializedSource::MaterializedSource(std::shared_ptr<const MemTrace> trace,
                                       std::size_t chunk_accesses)
    : owned_(std::move(trace)), trace_(owned_.get()), chunk_(chunk_accesses) {
    require(trace_ != nullptr, "MaterializedSource: null trace");
    require(chunk_ > 0, "MaterializedSource: chunk_accesses must be > 0");
    seed_summary();
}

void MaterializedSource::seed_summary() {
    TraceSummary s;
    s.accesses = trace_->size();
    s.reads = trace_->read_count();
    s.writes = trace_->write_count();
    if (!trace_->empty()) {
        s.min_addr = trace_->min_addr();
        s.max_addr = trace_->max_addr();
    }
    set_summary(s);
}

bool MaterializedSource::next(TraceChunk& chunk) {
    const std::uint64_t n = trace_->size();
    if (pos_ >= n) {
        chunk = TraceChunk{};
        return false;
    }
    const auto begin = static_cast<std::size_t>(pos_);
    const std::size_t count = static_cast<std::size_t>(
        std::min<std::uint64_t>(chunk_, n - pos_));
    chunk = TraceChunk(pos_, trace_->addrs().subspan(begin, count),
                       trace_->cycles().subspan(begin, count),
                       trace_->values().subspan(begin, count),
                       trace_->sizes().subspan(begin, count),
                       trace_->kinds().subspan(begin, count));
    pos_ += count;
    return true;
}

// ---------------------------------------------------------------------------
// SyntheticSource

SyntheticSource::SyntheticSource(const SyntheticSpec& spec, std::size_t chunk_accesses)
    : gen_(spec), chunk_(chunk_accesses) {
    require(chunk_ > 0, "SyntheticSource: chunk_accesses must be > 0");
    buffer_.reserve(std::min<std::uint64_t>(chunk_, gen_.size()));
}

bool SyntheticSource::next(TraceChunk& chunk) {
    if (pos_ >= gen_.size()) {
        chunk = TraceChunk{};
        return false;
    }
    buffer_.begin(pos_);
    const std::uint64_t count = std::min<std::uint64_t>(chunk_, gen_.size() - pos_);
    for (std::uint64_t i = 0; i < count; ++i) buffer_.push_back(gen_.next());
    pos_ += count;
    chunk = buffer_.view();
    return true;
}

void SyntheticSource::reset() {
    gen_.reset();
    pos_ = 0;
}

}  // namespace memopt
