#include "trace/symbolize.hpp"

#include <algorithm>
#include <utility>

namespace memopt {

std::vector<SymbolTraffic> symbolize_trace(const AssembledProgram& program,
                                           const MemTrace& trace) {
    // Data symbols sorted by address; each region runs to the next symbol
    // or the end of the data image. This is a build-once/look-up-often
    // table, so a sorted vector beats a node-based std::map: one contiguous
    // allocation and cache-friendly binary searches on the lookup path.
    std::vector<std::pair<std::uint64_t, std::string>> data_symbols;
    for (const auto& [name, addr] : program.symbols) {
        if (addr >= program.data_base) data_symbols.emplace_back(addr, name);
    }
    std::stable_sort(data_symbols.begin(), data_symbols.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    // Two labels on the same address: keep the first (matches the previous
    // std::map::emplace behaviour, which dropped later duplicates).
    data_symbols.erase(std::unique(data_symbols.begin(), data_symbols.end(),
                                   [](const auto& a, const auto& b) {
                                       return a.first == b.first;
                                   }),
                       data_symbols.end());

    std::vector<SymbolTraffic> regions;
    regions.reserve(data_symbols.size());
    const std::uint64_t image_end = program.data_base + program.data.size();
    for (std::size_t i = 0; i < data_symbols.size(); ++i) {
        const std::uint64_t base = data_symbols[i].first;
        const std::uint64_t end =
            i + 1 < data_symbols.size() ? data_symbols[i + 1].first : image_end;
        regions.push_back(
            SymbolTraffic{data_symbols[i].second, base, end > base ? end - base : 0, 0, 0});
    }
    SymbolTraffic anonymous{"<stack/anon>", 0, 0, 0, 0};

    const auto addrs = trace.addrs();
    const auto kinds = trace.kinds();
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const std::uint64_t addr = addrs[i];
        SymbolTraffic* hit = &anonymous;
        // Regions are ordered: binary search for the last base <= addr.
        if (!regions.empty() && addr >= regions.front().base) {
            const auto it = std::upper_bound(
                regions.begin(), regions.end(), addr,
                [](std::uint64_t a, const SymbolTraffic& r) { return a < r.base; });
            SymbolTraffic& candidate = *std::prev(it);
            if (addr < candidate.base + candidate.bytes) hit = &candidate;
        }
        if (kinds[i] == AccessKind::Read) {
            ++hit->reads;
        } else {
            ++hit->writes;
        }
    }

    std::vector<SymbolTraffic> out;
    for (SymbolTraffic& region : regions) {
        if (region.total() > 0) out.push_back(std::move(region));
    }
    if (anonymous.total() > 0) out.push_back(std::move(anonymous));
    std::stable_sort(out.begin(), out.end(), [](const SymbolTraffic& a, const SymbolTraffic& b) {
        return a.total() > b.total();
    });
    return out;
}

}  // namespace memopt
