#include "trace/symbolize.hpp"

#include <algorithm>
#include <map>

namespace memopt {

std::vector<SymbolTraffic> symbolize_trace(const AssembledProgram& program,
                                           const MemTrace& trace) {
    // Data symbols sorted by address; each region runs to the next symbol
    // or the end of the data image.
    std::map<std::uint64_t, std::string> data_symbols;
    for (const auto& [name, addr] : program.symbols) {
        if (addr >= program.data_base) data_symbols.emplace(addr, name);
    }

    std::vector<SymbolTraffic> regions;
    const std::uint64_t image_end = program.data_base + program.data.size();
    for (auto it = data_symbols.begin(); it != data_symbols.end(); ++it) {
        const auto next = std::next(it);
        const std::uint64_t end = next != data_symbols.end() ? next->first : image_end;
        regions.push_back(SymbolTraffic{it->second, it->first,
                                        end > it->first ? end - it->first : 0, 0, 0});
    }
    SymbolTraffic anonymous{"<stack/anon>", 0, 0, 0, 0};

    for (const MemAccess& access : trace.accesses()) {
        SymbolTraffic* hit = &anonymous;
        // Regions are ordered: binary search for the last base <= addr.
        if (!regions.empty() && access.addr >= regions.front().base) {
            const auto it = std::upper_bound(
                regions.begin(), regions.end(), access.addr,
                [](std::uint64_t addr, const SymbolTraffic& r) { return addr < r.base; });
            SymbolTraffic& candidate = *std::prev(it);
            if (access.addr < candidate.base + candidate.bytes) hit = &candidate;
        }
        if (access.kind == AccessKind::Read) {
            ++hit->reads;
        } else {
            ++hit->writes;
        }
    }

    std::vector<SymbolTraffic> out;
    for (SymbolTraffic& region : regions) {
        if (region.total() > 0) out.push_back(std::move(region));
    }
    if (anonymous.total() > 0) out.push_back(std::move(anonymous));
    std::stable_sort(out.begin(), out.end(), [](const SymbolTraffic& a, const SymbolTraffic& b) {
        return a.total() > b.total();
    });
    return out;
}

}  // namespace memopt
