// Synthetic trace generators.
//
// These produce address traces with controlled locality properties. They are
// used by unit tests (known ground truth) and by benches that sweep profile
// shapes beyond what the bundled AR32 kernels produce.
#pragma once

#include <cstdint>
#include <vector>

#include "support/rng.hpp"
#include "trace/trace.hpp"

namespace memopt {

/// Parameters shared by the synthetic generators.
struct SyntheticParams {
    std::uint64_t span_bytes = 64 * 1024;  ///< covered address space (power of two)
    std::size_t num_accesses = 100000;     ///< trace length
    double write_fraction = 0.3;           ///< probability an access is a write
    std::uint64_t seed = 1;                ///< RNG seed (deterministic output)
};

/// Uniform random addresses over the span. The least informative profile:
/// partitioning gains little, clustering gains nothing.
MemTrace uniform_trace(const SyntheticParams& p);

/// "Scattered hotspots": `num_hotspots` regions of `hotspot_bytes` each are
/// placed at random (spread-out) positions; `hot_fraction` of accesses hit a
/// hotspot (chosen with a skewed distribution across hotspots), the rest are
/// uniform background. This is the profile class that motivates address
/// clustering: hot data exists but is NOT contiguous, so plain partitioning
/// cannot isolate it into a small bank.
struct HotspotParams {
    SyntheticParams base;
    std::size_t num_hotspots = 8;
    std::uint64_t hotspot_bytes = 1024;
    double hot_fraction = 0.9;
};
MemTrace scattered_hotspot_trace(const HotspotParams& p);

/// Sequential strided sweep: repeatedly walks the span with a given stride
/// (array streaming). High spatial locality by construction.
struct StrideParams {
    SyntheticParams base;
    std::uint64_t stride = 4;
};
MemTrace strided_trace(const StrideParams& p);

/// Two-phase trace: phase 1 works in region A, phase 2 in region B; models
/// program phases with disjoint working sets (favourable to partitioning
/// even without clustering).
MemTrace two_phase_trace(const SyntheticParams& p);

/// Values stream with controlled smoothness, used by compression tests:
/// generates `n` 32-bit words where consecutive words differ by a bounded
/// random delta with probability `smooth_prob`, and are random otherwise.
std::vector<std::uint32_t> smooth_word_stream(std::size_t n, double smooth_prob,
                                              std::uint32_t max_delta, std::uint64_t seed);

}  // namespace memopt
