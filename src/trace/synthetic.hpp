// Synthetic trace generators.
//
// These produce address traces with controlled locality properties. They are
// used by unit tests (known ground truth) and by benches that sweep profile
// shapes beyond what the bundled AR32 kernels produce.
//
// All trace families share one per-access engine, SyntheticGenerator:
// the materializing helpers (uniform_trace, ...) and the streaming
// SyntheticSource (trace/source.hpp) both drain the same generator, so the
// chunked stream is bit-identical to the materialized trace by
// construction — the RNG consumption order per access is defined exactly
// once.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "support/rng.hpp"
#include "trace/trace.hpp"

namespace memopt {

/// Parameters shared by the synthetic generators.
struct SyntheticParams {
    std::uint64_t span_bytes = 64 * 1024;  ///< covered address space (power of two)
    std::size_t num_accesses = 100000;     ///< trace length
    double write_fraction = 0.3;           ///< probability an access is a write
    std::uint64_t seed = 1;                ///< RNG seed (deterministic output)
};

/// The synthetic trace families.
enum class SyntheticKind {
    Uniform,           ///< uniform random addresses over the span
    Hotspot,           ///< scattered hotspots over a uniform background
    Stride,            ///< sequential strided sweep
    TwoPhase,          ///< disjoint working sets in two program phases
    ProducerConsumer,  ///< multi-core: core 0 writes a shared region, others read it
};

/// Full description of one synthetic trace: the family plus every knob.
/// Kind-specific fields are ignored by the other kinds.
struct SyntheticSpec {
    SyntheticKind kind = SyntheticKind::Uniform;
    SyntheticParams base;
    // Hotspot only:
    std::size_t num_hotspots = 8;
    std::uint64_t hotspot_bytes = 1024;
    double hot_fraction = 0.9;
    // Stride only:
    std::uint64_t stride = 4;
    // Multi-core (producer-consumer, and per_core_specs fan-out):
    unsigned cores = 1;    ///< cores the trace family targets
    unsigned core_id = 0;  ///< which core this spec generates for (< cores)
    std::uint64_t shared_bytes = 4096;  ///< producer-consumer shared region size
    double shared_fraction = 0.6;       ///< probability an access hits the shared region
};

/// Display name ("uniform", "hotspot", "stride", "two-phase",
/// "producer-consumer").
std::string synthetic_kind_name(SyntheticKind kind);

/// Parse a spec string of the form
///   "<kind>[,key=value]..."
/// with kind in {uniform, hotspot, stride, two-phase, producer-consumer}
/// and keys span, n, seed, write, hotspots, hotspot-bytes, hot-frac,
/// stride, cores, shared-bytes, shared-frac —
/// e.g. "uniform,span=16777216,n=100000000,seed=7". Throws memopt::Error
/// on malformed input. Parameter validity itself is checked when the
/// generator is constructed.
SyntheticSpec parse_synthetic_spec(std::string_view text);

/// Fan a spec out to `spec.cores` per-core specs: core c gets core_id = c
/// and a per-core remix of the seed, so the streams are decorrelated but
/// the whole family is still determined by the one parent seed. Each core
/// issues the full `n` accesses of the parent spec.
std::vector<SyntheticSpec> per_core_specs(const SyntheticSpec& spec);

/// Per-access synthetic trace engine. The i-th next() call returns access i
/// of the deterministic sequence the spec describes; reset() rewinds to
/// access 0. Construction validates the spec (memopt::Error on bad
/// parameters).
class SyntheticGenerator {
public:
    explicit SyntheticGenerator(const SyntheticSpec& spec);

    const SyntheticSpec& spec() const { return spec_; }
    std::uint64_t size() const { return spec_.base.num_accesses; }
    bool done() const { return i_ >= spec_.base.num_accesses; }

    /// Produce the next access. Must not be called when done().
    MemAccess next();

    /// Rewind to access 0 (the replay is bit-identical).
    void reset();

private:
    SyntheticSpec spec_;
    Rng rng_;
    Rng rng_start_;  ///< RNG state after construction-time precomputation
    std::vector<std::uint64_t> bases_;  ///< hotspot base addresses
    std::size_t i_ = 0;
    std::uint64_t stride_addr_ = 0;
};

/// Materialize the full trace a spec describes (drains one generator).
MemTrace materialize_synthetic(const SyntheticSpec& spec);

/// Uniform random addresses over the span. The least informative profile:
/// partitioning gains little, clustering gains nothing.
MemTrace uniform_trace(const SyntheticParams& p);

/// "Scattered hotspots": `num_hotspots` regions of `hotspot_bytes` each are
/// placed at random (spread-out) positions; `hot_fraction` of accesses hit a
/// hotspot (chosen with a skewed distribution across hotspots), the rest are
/// uniform background. This is the profile class that motivates address
/// clustering: hot data exists but is NOT contiguous, so plain partitioning
/// cannot isolate it into a small bank.
struct HotspotParams {
    SyntheticParams base;
    std::size_t num_hotspots = 8;
    std::uint64_t hotspot_bytes = 1024;
    double hot_fraction = 0.9;
};
MemTrace scattered_hotspot_trace(const HotspotParams& p);

/// Sequential strided sweep: repeatedly walks the span with a given stride
/// (array streaming). High spatial locality by construction.
struct StrideParams {
    SyntheticParams base;
    std::uint64_t stride = 4;
};
MemTrace strided_trace(const StrideParams& p);

/// Two-phase trace: phase 1 works in region A, phase 2 in region B; models
/// program phases with disjoint working sets (favourable to partitioning
/// even without clustering).
MemTrace two_phase_trace(const SyntheticParams& p);

/// Values stream with controlled smoothness, used by compression tests:
/// generates `n` 32-bit words where consecutive words differ by a bounded
/// random delta with probability `smooth_prob`, and are random otherwise.
std::vector<std::uint32_t> smooth_word_stream(std::size_t n, double smooth_prob,
                                              std::uint32_t max_delta, std::uint64_t seed);

}  // namespace memopt
