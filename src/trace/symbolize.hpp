// Symbol-level attribution of memory traffic.
//
// Maps every access of a trace to the assembler symbol whose region
// contains it (a symbol's region extends to the next symbol), so energy
// reports can say "the coefficient table takes 40% of the accesses" instead
// of quoting raw block numbers. Accesses outside all symbols (typically the
// stack) are attributed to the pseudo-symbol "<stack/anon>".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/assembler.hpp"
#include "trace/trace.hpp"

namespace memopt {

/// Traffic attributed to one symbol.
struct SymbolTraffic {
    std::string name;
    std::uint64_t base = 0;      ///< region start (byte address)
    std::uint64_t bytes = 0;     ///< region size (to the next symbol / image end)
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;

    std::uint64_t total() const { return reads + writes; }
};

/// Attribute every access of `trace` to the data symbols of `program`.
/// Returns entries sorted by descending total accesses; symbols with zero
/// traffic are omitted. The trailing "<stack/anon>" entry collects accesses
/// outside the data image.
std::vector<SymbolTraffic> symbolize_trace(const AssembledProgram& program,
                                           const MemTrace& trace);

}  // namespace memopt
