#include "trace/trace.hpp"

#include <algorithm>
#include <bit>

namespace memopt {

void MemTrace::add(const MemAccess& a) {
    MEMOPT_ASSERT_MSG(a.size == 1 || a.size == 2 || a.size == 4 || a.size == 8,
                      "access size must be 1/2/4/8 bytes");
    if (addrs_.empty()) {
        min_addr_ = a.addr;
        max_addr_ = a.addr + a.size - 1;
    } else {
        min_addr_ = std::min(min_addr_, a.addr);
        max_addr_ = std::max(max_addr_, a.addr + a.size - 1);
    }
    if (a.kind == AccessKind::Read) ++reads_;
    else ++writes_;
    addrs_.push_back(a.addr);
    cycles_.push_back(a.cycle);
    values_.push_back(a.value);
    sizes_.push_back(a.size);
    kinds_.push_back(a.kind);
}

void MemTrace::add_read(std::uint64_t addr, std::uint8_t size, std::uint64_t cycle) {
    add(MemAccess{.addr = addr, .cycle = cycle, .size = size, .kind = AccessKind::Read});
}

void MemTrace::add_write(std::uint64_t addr, std::uint8_t size, std::uint64_t cycle) {
    add(MemAccess{.addr = addr, .cycle = cycle, .size = size, .kind = AccessKind::Write});
}

MemTrace MemTrace::from_columns(std::vector<std::uint64_t> addrs,
                                std::vector<std::uint64_t> cycles,
                                std::vector<std::uint32_t> values,
                                std::vector<std::uint8_t> sizes,
                                std::vector<AccessKind> kinds) {
    const std::size_t n = addrs.size();
    require(cycles.size() == n && values.size() == n && sizes.size() == n && kinds.size() == n,
            "MemTrace::from_columns: column length mismatch");
    MemTrace trace;
    trace.addrs_ = std::move(addrs);
    trace.cycles_ = std::move(cycles);
    trace.values_ = std::move(values);
    trace.sizes_ = std::move(sizes);
    trace.kinds_ = std::move(kinds);
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint8_t size = trace.sizes_[i];
        MEMOPT_ASSERT_MSG(size == 1 || size == 2 || size == 4 || size == 8,
                          "access size must be 1/2/4/8 bytes");
        const std::uint64_t lo = trace.addrs_[i];
        const std::uint64_t hi = lo + size - 1;
        if (i == 0) {
            trace.min_addr_ = lo;
            trace.max_addr_ = hi;
        } else {
            trace.min_addr_ = std::min(trace.min_addr_, lo);
            trace.max_addr_ = std::max(trace.max_addr_, hi);
        }
        if (trace.kinds_[i] == AccessKind::Read) ++trace.reads_;
        else ++trace.writes_;
    }
    return trace;
}

std::uint64_t MemTrace::min_addr() const {
    require(!addrs_.empty(), "min_addr on empty trace");
    return min_addr_;
}

std::uint64_t MemTrace::max_addr() const {
    require(!addrs_.empty(), "max_addr on empty trace");
    return max_addr_;
}

std::uint64_t MemTrace::address_span_pow2() const {
    require(!addrs_.empty(), "address_span_pow2 on empty trace");
    return ceil_pow2(max_addr_ + 1);
}

void MemTrace::clear() {
    addrs_.clear();
    cycles_.clear();
    values_.clear();
    sizes_.clear();
    kinds_.clear();
    reads_ = writes_ = 0;
    min_addr_ = max_addr_ = 0;
}

void MemTrace::reserve(std::size_t n) {
    addrs_.reserve(n);
    cycles_.reserve(n);
    values_.reserve(n);
    sizes_.reserve(n);
    kinds_.reserve(n);
}

std::uint64_t ceil_pow2(std::uint64_t v) {
    if (v <= 1) return 1;
    return std::bit_ceil(v);
}

bool is_pow2(std::uint64_t v) { return v != 0 && std::has_single_bit(v); }

unsigned log2_exact(std::uint64_t v) {
    MEMOPT_ASSERT(is_pow2(v));
    return static_cast<unsigned>(std::countr_zero(v));
}

}  // namespace memopt
