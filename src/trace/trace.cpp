#include "trace/trace.hpp"

#include <algorithm>
#include <bit>

namespace memopt {

void MemTrace::add(const MemAccess& a) {
    MEMOPT_ASSERT_MSG(a.size == 1 || a.size == 2 || a.size == 4 || a.size == 8,
                      "access size must be 1/2/4/8 bytes");
    if (accesses_.empty()) {
        min_addr_ = a.addr;
        max_addr_ = a.addr + a.size - 1;
    } else {
        min_addr_ = std::min(min_addr_, a.addr);
        max_addr_ = std::max(max_addr_, a.addr + a.size - 1);
    }
    if (a.kind == AccessKind::Read) ++reads_;
    else ++writes_;
    accesses_.push_back(a);
}

void MemTrace::add_read(std::uint64_t addr, std::uint8_t size, std::uint64_t cycle) {
    add(MemAccess{.addr = addr, .cycle = cycle, .size = size, .kind = AccessKind::Read});
}

void MemTrace::add_write(std::uint64_t addr, std::uint8_t size, std::uint64_t cycle) {
    add(MemAccess{.addr = addr, .cycle = cycle, .size = size, .kind = AccessKind::Write});
}

std::uint64_t MemTrace::min_addr() const {
    require(!accesses_.empty(), "min_addr on empty trace");
    return min_addr_;
}

std::uint64_t MemTrace::max_addr() const {
    require(!accesses_.empty(), "max_addr on empty trace");
    return max_addr_;
}

std::uint64_t MemTrace::address_span_pow2() const {
    require(!accesses_.empty(), "address_span_pow2 on empty trace");
    return ceil_pow2(max_addr_ + 1);
}

void MemTrace::clear() {
    accesses_.clear();
    reads_ = writes_ = 0;
    min_addr_ = max_addr_ = 0;
}

std::uint64_t ceil_pow2(std::uint64_t v) {
    if (v <= 1) return 1;
    return std::bit_ceil(v);
}

bool is_pow2(std::uint64_t v) { return v != 0 && std::has_single_bit(v); }

unsigned log2_exact(std::uint64_t v) {
    MEMOPT_ASSERT(is_pow2(v));
    return static_cast<unsigned>(std::countr_zero(v));
}

}  // namespace memopt
