// Streaming trace sources: the pull-based, chunked replay abstraction.
//
// A TraceSource delivers a trace as a sequence of TraceChunks — SoA column
// spans over up to ~64Ki accesses — instead of requiring the whole MemTrace
// to be resident. Every replay loop in the toolkit (profile builder,
// affinity builders, sleepy-bank replay, compressed-memory simulation,
// cache hierarchy, the end-to-end flow) consumes a TraceSource, which is
// what lets a 10^8–10^9-access trace run end to end in O(chunk) memory.
//
// Three concrete sources exist:
//  * MaterializedSource  — zero-copy span slices over an in-memory MemTrace
//                          (preserves every existing call site);
//  * SyntheticSource     — generates chunks on the fly from the
//                          deterministic generators in trace/synthetic.hpp
//                          without ever materializing the trace
//                          (trace/synthetic.hpp);
//  * MmapBinarySource    — memory-mapped zero-copy reader for the ".mtsc"
//                          block container (trace/stream_file.hpp).
//
// Determinism contract: a source replays the exact same access sequence on
// every pass (reset() rewinds to access 0), and all chunked accumulations
// in this repository reduce integer-valued sums — so results are
// bit-identical between the streaming and materialized paths at any job
// count (the same property the PR-4 sharded replays rely on).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <type_traits>
#include <vector>

#include "support/assert.hpp"
#include "support/durable/cancel.hpp"
#include "support/parallel.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace.hpp"

namespace memopt {

/// Default chunk granularity (accesses per TraceChunk). 64Ki accesses keep
/// a chunk's columns (~1.4 MiB) comfortably inside L2-resident working sets
/// while amortizing per-chunk dispatch, and match the sharding floor of the
/// parallel replay loops.
inline constexpr std::size_t kDefaultTraceChunk = std::size_t{1} << 16;

/// One chunk of a trace: SoA column spans plus the global index of the
/// chunk's first access. Spans stay valid until the producing source's next
/// next()/reset() call (longer for stable sources — see
/// TraceSource::stable_chunks()).
///
/// Invariant: all five columns have equal length (validated at
/// construction, mirroring MemTrace::from_columns).
struct TraceChunk {
    std::uint64_t first_index = 0;
    std::span<const std::uint64_t> addrs;
    std::span<const std::uint64_t> cycles;
    std::span<const std::uint32_t> values;
    std::span<const std::uint8_t> sizes;
    std::span<const AccessKind> kinds;

    TraceChunk() = default;
    TraceChunk(std::uint64_t first, std::span<const std::uint64_t> a,
               std::span<const std::uint64_t> c, std::span<const std::uint32_t> v,
               std::span<const std::uint8_t> s, std::span<const AccessKind> k)
        : first_index(first), addrs(a), cycles(c), values(v), sizes(s), kinds(k) {
        require(c.size() == a.size() && v.size() == a.size() && s.size() == a.size() &&
                    k.size() == a.size(),
                "TraceChunk: column length mismatch");
    }

    std::size_t size() const { return addrs.size(); }
    bool empty() const { return addrs.empty(); }
};

/// Cheap whole-trace statistics, matching the counters MemTrace maintains.
/// `max_addr` is inclusive and covers the access width (addr + size - 1).
struct TraceSummary {
    std::uint64_t accesses = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t min_addr = 0;
    std::uint64_t max_addr = 0;

    /// Smallest power-of-two span covering all touched addresses from zero
    /// (the profile-geometry value; equals MemTrace::address_span_pow2()).
    std::uint64_t span_pow2() const { return ceil_pow2(max_addr + 1); }
};

/// Abstract pull-based chunked trace stream. Single-pass cursor semantics:
/// next() yields consecutive chunks in program order until exhausted;
/// reset() rewinds to access 0 for another identical pass.
class TraceSource {
public:
    virtual ~TraceSource() = default;

    /// Total number of accesses the full replay delivers.
    virtual std::uint64_t size() const = 0;

    /// True when chunk spans remain valid across next()/reset() calls for
    /// the lifetime of the source (zero-copy backing storage). Stable
    /// sources can be replayed in parallel without copying chunks.
    virtual bool stable_chunks() const { return false; }

    /// Produce the next chunk. Returns false (and leaves `chunk` empty)
    /// once the trace is exhausted.
    virtual bool next(TraceChunk& chunk) = 0;

    /// Rewind to access 0. The subsequent pass delivers the identical
    /// access sequence.
    virtual void reset() = 0;

    /// Whole-trace statistics. Computed with one streaming pass on first
    /// use (then cached) unless the source seeded them at construction;
    /// bit-identical to the counters of the materialized trace.
    ///
    /// Contract: every access the source delivers lies within the
    /// summary's [min_addr, max_addr] range (inclusive of the access
    /// width), so consumers may size address-indexed buffers from the
    /// summary without per-access bounds checks. Sources whose summary
    /// comes from an external header (e.g. MmapBinarySource) must enforce
    /// this during content validation rather than trust the payload.
    const TraceSummary& summary();

protected:
    /// Seed the cached summary (sources that know it without a pass).
    void set_summary(const TraceSummary& s) { summary_ = s; }

private:
    std::optional<TraceSummary> summary_;
};

/// Owning SoA chunk storage: the staging buffer non-stable sources fill and
/// the copy target of the parallel streaming driver.
class ChunkBuffer {
public:
    /// Start a fresh chunk whose first access has global index `first`.
    void begin(std::uint64_t first) {
        first_index_ = first;
        addrs_.clear();
        cycles_.clear();
        values_.clear();
        sizes_.clear();
        kinds_.clear();
    }

    void reserve(std::size_t n) {
        addrs_.reserve(n);
        cycles_.reserve(n);
        values_.reserve(n);
        sizes_.reserve(n);
        kinds_.reserve(n);
    }

    void push_back(const MemAccess& a) {
        addrs_.push_back(a.addr);
        cycles_.push_back(a.cycle);
        values_.push_back(a.value);
        sizes_.push_back(a.size);
        kinds_.push_back(a.kind);
    }

    /// Deep-copy `chunk` into this buffer.
    void assign(const TraceChunk& chunk) {
        first_index_ = chunk.first_index;
        addrs_.assign(chunk.addrs.begin(), chunk.addrs.end());
        cycles_.assign(chunk.cycles.begin(), chunk.cycles.end());
        values_.assign(chunk.values.begin(), chunk.values.end());
        sizes_.assign(chunk.sizes.begin(), chunk.sizes.end());
        kinds_.assign(chunk.kinds.begin(), chunk.kinds.end());
    }

    std::size_t size() const { return addrs_.size(); }
    bool empty() const { return addrs_.empty(); }

    /// Non-owning chunk view over the buffered columns.
    TraceChunk view() const {
        return TraceChunk(first_index_, addrs_, cycles_, values_, sizes_, kinds_);
    }

private:
    std::uint64_t first_index_ = 0;
    std::vector<std::uint64_t> addrs_;
    std::vector<std::uint64_t> cycles_;
    std::vector<std::uint32_t> values_;
    std::vector<std::uint8_t> sizes_;
    std::vector<AccessKind> kinds_;
};

/// Zero-copy source over an in-memory MemTrace: chunks are subspans of the
/// trace's columns (stable for the source's lifetime), and the summary is
/// seeded from the trace's own counters — no extra pass, no extra memory.
class MaterializedSource final : public TraceSource {
public:
    /// Non-owning view; `trace` must outlive the source.
    explicit MaterializedSource(const MemTrace& trace,
                                std::size_t chunk_accesses = kDefaultTraceChunk);

    /// Shared-ownership variant (repository artifacts, loaded files): the
    /// source keeps the trace alive.
    explicit MaterializedSource(std::shared_ptr<const MemTrace> trace,
                                std::size_t chunk_accesses = kDefaultTraceChunk);

    std::uint64_t size() const override { return trace_->size(); }
    bool stable_chunks() const override { return true; }
    bool next(TraceChunk& chunk) override;
    void reset() override { pos_ = 0; }

private:
    void seed_summary();

    std::shared_ptr<const MemTrace> owned_;  ///< may be null (non-owning ctor)
    const MemTrace* trace_;
    std::size_t chunk_;
    std::uint64_t pos_ = 0;
};

/// Generates chunks on the fly from a deterministic synthetic generator —
/// a 10^9-access trace costs O(chunk) memory. Chunk contents are
/// bit-identical to the materialized generator output by construction (the
/// same SyntheticGenerator produces both).
class SyntheticSource final : public TraceSource {
public:
    explicit SyntheticSource(const SyntheticSpec& spec,
                             std::size_t chunk_accesses = kDefaultTraceChunk);

    std::uint64_t size() const override { return gen_.size(); }
    bool next(TraceChunk& chunk) override;
    void reset() override;

private:
    SyntheticGenerator gen_;
    ChunkBuffer buffer_;
    std::size_t chunk_;
    std::uint64_t pos_ = 0;
};

namespace stream_detail {

/// Tasks shorter than this replay serially (same floor as the sharded
/// materialized replays: below ~64Ki accesses dispatch overhead wins).
inline constexpr std::size_t kMinAccessesPerTask = std::size_t{1} << 16;

inline std::size_t stream_task_count(std::uint64_t accesses, std::size_t jobs) {
    if (jobs == 0) jobs = default_jobs();
    if (jobs <= 1 || accesses < 2 * kMinAccessesPerTask) return 1;
    return static_cast<std::size_t>(
        std::min<std::uint64_t>(jobs, accesses / kMinAccessesPerTask));
}

/// Keep `tail` equal to the last `context` addresses seen after appending
/// `addrs` to the stream.
inline void update_tail(std::vector<std::uint64_t>& tail, std::span<const std::uint64_t> addrs,
                        std::size_t context) {
    if (context == 0) return;
    if (addrs.size() >= context) {
        tail.assign(addrs.end() - static_cast<std::ptrdiff_t>(context), addrs.end());
        return;
    }
    const std::size_t keep = std::min(tail.size(), context - addrs.size());
    tail.erase(tail.begin(), tail.end() - static_cast<std::ptrdiff_t>(keep));
    tail.insert(tail.end(), addrs.begin(), addrs.end());
}

/// The up-to-`context` addresses immediately preceding chunks[k] (gathered
/// backward across chunk boundaries; empty for k == 0).
inline std::vector<std::uint64_t> gather_context(const std::vector<TraceChunk>& chunks,
                                                 std::size_t k, std::size_t context) {
    std::vector<std::uint64_t> out;
    if (context == 0 || k == 0) return out;
    std::vector<std::span<const std::uint64_t>> tails;
    std::size_t need = context;
    std::size_t j = k;
    while (need > 0 && j > 0) {
        --j;
        const auto& a = chunks[j].addrs;
        const std::size_t take = std::min(need, a.size());
        tails.push_back(a.subspan(a.size() - take, take));
        need -= take;
    }
    for (auto it = tails.rbegin(); it != tails.rend(); ++it)
        out.insert(out.end(), it->begin(), it->end());
    return out;
}

}  // namespace stream_detail

/// Chunked map/reduce replay driver — the streaming counterpart of the
/// sharded materialized replays.
///
/// Streams `source` once, calling `map_chunk(state, chunk, context)` for
/// every chunk, where `context` holds the up-to-`context_size` addresses
/// immediately preceding the chunk (for window pre-warming; pass 0 when the
/// mapper is context-free). `merge(into, from)` folds partial states
/// together; the reduction happens in a fixed task order.
///
/// Parallelism: stable sources replay their zero-copy chunks sharded into
/// contiguous task ranges (exactly the materialized sharding strategy);
/// non-stable sources pull chunk copies sequentially and map batches of
/// them concurrently onto persistent per-slot states. Either way, partial
/// sums must be exact under reordering — every accumulation in this
/// repository reduces integer-valued sums, so results are bit-identical at
/// any job count.
///
/// Cancellation: the global CancellationToken is polled at every chunk
/// boundary on all three execution paths, so a deadline or SIGINT/SIGTERM
/// interrupts a billion-access replay within one chunk (~64Ki accesses).
/// The resulting CancelledError unwinds through parallel_map like any
/// worker exception; partial state is discarded by the caller.
template <typename MakeState, typename MapChunk, typename Merge>
auto stream_accumulate(TraceSource& source, std::size_t context_size, std::size_t jobs,
                       const MakeState& make_state, const MapChunk& map_chunk,
                       const Merge& merge) {
    using State = std::invoke_result_t<MakeState>;
    source.reset();
    std::size_t tasks = stream_detail::stream_task_count(source.size(), jobs);

    if (source.stable_chunks() && tasks > 1) {
        std::vector<TraceChunk> chunks;
        TraceChunk c;
        while (source.next(c)) {
            if (!c.empty()) chunks.push_back(c);
        }
        tasks = std::min(tasks, chunks.size());
        if (tasks > 1) {
            std::vector<std::size_t> ids(tasks);
            for (std::size_t s = 0; s < tasks; ++s) ids[s] = s;
            std::vector<State> parts = parallel_map(
                ids,
                [&](std::size_t s) {
                    State state = make_state();
                    const std::size_t begin = chunks.size() * s / tasks;
                    const std::size_t end = chunks.size() * (s + 1) / tasks;
                    for (std::size_t k = begin; k < end; ++k) {
                        CancellationToken::global().check();
                        const std::vector<std::uint64_t> ctx =
                            stream_detail::gather_context(chunks, k, context_size);
                        map_chunk(state, chunks[k], std::span<const std::uint64_t>(ctx));
                    }
                    return state;
                },
                jobs);
            State out = std::move(parts.front());
            for (std::size_t s = 1; s < parts.size(); ++s) merge(out, parts[s]);
            return out;
        }
        State state = make_state();
        for (std::size_t k = 0; k < chunks.size(); ++k) {
            CancellationToken::global().check();
            const std::vector<std::uint64_t> ctx =
                stream_detail::gather_context(chunks, k, context_size);
            map_chunk(state, chunks[k], std::span<const std::uint64_t>(ctx));
        }
        return state;
    }

    if (tasks <= 1) {
        State state = make_state();
        std::vector<std::uint64_t> tail;
        TraceChunk c;
        while (source.next(c)) {
            CancellationToken::global().check();
            if (c.empty()) continue;
            map_chunk(state, c, std::span<const std::uint64_t>(tail));
            stream_detail::update_tail(tail, c.addrs, context_size);
        }
        return state;
    }

    // Non-stable parallel path: per-slot persistent states; each batch
    // pulls up to `tasks` chunk copies (sequential, preserving context
    // tails across batches) and maps them concurrently.
    std::vector<State> states;
    states.reserve(tasks);
    for (std::size_t s = 0; s < tasks; ++s) states.push_back(make_state());
    std::vector<ChunkBuffer> buffers(tasks);
    std::vector<std::vector<std::uint64_t>> contexts(tasks);
    std::vector<std::uint64_t> tail;
    bool more = true;
    while (more) {
        std::size_t filled = 0;
        TraceChunk c;
        while (filled < tasks && (more = source.next(c))) {
            CancellationToken::global().check();
            if (c.empty()) continue;
            buffers[filled].assign(c);
            contexts[filled] = tail;
            stream_detail::update_tail(tail, c.addrs, context_size);
            ++filled;
        }
        if (filled == 0) break;
        std::vector<std::size_t> ids(filled);
        for (std::size_t s = 0; s < filled; ++s) ids[s] = s;
        parallel_map(
            ids,
            [&](std::size_t s) {
                map_chunk(states[s], buffers[s].view(),
                          std::span<const std::uint64_t>(contexts[s]));
                return 0;
            },
            jobs);
    }
    State out = std::move(states.front());
    for (std::size_t s = 1; s < states.size(); ++s) merge(out, states[s]);
    return out;
}

}  // namespace memopt
