#include "trace/io.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>

#include "support/durable/atomic_file.hpp"
#include "support/string_util.hpp"
#include "trace/source.hpp"

namespace memopt {

namespace {

constexpr char kMagic[4] = {'M', 'T', 'R', 'C'};
constexpr std::uint32_t kVersion = 1;

void write_u32(std::ostream& os, std::uint32_t v) {
    char bytes[4];
    for (int i = 0; i < 4; ++i) bytes[i] = static_cast<char>(v >> (8 * i));
    os.write(bytes, 4);
}

void write_u64(std::ostream& os, std::uint64_t v) {
    char bytes[8];
    for (int i = 0; i < 8; ++i) bytes[i] = static_cast<char>(v >> (8 * i));
    os.write(bytes, 8);
}

std::uint32_t read_u32(std::istream& is) {
    char bytes[4];
    is.read(bytes, 4);
    require(is.gcount() == 4, "trace: truncated binary stream");
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<std::uint8_t>(bytes[i]);
    return v;
}

std::uint64_t read_u64(std::istream& is) {
    char bytes[8];
    is.read(bytes, 8);
    require(is.gcount() == 8, "trace: truncated binary stream");
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<std::uint8_t>(bytes[i]);
    return v;
}

}  // namespace

namespace {

void write_text_chunk(std::ostream& os, const TraceChunk& chunk) {
    for (std::size_t i = 0; i < chunk.size(); ++i) {
        os << (chunk.kinds[i] == AccessKind::Read ? 'R' : 'W') << " 0x" << std::hex
           << chunk.addrs[i] << std::dec << ' ' << static_cast<unsigned>(chunk.sizes[i])
           << ' ' << chunk.cycles[i] << " 0x" << std::hex << chunk.values[i] << std::dec
           << '\n';
    }
}

}  // namespace

void write_trace_text(std::ostream& os, const MemTrace& trace) {
    MaterializedSource source(trace);
    write_trace_text(os, source);
}

void write_trace_text(std::ostream& os, TraceSource& source) {
    os << "# memopt trace v1: kind addr size cycle value\n";
    source.reset();
    TraceChunk chunk;
    while (source.next(chunk)) write_text_chunk(os, chunk);
}

MemTrace read_trace_text(std::istream& is) {
    MemTrace trace;
    std::string line;
    int line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        std::string_view text = trim(line);
        if (const auto hash = text.find('#'); hash != std::string_view::npos)
            text = trim(text.substr(0, hash));
        if (text.empty()) continue;
        const auto fields = split_ws(text);
        require(fields.size() >= 2 && fields.size() <= 5,
                format("trace text line %d: expected 2..5 fields", line_no));
        MemAccess access;
        const std::string kind = to_lower(fields[0]);
        if (kind == "r") {
            access.kind = AccessKind::Read;
        } else if (kind == "w") {
            access.kind = AccessKind::Write;
        } else {
            throw Error(format("trace text line %d: kind must be R or W", line_no));
        }
        const auto addr = parse_int(fields[1]);
        require(addr.has_value() && *addr >= 0, format("trace text line %d: bad address", line_no));
        access.addr = static_cast<std::uint64_t>(*addr);
        if (fields.size() >= 3) {
            const auto size = parse_int(fields[2]);
            require(size && (*size == 1 || *size == 2 || *size == 4 || *size == 8),
                    format("trace text line %d: bad size", line_no));
            access.size = static_cast<std::uint8_t>(*size);
        }
        if (fields.size() >= 4) {
            const auto cycle = parse_int(fields[3]);
            require(cycle && *cycle >= 0, format("trace text line %d: bad cycle", line_no));
            access.cycle = static_cast<std::uint64_t>(*cycle);
        }
        if (fields.size() >= 5) {
            const auto value = parse_int(fields[4]);
            require(value.has_value(), format("trace text line %d: bad value", line_no));
            // Values are 32-bit words; a silent truncation here would make
            // the compression/encoding results of a round-tripped trace
            // differ from the original.
            require(*value >= 0 && *value <= 0xFFFFFFFFLL,
                    format("trace text line %d: value out of 32-bit range", line_no));
            access.value = static_cast<std::uint32_t>(*value);
        }
        trace.add(access);
    }
    return trace;
}

void write_trace_binary(std::ostream& os, const MemTrace& trace) {
    MaterializedSource source(trace);
    write_trace_binary(os, source);
}

void write_trace_binary(std::ostream& os, TraceSource& source) {
    os.write(kMagic, 4);
    write_u32(os, kVersion);
    write_u64(os, source.size());
    source.reset();
    TraceChunk chunk;
    std::uint64_t written = 0;
    while (source.next(chunk)) {
        for (std::size_t i = 0; i < chunk.size(); ++i) {
            write_u64(os, chunk.addrs[i]);
            write_u64(os, chunk.cycles[i]);
            write_u32(os, chunk.values[i]);
            const std::uint32_t meta =
                static_cast<std::uint32_t>(chunk.sizes[i]) |
                (chunk.kinds[i] == AccessKind::Write ? 0x100u : 0u);
            write_u32(os, meta);
        }
        written += chunk.size();
    }
    // The count field was written up front from size(); a source that lied
    // would leave a malformed stream behind.
    require(written == source.size(),
            "write_trace_binary: source delivered a different access count than size()");
}

MemTrace read_trace_binary(std::istream& is) {
    char magic[4];
    is.read(magic, 4);
    require(is.gcount() == 4 && std::equal(magic, magic + 4, kMagic),
            "trace: bad binary magic");
    const std::uint32_t version = read_u32(is);
    require(version == kVersion, "trace: unsupported binary version");
    const std::uint64_t count = read_u64(is);
    MemTrace trace;
    // `count` comes straight from the (possibly corrupt or truncated) file
    // header, so it must not drive an unbounded up-front allocation: a
    // flipped bit could request a multi-GiB reserve before the very first
    // record read fails. Cap the hint and let the vector grow normally —
    // a genuinely huge trace still loads, a lying header fails fast on
    // "truncated binary stream" instead of in the allocator.
    constexpr std::uint64_t kMaxReserveRecords = std::uint64_t{1} << 16;
    trace.reserve(static_cast<std::size_t>(std::min(count, kMaxReserveRecords)));
    for (std::uint64_t i = 0; i < count; ++i) {
        MemAccess a;
        a.addr = read_u64(is);
        a.cycle = read_u64(is);
        a.value = read_u32(is);
        const std::uint32_t meta = read_u32(is);
        const std::uint32_t size = meta & 0xFF;
        require(size == 1 || size == 2 || size == 4 || size == 8,
                format("trace: record %llu has invalid access size %u",
                       static_cast<unsigned long long>(i), size));
        require((meta & ~0x1FFu) == 0,
                format("trace: record %llu has unknown meta bits set",
                       static_cast<unsigned long long>(i)));
        a.size = static_cast<std::uint8_t>(size);
        a.kind = (meta & 0x100u) ? AccessKind::Write : AccessKind::Read;
        trace.add(a);
    }
    return trace;
}

namespace {
bool is_binary_path(const std::string& path) {
    return path.size() >= 5 && path.compare(path.size() - 5, 5, ".mtrc") == 0;
}
}  // namespace

void save_trace(const std::string& path, const MemTrace& trace) {
    // Crash-safe: a killed run must never leave a truncated trace under the
    // final name. atomic_write stages into <path>.tmp and renames on commit.
    atomic_write(
        path,
        [&](std::ostream& os) {
            if (is_binary_path(path)) {
                write_trace_binary(os, trace);
            } else {
                write_trace_text(os, trace);
            }
            require(os.good(), "save_trace: write failed for '" + path + "'");
        },
        is_binary_path(path) ? std::ios::binary : std::ios_base::openmode{});
}

MemTrace load_trace(const std::string& path) {
    std::ifstream is(path, is_binary_path(path) ? std::ios::binary : std::ios::in);
    require(is.is_open(), "load_trace: cannot open '" + path + "'");
    return is_binary_path(path) ? read_trace_binary(is) : read_trace_text(is);
}

}  // namespace memopt
