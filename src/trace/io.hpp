// Trace (de)serialization.
//
// Lets external simulators feed traces into memopt and lets long traces be
// captured once and replayed across experiments. Two formats:
//
//  * text  — one access per line: "R|W <hex addr> <size> <cycle> <hex value>".
//            Human-readable/diffable; columns after addr are optional on
//            input (defaults: size 4, cycle 0, value 0). '#' starts a
//            comment.
//  * binary — "MTRC" magic, u32 version, u64 count, then packed records.
//             Compact and fast; fixed little-endian layout.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace memopt {

class TraceSource;

/// Write `trace` in the text format.
void write_trace_text(std::ostream& os, const MemTrace& trace);

/// Streaming variant: write a chunked trace stream in the text format
/// without materializing it (O(chunk) memory). Byte-identical to the
/// MemTrace overload on the materialized equivalent.
void write_trace_text(std::ostream& os, TraceSource& source);

/// Parse the text format. Throws memopt::Error with a line number on any
/// malformed record.
MemTrace read_trace_text(std::istream& is);

/// Write `trace` in the binary format.
void write_trace_binary(std::ostream& os, const MemTrace& trace);

/// Streaming variant of the binary writer (see write_trace_text above).
void write_trace_binary(std::ostream& os, TraceSource& source);

/// Read the binary format. Throws memopt::Error on bad magic/version or a
/// truncated stream.
MemTrace read_trace_binary(std::istream& is);

/// Convenience file wrappers (throw memopt::Error if the file cannot be
/// opened). The format is chosen by extension: ".mtrc" binary, else text.
void save_trace(const std::string& path, const MemTrace& trace);
MemTrace load_trace(const std::string& path);

}  // namespace memopt
