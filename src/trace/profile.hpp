// Block-granularity access profiles.
//
// The partitioning and clustering engines operate on an address profile:
// the address space is divided into equal, power-of-two sized blocks, and
// the profile records the number of reads and writes falling into each
// block. This mirrors the "memory access profile" of DATE'03 1B-1.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "trace/trace.hpp"

namespace memopt {

class TraceSource;

/// Per-block access counters.
struct BlockCounts {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;

    std::uint64_t total() const { return reads + writes; }
};

/// An address profile at block granularity.
///
/// Invariants: block_size is a power of two; the profile covers the address
/// range [0, num_blocks * block_size).
class BlockProfile {
public:
    /// Construct an empty profile covering `num_blocks` blocks of
    /// `block_size` bytes each. block_size must be a power of two,
    /// num_blocks > 0.
    BlockProfile(std::uint64_t block_size, std::size_t num_blocks);

    /// Build a profile from a trace. The covered span is the smallest
    /// power-of-two multiple of block_size that contains every access.
    /// block_size must be a power of two. Long traces are replayed sharded
    /// over `jobs` threads (0 = default_jobs()) with an in-order reduction;
    /// counts are integer sums, so the result is bit-identical at any job
    /// count.
    static BlockProfile from_trace(const MemTrace& trace, std::uint64_t block_size,
                                   std::size_t jobs = 0);

    /// Streaming counterpart of from_trace: one chunked replay of `source`
    /// in O(chunk) memory (plus the profile itself). The covered span comes
    /// from the source's summary, so the result is bit-identical to
    /// from_trace on the materialized equivalent — from_trace itself
    /// delegates here through a MaterializedSource.
    static BlockProfile from_source(TraceSource& source, std::uint64_t block_size,
                                    std::size_t jobs = 0);

    std::uint64_t block_size() const { return block_size_; }
    std::size_t num_blocks() const { return counts_.size(); }
    std::uint64_t span_bytes() const { return block_size_ * counts_.size(); }

    /// Block index containing byte address `addr`. Must lie in the span.
    std::size_t block_of(std::uint64_t addr) const;

    const BlockCounts& counts(std::size_t block) const;
    std::span<const BlockCounts> all_counts() const { return counts_; }

    /// Record one access of `kind` into the block containing `addr`.
    void record(std::uint64_t addr, AccessKind kind);

    /// Directly add counts to a block (used by synthetic profile builders).
    void add_counts(std::size_t block, std::uint64_t reads, std::uint64_t writes);

    std::uint64_t total_reads() const { return total_reads_; }
    std::uint64_t total_writes() const { return total_writes_; }
    std::uint64_t total_accesses() const { return total_reads_ + total_writes_; }

    /// Blocks ordered by descending total access count (stable for ties).
    std::vector<std::size_t> blocks_by_access_desc() const;

    /// Fraction of all accesses that fall into the `k` hottest blocks.
    /// Returns 1.0 for k >= num_blocks; requires at least one access.
    double hot_fraction(std::size_t k) const;

    /// Spatial-locality score in [0,1]: 1 when all accesses are packed into
    /// the smallest possible prefix of contiguous blocks, lower when the hot
    /// blocks are scattered. Defined as the ratio between the actual
    /// "profile concentration" and the best achievable one:
    ///   concentration(P) = sum_i a_i * a_i  over contiguous-window sums —
    /// here approximated by comparing the energy-weighted span of the
    /// hottest blocks against their count (see implementation notes).
    double spatial_locality() const;

    /// Returns a copy of this profile with blocks permuted by `perm`,
    /// where perm[old_block] = new_block. `perm` must be a bijection on
    /// [0, num_blocks).
    BlockProfile permuted(std::span<const std::size_t> perm) const;

    /// Merge several profiles into one (multi-application memory synthesis:
    /// the bank architecture is shared, so the combined profile is the
    /// weighted sum of the per-application profiles). All inputs must share
    /// the block size; the result spans the largest input. `weights` scales
    /// each profile's counts (rounded to the nearest integer); pass an empty
    /// span for all-ones.
    static BlockProfile merge(std::span<const BlockProfile> profiles,
                              std::span<const double> weights = {});

private:
    std::uint64_t block_size_;
    std::vector<BlockCounts> counts_;
    std::uint64_t total_reads_ = 0;
    std::uint64_t total_writes_ = 0;
};

}  // namespace memopt
