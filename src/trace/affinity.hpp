// Temporal affinity between profile blocks.
//
// Affinity clustering (DATE'03 1B-1 flavour) needs to know which blocks are
// accessed close together in time: placing such blocks in the same bank lets
// the other banks stay idle for long stretches. This module computes
//  * a transition matrix (consecutive-access block adjacency), and
//  * a windowed co-access affinity matrix,
// plus a fused single-pass builder that produces the block profile and the
// affinity matrix from one streaming replay of the trace.
//
// Storage is adaptive behind one interface: small block counts use the
// dense upper-triangular array (O(n^2/2) doubles); large block counts use a
// compressed-sparse-row (CSR) adjacency, because a windowed trace replay
// touches O(accesses * window) pairs but typically only a tiny fraction of
// the n^2 possible ones. Both representations produce bit-identical query
// results for the integer-valued co-access counts the builders emit.
//
// Long traces are replayed sharded across the process thread pool
// (support/parallel.hpp): each shard replays a contiguous slice of the
// trace (pre-warming its sliding window from the preceding accesses) and
// the per-shard partial sums are reduced in shard order. Co-access weights
// are integer counts, so the reduction is exact and results are
// bit-identical at any job count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "trace/profile.hpp"
#include "trace/trace.hpp"

namespace memopt {

class TraceSource;

/// Block counts at or below this use the dense triangular representation;
/// larger matrices are finalized to CSR.
inline constexpr std::size_t kAffinityDenseMaxBlocks = 1024;

/// Symmetric block-affinity matrix. Dense upper-triangle storage for small
/// block counts, CSR adjacency for large ones — same queries, bit-identical
/// results for integer-valued weights (see file comment).
class AffinityMatrix {
public:
    /// Zero matrix over `num_blocks` blocks (always dense; mutable via add).
    explicit AffinityMatrix(std::size_t num_blocks);

    std::size_t num_blocks() const { return n_; }

    /// True when backed by the immutable CSR representation.
    bool is_sparse() const { return sparse_; }

    /// Number of stored unordered block pairs with non-zero affinity
    /// (diagonal included when present). O(n^2) for dense, O(1) for sparse.
    std::size_t stored_pairs() const;

    /// Affinity between blocks a and b (symmetric; diagonal allowed).
    double at(std::size_t a, std::size_t b) const;

    /// Add `w` to the affinity between a and b. Dense matrices only; a
    /// sparse matrix is immutable once finalized.
    void add(std::size_t a, std::size_t b, double w);

    /// Sum of affinities from `a` to every block in `members`.
    double affinity_to_set(std::size_t a, const std::vector<std::size_t>& members) const;

    /// Total affinity mass (sum over unordered pairs, diagonal included once).
    double total() const;

    /// Largest off-diagonal entry, at least 0.0 (the greedy chain's
    /// normalization constant).
    double max_offdiagonal() const;

    /// Invoke fn(b, w) for every block b != a with non-zero affinity w to
    /// `a`, in ascending block order. O(degree) for sparse, O(n) for dense.
    template <typename Fn>
    void for_each_neighbor(std::size_t a, Fn&& fn) const {
        require(a < n_, "AffinityMatrix::for_each_neighbor out of range");
        if (sparse_) {
            for (std::size_t e = row_ptr_[a]; e < row_ptr_[a + 1]; ++e) {
                const std::size_t b = col_[e];
                if (b != a) fn(b, val_[e]);
            }
        } else {
            for (std::size_t b = 0; b < n_; ++b) {
                if (b == a) continue;
                const double w = tri_[tri_index(a, b)];
                if (w != 0.0) fn(b, w);
            }
        }
    }

private:
    friend class AffinityAccumulator;

    std::size_t tri_index(std::size_t a, std::size_t b) const;
    /// CSR lookup: value at (a, b) or 0.0.
    double sparse_at(std::size_t a, std::size_t b) const;

    std::size_t n_;
    bool sparse_ = false;
    std::vector<double> tri_;  // dense: upper-triangular storage, row-major

    // sparse: CSR over the full symmetric adjacency (each off-diagonal pair
    // stored in both rows; diagonal stored once), columns ascending per row.
    std::vector<std::size_t> row_ptr_;  // n_ + 1
    std::vector<std::uint32_t> col_;
    std::vector<double> val_;
};

/// Order-independent affinity accumulator: the builders' shard-local sink.
/// Accumulates (a, b) += w pairs (a == b allowed) and finalizes into the
/// representation matching the block count. merge() folds another shard's
/// partial sums in, element-wise.
class AffinityAccumulator {
public:
    explicit AffinityAccumulator(std::size_t num_blocks);

    std::size_t num_blocks() const { return n_; }

    void add(std::size_t a, std::size_t b, double w);

    /// Fold `other`'s partial sums into this accumulator (element-wise).
    /// Call in shard order for a deterministic reduction.
    void merge(const AffinityAccumulator& other);

    /// Finalize into a matrix: dense for num_blocks <= dense_max_blocks,
    /// CSR above. Leaves the accumulator empty.
    AffinityMatrix finalize(std::size_t dense_max_blocks = kAffinityDenseMaxBlocks);

private:
    std::uint64_t pack(std::size_t a, std::size_t b) const;

    std::size_t n_;
    bool dense_;
    std::vector<double> tri_;                           // dense accumulation
    std::unordered_map<std::uint64_t, double> pairs_;   // sparse accumulation
};

/// Build a transition affinity: affinity(a,b) += 1 whenever an access to
/// block b immediately follows an access to block a (a != b), using the
/// block geometry of `profile`. Accesses outside the profile span are
/// rejected (Error). Long traces are sharded over `jobs` threads
/// (0 = default_jobs()); results are bit-identical at any job count.
AffinityMatrix transition_affinity(const MemTrace& trace, const BlockProfile& profile,
                                   std::size_t jobs = 0);

/// Streaming variant: one chunked replay of `source` in O(chunk) memory.
/// Bit-identical to the MemTrace overload on the materialized equivalent
/// (which delegates here).
AffinityMatrix transition_affinity(TraceSource& source, const BlockProfile& profile,
                                   std::size_t jobs = 0);

/// Build a windowed co-access affinity: for a sliding window of `window`
/// consecutive accesses, every unordered pair of distinct blocks that
/// co-occurs in the window gains affinity 1 (counted once per window
/// position where the pair is formed with the newest access). `window >= 2`.
/// Sharded like transition_affinity.
AffinityMatrix windowed_affinity(const MemTrace& trace, const BlockProfile& profile,
                                 std::size_t window, std::size_t jobs = 0);

/// Streaming variant of windowed_affinity (see transition_affinity).
AffinityMatrix windowed_affinity(TraceSource& source, const BlockProfile& profile,
                                 std::size_t window, std::size_t jobs = 0);

/// A block profile and its windowed affinity, built together.
struct ProfileAffinity {
    BlockProfile profile;
    AffinityMatrix affinity;
};

/// Fused single-pass builder: stream the trace once, producing both the
/// block profile (reads/writes per block) and the windowed co-access
/// affinity. Equivalent to BlockProfile::from_trace + windowed_affinity —
/// bit-identical outputs — at roughly half the trace-replay cost. Long
/// traces are sharded over `jobs` threads with an in-order reduction.
ProfileAffinity build_profile_and_affinity(const MemTrace& trace, std::uint64_t block_size,
                                           std::size_t window, std::size_t jobs = 0);

/// Streaming variant of the fused builder: one chunked replay of `source`
/// in O(chunk) memory (the profile geometry comes from the source's
/// summary). Bit-identical to the MemTrace overload, which delegates here.
ProfileAffinity build_profile_and_affinity(TraceSource& source, std::uint64_t block_size,
                                           std::size_t window, std::size_t jobs = 0);

}  // namespace memopt
