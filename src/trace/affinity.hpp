// Temporal affinity between profile blocks.
//
// Affinity clustering (DATE'03 1B-1 flavour) needs to know which blocks are
// accessed close together in time: placing such blocks in the same bank lets
// the other banks stay idle for long stretches. This module computes
//  * a transition matrix (consecutive-access block adjacency), and
//  * a windowed co-access affinity matrix.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/profile.hpp"
#include "trace/trace.hpp"

namespace memopt {

/// Symmetric block-affinity matrix with dense storage (upper triangle).
///
/// Suitable for the block counts used in practice (<= a few thousand).
class AffinityMatrix {
public:
    /// Zero matrix over `num_blocks` blocks.
    explicit AffinityMatrix(std::size_t num_blocks);

    std::size_t num_blocks() const { return n_; }

    /// Affinity between blocks a and b (symmetric; diagonal allowed).
    double at(std::size_t a, std::size_t b) const;

    /// Add `w` to the affinity between a and b.
    void add(std::size_t a, std::size_t b, double w);

    /// Sum of affinities from `a` to every block in `members`.
    double affinity_to_set(std::size_t a, const std::vector<std::size_t>& members) const;

    /// Total affinity mass (sum over unordered pairs, diagonal included once).
    double total() const;

private:
    std::size_t index(std::size_t a, std::size_t b) const;

    std::size_t n_;
    std::vector<double> tri_;  // upper-triangular storage, row-major
};

/// Build a transition affinity: affinity(a,b) += 1 whenever an access to
/// block b immediately follows an access to block a (a != b), using the
/// block geometry of `profile`. Accesses outside the profile span are
/// rejected (Error).
AffinityMatrix transition_affinity(const MemTrace& trace, const BlockProfile& profile);

/// Build a windowed co-access affinity: for a sliding window of `window`
/// consecutive accesses, every unordered pair of distinct blocks that
/// co-occurs in the window gains affinity 1 (counted once per window
/// position where the pair is formed with the newest access). `window >= 2`.
AffinityMatrix windowed_affinity(const MemTrace& trace, const BlockProfile& profile,
                                 std::size_t window);

}  // namespace memopt
