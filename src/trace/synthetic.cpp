#include "trace/synthetic.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "support/string_util.hpp"

namespace memopt {

namespace {
void validate(const SyntheticParams& p) {
    require(is_pow2(p.span_bytes), "synthetic: span_bytes must be a power of two");
    require(p.span_bytes >= 64, "synthetic: span too small");
    require(p.num_accesses > 0, "synthetic: num_accesses must be > 0");
    require(p.write_fraction >= 0.0 && p.write_fraction <= 1.0,
            "synthetic: write_fraction must be in [0,1]");
}

AccessKind pick_kind(Rng& rng, double write_fraction) {
    return rng.next_bool(write_fraction) ? AccessKind::Write : AccessKind::Read;
}

// Word-aligned address within [base, base+len).
std::uint64_t pick_addr(Rng& rng, std::uint64_t base, std::uint64_t len) {
    const std::uint64_t words = len / 4;
    return base + rng.next_below(words) * 4;
}
}  // namespace

std::string synthetic_kind_name(SyntheticKind kind) {
    switch (kind) {
        case SyntheticKind::Uniform: return "uniform";
        case SyntheticKind::Hotspot: return "hotspot";
        case SyntheticKind::Stride: return "stride";
        case SyntheticKind::TwoPhase: return "two-phase";
        case SyntheticKind::ProducerConsumer: return "producer-consumer";
    }
    MEMOPT_ASSERT_MSG(false, "invalid SyntheticKind");
    return "?";
}

SyntheticSpec parse_synthetic_spec(std::string_view text) {
    const std::vector<std::string_view> fields = split(text, ',');
    require(!fields.empty() && !trim(fields[0]).empty(),
            "synthetic spec: missing kind (uniform|hotspot|stride|two-phase)");

    SyntheticSpec spec;
    const std::string kind = to_lower(trim(fields[0]));
    if (kind == "uniform") spec.kind = SyntheticKind::Uniform;
    else if (kind == "hotspot") spec.kind = SyntheticKind::Hotspot;
    else if (kind == "stride") spec.kind = SyntheticKind::Stride;
    else if (kind == "two-phase") spec.kind = SyntheticKind::TwoPhase;
    else if (kind == "producer-consumer") spec.kind = SyntheticKind::ProducerConsumer;
    else throw Error("synthetic spec: unknown kind '" + kind + "'");

    auto parse_u64 = [](std::string_view key, std::string_view value) {
        const auto v = parse_int(value);
        require(v.has_value() && *v >= 0,
                "synthetic spec: key '" + std::string(key) +
                    "' expects a non-negative integer");
        return static_cast<std::uint64_t>(*v);
    };
    auto parse_f64 = [](std::string_view key, std::string_view value) {
        const std::string s(value);
        char* end = nullptr;
        const double v = std::strtod(s.c_str(), &end);
        require(end != s.c_str() && *end == '\0',
                "synthetic spec: key '" + std::string(key) + "' expects a number");
        return v;
    };

    for (std::size_t i = 1; i < fields.size(); ++i) {
        const std::string_view field = trim(fields[i]);
        if (field.empty()) continue;
        const auto eq = field.find('=');
        require(eq != std::string_view::npos,
                "synthetic spec: expected key=value, got '" + std::string(field) + "'");
        const std::string_view key = trim(field.substr(0, eq));
        const std::string_view value = trim(field.substr(eq + 1));
        if (key == "span") spec.base.span_bytes = parse_u64(key, value);
        else if (key == "n") spec.base.num_accesses =
            static_cast<std::size_t>(parse_u64(key, value));
        else if (key == "seed") spec.base.seed = parse_u64(key, value);
        else if (key == "write") spec.base.write_fraction = parse_f64(key, value);
        else if (key == "hotspots") spec.num_hotspots =
            static_cast<std::size_t>(parse_u64(key, value));
        else if (key == "hotspot-bytes") spec.hotspot_bytes = parse_u64(key, value);
        else if (key == "hot-frac") spec.hot_fraction = parse_f64(key, value);
        else if (key == "stride") spec.stride = parse_u64(key, value);
        else if (key == "cores") spec.cores = static_cast<unsigned>(parse_u64(key, value));
        else if (key == "shared-bytes") spec.shared_bytes = parse_u64(key, value);
        else if (key == "shared-frac") spec.shared_fraction = parse_f64(key, value);
        else throw Error("synthetic spec: unknown key '" + std::string(key) + "'");
    }
    return spec;
}

std::vector<SyntheticSpec> per_core_specs(const SyntheticSpec& spec) {
    require(spec.cores >= 1 && spec.cores <= 64,
            "per_core_specs: cores must be in [1, 64]");
    std::vector<SyntheticSpec> out;
    out.reserve(spec.cores);
    for (unsigned c = 0; c < spec.cores; ++c) {
        SyntheticSpec s = spec;
        s.core_id = c;
        // Decorrelate the per-core RNG streams while keeping the whole
        // family a pure function of the parent seed.
        s.base.seed = spec.base.seed + 0x9E3779B97F4A7C15ULL * (c + 1);
        out.push_back(s);
    }
    return out;
}

SyntheticGenerator::SyntheticGenerator(const SyntheticSpec& spec)
    : spec_(spec), rng_(spec.base.seed), rng_start_(spec.base.seed) {
    validate(spec_.base);
    switch (spec_.kind) {
        case SyntheticKind::Uniform:
        case SyntheticKind::TwoPhase:
            break;
        case SyntheticKind::Hotspot: {
            require(spec_.num_hotspots > 0,
                    "scattered_hotspot_trace: need at least one hotspot");
            require(spec_.hotspot_bytes >= 16, "scattered_hotspot_trace: hotspot too small");
            require(spec_.hot_fraction >= 0.0 && spec_.hot_fraction <= 1.0,
                    "scattered_hotspot_trace: hot_fraction must be in [0,1]");
            require(spec_.num_hotspots * spec_.hotspot_bytes <= spec_.base.span_bytes / 2,
                    "scattered_hotspot_trace: hotspots must cover at most half of the span");
            // Spread hotspot bases across the span: divide the span into
            // num_hotspots slices and place one hotspot at a random offset
            // inside each slice. This guarantees the hot data is maximally
            // non-contiguous.
            const std::uint64_t slice = spec_.base.span_bytes / spec_.num_hotspots;
            bases_.reserve(spec_.num_hotspots);
            for (std::size_t h = 0; h < spec_.num_hotspots; ++h) {
                const std::uint64_t max_off =
                    slice - std::min<std::uint64_t>(slice, spec_.hotspot_bytes);
                const std::uint64_t off =
                    max_off == 0 ? 0 : rng_.next_below(max_off + 1) & ~std::uint64_t{3};
                bases_.push_back(static_cast<std::uint64_t>(h) * slice + off);
            }
            break;
        }
        case SyntheticKind::Stride:
            require(spec_.stride >= 4 && spec_.stride % 4 == 0,
                    "strided_trace: stride must be a multiple of 4");
            break;
        case SyntheticKind::ProducerConsumer:
            require(spec_.cores >= 1 && spec_.cores <= 64,
                    "producer-consumer: cores must be in [1, 64]");
            require(spec_.core_id < spec_.cores,
                    "producer-consumer: core_id must be < cores");
            require(spec_.shared_fraction >= 0.0 && spec_.shared_fraction <= 1.0,
                    "producer-consumer: shared_fraction must be in [0,1]");
            require(spec_.shared_bytes >= 16 && spec_.shared_bytes % 4 == 0,
                    "producer-consumer: shared_bytes must be a multiple of 4, >= 16");
            require(spec_.shared_bytes <= spec_.base.span_bytes / 2,
                    "producer-consumer: shared region must cover at most half of the span");
            require((spec_.base.span_bytes - spec_.shared_bytes) / spec_.cores >= 16,
                    "producer-consumer: private slice per core too small");
            break;
    }
    rng_start_ = rng_;  // replay point: seed mixing + precomputation done
}

MemAccess SyntheticGenerator::next() {
    MEMOPT_ASSERT_MSG(!done(), "SyntheticGenerator::next past the end");
    MemAccess a;
    a.cycle = i_;
    a.size = 4;
    // RNG consumption order per access is part of the format: address draws
    // first, then the kind draw (matching the evaluation order of the
    // original materializing generators).
    switch (spec_.kind) {
        case SyntheticKind::Uniform:
            a.addr = pick_addr(rng_, 0, spec_.base.span_bytes);
            a.kind = pick_kind(rng_, spec_.base.write_fraction);
            break;
        case SyntheticKind::Hotspot:
            if (rng_.next_bool(spec_.hot_fraction)) {
                // Skewed choice across hotspots (hotspot 0 hottest).
                const std::uint64_t h = rng_.next_zipf_like(spec_.num_hotspots, 0.35);
                a.addr = pick_addr(rng_, bases_[h], spec_.hotspot_bytes);
            } else {
                a.addr = pick_addr(rng_, 0, spec_.base.span_bytes);
            }
            a.kind = pick_kind(rng_, spec_.base.write_fraction);
            break;
        case SyntheticKind::Stride:
            a.addr = stride_addr_;
            a.kind = pick_kind(rng_, spec_.base.write_fraction);
            stride_addr_ += spec_.stride;
            if (stride_addr_ >= spec_.base.span_bytes) stride_addr_ = 0;
            break;
        case SyntheticKind::TwoPhase: {
            const std::uint64_t half = spec_.base.span_bytes / 2;
            const bool phase2 = i_ >= spec_.base.num_accesses / 2;
            a.addr = pick_addr(rng_, phase2 ? half : 0, half);
            a.kind = pick_kind(rng_, spec_.base.write_fraction);
            break;
        }
        case SyntheticKind::ProducerConsumer: {
            // Shared draw first, then the address draw, then — private
            // accesses only — the kind draw; a shared access's kind is
            // fixed by the core's role (core 0 produces, the rest consume).
            if (rng_.next_bool(spec_.shared_fraction)) {
                a.addr = pick_addr(rng_, 0, spec_.shared_bytes);
                a.kind = spec_.core_id == 0 ? AccessKind::Write : AccessKind::Read;
            } else {
                const std::uint64_t slice =
                    (spec_.base.span_bytes - spec_.shared_bytes) / spec_.cores;
                a.addr = pick_addr(rng_, spec_.shared_bytes + spec_.core_id * slice, slice);
                a.kind = pick_kind(rng_, spec_.base.write_fraction);
            }
            break;
        }
    }
    ++i_;
    return a;
}

void SyntheticGenerator::reset() {
    rng_ = rng_start_;
    i_ = 0;
    stride_addr_ = 0;
}

MemTrace materialize_synthetic(const SyntheticSpec& spec) {
    SyntheticGenerator gen(spec);
    MemTrace t;
    t.reserve(static_cast<std::size_t>(gen.size()));
    while (!gen.done()) t.add(gen.next());
    return t;
}

MemTrace uniform_trace(const SyntheticParams& p) {
    return materialize_synthetic(SyntheticSpec{.kind = SyntheticKind::Uniform, .base = p});
}

MemTrace scattered_hotspot_trace(const HotspotParams& p) {
    return materialize_synthetic(SyntheticSpec{.kind = SyntheticKind::Hotspot,
                                               .base = p.base,
                                               .num_hotspots = p.num_hotspots,
                                               .hotspot_bytes = p.hotspot_bytes,
                                               .hot_fraction = p.hot_fraction});
}

MemTrace strided_trace(const StrideParams& p) {
    return materialize_synthetic(
        SyntheticSpec{.kind = SyntheticKind::Stride, .base = p.base, .stride = p.stride});
}

MemTrace two_phase_trace(const SyntheticParams& p) {
    return materialize_synthetic(SyntheticSpec{.kind = SyntheticKind::TwoPhase, .base = p});
}

std::vector<std::uint32_t> smooth_word_stream(std::size_t n, double smooth_prob,
                                              std::uint32_t max_delta, std::uint64_t seed) {
    require(smooth_prob >= 0.0 && smooth_prob <= 1.0,
            "smooth_word_stream: smooth_prob must be in [0,1]");
    Rng rng(seed);
    std::vector<std::uint32_t> out;
    out.reserve(n);
    std::uint32_t prev = static_cast<std::uint32_t>(rng.next_u64());
    for (std::size_t i = 0; i < n; ++i) {
        std::uint32_t v = 0;
        if (i > 0 && rng.next_bool(smooth_prob)) {
            const auto delta = static_cast<std::int64_t>(rng.next_in(
                -static_cast<std::int64_t>(max_delta), static_cast<std::int64_t>(max_delta)));
            v = static_cast<std::uint32_t>(static_cast<std::int64_t>(prev) + delta);
        } else {
            v = static_cast<std::uint32_t>(rng.next_u64());
        }
        out.push_back(v);
        prev = v;
    }
    return out;
}

}  // namespace memopt
