#include "trace/synthetic.hpp"

#include <algorithm>

namespace memopt {

namespace {
void validate(const SyntheticParams& p) {
    require(is_pow2(p.span_bytes), "synthetic: span_bytes must be a power of two");
    require(p.span_bytes >= 64, "synthetic: span too small");
    require(p.num_accesses > 0, "synthetic: num_accesses must be > 0");
    require(p.write_fraction >= 0.0 && p.write_fraction <= 1.0,
            "synthetic: write_fraction must be in [0,1]");
}

AccessKind pick_kind(Rng& rng, double write_fraction) {
    return rng.next_bool(write_fraction) ? AccessKind::Write : AccessKind::Read;
}

// Word-aligned address within [base, base+len).
std::uint64_t pick_addr(Rng& rng, std::uint64_t base, std::uint64_t len) {
    const std::uint64_t words = len / 4;
    return base + rng.next_below(words) * 4;
}
}  // namespace

MemTrace uniform_trace(const SyntheticParams& p) {
    validate(p);
    Rng rng(p.seed);
    MemTrace t;
    t.reserve(p.num_accesses);
    for (std::size_t i = 0; i < p.num_accesses; ++i) {
        t.add(MemAccess{.addr = pick_addr(rng, 0, p.span_bytes), .cycle = i,
                        .size = 4, .kind = pick_kind(rng, p.write_fraction)});
    }
    return t;
}

MemTrace scattered_hotspot_trace(const HotspotParams& p) {
    validate(p.base);
    require(p.num_hotspots > 0, "scattered_hotspot_trace: need at least one hotspot");
    require(p.hotspot_bytes >= 16, "scattered_hotspot_trace: hotspot too small");
    require(p.hot_fraction >= 0.0 && p.hot_fraction <= 1.0,
            "scattered_hotspot_trace: hot_fraction must be in [0,1]");
    require(p.num_hotspots * p.hotspot_bytes <= p.base.span_bytes / 2,
            "scattered_hotspot_trace: hotspots must cover at most half of the span");

    Rng rng(p.base.seed);

    // Spread hotspot bases across the span: divide the span into num_hotspots
    // slices and place one hotspot at a random offset inside each slice. This
    // guarantees the hot data is maximally non-contiguous.
    const std::uint64_t slice = p.base.span_bytes / p.num_hotspots;
    std::vector<std::uint64_t> bases;
    bases.reserve(p.num_hotspots);
    for (std::size_t h = 0; h < p.num_hotspots; ++h) {
        const std::uint64_t max_off = slice - std::min<std::uint64_t>(slice, p.hotspot_bytes);
        const std::uint64_t off = max_off == 0 ? 0 : rng.next_below(max_off + 1) & ~std::uint64_t{3};
        bases.push_back(static_cast<std::uint64_t>(h) * slice + off);
    }

    MemTrace t;
    t.reserve(p.base.num_accesses);
    for (std::size_t i = 0; i < p.base.num_accesses; ++i) {
        std::uint64_t addr = 0;
        if (rng.next_bool(p.hot_fraction)) {
            // Skewed choice across hotspots (hotspot 0 hottest).
            const std::uint64_t h = rng.next_zipf_like(p.num_hotspots, 0.35);
            addr = pick_addr(rng, bases[h], p.hotspot_bytes);
        } else {
            addr = pick_addr(rng, 0, p.base.span_bytes);
        }
        t.add(MemAccess{.addr = addr, .cycle = i, .size = 4,
                        .kind = pick_kind(rng, p.base.write_fraction)});
    }
    return t;
}

MemTrace strided_trace(const StrideParams& p) {
    validate(p.base);
    require(p.stride >= 4 && p.stride % 4 == 0, "strided_trace: stride must be a multiple of 4");
    Rng rng(p.base.seed);
    MemTrace t;
    t.reserve(p.base.num_accesses);
    std::uint64_t addr = 0;
    for (std::size_t i = 0; i < p.base.num_accesses; ++i) {
        t.add(MemAccess{.addr = addr, .cycle = i, .size = 4,
                        .kind = pick_kind(rng, p.base.write_fraction)});
        addr += p.stride;
        if (addr >= p.base.span_bytes) addr = 0;
    }
    return t;
}

MemTrace two_phase_trace(const SyntheticParams& p) {
    validate(p);
    Rng rng(p.seed);
    MemTrace t;
    t.reserve(p.num_accesses);
    const std::uint64_t half = p.span_bytes / 2;
    for (std::size_t i = 0; i < p.num_accesses; ++i) {
        const bool phase2 = i >= p.num_accesses / 2;
        const std::uint64_t base = phase2 ? half : 0;
        t.add(MemAccess{.addr = pick_addr(rng, base, half), .cycle = i, .size = 4,
                        .kind = pick_kind(rng, p.write_fraction)});
    }
    return t;
}

std::vector<std::uint32_t> smooth_word_stream(std::size_t n, double smooth_prob,
                                              std::uint32_t max_delta, std::uint64_t seed) {
    require(smooth_prob >= 0.0 && smooth_prob <= 1.0,
            "smooth_word_stream: smooth_prob must be in [0,1]");
    Rng rng(seed);
    std::vector<std::uint32_t> out;
    out.reserve(n);
    std::uint32_t prev = static_cast<std::uint32_t>(rng.next_u64());
    for (std::size_t i = 0; i < n; ++i) {
        std::uint32_t v = 0;
        if (i > 0 && rng.next_bool(smooth_prob)) {
            const auto delta = static_cast<std::int64_t>(rng.next_in(
                -static_cast<std::int64_t>(max_delta), static_cast<std::int64_t>(max_delta)));
            v = static_cast<std::uint32_t>(static_cast<std::int64_t>(prev) + delta);
        } else {
            v = static_cast<std::uint32_t>(rng.next_u64());
        }
        out.push_back(v);
        prev = v;
    }
    return out;
}

}  // namespace memopt
