#include "trace/affinity.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace memopt {

AffinityMatrix::AffinityMatrix(std::size_t num_blocks) : n_(num_blocks) {
    require(num_blocks > 0, "AffinityMatrix: num_blocks must be > 0");
    tri_.assign(n_ * (n_ + 1) / 2, 0.0);
}

std::size_t AffinityMatrix::index(std::size_t a, std::size_t b) const {
    MEMOPT_ASSERT(a < n_ && b < n_);
    if (a > b) std::swap(a, b);
    // Row-major upper triangle: row a starts at a*n - a*(a-1)/2 - a offsets.
    return a * n_ - a * (a + 1) / 2 + b;
}

double AffinityMatrix::at(std::size_t a, std::size_t b) const {
    require(a < n_ && b < n_, "AffinityMatrix::at out of range");
    return tri_[index(a, b)];
}

void AffinityMatrix::add(std::size_t a, std::size_t b, double w) {
    require(a < n_ && b < n_, "AffinityMatrix::add out of range");
    tri_[index(a, b)] += w;
}

double AffinityMatrix::affinity_to_set(std::size_t a,
                                       const std::vector<std::size_t>& members) const {
    double sum = 0.0;
    for (std::size_t m : members) sum += at(a, m);
    return sum;
}

double AffinityMatrix::total() const {
    double sum = 0.0;
    for (double v : tri_) sum += v;
    return sum;
}

AffinityMatrix transition_affinity(const MemTrace& trace, const BlockProfile& profile) {
    AffinityMatrix m(profile.num_blocks());
    bool have_prev = false;
    std::size_t prev = 0;
    for (const MemAccess& a : trace.accesses()) {
        const std::size_t block = profile.block_of(a.addr);
        if (have_prev && block != prev) m.add(prev, block, 1.0);
        prev = block;
        have_prev = true;
    }
    return m;
}

AffinityMatrix windowed_affinity(const MemTrace& trace, const BlockProfile& profile,
                                 std::size_t window) {
    require(window >= 2, "windowed_affinity: window must be >= 2");
    AffinityMatrix m(profile.num_blocks());
    std::vector<std::size_t> ring;  // blocks of the last `window-1` accesses
    ring.reserve(window);
    std::size_t head = 0;
    for (const MemAccess& a : trace.accesses()) {
        const std::size_t block = profile.block_of(a.addr);
        for (std::size_t b : ring) {
            if (b != block) m.add(b, block, 1.0);
        }
        if (ring.size() < window - 1) {
            ring.push_back(block);
        } else if (window > 1) {
            ring[head] = block;
            head = (head + 1) % (window - 1);
        }
    }
    return m;
}

}  // namespace memopt
