#include "trace/affinity.hpp"

#include <algorithm>
#include <utility>

#include "support/assert.hpp"
#include "support/parallel.hpp"
#include "trace/source.hpp"

namespace memopt {

namespace {

std::size_t block_of_checked(std::uint64_t addr, unsigned shift, std::size_t num_blocks) {
    const auto block = static_cast<std::size_t>(addr >> shift);
    require(block < num_blocks, "block_of: address outside profile span");
    return block;
}

/// Sliding co-access window over a chunked replay: pre-warmed from the
/// up-to-`window - 1` addresses preceding the chunk (`context`), so the
/// pairs a chunk forms are exactly the ones the serial replay forms at the
/// same positions — chunk boundaries are invisible in the pair multiset.
void windowed_chunk(const TraceChunk& chunk, std::span<const std::uint64_t> context,
                    std::size_t window, unsigned shift, std::size_t num_blocks,
                    AffinityAccumulator& acc) {
    const std::size_t cap = window - 1;
    std::vector<std::size_t> ring(cap);
    std::size_t count = 0;  // occupied slots
    std::size_t next = 0;   // slot holding the oldest entry once full
    auto push = [&](std::size_t block) {
        ring[next] = block;
        next = (next + 1) % cap;
        if (count < cap) ++count;
    };
    const std::size_t skip = context.size() > cap ? context.size() - cap : 0;
    for (std::size_t i = skip; i < context.size(); ++i)
        push(block_of_checked(context[i], shift, num_blocks));
    for (std::size_t i = 0; i < chunk.size(); ++i) {
        const std::size_t block = block_of_checked(chunk.addrs[i], shift, num_blocks);
        for (std::size_t k = 0; k < count; ++k) {
            if (ring[k] != block) acc.add(ring[k], block, 1.0);
        }
        push(block);
    }
}

/// Consecutive-access block transitions over a chunked replay. The
/// predecessor of the chunk's first access is the last context address
/// (empty context = start of the trace).
void transition_chunk(const TraceChunk& chunk, std::span<const std::uint64_t> context,
                      unsigned shift, std::size_t num_blocks, AffinityAccumulator& acc) {
    if (chunk.empty()) return;
    std::size_t i = 0;
    std::size_t prev;
    if (context.empty()) {
        prev = block_of_checked(chunk.addrs[0], shift, num_blocks);
        i = 1;
    } else {
        prev = block_of_checked(context.back(), shift, num_blocks);
    }
    for (; i < chunk.size(); ++i) {
        const std::size_t block = block_of_checked(chunk.addrs[i], shift, num_blocks);
        if (block != prev) acc.add(prev, block, 1.0);
        prev = block;
    }
}

}  // namespace

// ---------------------------------------------------------------------------
// AffinityMatrix

AffinityMatrix::AffinityMatrix(std::size_t num_blocks) : n_(num_blocks) {
    require(num_blocks > 0, "AffinityMatrix: num_blocks must be > 0");
    tri_.assign(n_ * (n_ + 1) / 2, 0.0);
}

std::size_t AffinityMatrix::tri_index(std::size_t a, std::size_t b) const {
    MEMOPT_ASSERT(a < n_ && b < n_);
    if (a > b) std::swap(a, b);
    // Row-major upper triangle: row a starts at a*n - a*(a-1)/2 - a offsets.
    return a * n_ - a * (a + 1) / 2 + b;
}

double AffinityMatrix::sparse_at(std::size_t a, std::size_t b) const {
    const auto first = col_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[a]);
    const auto last = col_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[a + 1]);
    const auto it = std::lower_bound(first, last, static_cast<std::uint32_t>(b));
    if (it == last || *it != b) return 0.0;
    return val_[static_cast<std::size_t>(it - col_.begin())];
}

std::size_t AffinityMatrix::stored_pairs() const {
    if (sparse_) {
        std::size_t diagonal = 0;
        for (std::size_t a = 0; a < n_; ++a) {
            if (sparse_at(a, a) != 0.0) ++diagonal;
        }
        return (col_.size() - diagonal) / 2 + diagonal;
    }
    return static_cast<std::size_t>(
        std::count_if(tri_.begin(), tri_.end(), [](double v) { return v != 0.0; }));
}

double AffinityMatrix::at(std::size_t a, std::size_t b) const {
    require(a < n_ && b < n_, "AffinityMatrix::at out of range");
    return sparse_ ? sparse_at(a, b) : tri_[tri_index(a, b)];
}

void AffinityMatrix::add(std::size_t a, std::size_t b, double w) {
    require(a < n_ && b < n_, "AffinityMatrix::add out of range");
    require(!sparse_, "AffinityMatrix::add: sparse matrix is immutable");
    tri_[tri_index(a, b)] += w;
}

double AffinityMatrix::affinity_to_set(std::size_t a,
                                       const std::vector<std::size_t>& members) const {
    double sum = 0.0;
    for (std::size_t m : members) sum += at(a, m);
    return sum;
}

double AffinityMatrix::total() const {
    double sum = 0.0;
    if (sparse_) {
        // Upper-triangle entries in row-major order: the same accumulation
        // order as the dense loop below (zeros contribute nothing there).
        for (std::size_t a = 0; a < n_; ++a) {
            for (std::size_t e = row_ptr_[a]; e < row_ptr_[a + 1]; ++e) {
                if (col_[e] >= a) sum += val_[e];
            }
        }
        return sum;
    }
    for (double v : tri_) sum += v;
    return sum;
}

double AffinityMatrix::max_offdiagonal() const {
    double best = 0.0;
    if (sparse_) {
        for (std::size_t a = 0; a < n_; ++a) {
            for (std::size_t e = row_ptr_[a]; e < row_ptr_[a + 1]; ++e) {
                if (col_[e] > a) best = std::max(best, val_[e]);
            }
        }
        return best;
    }
    for (std::size_t a = 0; a < n_; ++a) {
        for (std::size_t b = a + 1; b < n_; ++b) best = std::max(best, tri_[tri_index(a, b)]);
    }
    return best;
}

// ---------------------------------------------------------------------------
// AffinityAccumulator

AffinityAccumulator::AffinityAccumulator(std::size_t num_blocks)
    : n_(num_blocks), dense_(num_blocks <= kAffinityDenseMaxBlocks) {
    require(num_blocks > 0, "AffinityAccumulator: num_blocks must be > 0");
    require(static_cast<std::uint64_t>(num_blocks) <= (std::uint64_t{1} << 32),
            "AffinityAccumulator: too many blocks");
    if (dense_) tri_.assign(n_ * (n_ + 1) / 2, 0.0);
}

std::uint64_t AffinityAccumulator::pack(std::size_t a, std::size_t b) const {
    MEMOPT_ASSERT(a < n_ && b < n_);
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | static_cast<std::uint64_t>(b);
}

void AffinityAccumulator::add(std::size_t a, std::size_t b, double w) {
    if (dense_) {
        if (a > b) std::swap(a, b);
        MEMOPT_ASSERT(b < n_);
        tri_[a * n_ - a * (a + 1) / 2 + b] += w;
    } else {
        pairs_[pack(a, b)] += w;
    }
}

void AffinityAccumulator::merge(const AffinityAccumulator& other) {
    require(other.n_ == n_ && other.dense_ == dense_,
            "AffinityAccumulator::merge: shape mismatch");
    if (dense_) {
        for (std::size_t i = 0; i < tri_.size(); ++i) tri_[i] += other.tri_[i];
    } else {
        // memopt-lint: order-independent -- keys are unique within other.pairs_,
        // so each target slot receives exactly one += per merge; the per-key sum
        // is the same whatever order the source map is walked in. (Cross-shard
        // merge order is fixed by the callers' in-shard-order reduction.)
        for (const auto& [key, w] : other.pairs_) pairs_[key] += w;
    }
}

AffinityMatrix AffinityAccumulator::finalize(std::size_t dense_max_blocks) {
    AffinityMatrix m(1);  // placeholder; reshaped below
    m.n_ = n_;
    if (n_ <= dense_max_blocks) {
        // Dense result.
        m.sparse_ = false;
        m.row_ptr_.clear();
        m.col_.clear();
        m.val_.clear();
        if (dense_) {
            m.tri_ = std::move(tri_);
            tri_.clear();
        } else {
            m.tri_.assign(n_ * (n_ + 1) / 2, 0.0);
            // memopt-lint: order-independent -- pure scatter: each unique key
            // writes (not accumulates) its own triangular slot exactly once.
            for (const auto& [key, w] : pairs_) {
                const auto a = static_cast<std::size_t>(key >> 32);
                const auto b = static_cast<std::size_t>(key & 0xFFFFFFFFu);
                m.tri_[a * n_ - a * (a + 1) / 2 + b] = w;
            }
            pairs_.clear();
        }
        return m;
    }

    // CSR result: collect the upper-triangle pairs sorted by (row, col),
    // then scatter each into both adjacency rows. Processing pairs in
    // ascending (a, b) order fills every row's columns in ascending order:
    // row r first receives its below-diagonal neighbours (from pairs whose
    // larger element is r, arriving as the smaller element ascends), then
    // its above-diagonal neighbours (from its own row's pairs).
    std::vector<std::pair<std::uint64_t, double>> sorted;
    if (dense_) {
        for (std::size_t a = 0; a < n_; ++a) {
            const std::size_t row_base = a * n_ - a * (a + 1) / 2;
            for (std::size_t b = a; b < n_; ++b) {
                const double w = tri_[row_base + b];
                if (w != 0.0)
                    sorted.emplace_back((static_cast<std::uint64_t>(a) << 32) | b, w);
            }
        }
        tri_.clear();
    } else {
        sorted.reserve(pairs_.size());
        // memopt-lint: order-independent -- collection order is erased by the
        // std::sort on the (unique) packed keys before any emission; pinned by
        // Affinity.SparseAccumulatorInvariantUnderInsertOrder.
        for (const auto& [key, w] : pairs_) {
            if (w != 0.0) sorted.emplace_back(key, w);
        }
        pairs_.clear();
        std::sort(sorted.begin(), sorted.end(),
                  [](const auto& x, const auto& y) { return x.first < y.first; });
    }

    m.sparse_ = true;
    m.tri_.clear();
    std::vector<std::size_t> degree(n_, 0);
    for (const auto& [key, w] : sorted) {
        const auto a = static_cast<std::size_t>(key >> 32);
        const auto b = static_cast<std::size_t>(key & 0xFFFFFFFFu);
        ++degree[a];
        if (a != b) ++degree[b];
    }
    m.row_ptr_.assign(n_ + 1, 0);
    for (std::size_t a = 0; a < n_; ++a) m.row_ptr_[a + 1] = m.row_ptr_[a] + degree[a];
    const std::size_t nnz = m.row_ptr_[n_];
    m.col_.assign(nnz, 0);
    m.val_.assign(nnz, 0.0);
    std::vector<std::size_t> cursor(m.row_ptr_.begin(), m.row_ptr_.end() - 1);
    for (const auto& [key, w] : sorted) {
        const auto a = static_cast<std::size_t>(key >> 32);
        const auto b = static_cast<std::size_t>(key & 0xFFFFFFFFu);
        m.col_[cursor[a]] = static_cast<std::uint32_t>(b);
        m.val_[cursor[a]] = w;
        ++cursor[a];
        if (a != b) {
            m.col_[cursor[b]] = static_cast<std::uint32_t>(a);
            m.val_[cursor[b]] = w;
            ++cursor[b];
        }
    }
    return m;
}

// ---------------------------------------------------------------------------
// Builders

AffinityMatrix transition_affinity(const MemTrace& trace, const BlockProfile& profile,
                                   std::size_t jobs) {
    MaterializedSource source(trace);
    return transition_affinity(source, profile, jobs);
}

AffinityMatrix transition_affinity(TraceSource& source, const BlockProfile& profile,
                                   std::size_t jobs) {
    const unsigned shift = log2_exact(profile.block_size());
    const std::size_t num_blocks = profile.num_blocks();
    AffinityAccumulator acc = stream_accumulate(
        source, 1, jobs, [&] { return AffinityAccumulator(num_blocks); },
        [&](AffinityAccumulator& out, const TraceChunk& chunk,
            std::span<const std::uint64_t> context) {
            transition_chunk(chunk, context, shift, num_blocks, out);
        },
        [](AffinityAccumulator& into, const AffinityAccumulator& from) { into.merge(from); });
    return acc.finalize();
}

AffinityMatrix windowed_affinity(const MemTrace& trace, const BlockProfile& profile,
                                 std::size_t window, std::size_t jobs) {
    MaterializedSource source(trace);
    return windowed_affinity(source, profile, window, jobs);
}

AffinityMatrix windowed_affinity(TraceSource& source, const BlockProfile& profile,
                                 std::size_t window, std::size_t jobs) {
    require(window >= 2, "windowed_affinity: window must be >= 2");
    const unsigned shift = log2_exact(profile.block_size());
    const std::size_t num_blocks = profile.num_blocks();
    AffinityAccumulator acc = stream_accumulate(
        source, window - 1, jobs, [&] { return AffinityAccumulator(num_blocks); },
        [&](AffinityAccumulator& out, const TraceChunk& chunk,
            std::span<const std::uint64_t> context) {
            windowed_chunk(chunk, context, window, shift, num_blocks, out);
        },
        [](AffinityAccumulator& into, const AffinityAccumulator& from) { into.merge(from); });
    return acc.finalize();
}

ProfileAffinity build_profile_and_affinity(const MemTrace& trace, std::uint64_t block_size,
                                           std::size_t window, std::size_t jobs) {
    MaterializedSource source(trace);
    return build_profile_and_affinity(source, block_size, window, jobs);
}

ProfileAffinity build_profile_and_affinity(TraceSource& source, std::uint64_t block_size,
                                           std::size_t window, std::size_t jobs) {
    require(is_pow2(block_size), "build_profile_and_affinity: block_size must be a power of two");
    require(window >= 2, "build_profile_and_affinity: window must be >= 2");
    const TraceSummary& sum = source.summary();
    require(sum.accesses > 0, "build_profile_and_affinity: empty trace");

    const std::uint64_t span = std::max<std::uint64_t>(sum.span_pow2(), block_size);
    const auto num_blocks = static_cast<std::size_t>(span / block_size);
    const unsigned shift = log2_exact(block_size);

    // One fused chunked pass: block counts and window pairs together, so
    // the trace's addr column is streamed once instead of twice. All sums
    // are integer-valued and reduced in task order — bit-identical at any
    // job count and to the unfused builders.
    struct Shard {
        std::vector<std::uint64_t> reads;
        std::vector<std::uint64_t> writes;
        AffinityAccumulator acc;
    };
    Shard merged = stream_accumulate(
        source, window - 1, jobs,
        [&] {
            return Shard{std::vector<std::uint64_t>(num_blocks, 0),
                         std::vector<std::uint64_t>(num_blocks, 0),
                         AffinityAccumulator(num_blocks)};
        },
        [&](Shard& shard, const TraceChunk& chunk, std::span<const std::uint64_t> context) {
            const std::size_t cap = window - 1;
            std::vector<std::size_t> ring(cap);
            std::size_t count = 0;
            std::size_t next = 0;
            auto push = [&](std::size_t block) {
                ring[next] = block;
                next = (next + 1) % cap;
                if (count < cap) ++count;
            };
            const std::size_t skip = context.size() > cap ? context.size() - cap : 0;
            for (std::size_t i = skip; i < context.size(); ++i)
                push(block_of_checked(context[i], shift, num_blocks));
            for (std::size_t i = 0; i < chunk.size(); ++i) {
                const std::size_t block = block_of_checked(chunk.addrs[i], shift, num_blocks);
                if (chunk.kinds[i] == AccessKind::Read) ++shard.reads[block];
                else ++shard.writes[block];
                for (std::size_t k = 0; k < count; ++k) {
                    if (ring[k] != block) shard.acc.add(ring[k], block, 1.0);
                }
                push(block);
            }
        },
        [&](Shard& into, const Shard& from) {
            for (std::size_t b = 0; b < num_blocks; ++b) {
                into.reads[b] += from.reads[b];
                into.writes[b] += from.writes[b];
            }
            into.acc.merge(from.acc);
        });

    BlockProfile profile(block_size, num_blocks);
    for (std::size_t b = 0; b < num_blocks; ++b) {
        if (merged.reads[b] != 0 || merged.writes[b] != 0)
            profile.add_counts(b, merged.reads[b], merged.writes[b]);
    }
    return ProfileAffinity{std::move(profile), merged.acc.finalize()};
}

}  // namespace memopt
