// Block-structured streaming trace container (".mtsc") and its readers.
//
// The ".mtrc" binary format (trace/io.hpp) is a flat record stream: compact,
// but reading it means parsing every record. The ".mtsc" container stores
// the same trace as a sequence of SoA *blocks* so that a reader can
//  * memory-map the file and hand out zero-copy column spans per block
//    (MmapBinarySource — the out-of-core replay path), and
//  * verify integrity per block (checksum + structural validation) instead
//    of trusting the whole file.
//
// On-disk layout (fixed little-endian; the zero-copy reader additionally
// requires a little-endian host):
//
//   header (64 bytes):
//     "MTSC" magic | u32 version | u64 count | u32 chunk_accesses |
//     u32 block_count | u32 flags (bit0 = compressed) | u32 reserved |
//     u64 min_addr | u64 max_addr | u64 reads | u64 writes
//   block offset table: block_count x u64 absolute file offsets
//   blocks, each 8-byte aligned:
//     "MTSB" magic | u32 count | u64 payload_bytes | u64 checksum (FNV-1a
//     over the stored payload) | payload | zero padding to 8 bytes
//
// An uncompressed payload is the raw column image
//   addrs[count*8] cycles[count*8] values[count*4] sizes[count] kinds[count]
// whose columns are all naturally aligned relative to the 8-aligned payload
// start — that is what makes the mmap spans zero-copy. A compressed payload
// (flags bit0) is the same image cut into 4 KiB lines, each stored as the
// smallest of {raw, diff codec, zero-run codec}: the in-tree cache-line
// codecs self-host the container's compression. The header carries the
// whole-trace summary, so opening a container never needs a summary pass.
//
// All header/block fields are validated against the file size BEFORE any
// allocation they would size (mirroring the ".mtrc" reader hardening): a
// corrupt count or block table fails with a diagnostic, not in the
// allocator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/source.hpp"

namespace memopt {

/// Hard cap on accesses per block: bounds every count-driven allocation a
/// (possibly corrupt) header can request. 16Mi accesses/block is far above
/// any useful chunking.
inline constexpr std::size_t kMaxStreamChunkAccesses = std::size_t{1} << 24;

/// Options for write_trace_stream().
struct StreamWriteOptions {
    std::size_t chunk_accesses = kDefaultTraceChunk;  ///< accesses per block
    bool compress = false;  ///< block-compress payloads (diff / zero-run)
};

/// Stream `source` into a ".mtsc" container at `path` (O(chunk) memory).
/// Returns the whole-trace summary that was written into the header.
/// Throws memopt::Error on I/O failure or if the source delivers a
/// different number of accesses than its size() promised.
TraceSummary write_trace_stream(const std::string& path, TraceSource& source,
                                const StreamWriteOptions& opts = {});

/// Convenience wrapper over an in-memory trace.
TraceSummary write_trace_stream(const std::string& path, const MemTrace& trace,
                                const StreamWriteOptions& opts = {});

/// Materialize an ".mtsc" container into an in-memory trace (for consumers
/// that genuinely need random access; replay loops should stream through
/// MmapBinarySource instead). Throws memopt::Error on corruption.
MemTrace read_trace_stream(const std::string& path);

/// Memory-mapped reader for the ".mtsc" container. Uncompressed containers
/// deliver zero-copy chunks straight out of the mapping (stable for the
/// source's lifetime); compressed containers decode each block into an
/// owned buffer (valid until the next next()/reset()). Each block is
/// structurally validated, checksum-verified, and content-validated
/// (access sizes, kinds, and address ranges against the header summary)
/// before its first delivery, upholding the TraceSource summary contract
/// even for crafted payloads with resealed checksums. On platforms
/// without mmap the file is read into memory instead (same semantics, no
/// longer out-of-core).
class MmapBinarySource final : public TraceSource {
public:
    explicit MmapBinarySource(const std::string& path);
    ~MmapBinarySource() override;

    MmapBinarySource(const MmapBinarySource&) = delete;
    MmapBinarySource& operator=(const MmapBinarySource&) = delete;

    std::uint64_t size() const override { return count_; }
    bool stable_chunks() const override { return !compressed_; }
    bool next(TraceChunk& chunk) override;
    void reset() override { block_ = 0; }

    bool compressed() const { return compressed_; }
    std::uint32_t chunk_accesses() const { return chunk_accesses_; }
    std::uint32_t block_count() const { return block_count_; }

private:
    void open_file();
    void close_file();
    void parse_header();
    std::uint32_t expected_block_accesses(std::uint32_t block) const;
    /// Validate block `b`'s header, bounds and checksum; returns the
    /// payload pointer. Throws memopt::Error on any corruption.
    const std::uint8_t* validate_block(std::uint32_t block, std::uint32_t* out_count,
                                       std::uint64_t* out_payload_bytes);

    std::string path_;
    // Mapping (or fallback buffer when mmap is unavailable).
    const std::uint8_t* map_ = nullptr;
    std::size_t map_bytes_ = 0;
    int fd_ = -1;
    bool mapped_ = false;
    std::vector<std::uint8_t> fallback_;

    std::uint64_t count_ = 0;
    std::uint32_t chunk_accesses_ = 0;
    std::uint32_t block_count_ = 0;
    bool compressed_ = false;
    const std::uint8_t* offset_table_ = nullptr;
    std::vector<bool> verified_;        ///< per-block one-time validation
    std::vector<std::uint64_t> decoded_;  ///< 8-aligned decode buffer
    std::uint32_t block_ = 0;           ///< cursor
};

/// Streaming reader for the flat ".mtrc" binary format: O(chunk) memory
/// where load_trace() materializes the whole trace. Record validation is
/// identical to read_trace_binary().
class BinaryFileSource final : public TraceSource {
public:
    explicit BinaryFileSource(const std::string& path,
                              std::size_t chunk_accesses = kDefaultTraceChunk);

    std::uint64_t size() const override { return count_; }
    bool next(TraceChunk& chunk) override;
    void reset() override;

private:
    std::string path_;
    std::vector<std::uint8_t> raw_;  ///< staging bytes for one chunk of records
    ChunkBuffer buffer_;
    std::size_t chunk_;
    std::uint64_t count_ = 0;
    std::uint64_t pos_ = 0;
    std::uint64_t data_start_ = 0;
    // The stream handle lives in the implementation (pimpl-free: a shared
    // ifstream would drag <fstream> into this header).
    struct Stream;
    std::shared_ptr<Stream> stream_;
};

}  // namespace memopt
