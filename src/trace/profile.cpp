#include "trace/profile.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/parallel.hpp"
#include "trace/source.hpp"

namespace memopt {

BlockProfile::BlockProfile(std::uint64_t block_size, std::size_t num_blocks)
    : block_size_(block_size) {
    require(is_pow2(block_size), "BlockProfile: block_size must be a power of two");
    require(num_blocks > 0, "BlockProfile: num_blocks must be > 0");
    counts_.assign(num_blocks, BlockCounts{});
}

BlockProfile BlockProfile::from_trace(const MemTrace& trace, std::uint64_t block_size,
                                      std::size_t jobs) {
    MaterializedSource source(trace);
    return from_source(source, block_size, jobs);
}

BlockProfile BlockProfile::from_source(TraceSource& source, std::uint64_t block_size,
                                       std::size_t jobs) {
    require(is_pow2(block_size), "from_trace: block_size must be a power of two");
    const TraceSummary& sum = source.summary();
    require(sum.accesses > 0, "from_trace: empty trace");
    const std::uint64_t span = std::max<std::uint64_t>(sum.span_pow2(), block_size);
    const auto num_blocks = static_cast<std::size_t>(span / block_size);
    const unsigned shift = log2_exact(block_size);

    // Chunked columnar replay: only the addr and kind columns are read.
    // The span covers the summary's max_addr, and the TraceSource contract
    // guarantees every delivered access lies within the summary range
    // (file-backed sources validate each block's addresses against the
    // header summary before first delivery), so the per-access bounds
    // check of record() is not needed. Counts are integer sums reduced in
    // task order, so the result is bit-identical at any job count.
    struct Counts {
        std::vector<std::uint64_t> reads, writes;
    };
    const Counts total = stream_accumulate(
        source, 0, jobs,
        [&] {
            return Counts{std::vector<std::uint64_t>(num_blocks, 0),
                          std::vector<std::uint64_t>(num_blocks, 0)};
        },
        [&](Counts& c, const TraceChunk& chunk, std::span<const std::uint64_t>) {
            for (std::size_t i = 0; i < chunk.size(); ++i) {
                const auto block = static_cast<std::size_t>(chunk.addrs[i] >> shift);
                if (chunk.kinds[i] == AccessKind::Read) ++c.reads[block];
                else ++c.writes[block];
            }
        },
        [&](Counts& into, const Counts& from) {
            for (std::size_t b = 0; b < num_blocks; ++b) {
                into.reads[b] += from.reads[b];
                into.writes[b] += from.writes[b];
            }
        });

    BlockProfile profile(block_size, num_blocks);
    for (std::size_t b = 0; b < num_blocks; ++b) {
        if (total.reads[b] != 0 || total.writes[b] != 0)
            profile.add_counts(b, total.reads[b], total.writes[b]);
    }
    return profile;
}

std::size_t BlockProfile::block_of(std::uint64_t addr) const {
    const std::size_t block = static_cast<std::size_t>(addr / block_size_);
    require(block < counts_.size(), "block_of: address outside profile span");
    return block;
}

const BlockCounts& BlockProfile::counts(std::size_t block) const {
    require(block < counts_.size(), "counts: block out of range");
    return counts_[block];
}

void BlockProfile::record(std::uint64_t addr, AccessKind kind) {
    BlockCounts& c = counts_[block_of(addr)];
    if (kind == AccessKind::Read) {
        ++c.reads;
        ++total_reads_;
    } else {
        ++c.writes;
        ++total_writes_;
    }
}

void BlockProfile::add_counts(std::size_t block, std::uint64_t reads, std::uint64_t writes) {
    require(block < counts_.size(), "add_counts: block out of range");
    counts_[block].reads += reads;
    counts_[block].writes += writes;
    total_reads_ += reads;
    total_writes_ += writes;
}

std::vector<std::size_t> BlockProfile::blocks_by_access_desc() const {
    std::vector<std::size_t> order(counts_.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return counts_[a].total() > counts_[b].total();
    });
    return order;
}

double BlockProfile::hot_fraction(std::size_t k) const {
    require(total_accesses() > 0, "hot_fraction on empty profile");
    if (k >= counts_.size()) return 1.0;
    const auto order = blocks_by_access_desc();
    std::uint64_t hot = 0;
    for (std::size_t i = 0; i < k; ++i) hot += counts_[order[i]].total();
    return static_cast<double>(hot) / static_cast<double>(total_accesses());
}

double BlockProfile::spatial_locality() const {
    // Measure how compact the access mass is: compute, for the minimum
    // number of blocks k90 that hold >= 90% of all accesses when free to
    // choose any blocks, the smallest contiguous window that actually holds
    // 90% of accesses. locality = k90 / window_size. A profile whose hot
    // blocks are contiguous scores ~1; scattered hot blocks score << 1.
    require(total_accesses() > 0, "spatial_locality on empty profile");
    const double target = 0.9 * static_cast<double>(total_accesses());

    // k90: minimal #blocks (unordered) reaching the target.
    const auto order = blocks_by_access_desc();
    std::uint64_t acc = 0;
    std::size_t k90 = 0;
    for (std::size_t i = 0; i < order.size() && static_cast<double>(acc) < target; ++i) {
        acc += counts_[order[i]].total();
        ++k90;
    }

    // Smallest contiguous window reaching the target (two-pointer sweep).
    std::size_t best_window = counts_.size();
    std::uint64_t window_sum = 0;
    std::size_t left = 0;
    for (std::size_t right = 0; right < counts_.size(); ++right) {
        window_sum += counts_[right].total();
        while (static_cast<double>(window_sum) >= target) {
            best_window = std::min(best_window, right - left + 1);
            window_sum -= counts_[left].total();
            ++left;
        }
    }
    MEMOPT_ASSERT(best_window >= k90);
    return static_cast<double>(k90) / static_cast<double>(best_window);
}

BlockProfile BlockProfile::merge(std::span<const BlockProfile> profiles,
                                 std::span<const double> weights) {
    require(!profiles.empty(), "merge: no profiles");
    require(weights.empty() || weights.size() == profiles.size(),
            "merge: weight count must match profile count");
    const std::uint64_t block_size = profiles.front().block_size();
    std::size_t num_blocks = 0;
    for (const BlockProfile& p : profiles) {
        require(p.block_size() == block_size, "merge: block size mismatch");
        num_blocks = std::max(num_blocks, p.num_blocks());
    }
    BlockProfile out(block_size, num_blocks);
    for (std::size_t i = 0; i < profiles.size(); ++i) {
        const double w = weights.empty() ? 1.0 : weights[i];
        require(w >= 0.0, "merge: negative weight");
        for (std::size_t b = 0; b < profiles[i].num_blocks(); ++b) {
            const BlockCounts& c = profiles[i].counts(b);
            out.add_counts(b, static_cast<std::uint64_t>(static_cast<double>(c.reads) * w + 0.5),
                           static_cast<std::uint64_t>(static_cast<double>(c.writes) * w + 0.5));
        }
    }
    return out;
}

BlockProfile BlockProfile::permuted(std::span<const std::size_t> perm) const {
    require(perm.size() == counts_.size(), "permuted: permutation size mismatch");
    BlockProfile out(block_size_, counts_.size());
    std::vector<bool> seen(counts_.size(), false);
    for (std::size_t old_block = 0; old_block < perm.size(); ++old_block) {
        const std::size_t new_block = perm[old_block];
        require(new_block < counts_.size(), "permuted: target block out of range");
        require(!seen[new_block], "permuted: permutation is not a bijection");
        seen[new_block] = true;
        out.add_counts(new_block, counts_[old_block].reads, counts_[old_block].writes);
    }
    return out;
}

}  // namespace memopt
