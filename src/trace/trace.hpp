// Memory-access traces: the common currency of the toolkit.
//
// Every optimization in this library (partitioning, clustering, compression,
// encoding) is profile-driven: it consumes a trace of memory accesses
// produced either by the AR32 instruction-set simulator (src/sim) or by the
// synthetic generators (trace/synthetic.hpp).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/assert.hpp"

namespace memopt {

/// Direction of a memory access.
enum class AccessKind : std::uint8_t { Read, Write };

/// One memory access. `size` is the access width in bytes (1, 2 or 4 for
/// AR32). `cycle` is the issue cycle, used by windowed affinity analysis;
/// synthetic traces may simply use the access index. `value` is the data
/// read or written (low `size` bytes significant); it lets the compressed-
/// memory simulation reconstruct exact line contents from a trace.
struct MemAccess {
    std::uint64_t addr = 0;
    std::uint64_t cycle = 0;
    std::uint32_t value = 0;
    std::uint8_t size = 4;
    AccessKind kind = AccessKind::Read;
};

/// An ordered sequence of memory accesses plus cheap summary statistics.
///
/// Invariant: summary counters always match the stored sequence.
class MemTrace {
public:
    MemTrace() = default;

    /// Append one access. O(1).
    void add(const MemAccess& a);

    /// Append a read/write of `size` bytes at `addr` (convenience).
    void add_read(std::uint64_t addr, std::uint8_t size = 4, std::uint64_t cycle = 0);
    void add_write(std::uint64_t addr, std::uint8_t size = 4, std::uint64_t cycle = 0);

    /// All accesses in program order.
    std::span<const MemAccess> accesses() const { return accesses_; }

    std::size_t size() const { return accesses_.size(); }
    bool empty() const { return accesses_.empty(); }
    std::uint64_t read_count() const { return reads_; }
    std::uint64_t write_count() const { return writes_; }

    /// Lowest / highest byte address touched. Requires a non-empty trace.
    std::uint64_t min_addr() const;
    std::uint64_t max_addr() const;

    /// Smallest power-of-two span (in bytes) that covers all touched
    /// addresses starting from address zero. Requires a non-empty trace.
    std::uint64_t address_span_pow2() const;

    /// Remove all accesses.
    void clear();

    /// Reserve storage for `n` accesses.
    void reserve(std::size_t n) { accesses_.reserve(n); }

private:
    std::vector<MemAccess> accesses_;
    std::uint64_t reads_ = 0;
    std::uint64_t writes_ = 0;
    std::uint64_t min_addr_ = 0;
    std::uint64_t max_addr_ = 0;
};

/// Round `v` up to the next power of two (v=0 -> 1).
std::uint64_t ceil_pow2(std::uint64_t v);

/// True if `v` is a power of two (v > 0).
bool is_pow2(std::uint64_t v);

/// Integer log2 of a power of two.
unsigned log2_exact(std::uint64_t v);

}  // namespace memopt
