// Memory-access traces: the common currency of the toolkit.
//
// Every optimization in this library (partitioning, clustering, compression,
// encoding) is profile-driven: it consumes a trace of memory accesses
// produced either by the AR32 instruction-set simulator (src/sim) or by the
// synthetic generators (trace/synthetic.hpp).
//
// Storage is columnar (structure-of-arrays): each access field lives in its
// own contiguous vector. Replay loops that only need a subset of the fields
// — the profile builder reads addr+kind, the affinity builder reads addr
// only, the sleep replayer reads addr+cycle+kind — stream exactly those
// bytes instead of striding over 24-byte structs, which is what keeps the
// trace pipeline memory-bandwidth-friendly on multi-million-access traces.
// `accesses()` provides an AoS-compatible view for call sites that want
// whole records.
#pragma once

#include <cstdint>
#include <iterator>
#include <span>
#include <vector>

#include "support/assert.hpp"

namespace memopt {

/// Direction of a memory access.
enum class AccessKind : std::uint8_t { Read, Write };

/// One memory access. `size` is the access width in bytes (1, 2 or 4 for
/// AR32). `cycle` is the issue cycle, used by windowed affinity analysis;
/// synthetic traces may simply use the access index. `value` is the data
/// read or written (low `size` bytes significant); it lets the compressed-
/// memory simulation reconstruct exact line contents from a trace.
struct MemAccess {
    std::uint64_t addr = 0;
    std::uint64_t cycle = 0;
    std::uint32_t value = 0;
    std::uint8_t size = 4;
    AccessKind kind = AccessKind::Read;
};

class MemTrace;

/// Random-access AoS-style view over a MemTrace: indexing and iteration
/// materialize MemAccess records on the fly from the trace's columns.
/// Cheap to copy (one pointer); valid as long as the trace is alive and
/// unmodified.
class AccessView {
public:
    class iterator {
    public:
        using iterator_category = std::random_access_iterator_tag;
        using value_type = MemAccess;
        using difference_type = std::ptrdiff_t;
        using pointer = const MemAccess*;
        using reference = MemAccess;  // materialized by value

        iterator() = default;
        iterator(const MemTrace* trace, std::size_t i) : trace_(trace), i_(i) {}

        MemAccess operator*() const;
        MemAccess operator[](difference_type d) const;
        iterator& operator++() { ++i_; return *this; }
        iterator operator++(int) { iterator t = *this; ++i_; return t; }
        iterator& operator--() { --i_; return *this; }
        iterator operator--(int) { iterator t = *this; --i_; return t; }
        iterator& operator+=(difference_type d) { i_ += static_cast<std::size_t>(d); return *this; }
        iterator& operator-=(difference_type d) { i_ -= static_cast<std::size_t>(d); return *this; }
        friend iterator operator+(iterator it, difference_type d) { return it += d; }
        friend iterator operator+(difference_type d, iterator it) { return it += d; }
        friend iterator operator-(iterator it, difference_type d) { return it -= d; }
        friend difference_type operator-(const iterator& a, const iterator& b) {
            return static_cast<difference_type>(a.i_) - static_cast<difference_type>(b.i_);
        }
        friend bool operator==(const iterator& a, const iterator& b) { return a.i_ == b.i_; }
        friend bool operator!=(const iterator& a, const iterator& b) { return a.i_ != b.i_; }
        friend bool operator<(const iterator& a, const iterator& b) { return a.i_ < b.i_; }
        friend bool operator<=(const iterator& a, const iterator& b) { return a.i_ <= b.i_; }
        friend bool operator>(const iterator& a, const iterator& b) { return a.i_ > b.i_; }
        friend bool operator>=(const iterator& a, const iterator& b) { return a.i_ >= b.i_; }

    private:
        const MemTrace* trace_ = nullptr;
        std::size_t i_ = 0;
    };

    explicit AccessView(const MemTrace* trace) : trace_(trace) {}

    std::size_t size() const;
    bool empty() const { return size() == 0; }
    MemAccess operator[](std::size_t i) const;
    MemAccess front() const { return (*this)[0]; }
    MemAccess back() const { return (*this)[size() - 1]; }
    iterator begin() const { return iterator(trace_, 0); }
    iterator end() const { return iterator(trace_, size()); }

private:
    const MemTrace* trace_;
};

/// An ordered sequence of memory accesses plus cheap summary statistics,
/// stored column-wise (see file comment).
///
/// Invariant: summary counters always match the stored sequence, and all
/// columns have equal length.
class MemTrace {
public:
    MemTrace() = default;

    /// Append one access. O(1).
    void add(const MemAccess& a);

    /// Append a read/write of `size` bytes at `addr` (convenience).
    void add_read(std::uint64_t addr, std::uint8_t size = 4, std::uint64_t cycle = 0);
    void add_write(std::uint64_t addr, std::uint8_t size = 4, std::uint64_t cycle = 0);

    /// Bulk construction from pre-built columns (all the same length).
    /// Summary statistics are recomputed; sizes are validated.
    static MemTrace from_columns(std::vector<std::uint64_t> addrs,
                                 std::vector<std::uint64_t> cycles,
                                 std::vector<std::uint32_t> values,
                                 std::vector<std::uint8_t> sizes,
                                 std::vector<AccessKind> kinds);

    /// All accesses in program order (AoS-compatible materializing view).
    AccessView accesses() const { return AccessView(this); }

    /// Contiguous column views — the fast path for replay loops.
    std::span<const std::uint64_t> addrs() const { return addrs_; }
    std::span<const std::uint64_t> cycles() const { return cycles_; }
    std::span<const std::uint32_t> values() const { return values_; }
    std::span<const std::uint8_t> sizes() const { return sizes_; }
    std::span<const AccessKind> kinds() const { return kinds_; }

    /// Materialize access `i`.
    MemAccess at(std::size_t i) const {
        MEMOPT_ASSERT(i < addrs_.size());
        return MemAccess{addrs_[i], cycles_[i], values_[i], sizes_[i], kinds_[i]};
    }

    std::size_t size() const { return addrs_.size(); }
    bool empty() const { return addrs_.empty(); }
    std::uint64_t read_count() const { return reads_; }
    std::uint64_t write_count() const { return writes_; }

    /// Lowest / highest byte address touched. Requires a non-empty trace.
    std::uint64_t min_addr() const;
    std::uint64_t max_addr() const;

    /// Smallest power-of-two span (in bytes) that covers all touched
    /// addresses starting from address zero. Requires a non-empty trace.
    std::uint64_t address_span_pow2() const;

    /// Remove all accesses.
    void clear();

    /// Reserve storage for `n` accesses (in every column).
    void reserve(std::size_t n);

private:
    std::vector<std::uint64_t> addrs_;
    std::vector<std::uint64_t> cycles_;
    std::vector<std::uint32_t> values_;
    std::vector<std::uint8_t> sizes_;
    std::vector<AccessKind> kinds_;
    std::uint64_t reads_ = 0;
    std::uint64_t writes_ = 0;
    std::uint64_t min_addr_ = 0;
    std::uint64_t max_addr_ = 0;
};

inline MemAccess AccessView::iterator::operator*() const { return trace_->at(i_); }
inline MemAccess AccessView::iterator::operator[](difference_type d) const {
    return trace_->at(i_ + static_cast<std::size_t>(d));
}
inline std::size_t AccessView::size() const { return trace_->size(); }
inline MemAccess AccessView::operator[](std::size_t i) const { return trace_->at(i); }

/// Round `v` up to the next power of two (v=0 -> 1).
std::uint64_t ceil_pow2(std::uint64_t v);

/// True if `v` is a power of two (v > 0).
bool is_pow2(std::uint64_t v);

/// Integer log2 of a power of two.
unsigned log2_exact(std::uint64_t v);

}  // namespace memopt
