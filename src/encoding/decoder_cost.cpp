#include "encoding/decoder_cost.hpp"

#include <vector>

#include "support/assert.hpp"

namespace memopt {

std::uint64_t decoder_toggles(const LinearTransform& transform,
                              std::span<const std::uint32_t> words, std::uint32_t initial) {
    if (transform.is_identity() || words.empty()) return 0;
    const auto& gates = transform.gates();

    // prev_outputs[g] = output bit of gate g for the previous word.
    // The decoder applies the gates in reverse (invert order); the gate
    // chain state is reproduced here stage by stage.
    std::vector<std::uint8_t> prev_outputs(gates.size(), 0);
    std::uint64_t toggles = 0;

    auto stage_outputs = [&](std::uint32_t encoded, std::vector<std::uint8_t>& outputs) {
        std::uint32_t w = encoded;
        for (std::size_t g = gates.size(); g-- > 0;) {
            const XorGate& gate = gates[g];
            const std::uint32_t src_bit = (w >> gate.src) & 1u;
            w ^= src_bit << gate.dst;
            outputs[g] = static_cast<std::uint8_t>((w >> gate.dst) & 1u);
        }
    };

    // Initialize with the encoded idle state.
    stage_outputs(transform.apply(initial), prev_outputs);
    std::vector<std::uint8_t> outputs(gates.size(), 0);
    for (std::uint32_t word : words) {
        stage_outputs(transform.apply(word), outputs);
        for (std::size_t g = 0; g < gates.size(); ++g)
            toggles += prev_outputs[g] != outputs[g];
        prev_outputs = outputs;
    }
    return toggles;
}

double decoder_energy(const LinearTransform& transform, std::span<const std::uint32_t> words,
                      std::uint32_t initial, const DecoderTechnology& tech) {
    return tech.gate_toggle_pj * static_cast<double>(decoder_toggles(transform, words, initial));
}

EnergyBreakdown encoded_energy(const LinearTransform& transform,
                               std::span<const std::uint32_t> words,
                               double bus_pj_per_transition, std::uint32_t initial,
                               const DecoderTechnology& tech) {
    require(bus_pj_per_transition >= 0.0, "encoded_energy: negative bus energy");
    EnergyBreakdown breakdown;
    breakdown.add("bus", bus_pj_per_transition *
                             static_cast<double>(encoded_transitions(transform, words, initial)));
    breakdown.add("decoder", decoder_energy(transform, words, initial, tech));
    return breakdown;
}

}  // namespace memopt
