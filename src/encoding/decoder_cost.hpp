// Decoder hardware cost of a bus transform — closes the 1B-3 energy loop.
//
// Each XOR gate in the fetch-path decoder dissipates energy when its output
// toggles. Gate output capacitance is ~three orders of magnitude below a
// bus line, so the decoder overhead is tiny — but reporting savings *net*
// of it (like the remap table in 1B-1) keeps the reproduction honest and
// lets the E8 ablation show where an oversized gate budget stops paying.
#pragma once

#include <cstdint>
#include <span>

#include "encoding/transform.hpp"
#include "energy/report.hpp"

namespace memopt {

/// Decoder technology constants.
struct DecoderTechnology {
    double gate_toggle_pj = 0.012;  ///< one XOR output toggle (gate-load cap)
};

/// Exact toggle count of every gate output across the stream: the stream is
/// replayed through the gate chain word by word and each gate's output bit
/// is compared with its previous value.
std::uint64_t decoder_toggles(const LinearTransform& transform,
                              std::span<const std::uint32_t> words, std::uint32_t initial = 0);

/// Decoder energy [pJ] for the stream.
double decoder_energy(const LinearTransform& transform, std::span<const std::uint32_t> words,
                      std::uint32_t initial = 0,
                      const DecoderTechnology& tech = DecoderTechnology{});

/// Net bus+decoder energy comparison for a transform on a stream:
/// components "bus" (encoded transitions) and "decoder".
EnergyBreakdown encoded_energy(const LinearTransform& transform,
                               std::span<const std::uint32_t> words,
                               double bus_pj_per_transition, std::uint32_t initial = 0,
                               const DecoderTechnology& tech = DecoderTechnology{});

}  // namespace memopt
