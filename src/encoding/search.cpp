#include "encoding/search.hpp"

#include <array>
#include <bit>
#include <unordered_map>
#include <vector>

#include "energy/bus_model.hpp"
#include "support/assert.hpp"
#include "support/json.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"

namespace memopt {

namespace {

/// The multiset of consecutive XOR differences, deduplicated. Instruction
/// streams are loop-dominated, so the number of distinct differences is
/// orders of magnitude below the stream length.
struct DiffHistogram {
    std::vector<std::uint32_t> values;
    std::vector<std::uint64_t> counts;

    static DiffHistogram build(std::span<const std::uint32_t> words, std::uint32_t initial) {
        std::unordered_map<std::uint32_t, std::uint64_t> map;
        std::uint32_t prev = initial;
        for (std::uint32_t w : words) {
            ++map[prev ^ w];
            prev = w;
        }
        DiffHistogram h;
        h.values.reserve(map.size());
        h.counts.reserve(map.size());
        // memopt-lint: order-independent -- every consumer of the histogram is a
        // multiset reduction: total_transitions and BitStats are exact uint64
        // sums (commutative/associative), apply() is elementwise, and best_gate
        // ranks gates on those sums with a fixed (dst, src) scan order. Pinned
        // by Search.InvariantUnderDiffOrder.
        for (const auto& [v, c] : map) {
            h.values.push_back(v);
            h.counts.push_back(c);
        }
        return h;
    }

    std::uint64_t total_transitions() const {
        std::uint64_t total = 0;
        for (std::size_t k = 0; k < values.size(); ++k)
            total += static_cast<std::uint64_t>(std::popcount(values[k])) * counts[k];
        return total;
    }

    /// Apply gate to every difference value (the linear action).
    void apply(const XorGate& g) {
        for (std::uint32_t& v : values) {
            const std::uint32_t src_bit = (v >> g.src) & 1u;
            v ^= src_bit << g.dst;
        }
    }
};

/// cost[i] = weighted count of set bit i; cooc[i][j] = weighted count of
/// (bit i AND bit j) both set.
struct BitStats {
    std::array<std::uint64_t, 32> cost{};
    std::array<std::array<std::uint64_t, 32>, 32> cooc{};

    /// Accumulate the stats of h.values[[first, last)) into this object.
    void accumulate(const DiffHistogram& h, std::size_t first, std::size_t last) {
        for (std::size_t k = first; k < last; ++k) {
            std::uint32_t v = h.values[k];
            const std::uint64_t c = h.counts[k];
            // Enumerate set bits.
            std::array<unsigned, 32> bits;
            unsigned nbits = 0;
            while (v != 0) {
                const unsigned b = static_cast<unsigned>(std::countr_zero(v));
                bits[nbits++] = b;
                v &= v - 1;
            }
            for (unsigned a = 0; a < nbits; ++a) {
                cost[bits[a]] += c;
                for (unsigned bidx = 0; bidx < nbits; ++bidx)
                    cooc[bits[a]][bits[bidx]] += c;
            }
        }
    }

    /// Histograms below this size are accumulated inline; the parallel
    /// split-and-merge only pays off on large difference populations.
    static constexpr std::size_t kParallelThreshold = 4096;

    static BitStats build(const DiffHistogram& h) {
        const std::size_t n = h.values.size();
        BitStats s;
        if (n < kParallelThreshold || default_jobs() <= 1 || in_parallel_region()) {
            s.accumulate(h, 0, n);
            return s;
        }
        // Chunk the histogram, accumulate partial stats concurrently, and
        // merge in chunk order. Every tally is an exact uint64 sum, so the
        // merged stats are bit-identical to the serial accumulation.
        const std::size_t chunks = std::min(default_jobs(), n / (kParallelThreshold / 8));
        std::vector<BitStats> partial(chunks);
        parallel_for(chunks, [&](std::size_t chunk) {
            const std::size_t first = n * chunk / chunks;
            const std::size_t last = n * (chunk + 1) / chunks;
            partial[chunk].accumulate(h, first, last);
        });
        for (const BitStats& p : partial) {
            for (unsigned i = 0; i < 32; ++i) {
                s.cost[i] += p.cost[i];
                for (unsigned j = 0; j < 32; ++j) s.cooc[i][j] += p.cooc[i][j];
            }
        }
        return s;
    }
};

/// Best gate for the current histogram: improvement of bit[dst] ^= bit[src]
/// is cost[dst] - N(dst,src) = 2*cooc[dst][src] - cost[src].
struct GateChoice {
    XorGate gate;
    std::int64_t improvement = 0;
};

GateChoice best_gate(const DiffHistogram& h) {
    const BitStats stats = BitStats::build(h);
    GateChoice best;
    best.improvement = 0;
    for (unsigned dst = 0; dst < 32; ++dst) {
        for (unsigned src = 0; src < 32; ++src) {
            if (dst == src) continue;
            const std::int64_t improvement =
                2 * static_cast<std::int64_t>(stats.cooc[dst][src]) -
                static_cast<std::int64_t>(stats.cost[src]);
            if (improvement > best.improvement) {
                best.improvement = improvement;
                best.gate = XorGate{static_cast<std::uint8_t>(dst),
                                    static_cast<std::uint8_t>(src)};
            }
        }
    }
    return best;
}

}  // namespace

void to_json(JsonWriter& w, const TransformSearchResult& result) {
    w.begin_object();
    w.member("gate_count", static_cast<std::uint64_t>(result.transform.gate_count()));
    w.key("gates").begin_array();
    for (const XorGate& g : result.transform.gates()) {
        w.begin_object();
        w.member("dst", static_cast<unsigned>(g.dst));
        w.member("src", static_cast<unsigned>(g.src));
        w.end_object();
    }
    w.end_array();
    w.member("original_transitions", result.original_transitions);
    w.member("encoded_transitions", result.encoded_transitions);
    w.member("reduction_pct", 100.0 * result.reduction());
    w.end_object();
}

TransformSearchResult search_transform(std::span<const std::uint32_t> words,
                                       const TransformSearchParams& params) {
    require(params.max_gates <= 1024, "TransformSearchParams: absurd gate budget");
    static MetricCounter& searches = MetricsRegistry::instance().counter("encoding.searches");
    static MetricCounter& gates_selected =
        MetricsRegistry::instance().counter("encoding.gates_selected");
    static MetricTimer& search_timer = MetricsRegistry::instance().timer("encoding.search");
    searches.add();
    const ScopedTimer scope(search_timer);

    TransformSearchResult result;
    if (words.empty()) return result;

    DiffHistogram hist = DiffHistogram::build(words, params.initial);
    result.original_transitions = hist.total_transitions();

    LinearTransform transform;
    for (std::size_t step = 0; step < params.max_gates; ++step) {
        const GateChoice choice = best_gate(hist);
        if (choice.improvement <= 0) break;
        transform.append(choice.gate);
        hist.apply(choice.gate);
    }
    result.encoded_transitions = hist.total_transitions();
    result.transform = std::move(transform);
    gates_selected.add(result.transform.gate_count());

    // Cross-check the histogram bookkeeping against a direct simulation of
    // the encoder; cheap relative to the search and catches any drift.
    MEMOPT_ASSERT(encoded_transitions(result.transform, words, params.initial) ==
                  result.encoded_transitions);
    return result;
}

TransformSearchResult best_single_gate(std::span<const std::uint32_t> words,
                                       std::uint32_t initial) {
    TransformSearchResult result;
    result.original_transitions = count_transitions(words, initial);
    result.encoded_transitions = result.original_transitions;

    // Candidate evaluation is 32*31 full-stream simulations; fan the dst
    // rows out over the parallel runtime and reduce in row order. Ties keep
    // the first candidate in (dst, src) scan order — exactly the serial
    // strict-< scan — so the winner is identical at every job count.
    struct RowBest {
        std::uint64_t transitions;
        LinearTransform transform;
    };
    std::array<RowBest, 32> rows;
    parallel_for(32, [&](std::size_t dst) {
        RowBest best{result.original_transitions, LinearTransform{}};
        for (unsigned src = 0; src < 32; ++src) {
            if (dst == src) continue;
            const LinearTransform t(std::vector<XorGate>{
                XorGate{static_cast<std::uint8_t>(dst), static_cast<std::uint8_t>(src)}});
            const std::uint64_t trans = encoded_transitions(t, words, initial);
            if (trans < best.transitions) {
                best.transitions = trans;
                best.transform = t;
            }
        }
        rows[dst] = std::move(best);
    });
    for (const RowBest& row : rows) {
        if (row.transitions < result.encoded_transitions) {
            result.encoded_transitions = row.transitions;
            result.transform = row.transform;
        }
    }
    return result;
}

}  // namespace memopt
