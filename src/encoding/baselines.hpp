// Classic low-power bus-encoding baselines compared against the 1B-3
// application-specific transforms.
#pragma once

#include <cstdint>
#include <span>

namespace memopt {

/// Bus-invert coding (Stan & Burleson): if the Hamming distance between the
/// current bus state and the next word exceeds half the width, the inverted
/// word is sent and an extra invert line toggles. Returns the total line
/// transitions including the invert line (the honest cost of the extra
/// wire).
std::uint64_t bus_invert_transitions(std::span<const std::uint32_t> words,
                                     std::uint32_t initial = 0);

/// Gray re-coding g = w ^ (w >> 1) applied to every word (invertible).
/// Effective for sequential numeric streams, largely ineffective for
/// instruction words — included as the representative "fixed codebook"
/// baseline.
std::uint64_t gray_code_transitions(std::span<const std::uint32_t> words,
                                    std::uint32_t initial = 0);

/// Gray-decode (inverse of g = w ^ (w >> 1)).
std::uint32_t gray_decode(std::uint32_t g);

}  // namespace memopt
