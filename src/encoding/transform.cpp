#include "encoding/transform.hpp"

#include "energy/bus_model.hpp"
#include "support/assert.hpp"

namespace memopt {

LinearTransform::LinearTransform(std::vector<XorGate> gates) : gates_(std::move(gates)) {
    for (const XorGate& g : gates_) {
        require(g.dst < 32 && g.src < 32, "LinearTransform: bit index out of range");
        require(g.dst != g.src, "LinearTransform: gate must mix two distinct bits");
    }
}

void LinearTransform::append(XorGate gate) {
    require(gate.dst < 32 && gate.src < 32, "LinearTransform: bit index out of range");
    require(gate.dst != gate.src, "LinearTransform: gate must mix two distinct bits");
    gates_.push_back(gate);
}

std::uint32_t LinearTransform::apply(std::uint32_t w) const {
    for (const XorGate& g : gates_) {
        const std::uint32_t src_bit = (w >> g.src) & 1u;
        w ^= src_bit << g.dst;
    }
    return w;
}

std::uint32_t LinearTransform::invert(std::uint32_t w) const {
    for (auto it = gates_.rbegin(); it != gates_.rend(); ++it) {
        const std::uint32_t src_bit = (w >> it->src) & 1u;
        w ^= src_bit << it->dst;
    }
    return w;
}

std::vector<std::uint32_t> LinearTransform::apply_stream(
    std::span<const std::uint32_t> words) const {
    std::vector<std::uint32_t> out;
    out.reserve(words.size());
    for (std::uint32_t w : words) out.push_back(apply(w));
    return out;
}

std::uint64_t encoded_transitions(const LinearTransform& t,
                                  std::span<const std::uint32_t> words,
                                  std::uint32_t initial) {
    std::uint64_t total = 0;
    std::uint32_t prev = t.apply(initial);
    for (std::uint32_t w : words) {
        const std::uint32_t enc = t.apply(w);
        total += hamming32(prev, enc);
        prev = enc;
    }
    return total;
}

}  // namespace memopt
