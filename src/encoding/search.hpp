// Application-specific transform search — the 1B-3 algorithm.
//
// Because a LinearTransform acts linearly on consecutive XOR differences
// (see transform.hpp), minimizing encoded bus transitions reduces to:
//
//   given the multiset D of difference words of the profiled fetch stream,
//   find an invertible linear map L (a short sequence of 2-input XOR
//   gates) minimizing  sum_{d in D} popcount(L(d)).
//
// The searcher is greedy: each step adds the single gate bit[dst] ^= bit[src]
// with the largest transition reduction, computed exactly from the bit
// co-occurrence matrix of the (transformed) difference multiset. The gate
// budget models the hardware frugality constraint of the paper — each gate
// is one 2-input XOR in the fetch path.
#pragma once

#include <cstdint>
#include <span>

#include "encoding/transform.hpp"

namespace memopt {

class JsonWriter;

/// Search configuration.
struct TransformSearchParams {
    std::size_t max_gates = 16;   ///< hardware budget (XOR gates in the decoder)
    std::uint32_t initial = 0;    ///< bus line state before the first fetch
};

/// Result of a search.
struct TransformSearchResult {
    LinearTransform transform;
    std::uint64_t original_transitions = 0;
    std::uint64_t encoded_transitions = 0;

    /// Fractional reduction in [0, 1).
    double reduction() const {
        return original_transitions == 0
                   ? 0.0
                   : 1.0 - static_cast<double>(encoded_transitions) /
                               static_cast<double>(original_transitions);
    }
};

/// Serialize one search result: gate list, transition counts, reduction.
void to_json(JsonWriter& w, const TransformSearchResult& result);

/// Greedy gate search over the profiled stream.
TransformSearchResult search_transform(std::span<const std::uint32_t> words,
                                       const TransformSearchParams& params = {});

/// Exhaustive best single gate (32*31 candidates); used by tests to certify
/// that the greedy step is optimal for a one-gate budget.
TransformSearchResult best_single_gate(std::span<const std::uint32_t> words,
                                       std::uint32_t initial = 0);

}  // namespace memopt
