// Invertible bit-level bus transforms — the 1B-3 mechanism.
//
// The paper encodes instruction words with "frugal functional
// transformations reliant on a single bit logic gate": per-bit XOR gates
// mixing one bus line into another, reprogrammable per application. Such a
// transform is an invertible *linear* map L over GF(2)^32 built from
// elementary operations bit[dst] ^= bit[src].
//
// Key property (and the reason this works): for a linear map,
//   T(w1) XOR T(w2) = L(w1 XOR w2),
// so the transitions of the transformed stream depend only on L applied to
// the stream's consecutive XOR differences. Constant XOR masks and pure bit
// permutations leave the total transition count unchanged — all the leverage
// is in the cross-bit mixing, which is exactly what the gate budget buys.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace memopt {

/// One elementary gate: bit[dst] ^= bit[src] (dst != src). Self-inverse.
struct XorGate {
    std::uint8_t dst = 0;
    std::uint8_t src = 1;

    bool operator==(const XorGate&) const = default;
};

/// An ordered sequence of XOR gates; invertible by construction.
class LinearTransform {
public:
    LinearTransform() = default;  ///< identity

    /// Build from a gate list (applied in order). Each gate must have
    /// dst != src and bit indices < 32.
    explicit LinearTransform(std::vector<XorGate> gates);

    const std::vector<XorGate>& gates() const { return gates_; }
    std::size_t gate_count() const { return gates_.size(); }
    bool is_identity() const { return gates_.empty(); }

    /// Encode one word (apply gates in order).
    std::uint32_t apply(std::uint32_t w) const;

    /// Decode one word (apply gates in reverse order; each gate is
    /// self-inverse). For all w: invert(apply(w)) == w.
    std::uint32_t invert(std::uint32_t w) const;

    /// Encode a whole stream.
    std::vector<std::uint32_t> apply_stream(std::span<const std::uint32_t> words) const;

    /// Append one gate.
    void append(XorGate gate);

private:
    std::vector<XorGate> gates_;
};

/// Total bus transitions of `words` after encoding with `t` (the encoded
/// stream's consecutive Hamming distances, starting from line state
/// t.apply(initial)).
std::uint64_t encoded_transitions(const LinearTransform& t,
                                  std::span<const std::uint32_t> words,
                                  std::uint32_t initial = 0);

}  // namespace memopt
