#include "encoding/baselines.hpp"

#include "energy/bus_model.hpp"

namespace memopt {

std::uint64_t bus_invert_transitions(std::span<const std::uint32_t> words,
                                     std::uint32_t initial) {
    std::uint64_t total = 0;
    std::uint32_t bus = initial;
    bool invert_line = false;
    for (std::uint32_t w : words) {
        const unsigned direct = hamming32(bus, w);
        if (direct > 16) {
            const std::uint32_t inverted = ~w;
            total += hamming32(bus, inverted);
            if (!invert_line) ++total;  // invert line toggles 0 -> 1
            invert_line = true;
            bus = inverted;
        } else {
            total += direct;
            if (invert_line) ++total;  // invert line toggles 1 -> 0
            invert_line = false;
            bus = w;
        }
    }
    return total;
}

std::uint64_t gray_code_transitions(std::span<const std::uint32_t> words,
                                    std::uint32_t initial) {
    std::uint64_t total = 0;
    std::uint32_t prev = initial ^ (initial >> 1);
    for (std::uint32_t w : words) {
        const std::uint32_t g = w ^ (w >> 1);
        total += hamming32(prev, g);
        prev = g;
    }
    return total;
}

std::uint32_t gray_decode(std::uint32_t g) {
    std::uint32_t w = g;
    for (unsigned shift = 1; shift < 32; shift <<= 1) w ^= w >> shift;
    return w;
}

}  // namespace memopt
