#include "support/durable/cancel.hpp"

#include <csignal>

namespace memopt {

namespace {

/// Async-signal-safe trip flag: the handler only stores here.
volatile std::sig_atomic_t g_signal_tripped = 0;

extern "C" void on_cancel_signal(int) { g_signal_tripped = 1; }

}  // namespace

void CancellationToken::set_deadline_sec(double seconds) {
    if (seconds < 0.0) {
        deadline_armed_ = false;
        return;
    }
    deadline_armed_ = true;
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(seconds));
}

void CancellationToken::request(const std::string& reason) {
    {
        std::lock_guard<std::mutex> lock(reason_mutex_);
        if (!triggered_.load(std::memory_order_relaxed)) reason_ = reason;
    }
    requested_.store(true, std::memory_order_release);
    triggered_.store(true, std::memory_order_release);
}

void CancellationToken::latch(const char* why) {
    std::lock_guard<std::mutex> lock(reason_mutex_);
    if (!triggered_.exchange(true, std::memory_order_acq_rel)) reason_ = why;
}

bool CancellationToken::triggered() {
    if (triggered_.load(std::memory_order_acquire)) return true;
    if (g_signal_tripped != 0) {
        latch("signal received (SIGINT/SIGTERM)");
        return true;
    }
    if (deadline_armed_ && std::chrono::steady_clock::now() >= deadline_) {
        latch("wall-clock deadline exceeded");
        return true;
    }
    return false;
}

std::string CancellationToken::reason() const {
    std::lock_guard<std::mutex> lock(reason_mutex_);
    return reason_;
}

void CancellationToken::check() {
    if (triggered()) throw CancelledError("cancelled: " + reason());
}

void CancellationToken::reset() {
    g_signal_tripped = 0;
    requested_.store(false, std::memory_order_release);
    triggered_.store(false, std::memory_order_release);
    deadline_armed_ = false;
    std::lock_guard<std::mutex> lock(reason_mutex_);
    reason_.clear();
}

CancellationToken& CancellationToken::global() {
    static CancellationToken token;
    return token;
}

void install_cancellation_handlers() {
    std::signal(SIGINT, on_cancel_signal);
    std::signal(SIGTERM, on_cancel_signal);
}

}  // namespace memopt
