#include "support/durable/io_faults.hpp"

#include <cstdlib>
#include <optional>

#include "support/rng.hpp"
#include "support/string_util.hpp"

namespace memopt {

namespace {

/// SplitMix64 finalizer (same mixer as fault/inject): decorrelates the
/// (seed, site, unit, attempt) tuple into one well-mixed Rng seed.
std::uint64_t mix64(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

}  // namespace

std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const std::uint8_t b : bytes) {
        h ^= b;
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::uint64_t fnv1a64(std::string_view text) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : text) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

IoFaultSpec parse_io_fault_spec(const std::string& spec) {
    IoFaultSpec out;
    const std::string trimmed{trim(spec)};
    if (trimmed.empty()) return out;
    const auto fields = split(trimmed, ',');
    require(fields.size() >= 2, "MEMOPT_IO_FAULTS: expected 'seed,rate[,max=N]'");
    const auto seed = parse_int(trim(fields[0]));
    require(seed.has_value() && *seed >= 0, "MEMOPT_IO_FAULTS: bad seed");
    out.seed = static_cast<std::uint64_t>(*seed);
    {
        const std::string rate_text{trim(fields[1])};
        char* end = nullptr;
        out.rate = std::strtod(rate_text.c_str(), &end);
        require(end != rate_text.c_str() && *end == '\0' && out.rate >= 0.0 && out.rate <= 1.0,
                "MEMOPT_IO_FAULTS: rate must be a probability in [0,1]");
    }
    for (std::size_t i = 2; i < fields.size(); ++i) {
        const std::string_view field = trim(fields[i]);
        if (field.rfind("max=", 0) == 0) {
            const auto n = parse_int(field.substr(4));
            require(n.has_value() && *n >= 0 && *n <= 64, "MEMOPT_IO_FAULTS: bad max=N");
            out.max_failures = static_cast<std::uint32_t>(*n);
        } else {
            throw Error("MEMOPT_IO_FAULTS: unknown field '" + std::string(field) + "'");
        }
    }
    out.enabled = out.rate > 0.0;
    return out;
}

bool IoFaultInjector::should_fail(std::string_view site, std::uint64_t unit,
                                  std::uint64_t attempt) const {
    if (!enabled() || attempt >= spec_.max_failures) return false;
    Rng rng(mix64(spec_.seed ^ fnv1a64(site)) ^ mix64(unit) ^ mix64(attempt + 1));
    return rng.next_bool(spec_.rate);
}

void IoFaultInjector::maybe_fail(std::string_view site, std::uint64_t unit,
                                 std::uint64_t attempt) const {
    if (should_fail(site, unit, attempt)) {
        throw TransientIoError("injected I/O fault: site '" + std::string(site) + "', unit " +
                               std::to_string(unit) + ", attempt " + std::to_string(attempt));
    }
}

namespace {

std::optional<IoFaultInjector>& process_injector() {
    static std::optional<IoFaultInjector> injector;
    return injector;
}

}  // namespace

const IoFaultInjector& io_faults() {
    // Magic-static lambda so the first call is race-free even when it comes
    // from inside a parallel region; set_io_faults() beforehand wins.
    static const bool initialized = [] {
        auto& injector = process_injector();
        if (!injector.has_value()) {
            const char* env = std::getenv("MEMOPT_IO_FAULTS");
            injector.emplace(env != nullptr ? parse_io_fault_spec(env) : IoFaultSpec{});
        }
        return true;
    }();
    (void)initialized;
    return *process_injector();
}

void set_io_faults(const IoFaultSpec& spec) { process_injector().emplace(spec); }

}  // namespace memopt
