// Deterministic bounded retry with exponential backoff.
//
// RetryPolicy::run wraps an I/O operation and retries it when — and only
// when — it throws TransientIoError. Structural errors (plain memopt::Error,
// corruption detected by checksums, malformed containers) propagate on the
// first throw: retrying them would just re-read the same bad bytes.
//
// Determinism contract: the backoff schedule, including jitter, is a pure
// function of (site, unit, attempt) under the policy's seed — drawn from
// support/rng, never from wall clock or a global RNG. Two replays of the
// same faulted run therefore sleep the same nominal delays in the same
// places, and with `enable_sleep = false` (the test configuration) the
// schedule is still computed but no time passes, so retry-path tests are
// instant and the delay values themselves are assertable.
//
// Paired with IoFaultInjector's guarantee that attempts >= max_failures
// never fail, any policy with max_attempts > the injector's max_failures
// (defaults: 4 > 2) converges on every site.
#pragma once

#include <cstdint>
#include <string_view>

#include "support/durable/io_faults.hpp"

namespace memopt {

struct RetryPolicy {
    std::uint32_t max_attempts = 4;      ///< total tries, including the first
    std::uint64_t base_delay_us = 200;   ///< nominal delay before attempt 1's retry
    double multiplier = 4.0;             ///< exponential growth per retry
    std::uint64_t max_delay_us = 50000;  ///< backoff ceiling
    std::uint64_t jitter_seed = 0;       ///< seeds the deterministic jitter stream
    bool enable_sleep = true;            ///< false: compute delays but do not sleep

    /// Deterministic backoff for the retry after attempt `attempt` (0-based)
    /// of `unit` at `site`: min(base * multiplier^attempt, max) plus up to
    /// +50% jitter drawn from an Rng keyed on (jitter_seed, site, unit,
    /// attempt). Pure function; never consults wall clock.
    std::uint64_t delay_us(std::string_view site, std::uint64_t unit,
                           std::uint32_t attempt) const;

    /// Sleep for delay_us(...) when enable_sleep; otherwise a no-op.
    void backoff(std::string_view site, std::uint64_t unit, std::uint32_t attempt) const;

    /// Run `fn` up to max_attempts times, backing off between attempts.
    /// Only TransientIoError is retried; the last attempt's exception
    /// propagates. `fn` is called as fn(attempt) so injection sites can key
    /// their fault decision on the attempt number.
    template <typename Fn>
    auto run(std::string_view site, std::uint64_t unit, Fn&& fn) const
        -> decltype(fn(std::uint32_t{0})) {
        for (std::uint32_t attempt = 0;; ++attempt) {
            try {
                return fn(attempt);
            } catch (const TransientIoError&) {
                if (attempt + 1 >= max_attempts) throw;
                backoff(site, unit, attempt);
            }
        }
    }

    /// The process-wide policy: defaults, overridable via MEMOPT_IO_RETRY
    /// ("max_attempts,base_us[,max_us]"); parsed once.
    static const RetryPolicy& process();
};

/// Parse "max_attempts,base_us[,max_us]". Throws memopt::Error on bad input.
RetryPolicy parse_retry_policy(const std::string& spec);

}  // namespace memopt
