#include "support/durable/atomic_file.hpp"

#include <cstdio>
#include <fstream>

#include "support/assert.hpp"
#include "support/durable/retry.hpp"

#if !defined(_WIN32)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace memopt {

namespace {

/// Force file contents to stable storage. No-op where fsync is unavailable;
/// rename atomicity still holds, only power-loss durability is weakened.
void sync_file(const std::string& path) {
#if !defined(_WIN32)
    const int fd = ::open(path.c_str(), O_WRONLY);
    if (fd < 0) throw TransientIoError("atomic_write: reopen for fsync failed: " + path);
    const int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) throw TransientIoError("atomic_write: fsync failed: " + path);
#else
    (void)path;
#endif
}

/// Best-effort fsync of the directory entry so the rename itself survives
/// power loss. Failure is ignored: some filesystems reject directory fds.
void sync_parent_dir(const std::string& path) {
#if !defined(_WIN32)
    const std::size_t slash = path.find_last_of('/');
    const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
    const int fd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY);
    if (fd >= 0) {
        ::fsync(fd);
        ::close(fd);
    }
#else
    (void)path;
#endif
}

}  // namespace

void atomic_write(const std::string& path, const std::function<void(std::ostream&)>& body,
                  std::ios_base::openmode mode) {
    const std::string tmp = path + ".tmp";
    const std::uint64_t unit = fnv1a64(path);
    try {
        RetryPolicy::process().run("atomic.write", unit, [&](std::uint32_t attempt) {
            io_faults().maybe_fail("atomic.write", unit, attempt);
            {
                std::ofstream os(  // memopt-lint: durable-write
                    tmp, mode | std::ios_base::out | std::ios_base::trunc);
                if (!os) throw TransientIoError("atomic_write: cannot open temp file: " + tmp);
                body(os);
                os.flush();
                if (!os) throw TransientIoError("atomic_write: write failed: " + tmp);
            }
            sync_file(tmp);
            if (std::rename(tmp.c_str(), path.c_str()) != 0) {
                throw TransientIoError("atomic_write: rename to final path failed: " + path);
            }
            sync_parent_dir(path);
            return 0;
        });
    } catch (const TransientIoError& e) {
        std::remove(tmp.c_str());
        throw Error(std::string("atomic_write: retries exhausted: ") + e.what());
    } catch (...) {
        std::remove(tmp.c_str());
        throw;
    }
}

void atomic_write(const std::string& path, const std::string& contents,
                  std::ios_base::openmode mode) {
    atomic_write(
        path, [&](std::ostream& os) { os.write(contents.data(), static_cast<std::streamsize>(contents.size())); },
        mode);
}

// ---------------------------------------------------------------------------
// AtomicOstream

AtomicOstream::AtomicOstream(AtomicOstream&& other) noexcept
    : std::ofstream(std::move(other)), path_(std::move(other.path_)),
      decided_(other.decided_) {
    other.decided_ = true;  // the moved-from shell owns nothing to publish
    other.path_.clear();
}

AtomicOstream& AtomicOstream::operator=(AtomicOstream&& other) noexcept {
    if (this != &other) {
        if (!decided_) discard();
        std::ofstream::operator=(std::move(other));
        path_ = std::move(other.path_);
        decided_ = other.decided_;
        other.decided_ = true;
        other.path_.clear();
    }
    return *this;
}

AtomicOstream::~AtomicOstream() {
    if (decided_) return;
    if (!commit()) {
        std::fprintf(stderr, "memopt: warning: failed to publish '%s' (kept staged data off)\n",
                     path_.c_str());
    }
}

bool AtomicOstream::open_staged(const std::string& path, std::ios_base::openmode mode) {
    if (!decided_) discard();
    path_ = path;
    open(path + ".tmp", mode | std::ios_base::out | std::ios_base::trunc);
    decided_ = !is_open();
    return is_open();
}

bool AtomicOstream::commit() {
    if (decided_) return true;
    decided_ = true;
    const std::string tmp = path_ + ".tmp";
    flush();
    const bool wrote_ok = good();
    close();
    if (!wrote_ok) {
        std::remove(tmp.c_str());
        return false;
    }
    try {
        sync_file(tmp);
    } catch (const TransientIoError&) {
        std::remove(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    sync_parent_dir(path_);
    return true;
}

void AtomicOstream::discard() {
    if (decided_) return;
    decided_ = true;
    close();
    std::remove((path_ + ".tmp").c_str());
}

}  // namespace memopt
