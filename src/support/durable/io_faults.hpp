// Seeded I/O fault injection — the simulator's own execution faults.
//
// PR 3 injected faults into the *simulated* memory; this module injects
// them into the simulator's *own* I/O so the durable-execution layer can be
// exercised deterministically: transient open failures, short reads, and
// checksum-tripping bit flips surface as TransientIoError at the injection
// sites in the trace readers/writers, and the paired RetryPolicy
// (support/durable/retry.hpp) recovers from them.
//
// Determinism contract (same family as fault/inject): whether operation
// attempt `attempt` on unit `unit` of site `site` fails is a pure function
// of (spec.seed, site, unit, attempt) — never of call order, thread
// schedule, or wall clock. A failed attempt retried with attempt+1 draws an
// independent decision, and attempts >= spec.max_failures never fail, so a
// bounded retry loop with more than max_failures attempts always succeeds.
// Replaying a faulted run with the same seed reproduces the exact same
// failures in the exact same places.
//
// Activation: the process-wide injector parses the MEMOPT_IO_FAULTS
// environment variable once — "seed,rate[,max=N]" (e.g. "7,0.25" or
// "7,0.25,max=1"). Unset/empty means disabled: every site check is a single
// predictable branch and no RNG is touched.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "support/assert.hpp"

namespace memopt {

/// A retryable I/O failure: the operation may succeed if repeated.
/// Thrown by the fault-injection sites and by real-IO wrappers that can
/// distinguish transient conditions; RetryPolicy::run only retries this
/// type — structural corruption (plain memopt::Error) is never retried.
class TransientIoError : public Error {
public:
    using Error::Error;
};

/// FNV-1a 64-bit — the repository's standing checksum/name-hash primitive
/// (same constants as the .mtsc block checksums).
std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes);
std::uint64_t fnv1a64(std::string_view text);

struct IoFaultSpec {
    bool enabled = false;
    std::uint64_t seed = 0;
    double rate = 0.0;            ///< per-(site,unit,attempt) failure probability
    std::uint32_t max_failures = 2;  ///< attempts >= this never fail (bounds retries)
};

/// Parse "seed,rate[,max=N]". Throws memopt::Error on malformed input.
IoFaultSpec parse_io_fault_spec(const std::string& spec);

class IoFaultInjector {
public:
    explicit IoFaultInjector(const IoFaultSpec& spec) : spec_(spec) {}

    bool enabled() const { return spec_.enabled && spec_.rate > 0.0; }
    const IoFaultSpec& spec() const { return spec_; }

    /// Pure function of (seed, site, unit, attempt): true when that attempt
    /// is scheduled to fail. Always false for attempt >= max_failures.
    bool should_fail(std::string_view site, std::uint64_t unit, std::uint64_t attempt) const;

    /// Throw TransientIoError when should_fail(); no-op when disabled.
    void maybe_fail(std::string_view site, std::uint64_t unit, std::uint64_t attempt) const;

private:
    IoFaultSpec spec_;
};

/// The process-wide injector, configured from MEMOPT_IO_FAULTS on first
/// use. Tests override it with set_io_faults() (not thread-safe; call
/// outside parallel regions).
const IoFaultInjector& io_faults();
void set_io_faults(const IoFaultSpec& spec);

}  // namespace memopt
