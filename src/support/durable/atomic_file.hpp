// Crash-safe artifact writes: temp file → flush/fsync → rename.
//
// A final artifact must never exist under its real name in a partial state.
// Every writer of a result the user will consume (traces, stream containers,
// --json documents, bench sink files, checkpoints) funnels through this
// module: bytes go to `<path>.tmp` in the same directory, are flushed and
// fsync'd, and the temp file is renamed over the destination. rename(2)
// within one filesystem is atomic, so a reader — or a crash at any
// instant — sees either the complete old file or the complete new file,
// never a truncation. memopt_lint rule R1 enforces the funnel: opening a
// final artifact path with a raw ofstream outside support/durable is a
// lint finding.
//
// The `.tmp` suffix is fixed and deterministic (no PID, no randomness):
// memopt's writers are single-process per artifact by construction, a
// leftover temp from a crashed run is overwritten by the next run, and a
// fixed name keeps fault-injection replays byte-identical.
#pragma once

#include <fstream>
#include <functional>
#include <ios>
#include <string>

namespace memopt {

/// Write a final artifact crash-safely. `body` receives an output stream
/// positioned at the start of `<path>.tmp` (opened with `mode` plus
/// out|trunc) and may seek/write freely; when it returns, the stream is
/// flushed, fsync'd, and the temp file is renamed onto `path`.
///
/// The open→body→commit cycle runs under RetryPolicy::process() at
/// injection site "atomic.write" (unit = fnv1a64(path)): TransientIoError
/// from `body` or the commit discards the temp file and re-runs the whole
/// cycle, which is idempotent because nothing touches `path` until the
/// final rename. Any other exception from `body` propagates after the temp
/// file is removed, leaving `path` untouched.
///
/// Throws memopt::Error when the temp file cannot be opened or the
/// commit (flush/fsync/rename) fails after retries.
void atomic_write(const std::string& path, const std::function<void(std::ostream&)>& body,
                  std::ios_base::openmode mode = std::ios_base::openmode{});

/// Convenience overload: write a fully rendered document.
void atomic_write(const std::string& path, const std::string& contents,
                  std::ios_base::openmode mode = std::ios_base::openmode{});

/// Incremental crash-safe writer for long-lived sinks (bench CSV/JSON
/// exports): an ofstream that stages into `<path>.tmp` and renames onto the
/// final path on commit(). The destructor auto-commits an open, undecided
/// stream — a sink held until scope exit publishes on clean exit — but a
/// crash or discard() before that leaves the final path untouched.
/// Destructor commit failures warn on stderr (destructors must not throw);
/// call commit() explicitly where failure must be fatal.
class AtomicOstream final : public std::ofstream {
public:
    AtomicOstream() = default;
    AtomicOstream(AtomicOstream&& other) noexcept;
    AtomicOstream& operator=(AtomicOstream&& other) noexcept;
    ~AtomicOstream() override;

    /// Open `<path>.tmp` (mode | out | trunc). Returns is_open().
    bool open_staged(const std::string& path,
                     std::ios_base::openmode mode = std::ios_base::openmode{});

    /// Flush, fsync, rename onto the final path. Idempotent; false (with
    /// the temp file removed) when any step fails.
    bool commit();

    /// Close and delete the temp file; the final path is never touched.
    void discard();

    const std::string& target_path() const { return path_; }

private:
    std::string path_;
    bool decided_ = true;  ///< no commit/discard pending (nothing staged)
};

}  // namespace memopt
