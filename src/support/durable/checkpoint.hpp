// memopt.ckpt.v1 — the checkpoint container for long-run engines.
//
// A checkpoint is an append-only log of completed work units, snapshotted
// atomically every N units so that a killed run resumes from the last
// snapshot instead of from zero. Records are opaque byte strings: the
// engine that wrote them (fault campaign, study suite) defines their
// encoding; the container only guarantees integrity and attribution.
//
// Layout (explicit little-endian, like .mtsc):
//
//   offset  size  field
//        0     4  magic "MCKP"
//        4     4  u32 version (1)
//        8     4  u32 engine id (kCkptEngine*)
//       12     4  u32 reserved (0)
//       16     8  u64 config hash — fingerprint of every parameter that
//                 shapes per-unit results; resume refuses a mismatch
//       24     8  u64 record count
//       32     …  records: u32 length, then that many bytes, back to back
//      end-8   8  u64 FNV-1a-64 of every byte before this field
//
// Corruption policy: load_checkpoint() validates magic, version, engine,
// bounds of every record length against the file size, and the trailing
// checksum, and throws memopt::Error naming the offending field — it never
// reads past the buffer or trusts a length it has not bounded.
// load_checkpoint_for_resume() converts any such failure into a one-line
// stderr diagnostic plus nullopt, so a damaged checkpoint degrades to a
// fresh start, never to UB or a crash.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace memopt {

inline constexpr std::uint32_t kCkptVersion = 1;
inline constexpr std::uint32_t kCkptEngineFault = 1;
inline constexpr std::uint32_t kCkptEngineStudy = 2;

/// Total container size cap: a checkpoint larger than this is rejected
/// before any allocation sized from file contents.
inline constexpr std::uint64_t kMaxCheckpointBytes = 1ull << 30;

struct Checkpoint {
    std::uint32_t engine = 0;
    std::uint64_t config_hash = 0;
    std::vector<std::string> records;  ///< one opaque record per completed unit
};

/// Serialize to the layout above. Deterministic: equal inputs, equal bytes.
std::string encode_checkpoint(const Checkpoint& ckpt);

/// Write via atomic_write: the file under `path` is always a complete,
/// checksummed snapshot — a crash mid-save leaves the previous one.
void save_checkpoint(const std::string& path, const Checkpoint& ckpt);

/// Parse and validate; throws memopt::Error on any structural defect.
Checkpoint load_checkpoint(const std::string& path);

/// Resume entry point: missing file → nullopt (silent, normal first run);
/// corrupt file or engine/config mismatch → one-line stderr warning naming
/// the path and reason, then nullopt (fresh-start fallback).
std::optional<Checkpoint> load_checkpoint_for_resume(const std::string& path,
                                                     std::uint32_t engine,
                                                     std::uint64_t config_hash);

}  // namespace memopt
