#include "support/durable/checkpoint.hpp"

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "support/assert.hpp"
#include "support/durable/atomic_file.hpp"
#include "support/durable/io_faults.hpp"

namespace memopt {

namespace {

constexpr char kCkptMagic[4] = {'M', 'C', 'K', 'P'};
constexpr std::size_t kHeaderBytes = 32;

void store_u32(std::uint8_t* p, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void store_u64(std::uint8_t* p, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t le_u32(const std::uint8_t* p) {
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
    return v;
}

std::uint64_t le_u64(const std::uint8_t* p) {
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
    return v;
}

}  // namespace

std::string encode_checkpoint(const Checkpoint& ckpt) {
    std::size_t body = 0;
    for (const std::string& r : ckpt.records) body += 4 + r.size();
    std::string out(kHeaderBytes + body + 8, '\0');
    auto* p = reinterpret_cast<std::uint8_t*>(out.data());
    std::memcpy(p, kCkptMagic, 4);
    store_u32(p + 4, kCkptVersion);
    store_u32(p + 8, ckpt.engine);
    store_u32(p + 12, 0);
    store_u64(p + 16, ckpt.config_hash);
    store_u64(p + 24, static_cast<std::uint64_t>(ckpt.records.size()));
    std::size_t at = kHeaderBytes;
    for (const std::string& r : ckpt.records) {
        store_u32(p + at, static_cast<std::uint32_t>(r.size()));
        std::memcpy(p + at + 4, r.data(), r.size());
        at += 4 + r.size();
    }
    store_u64(p + at, fnv1a64(std::span<const std::uint8_t>(p, at)));
    return out;
}

void save_checkpoint(const std::string& path, const Checkpoint& ckpt) {
    require(ckpt.records.size() <= (kMaxCheckpointBytes - kHeaderBytes - 8) / 4,
            "checkpoint: too many records");
    atomic_write(path, encode_checkpoint(ckpt), std::ios_base::binary);
}

Checkpoint load_checkpoint(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    require(is.good(), "checkpoint: cannot open: " + path);
    is.seekg(0, std::ios::end);
    const auto end = is.tellg();
    require(end >= 0, "checkpoint: cannot size: " + path);
    const auto size = static_cast<std::uint64_t>(end);
    require(size <= kMaxCheckpointBytes, "checkpoint: file exceeds size cap: " + path);
    require(size >= kHeaderBytes + 8, "checkpoint: truncated header: " + path);
    is.seekg(0, std::ios::beg);
    std::string buf(static_cast<std::size_t>(size), '\0');
    is.read(buf.data(), static_cast<std::streamsize>(size));
    require(is.gcount() == static_cast<std::streamsize>(size),
            "checkpoint: short read: " + path);

    const auto* p = reinterpret_cast<const std::uint8_t*>(buf.data());
    require(std::memcmp(p, kCkptMagic, 4) == 0, "checkpoint: bad magic: " + path);
    require(le_u32(p + 4) == kCkptVersion, "checkpoint: unsupported version: " + path);
    const std::uint64_t stated = fnv1a64(std::span<const std::uint8_t>(p, size - 8));
    require(le_u64(p + size - 8) == stated, "checkpoint: checksum mismatch: " + path);

    Checkpoint ckpt;
    ckpt.engine = le_u32(p + 8);
    require(le_u32(p + 12) == 0, "checkpoint: nonzero reserved field: " + path);
    ckpt.config_hash = le_u64(p + 16);
    const std::uint64_t count = le_u64(p + 24);
    const std::uint64_t body_end = size - 8;
    // Every record needs at least its 4-byte length prefix, so `count` is
    // bounded by the bytes actually present — reject before reserving.
    require(count <= (body_end - kHeaderBytes) / 4, "checkpoint: record count exceeds file: " + path);
    ckpt.records.reserve(static_cast<std::size_t>(count));
    std::uint64_t at = kHeaderBytes;
    for (std::uint64_t i = 0; i < count; ++i) {
        require(at + 4 <= body_end, "checkpoint: record length truncated: " + path);
        const std::uint32_t len = le_u32(p + at);
        require(at + 4 + len <= body_end, "checkpoint: record payload truncated: " + path);
        ckpt.records.emplace_back(buf.data() + at + 4, len);
        at += 4 + len;
    }
    require(at == body_end, "checkpoint: trailing bytes after records: " + path);
    return ckpt;
}

std::optional<Checkpoint> load_checkpoint_for_resume(const std::string& path,
                                                     std::uint32_t engine,
                                                     std::uint64_t config_hash) {
    std::error_code ec;
    if (!std::filesystem::exists(path, ec)) return std::nullopt;
    Checkpoint ckpt;
    try {
        ckpt = load_checkpoint(path);
    } catch (const Error& e) {
        std::cerr << "memopt: warning: ignoring unusable checkpoint (" << e.what()
                  << "); starting fresh\n";
        return std::nullopt;
    }
    if (ckpt.engine != engine) {
        std::cerr << "memopt: warning: checkpoint " << path
                  << " belongs to a different engine; starting fresh\n";
        return std::nullopt;
    }
    if (ckpt.config_hash != config_hash) {
        std::cerr << "memopt: warning: checkpoint " << path
                  << " was written under a different configuration; starting fresh\n";
        return std::nullopt;
    }
    return ckpt;
}

}  // namespace memopt
