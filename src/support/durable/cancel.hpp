// Cooperative watchdog: deadline + signal driven cancellation.
//
// Long-run engines poll CancellationToken at natural unit boundaries —
// stream_accumulate chunk boundaries, campaign trial batches, study kernel
// completions — instead of being torn down asynchronously. On trigger the
// engine checkpoints what it has, the CLI emits a memopt.report.v1
// document with "partial": true plus the reason, and the process exits
// with code 3 (documented in DESIGN.md §9). Nothing is lost: rerunning
// with --resume picks up from the checkpoint and converges on the exact
// bytes an uninterrupted run would have produced.
//
// Two independent trip wires share one token:
//   - a wall-clock deadline armed by --deadline-sec, and
//   - SIGINT/SIGTERM, recorded by an async-signal-safe flag
//     (volatile std::sig_atomic_t) that the handler sets and check()
//     polls — the handler itself does nothing else.
//
// check() may be called from worker threads (chunk boundaries inside
// parallel regions), so trip state is atomic and the reason string is
// mutex-guarded. check() throws CancelledError; the exception unwinds
// through parallel_map/parallel_for via their normal smallest-index
// rethrow policy, so cancellation inside a parallel region behaves like
// any other worker exception and never deadlocks the pool.
#pragma once

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>

#include "support/assert.hpp"

namespace memopt {

/// Raised by CancellationToken::check() when a deadline or signal tripped.
/// Engines that catch it must checkpoint before letting it propagate.
class CancelledError : public Error {
public:
    using Error::Error;
};

class CancellationToken {
public:
    /// Arm a wall-clock deadline `seconds` from now. 0 trips immediately
    /// (deterministic hook for exit-code tests); negative disarms.
    /// Call before entering parallel regions.
    void set_deadline_sec(double seconds);

    /// Manual trip (tests, embedding callers).
    void request(const std::string& reason);

    /// True once any trip wire has fired. Latches the reason on first trip.
    bool triggered();

    /// Reason for the trip; empty while not triggered.
    std::string reason() const;

    /// Throw CancelledError when triggered; cheap no-op otherwise.
    void check();

    /// Disarm everything (tests; also clears a consumed signal flag).
    void reset();

    /// The process-wide token polled by engines. Signal handlers installed
    /// by install_cancellation_handlers() feed it.
    static CancellationToken& global();

private:
    std::atomic<bool> requested_{false};
    std::atomic<bool> triggered_{false};
    bool deadline_armed_ = false;
    std::chrono::steady_clock::time_point deadline_{};
    mutable std::mutex reason_mutex_;
    std::string reason_;

    void latch(const char* why);
};

/// Route SIGINT and SIGTERM into the global token. Idempotent.
void install_cancellation_handlers();

}  // namespace memopt
