#include "support/durable/retry.hpp"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <thread>

#include "support/rng.hpp"
#include "support/string_util.hpp"

namespace memopt {

namespace {

std::uint64_t mix64(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

}  // namespace

std::uint64_t RetryPolicy::delay_us(std::string_view site, std::uint64_t unit,
                                    std::uint32_t attempt) const {
    double nominal = static_cast<double>(base_delay_us) * std::pow(multiplier, attempt);
    const double ceiling = static_cast<double>(max_delay_us);
    if (nominal > ceiling) nominal = ceiling;
    Rng rng(mix64(jitter_seed ^ fnv1a64(site)) ^ mix64(unit) ^ mix64(attempt + 1));
    const double jittered = nominal * (1.0 + 0.5 * rng.next_double());
    return static_cast<std::uint64_t>(jittered);
}

void RetryPolicy::backoff(std::string_view site, std::uint64_t unit,
                          std::uint32_t attempt) const {
    const std::uint64_t us = delay_us(site, unit, attempt);
    if (enable_sleep && us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(us));
    }
}

RetryPolicy parse_retry_policy(const std::string& spec) {
    RetryPolicy policy;
    const auto fields = split(trim(spec), ',');
    require(fields.size() >= 2 && fields.size() <= 3,
            "MEMOPT_IO_RETRY: expected 'max_attempts,base_us[,max_us]'");
    const auto attempts = parse_int(trim(fields[0]));
    require(attempts.has_value() && *attempts >= 1 && *attempts <= 64,
            "MEMOPT_IO_RETRY: max_attempts must be in [1,64]");
    policy.max_attempts = static_cast<std::uint32_t>(*attempts);
    const auto base = parse_int(trim(fields[1]));
    require(base.has_value() && *base >= 0, "MEMOPT_IO_RETRY: bad base_us");
    policy.base_delay_us = static_cast<std::uint64_t>(*base);
    if (fields.size() == 3) {
        const auto cap = parse_int(trim(fields[2]));
        require(cap.has_value() && *cap >= 0, "MEMOPT_IO_RETRY: bad max_us");
        policy.max_delay_us = static_cast<std::uint64_t>(*cap);
    }
    return policy;
}

const RetryPolicy& RetryPolicy::process() {
    static const RetryPolicy policy = [] {
        const char* env = std::getenv("MEMOPT_IO_RETRY");
        return env != nullptr ? parse_retry_policy(env) : RetryPolicy{};
    }();
    return policy;
}

}  // namespace memopt
