// Deterministic pseudo-random number generation.
//
// All stochastic components of memopt (synthetic trace generators, search
// heuristics, test sweeps) take an explicit Rng so that every result in the
// repository is reproducible from a seed. No global RNG state exists.
#pragma once

#include <cstdint>
#include <vector>


namespace memopt {

/// xoshiro256** PRNG (Blackman & Vigna). Fast, high quality, 256-bit state,
/// seeded via SplitMix64 so that any 64-bit seed yields a well-mixed state.
class Rng {
public:
    /// Construct from a 64-bit seed. Equal seeds yield equal streams.
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

    /// Next raw 64-bit value.
    std::uint64_t next_u64();

    /// Uniform integer in [0, bound). `bound` must be > 0.
    /// Uses rejection sampling: no modulo bias.
    std::uint64_t next_below(std::uint64_t bound);

    /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
    std::int64_t next_in(std::int64_t lo, std::int64_t hi);

    /// Uniform double in [0, 1).
    double next_double();

    /// Bernoulli trial with probability `p` of returning true (clamped to [0,1]).
    bool next_bool(double p = 0.5);

    /// Standard normal variate (Box–Muller, one value per call).
    double next_gaussian();

    /// Geometric-like heavy-tailed block index in [0, n): probability of
    /// index i proportional to (1-alpha)^i. Used to synthesize skewed
    /// embedded access profiles. Requires n > 0 and 0 < alpha < 1.
    std::uint64_t next_zipf_like(std::uint64_t n, double alpha);

    /// Fisher–Yates shuffle of a vector, in place.
    template <typename T>
    void shuffle(std::vector<T>& v) {
        for (std::size_t i = v.size(); i > 1; --i) {
            const std::size_t j = static_cast<std::size_t>(next_below(i));
            using std::swap;
            swap(v[i - 1], v[j]);
        }
    }

private:
    std::uint64_t s_[4];
};

}  // namespace memopt
