#include "support/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <string>

#include "support/assert.hpp"
#include "support/metrics.hpp"

namespace memopt {

namespace {

constexpr std::size_t kMaxJobs = 256;

/// Set while a thread executes chunk work for some parallel region; nested
/// regions observe it and run inline.
thread_local bool t_in_parallel_region = false;

/// Shared-pool worker index of the calling thread; -1 everywhere else.
thread_local int t_worker_index = -1;

std::atomic<std::size_t> g_jobs_override{0};
std::atomic<bool> g_pool_created{false};

std::size_t env_jobs() {
    static const std::size_t parsed = [] {
        const char* env = std::getenv("MEMOPT_JOBS");
        if (env == nullptr || *env == '\0') return std::size_t{0};
        char* end = nullptr;
        const long value = std::strtol(env, &end, 10);
        if (end == env || *end != '\0' || value <= 0) return std::size_t{0};
        return std::min<std::size_t>(static_cast<std::size_t>(value), kMaxJobs);
    }();
    return parsed;
}

std::size_t hardware_jobs() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

/// Shared worker pool, created on first use by a region with jobs > 1.
/// Capacity is fixed at creation: enough workers for the largest plausible
/// region (hardware threads, MEMOPT_JOBS, and a floor of 4 so that
/// single-core containers still exercise real interleavings), minus the
/// participating caller. Regions never use more than jobs-1 of them.
ThreadPool& shared_pool() {
    static ThreadPool pool([] {
        const std::size_t want =
            std::max({hardware_jobs(), default_jobs(), std::size_t{4}});
        return std::clamp<std::size_t>(want, 2, 64) - 1;
    }());
    g_pool_created.store(true, std::memory_order_relaxed);
    return pool;
}

/// Shared state of one parallel_for region. Heap-allocated and owned
/// jointly by the caller and every helper task so that the completion
/// handshake never touches freed memory, no matter who finishes last.
struct ForRegion {
    explicit ForRegion(std::size_t size, const std::function<void(std::size_t)>& f)
        : n(size), fn(&f), errors(size) {}

    const std::size_t n;
    const std::function<void(std::size_t)>* fn;  ///< lives in the caller's frame
    std::atomic<std::size_t> next{0};
    std::vector<std::exception_ptr> errors;  ///< slot i written only by i's runner

    Mutex mutex;
    std::condition_variable_any done_cv;
    std::size_t helpers_finished MEMOPT_GUARDED_BY(mutex) = 0;

    /// Drain indices until the counter is exhausted. Exceptions are parked
    /// in their index slot; the region rethrows the smallest one.
    void drain() {
        t_in_parallel_region = true;
        std::size_t i;
        while ((i = next.fetch_add(1, std::memory_order_relaxed)) < n) {
            try {
                (*fn)(i);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        }
        t_in_parallel_region = false;
    }
};

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i)
        workers_.emplace_back([this, i] {
            t_worker_index = static_cast<int>(i);
            worker_main();
        });
}

ThreadPool::~ThreadPool() {
    {
        MutexLock lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
    MEMOPT_ASSERT_MSG(task != nullptr, "ThreadPool::submit: empty task");
    // Observability wrapper: queue-wait latency (enqueue to first
    // instruction) and a tasks-run tally. Lock-free recording; the wrapper
    // never alters task semantics or ordering.
    static MetricCounter& tasks_run = MetricsRegistry::instance().counter("pool.tasks_run");
    static MetricTimer& queue_wait = MetricsRegistry::instance().timer("pool.queue_wait");
    auto wrapped = [task = std::move(task),
                    enqueued = std::chrono::steady_clock::now()] {
        queue_wait.record(std::chrono::steady_clock::now() - enqueued);
        tasks_run.add();
        task();
    };
    {
        MutexLock lock(mutex_);
        require(!stop_, "ThreadPool::submit: pool is shutting down");
        queue_.push_back(std::move(wrapped));
    }
    cv_.notify_one();
}

void ThreadPool::worker_main() {
    t_in_parallel_region = true;  // pool workers only ever run region chunks
    for (;;) {
        std::function<void()> task;
        {
            MutexLock lock(mutex_);
            // Manual wait loop: the predicate reads guarded members, which
            // the analysis can only verify in a scope it can see the lock
            // in (a predicate lambda is analyzed as a separate, unlocked
            // function). cv_ waits on the Mutex itself (BasicLockable).
            while (!stop_ && queue_.empty()) cv_.wait(mutex_);
            if (queue_.empty()) return;  // stop_ set and queue drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

std::size_t default_jobs() {
    const std::size_t override_jobs = g_jobs_override.load(std::memory_order_relaxed);
    if (override_jobs != 0) return override_jobs;
    const std::size_t env = env_jobs();
    if (env != 0) return env;
    return hardware_jobs();
}

void set_default_jobs(std::size_t jobs) {
    g_jobs_override.store(std::min(jobs, kMaxJobs), std::memory_order_relaxed);
}

bool shared_pool_created() noexcept {
    return g_pool_created.load(std::memory_order_relaxed);
}

bool in_parallel_region() noexcept { return t_in_parallel_region; }

int pool_worker_index() noexcept { return t_worker_index; }

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t jobs) {
    MEMOPT_ASSERT_MSG(fn != nullptr, "parallel_for: empty function");
    if (n == 0) return;

    const std::size_t resolved = jobs == 0 ? default_jobs() : std::min(jobs, kMaxJobs);
    if (resolved <= 1 || n == 1 || t_in_parallel_region) {
        // Serial bypass: inline on this thread, no pool, direct exceptions.
        for (std::size_t i = 0; i < n; ++i) fn(i);
        return;
    }

    auto region = std::make_shared<ForRegion>(n, fn);
    ThreadPool& pool = shared_pool();
    const std::size_t helpers = std::min(resolved - 1, n - 1);
    for (std::size_t h = 0; h < helpers; ++h) {
        pool.submit([region] {
            region->drain();
            {
                MutexLock lock(region->mutex);
                // memopt-lint: guarded -- region->mutex held just above
                ++region->helpers_finished;
            }
            region->done_cv.notify_one();
        });
    }

    region->drain();
    {
        MutexLock lock(region->mutex);
        while (region->helpers_finished != helpers) region->done_cv.wait(region->mutex);
    }

    for (const std::exception_ptr& error : region->errors)
        if (error) std::rethrow_exception(error);
}

}  // namespace memopt
