#include "support/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "support/assert.hpp"

namespace memopt {

TablePrinter::TablePrinter(std::vector<std::string> header) : header_(std::move(header)) {
    require(!header_.empty(), "TablePrinter requires at least one column");
    aligns_.assign(header_.size(), Align::Right);
    aligns_[0] = Align::Left;
}

void TablePrinter::set_align(std::size_t col, Align align) {
    require(col < aligns_.size(), "set_align: column out of range");
    aligns_[col] = align;
}

void TablePrinter::add_row(std::vector<std::string> cells) {
    require(cells.size() == header_.size(), "add_row: cell count does not match header");
    rows_.push_back(Row{false, std::move(cells)});
}

void TablePrinter::add_separator() { rows_.push_back(Row{true, {}}); }

void TablePrinter::print(std::ostream& os) const {
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
    for (const Row& r : rows_) {
        if (r.separator) continue;
        for (std::size_t c = 0; c < r.cells.size(); ++c)
            widths[c] = std::max(widths[c], r.cells[c].size());
    }

    auto emit_cell = [&](const std::string& s, std::size_t c) {
        const std::size_t pad = widths[c] - s.size();
        if (aligns_[c] == Align::Left) {
            os << s << std::string(pad, ' ');
        } else {
            os << std::string(pad, ' ') << s;
        }
    };
    auto emit_rule = [&]() {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            os << std::string(widths[c] + 2, '-');
            os << (c + 1 == widths.size() ? "\n" : "+");
        }
    };

    auto emit_row = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << ' ';
            emit_cell(cells[c], c);
            os << (c + 1 == cells.size() ? " \n" : " |");
        }
    };

    emit_row(header_);
    emit_rule();
    for (const Row& r : rows_) {
        if (r.separator) {
            emit_rule();
        } else {
            emit_row(r.cells);
        }
    }
}

std::string TablePrinter::to_string() const {
    std::ostringstream oss;
    print(oss);
    return oss.str();
}

void print_banner(std::ostream& os, const std::string& title) {
    os << "\n== " << title << " ==\n";
}

}  // namespace memopt
