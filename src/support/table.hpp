// Console table rendering for bench harnesses and example programs.
//
// The reproduction benches print the tables/figures from the paper; this
// class renders them with aligned columns so the output is directly
// comparable to the published tables.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace memopt {

/// Column alignment for TablePrinter.
enum class Align { Left, Right };

/// Builds and renders a fixed-column text table.
///
/// Usage:
///   TablePrinter t({"benchmark", "energy [nJ]", "savings [%]"});
///   t.add_row({"fir", "12.3", "25.1"});
///   t.print(std::cout);
class TablePrinter {
public:
    /// Construct with header labels; the column count is fixed from here on.
    explicit TablePrinter(std::vector<std::string> header);

    /// Set alignment for one column (default: first column Left, rest Right).
    void set_align(std::size_t col, Align align);

    /// Append a data row; must match the header's column count.
    void add_row(std::vector<std::string> cells);

    /// Append a horizontal separator row.
    void add_separator();

    /// Render to a stream.
    void print(std::ostream& os) const;

    /// Render to a string (used by tests).
    std::string to_string() const;

    std::size_t rows() const { return rows_.size(); }
    std::size_t columns() const { return header_.size(); }

private:
    struct Row {
        bool separator = false;
        std::vector<std::string> cells;
    };

    std::vector<std::string> header_;
    std::vector<Align> aligns_;
    std::vector<Row> rows_;
};

/// Print a section banner ("== title ==") used to label bench output blocks.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace memopt
