// Process-wide metrics registry — named counters and timers for the
// observability layer.
//
// Design rules:
//  * Recording is lock-free: counter/timer values are relaxed atomics, so
//    instrumented hot paths (flow stages, the thread pool, the workload
//    repository) stay safe and cheap under the parallel runtime.
//  * Entries are immortal: counter()/timer() return references that stay
//    valid for the process lifetime (the registry is intentionally leaked,
//    so worker threads may still record during static destruction), and
//    reset() zeroes values without invalidating references. Call sites can
//    therefore cache `static MetricCounter& c = ...;` and skip the name
//    lookup after first use.
//  * Metrics never feed back into results: they observe wall-clock and
//    event counts only, so instrumented code remains bit-identical at any
//    job count. Timer values are inherently non-deterministic; exported
//    schemas keep them in a separate "metrics" section from "results".
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "support/thread_safety.hpp"

namespace memopt {

class JsonWriter;

/// Monotonic event tally.
class MetricCounter {
public:
    void add(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
    std::uint64_t value() const noexcept { return value_.load(std::memory_order_relaxed); }
    void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

private:
    std::atomic<std::uint64_t> value_{0};
};

/// Accumulated duration plus invocation count.
class MetricTimer {
public:
    void record(std::chrono::nanoseconds elapsed) noexcept {
        count_.fetch_add(1, std::memory_order_relaxed);
        total_ns_.fetch_add(static_cast<std::uint64_t>(elapsed.count()),
                            std::memory_order_relaxed);
    }
    std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
    std::uint64_t total_ns() const noexcept { return total_ns_.load(std::memory_order_relaxed); }
    void reset() noexcept {
        count_.store(0, std::memory_order_relaxed);
        total_ns_.store(0, std::memory_order_relaxed);
    }

private:
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> total_ns_{0};
};

/// Point-in-time copy of every registered metric, sorted by name.
struct MetricsSnapshot {
    struct Counter {
        std::string name;
        std::uint64_t value;
    };
    struct Timer {
        std::string name;
        std::uint64_t count;
        std::uint64_t total_ns;
    };

    std::vector<Counter> counters;
    std::vector<Timer> timers;

    /// Serialize as {"counters": {name: value}, "timers": {name: {"count",
    /// "total_ms"}}} — the "metrics" section of every exported schema.
    void to_json(JsonWriter& w) const;
};

/// The process-wide registry. Lookup takes a mutex (creation is rare);
/// recording on the returned references is lock-free.
class MetricsRegistry {
public:
    static MetricsRegistry& instance();

    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    /// The counter/timer registered under `name`, created on first use.
    MetricCounter& counter(std::string_view name);
    MetricTimer& timer(std::string_view name);

    MetricsSnapshot snapshot() const;

    /// Zero every value. Entries (and outstanding references) stay valid.
    void reset();

private:
    MetricsRegistry() = default;

    mutable Mutex mutex_;
    std::map<std::string, std::unique_ptr<MetricCounter>, std::less<>> counters_
        MEMOPT_GUARDED_BY(mutex_);
    std::map<std::string, std::unique_ptr<MetricTimer>, std::less<>> timers_
        MEMOPT_GUARDED_BY(mutex_);
};

/// RAII wall-clock timer: records the scope's duration on destruction.
class ScopedTimer {
public:
    explicit ScopedTimer(MetricTimer& timer)
        : timer_(timer), start_(std::chrono::steady_clock::now()) {}
    explicit ScopedTimer(std::string_view name)
        : ScopedTimer(MetricsRegistry::instance().timer(name)) {}

    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

    ~ScopedTimer() { timer_.record(std::chrono::steady_clock::now() - start_); }

private:
    MetricTimer& timer_;
    std::chrono::steady_clock::time_point start_;
};

}  // namespace memopt
