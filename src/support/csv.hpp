// Minimal CSV writing (RFC 4180 quoting) for exporting bench series.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace memopt {

/// Streams rows of comma-separated values with correct quoting.
class CsvWriter {
public:
    /// Writes to an externally owned stream; the stream must outlive this object.
    explicit CsvWriter(std::ostream& os) : os_(os) {}

    /// Write one row; fields containing commas/quotes/newlines are quoted.
    void write_row(const std::vector<std::string>& fields);

    /// Convenience: format doubles with six significant digits.
    void write_row_numeric(const std::string& label, const std::vector<double>& values);

private:
    std::ostream& os_;
};

/// Quote one CSV field if needed (exposed for tests).
std::string csv_escape(const std::string& field);

}  // namespace memopt
