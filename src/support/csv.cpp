#include "support/csv.hpp"

#include <ostream>

#include "support/string_util.hpp"

namespace memopt {

std::string csv_escape(const std::string& field) {
    const bool needs_quote = field.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quote) return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"') out += "\"\"";
        else out += c;
    }
    out += '"';
    return out;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
    for (std::size_t i = 0; i < fields.size(); ++i) {
        os_ << csv_escape(fields[i]);
        if (i + 1 < fields.size()) os_ << ',';
    }
    os_ << '\n';
}

void CsvWriter::write_row_numeric(const std::string& label, const std::vector<double>& values) {
    std::vector<std::string> fields;
    fields.reserve(values.size() + 1);
    fields.push_back(label);
    for (double v : values) fields.push_back(format("%.6g", v));
    write_row(fields);
}

}  // namespace memopt
