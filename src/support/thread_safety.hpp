// Clang Thread Safety Analysis annotations for memopt's mutex-protected
// state (MetricsRegistry, the thread pool, WorkloadRepository).
//
// The annotations make the locking discipline machine-checked: every
// member marked MEMOPT_GUARDED_BY(m) may only be touched while `m` is
// held, and -Wthread-safety (promoted to an error in the clang CI leg via
// MEMOPT_THREAD_SAFETY_ANALYSIS=ON) rejects any new access path that
// forgets the lock. Under gcc — which has no thread-safety analysis — the
// macros compile away entirely, so the annotated code is zero-cost and
// identical in behaviour on every toolchain.
//
// libstdc++'s std::mutex / std::lock_guard carry no capability
// annotations, so annotating members with the raw types would only
// produce -Wthread-safety-attributes noise and invisible acquisitions.
// memopt therefore uses the canonical annotated wrapper pair from the
// Clang documentation:
//
//   * memopt::Mutex      — a std::mutex declared as a capability; also a
//                          BasicLockable, so std::condition_variable_any
//                          can wait on it directly.
//   * memopt::MutexLock  — the scoped acquire/release guard
//                          (std::lock_guard with annotations).
//
// Usage:
//   mutable Mutex mutex_;
//   std::deque<Task> queue_ MEMOPT_GUARDED_BY(mutex_);
//   ...
//   MutexLock lock(mutex_);
//   queue_.push_back(...);
#pragma once

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define MEMOPT_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef MEMOPT_THREAD_ANNOTATION
#define MEMOPT_THREAD_ANNOTATION(x)  // gcc / pre-capability clang: no-op
#endif

#define MEMOPT_CAPABILITY(x) MEMOPT_THREAD_ANNOTATION(capability(x))
#define MEMOPT_SCOPED_CAPABILITY MEMOPT_THREAD_ANNOTATION(scoped_lockable)
#define MEMOPT_GUARDED_BY(x) MEMOPT_THREAD_ANNOTATION(guarded_by(x))
#define MEMOPT_PT_GUARDED_BY(x) MEMOPT_THREAD_ANNOTATION(pt_guarded_by(x))
#define MEMOPT_REQUIRES(...) \
    MEMOPT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define MEMOPT_ACQUIRE(...) \
    MEMOPT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define MEMOPT_RELEASE(...) \
    MEMOPT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define MEMOPT_TRY_ACQUIRE(...) \
    MEMOPT_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define MEMOPT_EXCLUDES(...) MEMOPT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define MEMOPT_ASSERT_CAPABILITY(x) MEMOPT_THREAD_ANNOTATION(assert_capability(x))
#define MEMOPT_RETURN_CAPABILITY(x) MEMOPT_THREAD_ANNOTATION(lock_returned(x))
#define MEMOPT_NO_THREAD_SAFETY_ANALYSIS \
    MEMOPT_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace memopt {

/// std::mutex declared as a thread-safety capability. Satisfies
/// BasicLockable, so std::condition_variable_any waits on it directly
/// (`cv.wait(mutex_)` inside a MutexLock scope — the analysis does not
/// model the release/reacquire inside wait, which is the documented and
/// intended treatment of condition variables).
class MEMOPT_CAPABILITY("mutex") Mutex {
public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() MEMOPT_ACQUIRE() { mutex_.lock(); }
    void unlock() MEMOPT_RELEASE() { mutex_.unlock(); }
    bool try_lock() MEMOPT_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

private:
    std::mutex mutex_;
};

/// Scoped acquire/release of a Mutex — std::lock_guard with the
/// annotations the analysis needs to see the acquisition.
class MEMOPT_SCOPED_CAPABILITY MutexLock {
public:
    explicit MutexLock(Mutex& mutex) MEMOPT_ACQUIRE(mutex) : mutex_(mutex) {
        mutex_.lock();
    }
    ~MutexLock() MEMOPT_RELEASE() { mutex_.unlock(); }

    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

private:
    Mutex& mutex_;
};

}  // namespace memopt
