#include "support/string_util.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace memopt {

std::string_view trim(std::string_view s) {
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
    return s.substr(b, e - b);
}

std::vector<std::string_view> split(std::string_view s, char delim) {
    std::vector<std::string_view> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == delim) {
            out.push_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::vector<std::string_view> split_ws(std::string_view s) {
    std::vector<std::string_view> out;
    std::size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
        const std::size_t start = i;
        while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
        if (i > start) out.push_back(s.substr(start, i - start));
    }
    return out;
}

std::string to_lower(std::string_view s) {
    std::string out(s);
    for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

std::optional<std::int64_t> parse_int(std::string_view s) {
    s = trim(s);
    if (s.empty()) return std::nullopt;
    bool neg = false;
    if (s.front() == '-' || s.front() == '+') {
        neg = s.front() == '-';
        s.remove_prefix(1);
        if (s.empty()) return std::nullopt;
    }
    int base = 10;
    if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
        base = 16;
        s.remove_prefix(2);
        if (s.empty()) return std::nullopt;
    }
    std::uint64_t acc = 0;
    for (char c : s) {
        int digit = -1;
        if (c >= '0' && c <= '9') digit = c - '0';
        else if (base == 16 && c >= 'a' && c <= 'f') digit = c - 'a' + 10;
        else if (base == 16 && c >= 'A' && c <= 'F') digit = c - 'A' + 10;
        if (digit < 0 || digit >= base) return std::nullopt;
        acc = acc * static_cast<std::uint64_t>(base) + static_cast<std::uint64_t>(digit);
    }
    return neg ? -static_cast<std::int64_t>(acc) : static_cast<std::int64_t>(acc);
}

std::string format(const char* fmt, ...) {
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out;
    if (needed > 0) {
        out.resize(static_cast<std::size_t>(needed));
        std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
    }
    va_end(args_copy);
    return out;
}

std::string format_bytes(std::uint64_t bytes) {
    if (bytes >= (1ULL << 20) && bytes % (1ULL << 20) == 0)
        return format("%llu MiB", static_cast<unsigned long long>(bytes >> 20));
    if (bytes >= (1ULL << 10) && bytes % (1ULL << 10) == 0)
        return format("%llu KiB", static_cast<unsigned long long>(bytes >> 10));
    return format("%llu B", static_cast<unsigned long long>(bytes));
}

std::string format_fixed(double v, int decimals) { return format("%.*f", decimals, v); }

std::string format_energy_pj(double pj) {
    const double abs = pj < 0 ? -pj : pj;
    if (abs >= 1e9) return format("%.3f mJ", pj / 1e9);
    if (abs >= 1e6) return format("%.3f uJ", pj / 1e6);
    if (abs >= 1e3) return format("%.3f nJ", pj / 1e3);
    return format("%.1f pJ", pj);
}

}  // namespace memopt
