#include "support/assert.hpp"

#include <cstdio>
#include <cstdlib>

#include "support/parallel.hpp"

namespace memopt::detail {

void assert_fail(const char* expr, const char* file, int line, const std::string& msg) {
    std::fprintf(stderr, "memopt internal invariant violated: %s\n  at %s:%d\n", expr, file, line);
    if (!msg.empty()) std::fprintf(stderr, "  note: %s\n", msg.c_str());
    const int worker = pool_worker_index();
    if (worker >= 0) std::fprintf(stderr, "  in thread-pool worker %d\n", worker);
    std::fflush(stderr);
    std::abort();
}

}  // namespace memopt::detail
