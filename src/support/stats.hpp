// Small descriptive-statistics helpers used by reports and benches.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace memopt {

/// Streaming accumulator for count/mean/variance/min/max (Welford's method).
class Accumulator {
public:
    /// Add one sample.
    void add(double x);

    std::size_t count() const { return n_; }
    double sum() const { return sum_; }
    double mean() const;
    /// Sample variance (n-1 denominator); 0 for fewer than two samples.
    double variance() const;
    double stddev() const;
    double min() const;
    double max() const;

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> xs);

/// Sample standard deviation; 0 for fewer than two samples.
double stddev(std::span<const double> xs);

/// Geometric mean; requires all samples > 0; 0 for an empty span.
double geomean(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0,100]; requires a non-empty span.
double percentile(std::span<const double> xs, double p);

/// Relative change (a - b) / b expressed in percent; b must be nonzero.
double percent_change(double a, double b);

/// Savings of `opt` versus `base` in percent: 100 * (base - opt) / base.
double percent_savings(double base, double opt);

}  // namespace memopt
