#include "support/rng.hpp"

#include <cmath>

#include "support/assert.hpp"

namespace memopt {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& s : s_) s = splitmix64(sm);
    // A state of all zeros is the one invalid xoshiro state; splitmix64
    // cannot produce four zero outputs from any seed, but guard anyway.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
    MEMOPT_ASSERT(bound > 0);
    // Rejection sampling over the largest multiple of `bound` below 2^64.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        const std::uint64_t r = next_u64();
        if (r >= threshold) return r % bound;
    }
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
    MEMOPT_ASSERT(lo <= hi);
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>(next_u64());  // full 64-bit range
    return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
    // 53 significant bits.
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return next_double() < p;
}

double Rng::next_gaussian() {
    // Box–Muller; avoid log(0) by excluding u1 == 0.
    double u1 = 0.0;
    do {
        u1 = next_double();
    } while (u1 == 0.0);
    const double u2 = next_double();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * 3.14159265358979323846 * u2);
}

std::uint64_t Rng::next_zipf_like(std::uint64_t n, double alpha) {
    MEMOPT_ASSERT(n > 0);
    MEMOPT_ASSERT(alpha > 0.0 && alpha < 1.0);
    // Truncated geometric distribution via inverse CDF.
    const double u = next_double();
    const double q = 1.0 - alpha;                        // decay per index
    const double denom = 1.0 - std::pow(q, static_cast<double>(n));
    const double x = std::log(1.0 - u * denom) / std::log(q);
    auto idx = static_cast<std::uint64_t>(x);
    return idx >= n ? n - 1 : idx;
}

}  // namespace memopt
