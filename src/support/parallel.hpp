// Parallel execution runtime: a fixed-size thread pool plus deterministic
// parallel_for / parallel_map helpers.
//
// Design rules (they are what make the batch APIs in core/ safe to call
// from anywhere):
//
//  * Determinism. parallel_for hands out indices, parallel_map writes
//    result slot i from exactly one invocation of fn(i); no reduction ever
//    happens in completion order. Any pure fn therefore produces
//    bit-identical results at 1 and N threads.
//  * The calling thread participates. Helpers are enqueued on the shared
//    pool, but the caller also drains the same index counter, so a
//    parallel region always makes progress even when every pool worker is
//    busy — nested regions cannot deadlock.
//  * Nested regions serialize. A parallel_for issued from inside another
//    parallel region runs inline on the issuing thread; the outer region
//    already owns the concurrency budget.
//  * jobs == 1 bypasses the pool entirely: fn runs inline on the calling
//    thread, no worker threads are created, and exceptions propagate
//    directly. `MEMOPT_JOBS=1` turns the whole library serial.
//
// The parallelism degree of a region is `jobs`: an explicit per-call value,
// else the process default — the `MEMOPT_JOBS` environment variable (read
// once) or, failing that, std::thread::hardware_concurrency(), overridable
// programmatically with set_default_jobs().
//
// Exception policy: every index still runs; the exception thrown by the
// smallest failing index is rethrown to the caller once the region
// completes (again independent of thread count).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "support/thread_safety.hpp"

namespace memopt {

/// Fixed-size thread pool with a FIFO task queue. Tasks are fire-and-forget
/// closures; completion tracking is the submitter's business (parallel_for
/// layers it on top). Destruction drains the queue, then joins.
class ThreadPool {
public:
    explicit ThreadPool(std::size_t num_threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Number of worker threads (fixed for the pool's lifetime).
    std::size_t size() const noexcept { return workers_.size(); }

    /// Enqueue one task. Throws memopt::Error after shutdown began.
    void submit(std::function<void()> task);

private:
    void worker_main();

    std::vector<std::thread> workers_;
    Mutex mutex_;
    std::deque<std::function<void()>> queue_ MEMOPT_GUARDED_BY(mutex_);
    bool stop_ MEMOPT_GUARDED_BY(mutex_) = false;
    std::condition_variable_any cv_;
};

/// Process-wide parallelism default: the programmatic override if set, else
/// MEMOPT_JOBS (parsed once, clamped to [1, 256]), else
/// hardware_concurrency(), else 1.
std::size_t default_jobs();

/// Programmatic override of default_jobs(); `jobs == 0` clears the override
/// (back to MEMOPT_JOBS / hardware detection). Values are clamped to 256.
void set_default_jobs(std::size_t jobs);

/// True once the shared worker pool has been instantiated. jobs==1 call
/// sites never instantiate it; tests use this to certify the bypass.
bool shared_pool_created() noexcept;

/// True while the calling thread is executing inside a parallel region
/// (worker or participating caller). Such a thread's nested regions run
/// inline.
bool in_parallel_region() noexcept;

/// Index of the shared-pool worker the calling thread is, or -1 on any
/// other thread (including a caller participating in a region). Stable for
/// the worker's lifetime; diagnostics (MEMOPT_ASSERT) print it so aborts
/// inside parallel regions can be attributed to a thread.
int pool_worker_index() noexcept;

/// Run fn(0) .. fn(n-1), distributing indices over min(jobs, n) threads.
/// `jobs == 0` means default_jobs(). See file comment for the determinism,
/// nesting and exception guarantees.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t jobs = 0);

/// Map `fn` over `items`, preserving input order in the result vector.
/// Result type needs no default constructor; each slot is move-constructed
/// from its fn return value exactly once.
template <typename Container, typename Fn>
auto parallel_map(const Container& items, Fn&& fn, std::size_t jobs = 0)
    -> std::vector<std::decay_t<decltype(fn(items[0]))>> {
    using Out = std::decay_t<decltype(fn(items[0]))>;
    const std::size_t n = items.size();
    std::vector<std::optional<Out>> slots(n);
    parallel_for(
        n, [&](std::size_t i) { slots[i].emplace(fn(items[i])); }, jobs);
    std::vector<Out> out;
    out.reserve(n);
    for (std::optional<Out>& slot : slots) out.push_back(std::move(*slot));
    return out;
}

}  // namespace memopt
