// Streaming JSON writer — the serialization substrate of the observability
// layer.
//
// One class, no DOM: values are emitted directly to the ostream as the
// caller walks the document, with the writer enforcing well-formedness
// (keys only inside objects, one value per key, one root value) via
// memopt::Error on misuse. Strings are escaped per RFC 8259; doubles are
// printed with %.17g so every finite value round-trips bit-exactly through
// strtod; non-finite doubles become null (JSON has no NaN/Inf).
//
// Everything that exports machine-readable results — `memopt_cli --json`,
// the E-bench MEMOPT_JSON_DIR sinks, the metrics registry — goes through
// this writer, so the whole toolkit speaks one schema dialect.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace memopt {

class JsonWriter {
public:
    /// Writes to `os`; the stream must outlive the writer. `indent_width`
    /// spaces per nesting level (pretty-printed output diffs well in VCS).
    explicit JsonWriter(std::ostream& os, int indent_width = 2);

    JsonWriter(const JsonWriter&) = delete;
    JsonWriter& operator=(const JsonWriter&) = delete;

    JsonWriter& begin_object();
    JsonWriter& end_object();
    JsonWriter& begin_array();
    JsonWriter& end_array();

    /// Emit an object member key; the next value() / begin_*() call is its
    /// value. Throws outside an object or when a key is already pending.
    JsonWriter& key(std::string_view name);

    JsonWriter& value(std::string_view v);
    JsonWriter& value(const char* v);
    JsonWriter& value(bool v);
    JsonWriter& value(double v);
    JsonWriter& value(std::int64_t v);
    JsonWriter& value(std::uint64_t v);
    JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
    JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
    JsonWriter& null();

    /// Splice a pre-rendered JSON value (produced by another JsonWriter at
    /// root depth with the same indent width) as the next value, re-basing
    /// its lines onto the current nesting depth. Safe because the writer
    /// escapes real newlines inside strings — a raw '\n' byte in `fragment`
    /// is always structural whitespace. The fragment's well-formedness is
    /// the caller's contract (it came from a JsonWriter); it is not
    /// re-validated here. This is what lets checkpoint/resume replay a
    /// stored per-unit document into a larger envelope byte-identically.
    JsonWriter& raw_fragment(std::string_view fragment);

    /// key() + value() in one call.
    template <typename T>
    JsonWriter& member(std::string_view k, const T& v) {
        key(k);
        return value(v);
    }

    /// True once exactly one root value has been written and every
    /// container is closed — i.e. the output is a complete JSON document.
    bool complete() const { return stack_.empty() && root_written_; }

    /// RFC 8259 string escaping (quote, backslash, control characters);
    /// exposed for tests.
    static std::string escape(std::string_view s);

    /// %.17g rendering of a finite double, "null" otherwise; exposed for
    /// tests.
    static std::string format_double(double v);

private:
    enum class Scope { Object, Array };
    struct Level {
        Scope scope;
        bool has_items = false;
    };

    void before_value();
    void newline_indent();

    std::ostream& os_;
    int indent_width_;
    std::vector<Level> stack_;
    bool key_pending_ = false;
    bool root_written_ = false;
};

}  // namespace memopt
