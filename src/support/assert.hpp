// Error handling primitives for the memopt library.
//
// Two distinct mechanisms, per the C++ Core Guidelines (E.*):
//  * memopt::Error  — exception thrown on API misuse and environmental
//                     failures (bad arguments, parse errors, I/O). These are
//                     recoverable by the caller.
//  * MEMOPT_ASSERT  — internal invariant check; a failure indicates a bug in
//                     the library itself and aborts with a diagnostic.
#pragma once

#include <stdexcept>
#include <string>

namespace memopt {

/// Exception type thrown by all memopt public APIs on recoverable errors.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what_arg) : std::runtime_error(what_arg) {}
};

namespace detail {
[[noreturn]] void assert_fail(const char* expr, const char* file, int line, const std::string& msg);
}

/// Throw memopt::Error with the given message if `cond` is false.
/// Use for validating caller-supplied arguments.
inline void require(bool cond, const std::string& msg) {
    if (!cond) throw Error(msg);
}

}  // namespace memopt

/// Internal invariant check: aborts the process with a diagnostic on failure.
/// Enabled in all build types — these guards are part of the library's
/// correctness story and are cheap relative to the algorithms they protect.
#define MEMOPT_ASSERT(cond)                                                      \
    do {                                                                         \
        if (!(cond)) ::memopt::detail::assert_fail(#cond, __FILE__, __LINE__, ""); \
    } while (false)

/// Invariant check with an explanatory message (std::string or literal).
#define MEMOPT_ASSERT_MSG(cond, msg)                                                \
    do {                                                                            \
        if (!(cond)) ::memopt::detail::assert_fail(#cond, __FILE__, __LINE__, (msg)); \
    } while (false)
