// String helpers shared by the assembler, table printer and report writers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace memopt {

/// Strip leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Split on a delimiter character; empty fields are preserved.
std::vector<std::string_view> split(std::string_view s, char delim);

/// Split on runs of whitespace; empty fields are dropped.
std::vector<std::string_view> split_ws(std::string_view s);

/// ASCII lower-casing.
std::string to_lower(std::string_view s);

/// Parse a signed 64-bit integer. Accepts decimal, 0x-hex and a leading '-'.
/// Returns nullopt on any malformed input (including trailing junk).
std::optional<std::int64_t> parse_int(std::string_view s);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Human-readable byte size ("256 B", "4 KiB", "1 MiB").
std::string format_bytes(std::uint64_t bytes);

/// Fixed-precision double ("12.34").
std::string format_fixed(double v, int decimals);

/// Engineering formatting of an energy value expressed in picojoules
/// ("853 pJ", "1.27 nJ", "3.5 uJ").
std::string format_energy_pj(double pj);

}  // namespace memopt
