#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace memopt {

void Accumulator::add(double x) {
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double Accumulator::mean() const { return n_ == 0 ? 0.0 : mean_; }

double Accumulator::variance() const {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::min() const {
    MEMOPT_ASSERT(n_ > 0);
    return min_;
}

double Accumulator::max() const {
    MEMOPT_ASSERT(n_ > 0);
    return max_;
}

double mean(std::span<const double> xs) {
    if (xs.empty()) return 0.0;
    Accumulator acc;
    for (double x : xs) acc.add(x);
    return acc.mean();
}

double stddev(std::span<const double> xs) {
    Accumulator acc;
    for (double x : xs) acc.add(x);
    return acc.stddev();
}

double geomean(std::span<const double> xs) {
    if (xs.empty()) return 0.0;
    double log_sum = 0.0;
    for (double x : xs) {
        require(x > 0.0, "geomean requires strictly positive samples");
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

double percentile(std::span<const double> xs, double p) {
    require(!xs.empty(), "percentile of an empty sample set");
    require(p >= 0.0 && p <= 100.0, "percentile p must be in [0,100]");
    std::vector<double> sorted(xs.begin(), xs.end());
    std::sort(sorted.begin(), sorted.end());
    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double percent_change(double a, double b) {
    require(b != 0.0, "percent_change with zero baseline");
    return 100.0 * (a - b) / b;
}

double percent_savings(double base, double opt) {
    require(base != 0.0, "percent_savings with zero baseline");
    return 100.0 * (base - opt) / base;
}

}  // namespace memopt
