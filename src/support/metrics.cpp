#include "support/metrics.hpp"

#include "support/json.hpp"

namespace memopt {

MetricsRegistry& MetricsRegistry::instance() {
    // Intentionally leaked: pool workers and other static-lifetime objects
    // may record metrics during static destruction, so the registry must
    // outlive every other static in the process.
    static MetricsRegistry* registry = new MetricsRegistry();
    return *registry;
}

MetricCounter& MetricsRegistry::counter(std::string_view name) {
    MutexLock lock(mutex_);
    const auto it = counters_.find(name);
    if (it != counters_.end()) return *it->second;
    return *counters_.emplace(std::string(name), std::make_unique<MetricCounter>())
                .first->second;
}

MetricTimer& MetricsRegistry::timer(std::string_view name) {
    MutexLock lock(mutex_);
    const auto it = timers_.find(name);
    if (it != timers_.end()) return *it->second;
    return *timers_.emplace(std::string(name), std::make_unique<MetricTimer>()).first->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
    MutexLock lock(mutex_);
    MetricsSnapshot snap;
    snap.counters.reserve(counters_.size());
    for (const auto& [name, counter] : counters_)
        snap.counters.push_back({name, counter->value()});
    snap.timers.reserve(timers_.size());
    for (const auto& [name, timer] : timers_)
        snap.timers.push_back({name, timer->count(), timer->total_ns()});
    return snap;  // std::map iteration order: already sorted by name
}

void MetricsRegistry::reset() {
    MutexLock lock(mutex_);
    for (const auto& [name, counter] : counters_) counter->reset();
    for (const auto& [name, timer] : timers_) timer->reset();
}

void MetricsSnapshot::to_json(JsonWriter& w) const {
    w.begin_object();
    w.key("counters").begin_object();
    for (const Counter& c : counters) w.member(c.name, c.value);
    w.end_object();
    w.key("timers").begin_object();
    for (const Timer& t : timers) {
        w.key(t.name).begin_object();
        w.member("count", t.count);
        w.member("total_ms", static_cast<double>(t.total_ns) / 1e6);
        w.end_object();
    }
    w.end_object();
    w.end_object();
}

}  // namespace memopt
