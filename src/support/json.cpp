#include "support/json.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "support/assert.hpp"

namespace memopt {

JsonWriter::JsonWriter(std::ostream& os, int indent_width)
    : os_(os), indent_width_(indent_width) {
    require(indent_width >= 0, "JsonWriter: negative indent width");
}

std::string JsonWriter::escape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (const unsigned char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (c < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += static_cast<char>(c);
                }
        }
    }
    return out;
}

std::string JsonWriter::format_double(double v) {
    if (!std::isfinite(v)) return "null";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

void JsonWriter::newline_indent() {
    os_ << '\n';
    for (std::size_t i = 0; i < stack_.size() * static_cast<std::size_t>(indent_width_); ++i)
        os_ << ' ';
}

void JsonWriter::before_value() {
    if (stack_.empty()) {
        require(!root_written_, "JsonWriter: a document has exactly one root value");
        root_written_ = true;
        return;
    }
    Level& top = stack_.back();
    if (top.scope == Scope::Object) {
        require(key_pending_, "JsonWriter: object member needs key() first");
        key_pending_ = false;
    } else {
        if (top.has_items) os_ << ',';
        newline_indent();
        top.has_items = true;
    }
}

JsonWriter& JsonWriter::begin_object() {
    before_value();
    os_ << '{';
    stack_.push_back({Scope::Object});
    return *this;
}

JsonWriter& JsonWriter::end_object() {
    require(!stack_.empty() && stack_.back().scope == Scope::Object,
            "JsonWriter: end_object() outside an object");
    require(!key_pending_, "JsonWriter: dangling key at end_object()");
    const bool had_items = stack_.back().has_items;
    stack_.pop_back();
    if (had_items) newline_indent();
    os_ << '}';
    return *this;
}

JsonWriter& JsonWriter::begin_array() {
    before_value();
    os_ << '[';
    stack_.push_back({Scope::Array});
    return *this;
}

JsonWriter& JsonWriter::end_array() {
    require(!stack_.empty() && stack_.back().scope == Scope::Array,
            "JsonWriter: end_array() outside an array");
    const bool had_items = stack_.back().has_items;
    stack_.pop_back();
    if (had_items) newline_indent();
    os_ << ']';
    return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
    require(!stack_.empty() && stack_.back().scope == Scope::Object,
            "JsonWriter: key() outside an object");
    require(!key_pending_, "JsonWriter: key() twice without a value");
    if (stack_.back().has_items) os_ << ',';
    stack_.back().has_items = true;
    newline_indent();
    os_ << '"' << escape(name) << "\": ";
    key_pending_ = true;
    return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
    before_value();
    os_ << '"' << escape(v) << '"';
    return *this;
}

JsonWriter& JsonWriter::value(const char* v) {
    MEMOPT_ASSERT_MSG(v != nullptr, "JsonWriter: null C string");
    return value(std::string_view(v));
}

JsonWriter& JsonWriter::value(bool v) {
    before_value();
    os_ << (v ? "true" : "false");
    return *this;
}

JsonWriter& JsonWriter::value(double v) {
    before_value();
    os_ << format_double(v);
    return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
    before_value();
    os_ << v;
    return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
    before_value();
    os_ << v;
    return *this;
}

JsonWriter& JsonWriter::null() {
    before_value();
    os_ << "null";
    return *this;
}

JsonWriter& JsonWriter::raw_fragment(std::string_view fragment) {
    require(!fragment.empty(), "JsonWriter: empty raw fragment");
    before_value();
    const std::string pad(stack_.size() * static_cast<std::size_t>(indent_width_), ' ');
    std::size_t start = 0;
    while (start <= fragment.size()) {
        const std::size_t nl = fragment.find('\n', start);
        if (nl == std::string_view::npos) {
            os_ << fragment.substr(start);
            break;
        }
        os_ << fragment.substr(start, nl - start) << '\n' << pad;
        start = nl + 1;
    }
    return *this;
}

}  // namespace memopt
