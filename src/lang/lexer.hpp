// arclang — lexical analysis.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace memopt::lang {

/// Token kinds. Punctuation/operator tokens use their spelling as `text`.
enum class TokKind {
    Identifier,  // names and keywords (keywords resolved by the parser)
    Number,      // integer literal (value in `number`)
    Punct,       // operators and punctuation
    End,         // end of input
};

/// One token.
struct Token {
    TokKind kind = TokKind::End;
    std::string text;          ///< identifier spelling or punctuation
    std::int64_t number = 0;   ///< Number value
    int line = 1;              ///< 1-based source line
};

/// Tokenize arclang source. `//` starts a line comment. Throws
/// memopt::Error with a line number on an invalid character or malformed
/// literal. Multi-character operators recognized: == != <= >= << >> >>>.
std::vector<Token> tokenize(std::string_view source);

}  // namespace memopt::lang
