// arclang — code generation to AR32.
//
// A deliberately straightforward compiler: locals live in a stack frame
// (every read/write is a real memory access — like unoptimized embedded C,
// which is exactly the traffic the memory experiments study), expressions
// evaluate in the register stack r1..r8, r9/r10 are scratch. Arrays become
// .data symbols with deterministic initializers, so compiled programs are
// as reproducible as the hand-written kernels.
#pragma once

#include <string>
#include <string_view>

#include "isa/assembler.hpp"
#include "lang/ast.hpp"

namespace memopt::lang {

/// Compile a parsed program to AR32 assembly text.
/// Throws memopt::Error (with source lines) on semantic errors: use of an
/// undeclared name, re-declaration, indexing a scalar, using an array
/// without a subscript, or an expression deeper than the register stack.
std::string generate_asm(const Program& program);

/// Convenience: parse + generate.
std::string compile_to_asm(std::string_view source);

/// Convenience: parse + generate + assemble.
AssembledProgram compile(std::string_view source);

}  // namespace memopt::lang
