// arclang — recursive-descent parser.
//
// Grammar (see ast.hpp for semantics):
//
//   program    := (array_decl | stmt)*
//   array_decl := "array" ident "[" number "]" ("=" init)? ";"
//   init       := "rand" "(" number ")" | "smooth" "(" number "," number ")"
//   stmt       := "var" ident "=" expr ";"
//              |  ident "=" expr ";"
//              |  ident "[" expr "]" "=" expr ";"
//              |  "if" "(" cond ")" block ("else" block)?
//              |  "while" "(" cond ")" block
//              |  "out" "(" expr ")" ";"
//              |  "break" ";"  |  "continue" ";"      (innermost while)
//   block      := "{" stmt* "}"
//   cond       := expr ("=="|"!="|"<"|"<="|">"|">=") expr
//   expr       := additive (("<<"|">>"|">>>") additive)*
//   additive   := mult (("+"|"-"|"&"|"|"|"^") mult)*
//   mult       := unary ("*" unary)*
//   unary      := ("-"|"~") unary | primary
//   primary    := number | ident | ident "[" expr "]" | "(" expr ")"
#pragma once

#include <string_view>

#include "lang/ast.hpp"

namespace memopt::lang {

/// Parse arclang source into an AST. Throws memopt::Error with a line
/// number on any syntax error. Name resolution happens in codegen.
Program parse(std::string_view source);

}  // namespace memopt::lang
