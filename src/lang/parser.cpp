#include "lang/parser.hpp"

#include "lang/lexer.hpp"
#include "support/assert.hpp"
#include "support/string_util.hpp"

namespace memopt::lang {

namespace {

class Parser {
public:
    explicit Parser(std::string_view source) : tokens_(tokenize(source)) {}

    Program parse_program() {
        Program program;
        while (!at_end()) {
            if (peek_ident("array")) {
                program.arrays.push_back(parse_array_decl());
            } else {
                program.stmts.push_back(parse_stmt());
            }
        }
        return program;
    }

private:
    [[noreturn]] void fail(const std::string& message) const {
        throw Error(format("arclang line %d: %s", current().line, message.c_str()));
    }

    const Token& current() const { return tokens_[pos_]; }
    bool at_end() const { return current().kind == TokKind::End; }

    bool peek_punct(std::string_view p) const {
        return current().kind == TokKind::Punct && current().text == p;
    }
    bool peek_ident(std::string_view name) const {
        return current().kind == TokKind::Identifier && current().text == name;
    }

    Token advance() { return tokens_[pos_++]; }

    void expect_punct(std::string_view p) {
        if (!peek_punct(p)) fail(format("expected '%.*s'", int(p.size()), p.data()));
        ++pos_;
    }

    std::string expect_ident() {
        if (current().kind != TokKind::Identifier) fail("expected an identifier");
        return advance().text;
    }

    std::int64_t expect_number() {
        if (current().kind != TokKind::Number) fail("expected a number");
        return advance().number;
    }

    // ---- declarations ------------------------------------------------------

    ArrayDecl parse_array_decl() {
        ArrayDecl decl;
        decl.line = current().line;
        ++pos_;  // "array"
        decl.name = expect_ident();
        expect_punct("[");
        const std::int64_t length = expect_number();
        if (length <= 0 || length > (1 << 20)) fail("array length out of range");
        decl.length = static_cast<std::size_t>(length);
        expect_punct("]");
        if (peek_punct("=")) {
            ++pos_;
            if (peek_ident("rand")) {
                ++pos_;
                expect_punct("(");
                decl.init = ArrayDecl::Init::Rand;
                decl.seed = static_cast<std::uint64_t>(expect_number());
                expect_punct(")");
            } else if (peek_ident("smooth")) {
                ++pos_;
                expect_punct("(");
                decl.init = ArrayDecl::Init::Smooth;
                decl.seed = static_cast<std::uint64_t>(expect_number());
                expect_punct(",");
                decl.max_delta = static_cast<std::uint32_t>(expect_number());
                expect_punct(")");
            } else {
                fail("expected 'rand(seed)' or 'smooth(seed, delta)'");
            }
        }
        expect_punct(";");
        return decl;
    }

    // ---- statements --------------------------------------------------------

    Stmt parse_stmt() {
        Stmt stmt;
        stmt.line = current().line;
        if (peek_ident("var")) {
            ++pos_;
            stmt.kind = Stmt::Kind::VarDecl;
            stmt.name = expect_ident();
            expect_punct("=");
            stmt.value = parse_expr();
            expect_punct(";");
            return stmt;
        }
        if (peek_ident("if")) {
            ++pos_;
            stmt.kind = Stmt::Kind::If;
            expect_punct("(");
            stmt.cond = parse_cond();
            expect_punct(")");
            stmt.body = parse_block();
            if (peek_ident("else")) {
                ++pos_;
                stmt.else_body = parse_block();
            }
            return stmt;
        }
        if (peek_ident("while")) {
            ++pos_;
            stmt.kind = Stmt::Kind::While;
            expect_punct("(");
            stmt.cond = parse_cond();
            expect_punct(")");
            stmt.body = parse_block();
            return stmt;
        }
        if (peek_ident("break") || peek_ident("continue")) {
            stmt.kind = current().text == "break" ? Stmt::Kind::Break : Stmt::Kind::Continue;
            ++pos_;
            expect_punct(";");
            return stmt;
        }
        if (peek_ident("out")) {
            ++pos_;
            stmt.kind = Stmt::Kind::Out;
            expect_punct("(");
            stmt.value = parse_expr();
            expect_punct(")");
            expect_punct(";");
            return stmt;
        }
        // Assignment or array store.
        stmt.name = expect_ident();
        if (peek_punct("[")) {
            ++pos_;
            stmt.kind = Stmt::Kind::Store;
            stmt.index = parse_expr();
            expect_punct("]");
        } else {
            stmt.kind = Stmt::Kind::Assign;
        }
        expect_punct("=");
        stmt.value = parse_expr();
        expect_punct(";");
        return stmt;
    }

    std::vector<Stmt> parse_block() {
        expect_punct("{");
        std::vector<Stmt> stmts;
        while (!peek_punct("}")) {
            if (at_end()) fail("unterminated block");
            stmts.push_back(parse_stmt());
        }
        ++pos_;
        return stmts;
    }

    // ---- expressions -------------------------------------------------------

    Cond parse_cond() {
        Cond cond;
        cond.lhs = parse_expr();
        if (current().kind != TokKind::Punct) fail("expected a comparison operator");
        const std::string op = current().text;
        if (op == "==") cond.op = CmpOp::Eq;
        else if (op == "!=") cond.op = CmpOp::Ne;
        else if (op == "<") cond.op = CmpOp::Lt;
        else if (op == "<=") cond.op = CmpOp::Le;
        else if (op == ">") cond.op = CmpOp::Gt;
        else if (op == ">=") cond.op = CmpOp::Ge;
        else fail("expected a comparison operator");
        ++pos_;
        cond.rhs = parse_expr();
        return cond;
    }

    ExprPtr parse_expr() {
        ExprPtr lhs = parse_additive();
        while (peek_punct("<<") || peek_punct(">>") || peek_punct(">>>")) {
            const std::string op = advance().text;
            ExprPtr node = std::make_unique<Expr>();
            node->kind = Expr::Kind::Binary;
            node->line = current().line;
            node->bin_op = op == "<<" ? BinOp::Shl : op == ">>" ? BinOp::Shr : BinOp::Shru;
            node->lhs = std::move(lhs);
            node->rhs = parse_additive();
            lhs = std::move(node);
        }
        return lhs;
    }

    ExprPtr parse_additive() {
        ExprPtr lhs = parse_mult();
        while (peek_punct("+") || peek_punct("-") || peek_punct("&") || peek_punct("|") ||
               peek_punct("^")) {
            const std::string op = advance().text;
            ExprPtr node = std::make_unique<Expr>();
            node->kind = Expr::Kind::Binary;
            node->line = current().line;
            node->bin_op = op == "+"   ? BinOp::Add
                           : op == "-" ? BinOp::Sub
                           : op == "&" ? BinOp::And
                           : op == "|" ? BinOp::Or
                                       : BinOp::Xor;
            node->lhs = std::move(lhs);
            node->rhs = parse_mult();
            lhs = std::move(node);
        }
        return lhs;
    }

    ExprPtr parse_mult() {
        ExprPtr lhs = parse_unary();
        while (peek_punct("*")) {
            ++pos_;
            ExprPtr node = std::make_unique<Expr>();
            node->kind = Expr::Kind::Binary;
            node->line = current().line;
            node->bin_op = BinOp::Mul;
            node->lhs = std::move(lhs);
            node->rhs = parse_unary();
            lhs = std::move(node);
        }
        return lhs;
    }

    ExprPtr parse_unary() {
        if (peek_punct("-") || peek_punct("~")) {
            const char op = advance().text[0];
            ExprPtr node = std::make_unique<Expr>();
            node->kind = Expr::Kind::Unary;
            node->line = current().line;
            node->unary_op = op;
            node->lhs = parse_unary();
            return node;
        }
        return parse_primary();
    }

    ExprPtr parse_primary() {
        ExprPtr node = std::make_unique<Expr>();
        node->line = current().line;
        if (current().kind == TokKind::Number) {
            node->kind = Expr::Kind::Literal;
            node->literal = advance().number;
            return node;
        }
        if (current().kind == TokKind::Identifier) {
            node->name = advance().text;
            if (peek_punct("[")) {
                ++pos_;
                node->kind = Expr::Kind::Index;
                node->rhs = parse_expr();
                expect_punct("]");
            } else {
                node->kind = Expr::Kind::Var;
            }
            return node;
        }
        if (peek_punct("(")) {
            ++pos_;
            node = parse_expr();
            expect_punct(")");
            return node;
        }
        fail("expected an expression");
    }

    std::vector<Token> tokens_;
    std::size_t pos_ = 0;
};

}  // namespace

Program parse(std::string_view source) { return Parser(source).parse_program(); }

}  // namespace memopt::lang
