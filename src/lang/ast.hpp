// arclang — abstract syntax.
//
// arclang is a deliberately small C-like kernel language that compiles to
// AR32 assembly (src/lang/codegen.hpp), so workloads can be written without
// hand-writing assembly. It has 32-bit integer scalars, global word arrays
// with deterministic initializers, assignments, `if`/`else`, `while`, and
// an `out(expr)` statement mapping to the AR32 `out` instruction.
//
// Expression precedence (tightest first):
//   unary - ~  >  *  >  + - & | ^  >  << >> >>>
// (bitwise ops share the additive level; parenthesize when mixing — the
// compiler is honest about its simplicity.) Comparisons appear only in
// `if`/`while` conditions and are signed: == != < <= > >=.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace memopt::lang {

/// Binary arithmetic operators.
enum class BinOp { Add, Sub, Mul, And, Or, Xor, Shl, Shr, Shru };

/// Comparison operators (signed).
enum class CmpOp { Eq, Ne, Lt, Le, Gt, Ge };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// One expression node.
struct Expr {
    enum class Kind { Literal, Var, Index, Unary, Binary };

    Kind kind = Kind::Literal;
    int line = 0;                 ///< source line (diagnostics)
    std::int64_t literal = 0;     ///< Literal
    std::string name;             ///< Var / Index (array name)
    char unary_op = 0;            ///< Unary: '-' or '~'
    BinOp bin_op = BinOp::Add;    ///< Binary
    ExprPtr lhs;                  ///< Binary lhs / Unary operand
    ExprPtr rhs;                  ///< Binary rhs / Index subscript
};

/// A condition `lhs cmp rhs`.
struct Cond {
    CmpOp op = CmpOp::Eq;
    ExprPtr lhs;
    ExprPtr rhs;
};

struct Stmt;

/// One statement.
struct Stmt {
    enum class Kind { VarDecl, Assign, Store, If, While, Out, Break, Continue };

    Kind kind = Kind::Out;
    int line = 0;
    std::string name;            ///< VarDecl/Assign target; Store array name
    ExprPtr index;               ///< Store subscript
    ExprPtr value;               ///< VarDecl/Assign/Store/Out expression
    Cond cond;                   ///< If/While
    std::vector<Stmt> body;      ///< If-then / While body
    std::vector<Stmt> else_body; ///< If-else
};

/// A global word array with a deterministic initializer.
struct ArrayDecl {
    enum class Init { Zero, Rand, Smooth };

    std::string name;
    std::size_t length = 0;       ///< number of 32-bit words
    Init init = Init::Zero;
    std::uint64_t seed = 0;       ///< Rand/Smooth
    std::uint32_t max_delta = 0;  ///< Smooth
    int line = 0;
};

/// A whole program.
struct Program {
    std::vector<ArrayDecl> arrays;
    std::vector<Stmt> stmts;
};

}  // namespace memopt::lang
