#include "lang/lexer.hpp"

#include <cctype>

#include "support/assert.hpp"
#include "support/string_util.hpp"

namespace memopt::lang {

std::vector<Token> tokenize(std::string_view source) {
    std::vector<Token> tokens;
    int line = 1;
    std::size_t i = 0;

    auto fail = [&](const std::string& message) -> void {
        throw Error(format("arclang line %d: %s", line, message.c_str()));
    };

    while (i < source.size()) {
        const char c = source[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        // Line comments.
        if (c == '/' && i + 1 < source.size() && source[i + 1] == '/') {
            while (i < source.size() && source[i] != '\n') ++i;
            continue;
        }
        // Identifiers / keywords.
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            std::size_t start = i;
            while (i < source.size() &&
                   (std::isalnum(static_cast<unsigned char>(source[i])) || source[i] == '_'))
                ++i;
            tokens.push_back(Token{TokKind::Identifier,
                                   std::string(source.substr(start, i - start)), 0, line});
            continue;
        }
        // Numbers (decimal or 0x hex).
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t start = i;
            while (i < source.size() &&
                   (std::isalnum(static_cast<unsigned char>(source[i]))))
                ++i;
            const auto value = parse_int(source.substr(start, i - start));
            if (!value) fail("malformed number '" + std::string(source.substr(start, i - start)) + "'");
            tokens.push_back(Token{TokKind::Number, "", *value, line});
            continue;
        }
        // Multi-character operators, longest first.
        static constexpr std::string_view kMulti[] = {">>>", "==", "!=", "<=", ">=", "<<", ">>"};
        bool matched = false;
        for (std::string_view op : kMulti) {
            if (source.substr(i, op.size()) == op) {
                tokens.push_back(Token{TokKind::Punct, std::string(op), 0, line});
                i += op.size();
                matched = true;
                break;
            }
        }
        if (matched) continue;
        // Single-character punctuation.
        static constexpr std::string_view kSingle = "+-*&|^~()[]{}=<>;,";
        if (kSingle.find(c) != std::string_view::npos) {
            tokens.push_back(Token{TokKind::Punct, std::string(1, c), 0, line});
            ++i;
            continue;
        }
        fail(format("unexpected character '%c'", c));
    }
    tokens.push_back(Token{TokKind::End, "", 0, line});
    return tokens;
}

}  // namespace memopt::lang
