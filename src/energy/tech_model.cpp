#include "energy/tech_model.hpp"

#include <utility>

#include "support/assert.hpp"
#include "support/string_util.hpp"

namespace memopt {

namespace {

// Default design points. SRAM is the all-ones reference; the others order
// the tradeoffs the way the heterogeneous-memory literature does:
//   * eDRAM: 1T1C cells move less bitline charge than 6T SRAM (cheaper
//     access at the same capacity) and leak less, but retention is dynamic
//     — the refresh sweep costs power whenever the bank is powered, and a
//     gated bank goes dark (no refresh, contents lost).
//   * STT-MRAM: reads sense a resistive cell (slightly above SRAM), writes
//     must torque the magnetic junction (several times a read), and the
//     cell is non-volatile — negligible standby leakage and a perfect,
//     cheap power gate.
//   * Drowsy SRAM: the existing sleep machinery as a first-class
//     technology — full access energy, full leakage while active, but a
//     retentive standby state that is cheap to enter and leave.
const TechFactors kSramFactors{
    /*read_factor=*/1.0, /*write_factor=*/1.0, /*leak_factor=*/1.0,
    /*refresh_pw_per_byte=*/0.0,
    /*gate_leak_factor=*/0.03, /*gate_wake_pj=*/80.0, /*retentive=*/false,
    /*read_latency_cycles=*/1, /*write_latency_cycles=*/1};

const TechFactors kEdramFactors{
    /*read_factor=*/0.72, /*write_factor=*/0.78, /*leak_factor=*/0.30,
    /*refresh_pw_per_byte=*/0.55,
    /*gate_leak_factor=*/0.02, /*gate_wake_pj=*/60.0, /*retentive=*/false,
    /*read_latency_cycles=*/2, /*write_latency_cycles=*/2};

const TechFactors kSttMramFactors{
    /*read_factor=*/1.15, /*write_factor=*/5.5, /*leak_factor=*/0.02,
    /*refresh_pw_per_byte=*/0.0,
    /*gate_leak_factor=*/0.0, /*gate_wake_pj=*/15.0, /*retentive=*/true,
    /*read_latency_cycles=*/2, /*write_latency_cycles=*/10};

const TechFactors kDrowsyFactors{
    /*read_factor=*/1.0, /*write_factor=*/1.0, /*leak_factor=*/1.0,
    /*refresh_pw_per_byte=*/0.0,
    /*gate_leak_factor=*/0.08, /*gate_wake_pj=*/40.0, /*retentive=*/true,
    /*read_latency_cycles=*/1, /*write_latency_cycles=*/1};

}  // namespace

const char* technology_name(MemTechnology tech) {
    switch (tech) {
        case MemTechnology::Sram: return "sram";
        case MemTechnology::Edram: return "edram";
        case MemTechnology::SttMram: return "sttmram";
        case MemTechnology::DrowsySram: return "drowsy";
    }
    MEMOPT_ASSERT_MSG(false, "unknown MemTechnology");
    return "?";
}

MemTechnology parse_technology(const std::string& name) {
    if (name == "sram") return MemTechnology::Sram;
    if (name == "edram") return MemTechnology::Edram;
    if (name == "sttmram") return MemTechnology::SttMram;
    if (name == "drowsy") return MemTechnology::DrowsySram;
    throw Error("unknown memory technology '" + name +
                "' (expected sram, edram, sttmram or drowsy)");
}

const TechFactors& technology_factors(MemTechnology tech) {
    switch (tech) {
        case MemTechnology::Sram: return kSramFactors;
        case MemTechnology::Edram: return kEdramFactors;
        case MemTechnology::SttMram: return kSttMramFactors;
        case MemTechnology::DrowsySram: return kDrowsyFactors;
    }
    MEMOPT_ASSERT_MSG(false, "unknown MemTechnology");
    return kSramFactors;
}

TechEnergyModel::TechEnergyModel(MemTechnology tech, std::uint64_t size_bytes,
                                 unsigned word_bits, const SramTechnology& base,
                                 ProtectionScheme protection)
    : TechEnergyModel(tech, technology_factors(tech), size_bytes, word_bits, base,
                      protection) {}

TechEnergyModel::TechEnergyModel(MemTechnology tech, const TechFactors& factors,
                                 std::uint64_t size_bytes, unsigned word_bits,
                                 const SramTechnology& base, ProtectionScheme protection)
    : tech_(tech), factors_(factors), base_(size_bytes, word_bits, base, protection) {
    // SRAM bypasses the factor multiplications entirely so an all-SRAM pool
    // reproduces the legacy SramEnergyModel doubles bit for bit (x * 1.0 is
    // identity in IEEE, but the contract should not hinge on that).
    if (tech == MemTechnology::Sram || tech == MemTechnology::DrowsySram) {
        read_pj_ = base_.read_energy();
        write_pj_ = base_.write_energy();
        leak_pw_ = base_.leakage_pw();
    } else {
        read_pj_ = base_.read_energy() * factors_.read_factor;
        write_pj_ = base_.read_energy() * factors_.write_factor;
        leak_pw_ = base_.leakage_pw() * factors_.leak_factor;
    }
}

double TechEnergyModel::leakage_energy(std::uint64_t cycles, double cycle_ns) const {
    if (tech_ == MemTechnology::Sram || tech_ == MemTechnology::DrowsySram)
        return base_.leakage_energy(cycles, cycle_ns);
    require(cycle_ns >= 0.0, "leakage_energy: negative cycle time");
    // pW * ns = 1e-9 pJ (same unit bridge as SramEnergyModel).
    return leak_pw_ * static_cast<double>(cycles) * cycle_ns * 1e-9;
}

double TechEnergyModel::refresh_energy(std::uint64_t cycles, double cycle_ns) const {
    if (factors_.refresh_pw_per_byte <= 0.0) return 0.0;
    require(cycle_ns >= 0.0, "refresh_energy: negative cycle time");
    const double refresh_pw =
        factors_.refresh_pw_per_byte * static_cast<double>(base_.size_bytes());
    return refresh_pw * static_cast<double>(cycles) * cycle_ns * 1e-9;
}

double TechEnergyModel::gated_leakage_energy(std::uint64_t cycles, double cycle_ns) const {
    return leakage_energy(cycles, cycle_ns) * factors_.gate_leak_factor;
}

BankPool::BankPool(std::vector<PoolSlot> slots) : slots_(std::move(slots)) {
    for (const PoolSlot& slot : slots_)
        require(slot.count > 0, "BankPool: slot count must be positive");
}

BankPool BankPool::parse(const std::string& spec) {
    require(!spec.empty(), "BankPool: empty spec");
    std::vector<PoolSlot> slots;
    for (std::string_view raw : split(spec, ',')) {
        const std::string entry{trim(raw)};
        require(!entry.empty(), "BankPool: empty entry in spec '" + spec + "'");
        const std::size_t eq = entry.find('=');
        PoolSlot slot;
        if (eq == std::string::npos) {
            slot.tech = parse_technology(entry);
            slot.count = kUnbounded;
        } else {
            slot.tech = parse_technology(std::string{trim(std::string_view{entry}.substr(0, eq))});
            const auto count = parse_int(std::string_view{entry}.substr(eq + 1));
            require(count.has_value() && *count > 0,
                    "BankPool: '" + entry + "' needs a positive count after '='");
            slot.count = static_cast<std::size_t>(*count);
        }
        slots.push_back(slot);
    }
    return BankPool(std::move(slots));
}

BankPool BankPool::homogeneous(MemTechnology tech, std::size_t count) {
    return BankPool({PoolSlot{tech, count}});
}

std::size_t BankPool::total_banks() const {
    std::size_t total = 0;
    for (const PoolSlot& slot : slots_) total += slot.count;
    return total;
}

bool BankPool::is_homogeneous() const {
    for (const PoolSlot& slot : slots_)
        if (slot.tech != slots_.front().tech) return false;
    return !slots_.empty();
}

std::string BankPool::to_string() const {
    std::string out;
    for (const PoolSlot& slot : slots_) {
        if (!out.empty()) out += ',';
        out += technology_name(slot.tech);
        if (slot.count != kUnbounded) out += '=' + std::to_string(slot.count);
    }
    return out;
}

}  // namespace memopt
