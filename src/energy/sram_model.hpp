// Analytical on-chip SRAM energy model ("CACTI-lite").
//
// The DATE'03 1B papers used proprietary ST 0.18um memory-cut datasheets to
// map bank size to energy-per-access. Those datasheets are not available, so
// this model substitutes an analytical formulation that preserves the single
// property the optimizations depend on: energy per access grows monotonically
// and super-logarithmically with capacity (decoder ~ log2(words), bitline /
// wordline ~ sqrt(words) for a square array organization). Default constants
// are calibrated so that a 1 KiB cut reads at ~12 pJ and a 64 KiB cut at
// ~79 pJ, in line with published 0.18um-era figures.
#pragma once

#include <cstdint>

namespace memopt {

/// Technology constants of the SRAM model. All energies in picojoules,
/// leakage in picowatts. Defaults model a 0.18um-class embedded SRAM.
struct SramTechnology {
    double read_base_pj = 2.0;      ///< sense/control fixed cost per read
    double read_sqrt_pj = 0.60;     ///< bitline+wordline cost, scaled by sqrt(words)
    double read_dec_pj = 0.25;      ///< decoder cost per address bit
    double write_factor = 1.18;     ///< write energy = factor * read energy
    double leak_pw_per_byte = 1.5;  ///< standby leakage per byte
    double wakeup_pj = 0.0;         ///< cost to reactivate a sleeping bank (0 = always on)
    double ecc_xor_pj = 0.004;      ///< one XOR term of an ECC encode/check tree
};

/// Error-protection scheme of a memory array or stored line. The energy
/// techniques reproduced here (drowsy banks, compressed write-back) trade
/// reliability margin for energy; protection buys that margin back at a
/// per-access and per-bit cost that studies must account for.
enum class ProtectionScheme {
    None,    ///< unprotected storage
    Parity,  ///< 1 parity bit per word: detects odd-weight flips
    Secded,  ///< Hamming SECDED: corrects 1-bit, detects 2-bit flips per word
};

/// Display name ("none", "parity", "secded").
const char* protection_name(ProtectionScheme scheme);

/// Check bits stored per `data_bits`-wide word under `scheme`
/// (Parity: 1; SECDED: Hamming bits + overall parity, e.g. 8 for 64).
unsigned protection_check_bits(ProtectionScheme scheme, unsigned data_bits);

/// Per-access energy of the encode/check logic (XOR trees) [pJ]. The
/// *storage* overhead of the check bits is modeled separately by
/// SramEnergyModel's protection-aware constructor; call sites charge this
/// logic term explicitly (typically as an "ecc" breakdown component) so
/// reports can isolate the cost of protection.
double protection_access_energy(ProtectionScheme scheme, unsigned data_bits,
                                const SramTechnology& tech = SramTechnology{});

/// Energy model for a single SRAM cut of a given capacity.
///
/// Value type: cheap to copy; all queries are pure.
class SramEnergyModel {
public:
    /// `size_bytes` must be a power of two and >= 16 bytes.
    /// `word_bits` is the I/O width (default 32). With a protection scheme
    /// the array carries check-bit columns alongside every word: bitline
    /// and leakage terms scale by (data+check)/data, modeling the wider
    /// physical row. The encode/check *logic* energy is not folded in —
    /// see protection_access_energy().
    explicit SramEnergyModel(std::uint64_t size_bytes, unsigned word_bits = 32,
                             const SramTechnology& tech = SramTechnology{},
                             ProtectionScheme protection = ProtectionScheme::None);

    std::uint64_t size_bytes() const { return size_bytes_; }
    unsigned word_bits() const { return word_bits_; }
    ProtectionScheme protection() const { return protection_; }

    /// Energy of one read access [pJ].
    double read_energy() const { return read_pj_; }

    /// Energy of one write access [pJ].
    double write_energy() const { return write_pj_; }

    /// Standby leakage power [pW].
    double leakage_pw() const { return leak_pw_; }

    /// Leakage energy [pJ] over `cycles` at `cycle_ns` nanoseconds per cycle.
    double leakage_energy(std::uint64_t cycles, double cycle_ns) const;

    const SramTechnology& technology() const { return tech_; }

private:
    std::uint64_t size_bytes_;
    unsigned word_bits_;
    SramTechnology tech_;
    ProtectionScheme protection_;
    double read_pj_;
    double write_pj_;
    double leak_pw_;
};

/// Per-access overhead of the bank-selection logic (decoder + output mux +
/// inter-bank wiring) of a multi-bank memory with `num_banks` banks [pJ].
/// Grows with log2 of the bank count; 0 for a monolithic memory. This is the
/// term that makes unbounded banking unprofitable.
double bank_select_energy(std::size_t num_banks, const SramTechnology& tech = SramTechnology{});

}  // namespace memopt
