#include "energy/coherence_model.hpp"

namespace memopt {

double CoherenceEnergyModel::message_energy(std::uint64_t messages) const {
    return tech_.ctrl_msg_pj * static_cast<double>(messages);
}

double CoherenceEnergyModel::transfer_energy(std::uint64_t bytes) const {
    return tech_.per_byte_pj * static_cast<double>(bytes);
}

double CoherenceEnergyModel::lookup_energy(std::uint64_t lookups) const {
    return tech_.dir_lookup_pj * static_cast<double>(lookups);
}

}  // namespace memopt
