// Bus switching-energy model.
//
// The instruction-memory transformation experiments (1B-3) measure bit
// transitions on the instruction-fetch bus; dynamic bus power is
// proportional to switching activity (E = C_line * Vdd^2 per transition).
// This model converts transition counts to energy and also provides
// word-stream transition counting utilities.
#pragma once

#include <cstdint>
#include <span>

namespace memopt {

/// Bus technology constants.
struct BusTechnology {
    double energy_per_transition_pj = 0.8;  ///< C_line * Vdd^2 for one line toggle
    unsigned width_bits = 32;               ///< number of bus lines
};

/// Converts switching activity on a parallel bus into energy.
class BusEnergyModel {
public:
    explicit BusEnergyModel(const BusTechnology& tech = BusTechnology{}) : tech_(tech) {}

    /// Energy of `transitions` line toggles [pJ].
    double transition_energy(std::uint64_t transitions) const;

    /// Energy of driving `words.size()` words over the bus starting from
    /// `initial` line state [pJ]: counts Hamming transitions between
    /// consecutive words.
    double stream_energy(std::span<const std::uint32_t> words, std::uint32_t initial = 0) const;

    const BusTechnology& technology() const { return tech_; }

private:
    BusTechnology tech_;
};

/// Total Hamming transitions between consecutive words of a stream,
/// starting from the line state `initial`.
std::uint64_t count_transitions(std::span<const std::uint32_t> words, std::uint32_t initial = 0);

/// Hamming distance of two 32-bit words.
unsigned hamming32(std::uint32_t a, std::uint32_t b);

}  // namespace memopt
