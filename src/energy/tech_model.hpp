// Heterogeneous memory technology models and hybrid bank pools.
//
// Every bank used to be the same SRAM cut (energy/sram_model.hpp). This
// module generalizes the per-bank model to a *technology family* behind the
// same interface shape, so the partitioner can place hot clusters into fast
// SRAM and cold clusters into dense, low-leakage NVM, and gate idle banks
// dark-silicon style:
//
//   * Sram       — the reference model, arithmetic-identical to
//                  SramEnergyModel (an all-SRAM pool reproduces the legacy
//                  evaluation bit for bit);
//   * Edram      — denser array, cheaper bitlines and lower standby leakage,
//                  but retention is dynamic: a periodic refresh sweep burns
//                  energy in proportion to powered (non-gated) time;
//   * SttMram    — non-volatile: near-zero leakage and free gating (the cell
//                  keeps its state with the power rail off), read energy
//                  close to SRAM, writes several times more expensive —
//                  the classic cold-data technology;
//   * DrowsySram — SRAM with a retentive low-voltage standby state (the
//                  `sleep` machinery of partition/sleep.hpp): gating is
//                  cheap to enter/exit and keeps state, but only cuts
//                  leakage to a fraction instead of (almost) zero.
//
// The technology constants are qualitative reproductions of the
// heterogeneous-memory design points in the dark-silicon embedded CMP
// literature (see PAPERS.md): what matters for the optimization story is
// the *ordering* of the tradeoffs (STT-MRAM writes >> reads, eDRAM refresh
// scales with powered time, drowsy retention saves less than a full gate),
// not absolute picojoules.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "energy/sram_model.hpp"

namespace memopt {

/// The memory technologies a bank of the hybrid pool can be built in.
enum class MemTechnology {
    Sram,        ///< reference 6T SRAM (legacy model, bit-identical)
    Edram,       ///< embedded DRAM: dense, low leakage, needs refresh
    SttMram,     ///< STT-MRAM: non-volatile, asymmetric read/write
    DrowsySram,  ///< SRAM with retentive drowsy standby
};

/// Display name ("sram", "edram", "sttmram", "drowsy").
const char* technology_name(MemTechnology tech);

/// Parse a technology name as printed by technology_name(). Throws
/// memopt::Error on anything else.
MemTechnology parse_technology(const std::string& name);

/// Per-technology scaling factors applied on top of the SRAM base model,
/// plus the refresh, gating and latency constants that have no SRAM
/// counterpart. All factors are relative to SramEnergyModel at the same
/// capacity; SRAM is all-ones with no refresh so it degenerates to the
/// legacy arithmetic.
struct TechFactors {
    double read_factor = 1.0;       ///< read energy vs SRAM
    double write_factor = 1.0;      ///< write energy vs SRAM
    double leak_factor = 1.0;       ///< standby leakage vs SRAM
    /// Refresh power while the bank is powered [pW per byte]; 0 = static
    /// retention. Charged over *powered* (non-gated) cycles only — a gated
    /// eDRAM bank is dark and loses its contents instead of refreshing.
    double refresh_pw_per_byte = 0.0;
    /// Leakage while power-gated, as a fraction of the technology's own
    /// standby leakage (0 = perfect gate).
    double gate_leak_factor = 0.0;
    double gate_wake_pj = 0.0;      ///< energy to re-activate a gated bank
    /// True when the gated bank keeps its contents (drowsy SRAM retention,
    /// NVM non-volatility). Purely informational for the energy study; a
    /// timing/refill model would charge restore traffic for !retentive.
    bool retentive = false;
    unsigned read_latency_cycles = 1;   ///< access latency (reporting only)
    unsigned write_latency_cycles = 1;
};

/// The default design point of `tech` (see the header comment for the
/// rationale behind each ordering).
const TechFactors& technology_factors(MemTechnology tech);

/// Energy/latency model of one bank in a given technology. Mirrors the
/// SramEnergyModel interface (read/write/leakage queries are pure, the
/// object is cheap to copy) and adds the refresh and gating terms. For
/// MemTechnology::Sram every query returns the exact SramEnergyModel
/// value — no factor is applied, so results are bit-identical to the
/// legacy model.
class TechEnergyModel {
public:
    /// `size_bytes` power of two and >= 16, as in SramEnergyModel.
    /// The SRAM technology constants and protection scheme feed the base
    /// model; `factors` defaults to the technology's standard design point.
    TechEnergyModel(MemTechnology tech, std::uint64_t size_bytes, unsigned word_bits = 32,
                    const SramTechnology& base = SramTechnology{},
                    ProtectionScheme protection = ProtectionScheme::None);
    TechEnergyModel(MemTechnology tech, const TechFactors& factors, std::uint64_t size_bytes,
                    unsigned word_bits = 32, const SramTechnology& base = SramTechnology{},
                    ProtectionScheme protection = ProtectionScheme::None);

    MemTechnology technology() const { return tech_; }
    const TechFactors& factors() const { return factors_; }
    std::uint64_t size_bytes() const { return base_.size_bytes(); }

    /// Energy of one read / write access [pJ].
    double read_energy() const { return read_pj_; }
    double write_energy() const { return write_pj_; }

    /// Standby (powered, not gated) leakage power [pW].
    double leakage_pw() const { return leak_pw_; }

    /// Leakage energy [pJ] over `cycles` powered cycles.
    double leakage_energy(std::uint64_t cycles, double cycle_ns) const;

    /// Refresh energy [pJ] over `cycles` powered cycles (0 for static
    /// technologies). Scales linearly with time: the refresh sweep is
    /// periodic, so twice the powered time costs twice the refresh.
    double refresh_energy(std::uint64_t cycles, double cycle_ns) const;

    /// Leakage energy [pJ] over `cycles` spent power-gated.
    double gated_leakage_energy(std::uint64_t cycles, double cycle_ns) const;

    /// Energy to re-activate the bank after a gate period [pJ].
    double gate_wake_energy() const { return factors_.gate_wake_pj; }

    unsigned read_latency_cycles() const { return factors_.read_latency_cycles; }
    unsigned write_latency_cycles() const { return factors_.write_latency_cycles; }

private:
    MemTechnology tech_;
    TechFactors factors_;
    SramEnergyModel base_;
    double read_pj_;
    double write_pj_;
    double leak_pw_;
};

/// One slot family of a hybrid pool: up to `count` banks of `tech`.
struct PoolSlot {
    MemTechnology tech = MemTechnology::Sram;
    std::size_t count = 0;
};

/// A hybrid set of available banks with mixed technologies. The pool
/// constrains the cluster->bank assignment: an architecture with K banks
/// draws its technologies from the pool's slots, using at most
/// slot.count banks of each technology.
///
/// Spec grammar (parse()):
///   pool   := entry (',' entry)*
///   entry  := tech [ '=' count ]        -- count defaults to "no limit"
///   tech   := "sram" | "edram" | "sttmram" | "drowsy"
/// Examples: "sram" (homogeneous), "sram=2,sttmram=6" (2 fast + 6 dense).
/// An entry without a count contributes kUnbounded slots. Duplicate
/// technologies accumulate. Order is preserved (it is the deterministic
/// tie-break of the assignment solver).
class BankPool {
public:
    /// Effectively-unlimited slot count for entries without "=count".
    static constexpr std::size_t kUnbounded = 64;

    BankPool() = default;
    explicit BankPool(std::vector<PoolSlot> slots);

    /// Parse the --bank-pool spec grammar above. Throws memopt::Error on
    /// unknown technologies, zero counts, or an empty spec.
    static BankPool parse(const std::string& spec);

    /// Homogeneous pool: `count` banks of one technology.
    static BankPool homogeneous(MemTechnology tech, std::size_t count = kUnbounded);

    const std::vector<PoolSlot>& slots() const { return slots_; }
    std::size_t num_slots() const { return slots_.size(); }

    /// Total banks the pool can supply (sum of slot counts).
    std::size_t total_banks() const;

    /// True when every slot is the same technology.
    bool is_homogeneous() const;

    /// Canonical spec string (round-trips through parse()).
    std::string to_string() const;

private:
    std::vector<PoolSlot> slots_;
};

}  // namespace memopt
