// Coherence-traffic energy model.
//
// The multi-core cache system (cache/mcache.hpp) counts protocol events —
// directory lookups, invalidation/downgrade messages, dirty-line flushes —
// and this model prices them: control messages toggle the on-chip
// coherence interconnect (a BusEnergyModel-class cost per message), dirty
// transfers move a full line of payload between an L1 and its home L2
// bank, and every directory consultation reads and updates a small
// directory SRAM. Defaults are sized against the 0.18um-era constants of
// the SRAM/bus models so coherence shows up in an EnergyBreakdown at the
// expected order of magnitude: noticeable under contention, negligible
// without sharing.
#pragma once

#include <cstdint>

namespace memopt {

/// Technology constants of the coherence fabric. Energies in picojoules.
struct CoherenceTechnology {
    double ctrl_msg_pj = 2.4;     ///< one control message (invalidate/downgrade)
    double per_byte_pj = 0.9;     ///< payload byte moved L1 <-> home L2 bank
    double dir_lookup_pj = 1.6;   ///< one directory SRAM lookup + update
};

/// Converts coherence event counts into energy.
class CoherenceEnergyModel {
public:
    explicit CoherenceEnergyModel(const CoherenceTechnology& tech = CoherenceTechnology{})
        : tech_(tech) {}

    /// Energy of `messages` control messages [pJ].
    double message_energy(std::uint64_t messages) const;

    /// Energy of moving `bytes` of line payload over the fabric [pJ].
    double transfer_energy(std::uint64_t bytes) const;

    /// Energy of `lookups` directory consultations [pJ].
    double lookup_energy(std::uint64_t lookups) const;

    const CoherenceTechnology& technology() const { return tech_; }

private:
    CoherenceTechnology tech_;
};

}  // namespace memopt
