#include "energy/dram_model.hpp"

#include "support/assert.hpp"

namespace memopt {

double DramEnergyModel::burst_energy(std::uint64_t bytes) const {
    if (bytes == 0) return 0.0;
    return tech_.activate_pj + tech_.per_byte_pj * static_cast<double>(bytes);
}

double DramEnergyModel::standby_energy(std::uint64_t cycles, double cycle_ns) const {
    require(cycle_ns >= 0.0, "standby_energy: negative cycle time");
    return tech_.standby_pw * static_cast<double>(cycles) * cycle_ns * 1e-9;
}

}  // namespace memopt
