#include "energy/bus_model.hpp"

#include <bit>

namespace memopt {

unsigned hamming32(std::uint32_t a, std::uint32_t b) {
    return static_cast<unsigned>(std::popcount(a ^ b));
}

std::uint64_t count_transitions(std::span<const std::uint32_t> words, std::uint32_t initial) {
    std::uint64_t total = 0;
    std::uint32_t prev = initial;
    for (std::uint32_t w : words) {
        total += hamming32(prev, w);
        prev = w;
    }
    return total;
}

double BusEnergyModel::transition_energy(std::uint64_t transitions) const {
    return tech_.energy_per_transition_pj * static_cast<double>(transitions);
}

double BusEnergyModel::stream_energy(std::span<const std::uint32_t> words,
                                     std::uint32_t initial) const {
    return transition_energy(count_transitions(words, initial));
}

}  // namespace memopt
