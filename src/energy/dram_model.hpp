// Off-chip main-memory (DRAM) energy model.
//
// Used by the compression experiments (1B-2): the savings there come from
// shrinking the number of bytes moved between the D-cache and main memory.
// The model charges a fixed activation cost per access plus a per-byte
// transfer cost covering the external bus, I/O pads and DRAM column path.
#pragma once

#include <cstdint>

namespace memopt {

/// DRAM/system-bus technology constants. Energies in picojoules.
/// Defaults model an SDR/early-DDR era embedded SDRAM subsystem, where one
/// off-chip access costs two to three orders of magnitude more than an
/// on-chip SRAM access — the regime in which write-back compression pays off.
struct DramTechnology {
    double activate_pj = 1800.0;   ///< row activation + control, per burst
    double per_byte_pj = 42.0;     ///< per byte moved over the external bus
    double standby_pw = 6.0e6;     ///< standby power of the DRAM device [pW]
};

/// Energy model of the off-chip memory path.
class DramEnergyModel {
public:
    explicit DramEnergyModel(const DramTechnology& tech = DramTechnology{}) : tech_(tech) {}

    /// Energy of one burst moving `bytes` bytes [pJ].
    double burst_energy(std::uint64_t bytes) const;

    /// Standby energy over `cycles` at `cycle_ns` ns/cycle [pJ].
    double standby_energy(std::uint64_t cycles, double cycle_ns) const;

    const DramTechnology& technology() const { return tech_; }

private:
    DramTechnology tech_;
};

}  // namespace memopt
