#include "energy/report.hpp"

#include <algorithm>
#include <ostream>

#include "support/json.hpp"
#include "support/string_util.hpp"

namespace memopt {

void EnergyBreakdown::add(const std::string& name, double pj) {
    auto it = std::find_if(parts_.begin(), parts_.end(),
                           [&](const auto& p) { return p.first == name; });
    if (it != parts_.end()) {
        it->second += pj;
    } else {
        parts_.emplace_back(name, pj);
    }
}

double EnergyBreakdown::component(const std::string& name) const {
    auto it = std::find_if(parts_.begin(), parts_.end(),
                           [&](const auto& p) { return p.first == name; });
    return it == parts_.end() ? 0.0 : it->second;
}

double EnergyBreakdown::total() const {
    double sum = 0.0;
    for (const auto& [name, pj] : parts_) sum += pj;
    return sum;
}

void EnergyBreakdown::merge(const EnergyBreakdown& other) {
    for (const auto& [name, pj] : other.parts_) add(name, pj);
}

void EnergyBreakdown::scale(double factor) {
    for (auto& [name, pj] : parts_) pj *= factor;
}

void EnergyBreakdown::print(std::ostream& os, const std::string& title) const {
    if (!title.empty()) os << title << "\n";
    std::size_t width = 5;
    for (const auto& [name, pj] : parts_) width = std::max(width, name.size());
    for (const auto& [name, pj] : parts_) {
        os << "  " << name << std::string(width - name.size(), ' ') << " : "
           << format_energy_pj(pj) << "\n";
    }
    os << "  " << "total" << std::string(width - 5, ' ') << " : "
       << format_energy_pj(total()) << "\n";
}

void EnergyBreakdown::to_json(JsonWriter& w) const {
    w.begin_object();
    w.member("total_pj", total());
    w.key("components").begin_object();
    for (const auto& [name, pj] : parts_) w.member(name, pj);
    w.end_object();
    w.end_object();
}

}  // namespace memopt
