// Named energy breakdowns.
//
// Every evaluation path in the toolkit returns an EnergyBreakdown rather
// than a bare number, so reports and benches can show where the energy goes
// (bank access vs selector vs remap table vs leakage, etc.).
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace memopt {

class JsonWriter;

/// An ordered collection of (component name, energy [pJ]) pairs.
///
/// Components keep insertion order for stable printing; adding to an
/// existing name accumulates.
class EnergyBreakdown {
public:
    EnergyBreakdown() = default;

    /// Add `pj` picojoules to component `name` (creates it if missing).
    void add(const std::string& name, double pj);

    /// Energy of one component; 0 if the component does not exist.
    double component(const std::string& name) const;

    /// Sum over all components [pJ].
    double total() const;

    /// Merge another breakdown into this one (component-wise accumulate).
    void merge(const EnergyBreakdown& other);

    /// Multiply every component by `factor` (e.g. to scale a per-iteration
    /// breakdown to a full run).
    void scale(double factor);

    const std::vector<std::pair<std::string, double>>& components() const { return parts_; }

    /// Render as an aligned two-column listing with a total line.
    void print(std::ostream& os, const std::string& title = "") const;

    /// Serialize as {"total_pj": x, "components": {name: pj, ...}}.
    void to_json(JsonWriter& w) const;

private:
    std::vector<std::pair<std::string, double>> parts_;
};

}  // namespace memopt
