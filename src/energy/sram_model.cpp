#include "energy/sram_model.hpp"

#include <cmath>

#include "support/assert.hpp"
#include "trace/trace.hpp"

namespace memopt {

const char* protection_name(ProtectionScheme scheme) {
    switch (scheme) {
        case ProtectionScheme::None: return "none";
        case ProtectionScheme::Parity: return "parity";
        case ProtectionScheme::Secded: return "secded";
    }
    MEMOPT_ASSERT_MSG(false, "unknown ProtectionScheme");
    return "?";
}

unsigned protection_check_bits(ProtectionScheme scheme, unsigned data_bits) {
    require(data_bits > 0, "protection_check_bits: zero data width");
    switch (scheme) {
        case ProtectionScheme::None:
            return 0;
        case ProtectionScheme::Parity:
            return 1;
        case ProtectionScheme::Secded: {
            // Smallest m with 2^m >= data_bits + m + 1, plus the overall
            // parity bit that upgrades Hamming SEC to SECDED.
            unsigned m = 1;
            while ((1ull << m) < data_bits + m + 1) ++m;
            return m + 1;
        }
    }
    MEMOPT_ASSERT_MSG(false, "unknown ProtectionScheme");
    return 0;
}

double protection_access_energy(ProtectionScheme scheme, unsigned data_bits,
                                const SramTechnology& tech) {
    const unsigned check = protection_check_bits(scheme, data_bits);
    if (check == 0) return 0.0;
    // Every check bit is produced/verified by an XOR tree over roughly half
    // of the data word (plus the stored check bit itself).
    return static_cast<double>(check) * (data_bits / 2.0 + 1.0) * tech.ecc_xor_pj;
}

SramEnergyModel::SramEnergyModel(std::uint64_t size_bytes, unsigned word_bits,
                                 const SramTechnology& tech, ProtectionScheme protection)
    : size_bytes_(size_bytes), word_bits_(word_bits), tech_(tech), protection_(protection) {
    require(is_pow2(size_bytes), "SramEnergyModel: size must be a power of two");
    require(size_bytes >= 16, "SramEnergyModel: size must be >= 16 bytes");
    require(word_bits == 8 || word_bits == 16 || word_bits == 32 || word_bits == 64 ||
                word_bits == 128,
            "SramEnergyModel: unsupported word width");

    const double words = static_cast<double>(size_bytes) / (word_bits / 8.0);
    const double addr_bits = std::log2(words);
    // Check-bit columns widen every physical row: the array terms (bitlines
    // switched, cells leaking) scale by the protected-word width; the
    // decoder term does not (the address space is unchanged).
    const double width_factor =
        1.0 + static_cast<double>(protection_check_bits(protection, word_bits)) /
                  static_cast<double>(word_bits);
    // Wider words move more bitlines per access; scale the array term
    // linearly with width relative to the 32-bit reference.
    read_pj_ = tech.read_base_pj + tech.read_dec_pj * addr_bits +
               tech.read_sqrt_pj * std::sqrt(words) *
                   (static_cast<double>(word_bits) / 32.0) * width_factor;
    write_pj_ = read_pj_ * tech.write_factor;
    leak_pw_ = tech.leak_pw_per_byte * static_cast<double>(size_bytes) * width_factor;
}

double SramEnergyModel::leakage_energy(std::uint64_t cycles, double cycle_ns) const {
    require(cycle_ns >= 0.0, "leakage_energy: negative cycle time");
    // pW * ns = 1e-21 J = 1e-9 pJ.
    return leak_pw_ * static_cast<double>(cycles) * cycle_ns * 1e-9;
}

double bank_select_energy(std::size_t num_banks, const SramTechnology& tech) {
    MEMOPT_ASSERT(num_banks >= 1);
    if (num_banks <= 1) return 0.0;
    const double sel_bits = std::ceil(std::log2(static_cast<double>(num_banks)));
    // Selector decode scales with select bits; output multiplexing and the
    // longer inter-bank wiring scale mildly with the bank count itself.
    return 0.9 * tech.read_dec_pj * sel_bits + 0.15 * static_cast<double>(num_banks);
}

}  // namespace memopt
