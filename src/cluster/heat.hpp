// Bank heat ranking for cluster->bank technology placement.
//
// The hybrid assignment (partition/hybrid.hpp) minimizes energy directly,
// which implicitly sends hot banks to fast SRAM and cold banks to dense NVM.
// This module makes that ordering explicit and inspectable: a bank's *heat*
// is its access density (accesses per byte of physical capacity), and the
// heat rank orders banks hottest-first. Reports and benches use the rank to
// show the hot->SRAM / cold->NVM policy at work; the clustering passes that
// pack co-accessed blocks together are exactly what sharpens this gradient.
#pragma once

#include <cstddef>
#include <vector>

#include "partition/bank.hpp"
#include "trace/profile.hpp"

namespace memopt {

/// Access density of every bank [accesses / byte]: total profile accesses
/// landing in the bank divided by its physical capacity. The profile must
/// be in the same (physical) block space as the architecture.
std::vector<double> bank_heat(const MemoryArchitecture& arch, const BlockProfile& profile);

/// Heat rank per bank: rank[b] == 0 for the hottest bank, 1 for the next,
/// ... Deterministic: density ties break toward the lower bank index.
std::vector<std::size_t> bank_heat_rank(const std::vector<double>& heat);

}  // namespace memopt
