#include "cluster/affinity_cluster.hpp"

#include <algorithm>
#include <vector>

#include "support/assert.hpp"

namespace memopt {

AddressMap affinity_clustering(const BlockProfile& profile, const AffinityMatrix& affinity,
                               const AffinityClusterParams& params) {
    require(affinity.num_blocks() == profile.num_blocks(),
            "affinity_clustering: affinity matrix does not match profile");
    require(params.tail_window >= 1, "affinity_clustering: tail_window must be >= 1");
    const std::size_t n = profile.num_blocks();

    // Normalization constants.
    std::uint64_t max_count = 0;
    for (std::size_t b = 0; b < n; ++b)
        max_count = std::max(max_count, profile.counts(b).total());
    const double max_affinity = affinity.max_offdiagonal();

    const auto heat = [&](std::size_t b) {
        return max_count == 0
                   ? 0.0
                   : static_cast<double>(profile.counts(b).total()) / static_cast<double>(max_count);
    };

    // Hot blocks are chained greedily; cold (zero-access) blocks keep their
    // original relative order at the tail.
    std::vector<std::size_t> hot;
    std::vector<std::size_t> cold;
    for (std::size_t b = 0; b < n; ++b) {
        (profile.counts(b).total() > 0 ? hot : cold).push_back(b);
    }

    std::vector<std::size_t> chain;
    chain.reserve(hot.size());
    std::vector<bool> placed(n, false);

    if (!hot.empty()) {
        // Seed: hottest block (stable for ties).
        std::size_t seed = hot.front();
        for (std::size_t b : hot) {
            if (profile.counts(b).total() > profile.counts(seed).total()) seed = b;
        }

        // Incremental attraction scores: attraction[b] is the affinity of b
        // to the blocks currently inside the tail window. Each placement
        // updates only the new (and evicted) chain member's neighbours —
        // O(degree) — instead of rescanning the window for every candidate,
        // turning the chain build from O(n^2 * window) into O(n^2 + n *
        // degree). Affinity weights are integer co-access counts, so the
        // running add/subtract bookkeeping is exact and the chain is
        // bit-identical to the rescanning formulation.
        std::vector<double> attraction(n, 0.0);
        auto tail_update = [&](std::size_t member, double sign) {
            affinity.for_each_neighbor(
                member, [&](std::size_t b, double w) { attraction[b] += sign * w; });
        };

        chain.push_back(seed);
        placed[seed] = true;
        tail_update(seed, 1.0);

        while (chain.size() < hot.size()) {
            double best_score = -1.0;
            std::size_t best_block = SIZE_MAX;
            for (std::size_t b : hot) {
                if (placed[b]) continue;
                double aff = attraction[b];
                if (max_affinity > 0.0) aff /= max_affinity * static_cast<double>(params.tail_window);
                const double score = aff + params.frequency_weight * heat(b);
                if (score > best_score) {
                    best_score = score;
                    best_block = b;
                }
            }
            MEMOPT_ASSERT(best_block != SIZE_MAX);
            chain.push_back(best_block);
            placed[best_block] = true;
            tail_update(best_block, 1.0);
            if (chain.size() > params.tail_window)
                tail_update(chain[chain.size() - 1 - params.tail_window], -1.0);
        }
    }

    std::vector<std::size_t> perm(n, SIZE_MAX);
    std::size_t position = 0;
    for (std::size_t b : chain) perm[b] = position++;
    for (std::size_t b : cold) perm[b] = position++;
    MEMOPT_ASSERT(position == n);
    return AddressMap(profile.block_size(), std::move(perm));
}

}  // namespace memopt
