// Frequency-based address clustering.
//
// The simplest clustering policy of DATE'03 1B-1's family: sort blocks by
// descending access count and relocate them in that order, so the hottest
// blocks occupy a contiguous prefix of the physical block space. After
// partitioning, the prefix becomes one (or a few) small, frequently hit
// banks while the cold mass lands in large, rarely activated banks.
#pragma once

#include "cluster/address_map.hpp"
#include "trace/profile.hpp"

namespace memopt {

/// Build the frequency-ordered AddressMap for `profile`.
/// Deterministic: ties keep the original block order (stable sort).
AddressMap frequency_clustering(const BlockProfile& profile);

}  // namespace memopt
