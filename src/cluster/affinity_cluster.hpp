// Temporal-affinity address clustering.
//
// Frequency clustering ignores *when* blocks are accessed. The affinity
// variant orders blocks so that blocks which are hot AND used close
// together in time become physical neighbours: the greedy chain starts from
// the hottest block and repeatedly appends the unplaced block maximizing a
// blend of (a) affinity to the recently placed blocks and (b) its own
// access count. Blocks never co-accessed with anything placed fall back to
// frequency order.
#pragma once

#include "cluster/address_map.hpp"
#include "trace/affinity.hpp"
#include "trace/profile.hpp"

namespace memopt {

/// Tuning knobs of the greedy affinity chain.
struct AffinityClusterParams {
    double frequency_weight = 0.25;  ///< weight of normalized block heat
    std::size_t tail_window = 8;     ///< how many recently placed blocks attract
};

/// Build an affinity-ordered AddressMap. `affinity` must match the
/// profile's block count.
AddressMap affinity_clustering(const BlockProfile& profile, const AffinityMatrix& affinity,
                               const AffinityClusterParams& params = {});

}  // namespace memopt
