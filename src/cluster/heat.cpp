#include "cluster/heat.hpp"

#include <algorithm>
#include <numeric>

#include "support/assert.hpp"

namespace memopt {

std::vector<double> bank_heat(const MemoryArchitecture& arch, const BlockProfile& profile) {
    require(arch.num_blocks() == profile.num_blocks(),
            "bank_heat: architecture does not cover the profile");
    require(arch.block_size() == profile.block_size(), "bank_heat: block size mismatch");

    std::vector<double> heat;
    heat.reserve(arch.num_banks());
    for (const Bank& bank : arch.banks()) {
        std::uint64_t accesses = 0;
        for (std::size_t b = bank.first_block; b < bank.end_block(); ++b)
            accesses += profile.counts(b).total();
        heat.push_back(static_cast<double>(accesses) /
                       static_cast<double>(bank.size_bytes));
    }
    return heat;
}

std::vector<std::size_t> bank_heat_rank(const std::vector<double>& heat) {
    std::vector<std::size_t> order(heat.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) { return heat[a] > heat[b]; });
    std::vector<std::size_t> rank(heat.size());
    for (std::size_t r = 0; r < order.size(); ++r) rank[order[r]] = r;
    return rank;
}

}  // namespace memopt
