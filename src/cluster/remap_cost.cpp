#include "cluster/remap_cost.hpp"

#include <cmath>

#include "support/assert.hpp"

namespace memopt {

RemapTableModel::RemapTableModel(std::size_t num_blocks, const RemapTechnology& tech)
    : num_blocks_(num_blocks) {
    require(num_blocks >= 1, "RemapTableModel: num_blocks must be >= 1");
    index_bits_ = 0;
    while ((std::size_t{1} << index_bits_) < num_blocks) ++index_bits_;
    table_bits_ = static_cast<std::uint64_t>(num_blocks) * index_bits_;
    lookup_pj_ = num_blocks <= 1
                     ? 0.0
                     : tech.base_pj + tech.per_index_bit_pj * index_bits_ +
                           tech.per_entry_bit_pj * index_bits_;
}

}  // namespace memopt
