#include "cluster/frequency.hpp"

namespace memopt {

AddressMap frequency_clustering(const BlockProfile& profile) {
    const std::vector<std::size_t> order = profile.blocks_by_access_desc();
    // order[rank] = logical block; we need perm[logical] = physical rank.
    std::vector<std::size_t> perm(order.size());
    for (std::size_t rank = 0; rank < order.size(); ++rank) perm[order[rank]] = rank;
    return AddressMap(profile.block_size(), std::move(perm));
}

}  // namespace memopt
