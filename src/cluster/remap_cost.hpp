// Hardware cost model of the address-remap stage.
//
// The remap table is a narrow structure indexed by the block bits of the
// address: N entries of ceil(log2 N) bits each, sitting in front of the
// bank decoder. Every memory access pays one lookup. Reporting clustering
// savings *net* of this overhead is what keeps the reproduction honest —
// an AddressMap that buys nothing still costs a lookup per access.
#pragma once

#include <cstdint>

namespace memopt {

/// Technology constants for the remap lookup.
/// The default models a small, flip-flop/latch-array-based translation
/// table (not a full SRAM macro): energy grows with the index width and
/// (weakly) with the entry width.
struct RemapTechnology {
    double base_pj = 0.4;       ///< wire + control overhead per lookup
    double per_index_bit_pj = 0.06;  ///< decode cost per index bit
    double per_entry_bit_pj = 0.02;  ///< read-out cost per entry bit
};

/// Cost model for a remap table over `num_blocks` blocks.
class RemapTableModel {
public:
    /// `num_blocks` >= 1. A single-block table degenerates to zero cost.
    explicit RemapTableModel(std::size_t num_blocks,
                             const RemapTechnology& tech = RemapTechnology{});

    /// Energy of one address translation [pJ].
    double lookup_energy() const { return lookup_pj_; }

    /// Table size in bits (N entries of ceil(log2 N) bits).
    std::uint64_t table_bits() const { return table_bits_; }

    std::size_t num_blocks() const { return num_blocks_; }
    unsigned index_bits() const { return index_bits_; }

private:
    std::size_t num_blocks_;
    unsigned index_bits_;
    std::uint64_t table_bits_;
    double lookup_pj_;
};

}  // namespace memopt
