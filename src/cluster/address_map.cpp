#include "cluster/address_map.hpp"

#include <numeric>

#include "support/assert.hpp"

namespace memopt {

AddressMap AddressMap::identity(std::uint64_t block_size, std::size_t num_blocks) {
    std::vector<std::size_t> perm(num_blocks);
    std::iota(perm.begin(), perm.end(), std::size_t{0});
    return AddressMap(block_size, std::move(perm));
}

AddressMap::AddressMap(std::uint64_t block_size, std::vector<std::size_t> perm)
    : block_size_(block_size), perm_(std::move(perm)) {
    require(is_pow2(block_size_), "AddressMap: block_size must be a power of two");
    require(!perm_.empty(), "AddressMap: empty permutation");
    inverse_.assign(perm_.size(), SIZE_MAX);
    for (std::size_t logical = 0; logical < perm_.size(); ++logical) {
        const std::size_t physical = perm_[logical];
        require(physical < perm_.size(), "AddressMap: target block out of range");
        require(inverse_[physical] == SIZE_MAX, "AddressMap: permutation is not a bijection");
        inverse_[physical] = logical;
    }
}

bool AddressMap::is_identity() const {
    for (std::size_t i = 0; i < perm_.size(); ++i) {
        if (perm_[i] != i) return false;
    }
    return true;
}

std::size_t AddressMap::map_block(std::size_t logical) const {
    require(logical < perm_.size(), "map_block: block out of range");
    return perm_[logical];
}

std::size_t AddressMap::unmap_block(std::size_t physical) const {
    require(physical < perm_.size(), "unmap_block: block out of range");
    return inverse_[physical];
}

std::uint64_t AddressMap::map_addr(std::uint64_t addr) const {
    const std::uint64_t block = addr / block_size_;
    require(block < perm_.size(), "map_addr: address outside mapped span");
    return static_cast<std::uint64_t>(perm_[static_cast<std::size_t>(block)]) * block_size_ +
           addr % block_size_;
}

BlockProfile AddressMap::apply(const BlockProfile& profile) const {
    require(profile.num_blocks() == perm_.size() && profile.block_size() == block_size_,
            "AddressMap::apply: profile geometry mismatch");
    return profile.permuted(perm_);
}

MemTrace AddressMap::apply(const MemTrace& trace) const {
    // Columnar remap: only the addr column is transformed; the other
    // columns are copied wholesale. from_columns re-derives the summary
    // statistics (the remap moves min/max_addr).
    std::vector<std::uint64_t> addrs(trace.addrs().begin(), trace.addrs().end());
    for (std::uint64_t& addr : addrs) addr = map_addr(addr);
    return MemTrace::from_columns(
        std::move(addrs), {trace.cycles().begin(), trace.cycles().end()},
        {trace.values().begin(), trace.values().end()},
        {trace.sizes().begin(), trace.sizes().end()},
        {trace.kinds().begin(), trace.kinds().end()});
}

}  // namespace memopt
