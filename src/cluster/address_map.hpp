// Block-granularity address remapping.
//
// Address clustering (DATE'03 1B-1) inserts a bijective remap of address
// blocks between the CPU and the memory banks: hot blocks that are scattered
// across the address space are relocated next to each other in the physical
// block space, so that the downstream partitioner can isolate them into a
// small, cheap bank. An AddressMap is that bijection.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "trace/profile.hpp"
#include "trace/trace.hpp"

namespace memopt {

/// A bijective mapping of profile blocks (logical -> physical).
class AddressMap {
public:
    /// Trivial map: identity over a single 4 KiB block. Exists so that
    /// result structs holding an AddressMap are default-constructible;
    /// replace it before use.
    AddressMap() : AddressMap(4096, {0}) {}

    /// Identity map over `num_blocks` blocks of `block_size` bytes.
    static AddressMap identity(std::uint64_t block_size, std::size_t num_blocks);

    /// Build from an explicit permutation: perm[logical] = physical.
    /// Throws memopt::Error unless `perm` is a bijection.
    AddressMap(std::uint64_t block_size, std::vector<std::size_t> perm);

    std::uint64_t block_size() const { return block_size_; }
    std::size_t num_blocks() const { return perm_.size(); }
    bool is_identity() const;

    /// Physical block of a logical block.
    std::size_t map_block(std::size_t logical) const;

    /// Logical block of a physical block (inverse mapping).
    std::size_t unmap_block(std::size_t physical) const;

    /// Remap a byte address (block bits remapped, offset preserved).
    std::uint64_t map_addr(std::uint64_t addr) const;

    /// The raw permutation (logical -> physical).
    std::span<const std::size_t> permutation() const { return perm_; }

    /// Apply to a profile: returns the physical-space profile.
    BlockProfile apply(const BlockProfile& profile) const;

    /// Apply to a trace: returns the trace as seen after the remap stage.
    MemTrace apply(const MemTrace& trace) const;

private:
    std::uint64_t block_size_;
    std::vector<std::size_t> perm_;     // logical -> physical
    std::vector<std::size_t> inverse_;  // physical -> logical
};

}  // namespace memopt
