// Heterogeneous memory technology tests: per-technology energy identities,
// BankPool parsing, gating residency replay, assignment DP behavior, the
// homogeneous-SRAM bit-identity contract with the legacy evaluation, and the
// back-to-back pool evaluation / jobs-invariance determinism contracts.
#include <gtest/gtest.h>

#include <vector>

#include "core/flow.hpp"
#include "energy/tech_model.hpp"
#include "partition/evaluate.hpp"
#include "partition/hybrid.hpp"
#include "support/assert.hpp"
#include "support/parallel.hpp"
#include "trace/source.hpp"

namespace memopt {
namespace {

// Two hot 4-block regions accessed in alternating bursts with long idle
// gaps — the shape that makes gating matter.
MemTrace bursty_trace(std::uint64_t gap_cycles, int bursts = 10) {
    MemTrace t;
    std::uint64_t cycle = 0;
    for (int burst = 0; burst < bursts; ++burst) {
        const std::uint64_t base = burst % 2 == 0 ? 0 : 4096;
        for (int i = 0; i < 50; ++i) {
            t.add(MemAccess{.addr = base + static_cast<std::uint64_t>(i % 256) * 4,
                            .cycle = cycle, .size = 4,
                            .kind = i % 4 == 0 ? AccessKind::Write : AccessKind::Read});
            cycle += 2;
        }
        cycle += gap_cycles;
    }
    return t;
}

// ------------------------------------------------------- technologies ----

TEST(TechModel, NamesRoundTrip) {
    for (MemTechnology tech : {MemTechnology::Sram, MemTechnology::Edram,
                               MemTechnology::SttMram, MemTechnology::DrowsySram})
        EXPECT_EQ(parse_technology(technology_name(tech)), tech);
    EXPECT_THROW(parse_technology("dram"), Error);
    EXPECT_THROW(parse_technology(""), Error);
}

TEST(TechModel, SramIsBitIdenticalToLegacyModel) {
    for (std::uint64_t size : {256u, 4096u, 131072u}) {
        const SramEnergyModel legacy(size);
        const TechEnergyModel tech(MemTechnology::Sram, size);
        // Exact equality, not near: the SRAM branch delegates, it does not
        // multiply by 1.0.
        EXPECT_EQ(tech.read_energy(), legacy.read_energy());
        EXPECT_EQ(tech.write_energy(), legacy.write_energy());
        EXPECT_EQ(tech.leakage_pw(), legacy.leakage_pw());
        EXPECT_EQ(tech.leakage_energy(12345, 10.0), legacy.leakage_energy(12345, 10.0));
        EXPECT_EQ(tech.refresh_energy(12345, 10.0), 0.0);
    }
}

TEST(TechModel, SttMramReadWriteAsymmetry) {
    const SramEnergyModel sram(4096);
    const TechEnergyModel stt(MemTechnology::SttMram, 4096);
    // Reads slightly above SRAM, writes several times a read, leakage near
    // zero, and the gate is perfect (non-volatile cell).
    EXPECT_GT(stt.read_energy(), sram.read_energy());
    EXPECT_LT(stt.read_energy(), 1.5 * sram.read_energy());
    EXPECT_GT(stt.write_energy(), 4.0 * stt.read_energy());
    EXPECT_LT(stt.leakage_pw(), 0.05 * sram.leakage_pw());
    EXPECT_EQ(stt.gated_leakage_energy(100000, 10.0), 0.0);
    EXPECT_TRUE(stt.factors().retentive);
}

TEST(TechModel, EdramRefreshScalesWithPoweredCycles) {
    const TechEnergyModel edram(MemTechnology::Edram, 4096);
    const double one = edram.refresh_energy(1000, 10.0);
    EXPECT_GT(one, 0.0);
    EXPECT_DOUBLE_EQ(edram.refresh_energy(2000, 10.0), 2.0 * one);
    EXPECT_DOUBLE_EQ(edram.refresh_energy(0, 10.0), 0.0);
    // Refresh power scales with the array size (per-byte sweep).
    const TechEnergyModel big(MemTechnology::Edram, 8192);
    EXPECT_DOUBLE_EQ(big.refresh_energy(1000, 10.0), 2.0 * one);
    // Static technologies never refresh.
    EXPECT_EQ(TechEnergyModel(MemTechnology::SttMram, 4096).refresh_energy(1000, 10.0), 0.0);
    EXPECT_EQ(TechEnergyModel(MemTechnology::DrowsySram, 4096).refresh_energy(1000, 10.0),
              0.0);
}

TEST(TechModel, DrowsyMatchesSleepMachineryConstants) {
    const TechEnergyModel drowsy(MemTechnology::DrowsySram, 4096);
    const SramEnergyModel sram(4096);
    // Access and standby energy are plain SRAM; only the gate differs.
    EXPECT_EQ(drowsy.read_energy(), sram.read_energy());
    EXPECT_EQ(drowsy.leakage_pw(), sram.leakage_pw());
    // The drowsy state is the SleepParams design point: 8% residual
    // leakage, 40 pJ wake, retentive.
    EXPECT_DOUBLE_EQ(drowsy.factors().gate_leak_factor, 0.08);
    EXPECT_DOUBLE_EQ(drowsy.gate_wake_energy(), 40.0);
    EXPECT_TRUE(drowsy.factors().retentive);
}

// ----------------------------------------------------------- bank pool ----

TEST(BankPool, ParsesSpecGrammar) {
    const BankPool pool = BankPool::parse("sram=2,sttmram=6");
    ASSERT_EQ(pool.num_slots(), 2u);
    EXPECT_EQ(pool.slots()[0].tech, MemTechnology::Sram);
    EXPECT_EQ(pool.slots()[0].count, 2u);
    EXPECT_EQ(pool.slots()[1].tech, MemTechnology::SttMram);
    EXPECT_EQ(pool.slots()[1].count, 6u);
    EXPECT_EQ(pool.total_banks(), 8u);
    EXPECT_FALSE(pool.is_homogeneous());
    EXPECT_EQ(pool.to_string(), "sram=2,sttmram=6");

    const BankPool unbounded = BankPool::parse("edram");
    EXPECT_EQ(unbounded.slots()[0].count, BankPool::kUnbounded);
    EXPECT_TRUE(unbounded.is_homogeneous());
    EXPECT_EQ(unbounded.to_string(), "edram");
    EXPECT_EQ(BankPool::parse(" sram = 2 , drowsy ").to_string(), "sram=2,drowsy");
}

TEST(BankPool, RejectsBadSpecs) {
    EXPECT_THROW(BankPool::parse(""), Error);
    EXPECT_THROW(BankPool::parse("sram,,edram"), Error);
    EXPECT_THROW(BankPool::parse("flash=2"), Error);
    EXPECT_THROW(BankPool::parse("sram=0"), Error);
    EXPECT_THROW(BankPool::parse("sram=x"), Error);
}

// ------------------------------------------------------ gating replay ----

TEST(HybridGating, GatedBankChargesZeroDynamicEnergy) {
    const MemTrace trace = bursty_trace(5000);
    const BlockProfile profile = BlockProfile::from_trace(trace, 1024);
    // Bank 1 covers only the cold tail past both hot regions: never
    // accessed, gated for essentially the whole run.
    const auto arch =
        MemoryArchitecture::from_splits(1024, profile.num_blocks(), {profile.num_blocks() - 1});
    const AddressMap map = AddressMap::identity(1024, profile.num_blocks());
    HybridGatingParams gating;
    gating.idle_cycles = 100;
    const auto activity = replay_bank_activity(arch, map, trace, gating);
    ASSERT_EQ(activity.size(), 2u);

    const std::size_t cold = activity[0].accesses() == 0 ? 0 : 1;
    EXPECT_EQ(activity[cold].accesses(), 0u);
    EXPECT_EQ(activity[cold].wakeups, 0u);
    EXPECT_GT(activity[cold].gated_cycles, 9u * activity[cold].active_cycles);

    const HybridReport report = evaluate_partition_hybrid(
        arch, {MemTechnology::Sram, MemTechnology::Sram}, activity, {}, gating);
    EXPECT_EQ(report.banks[cold].access_pj, 0.0);
    EXPECT_EQ(report.banks[cold].wakeup_pj, 0.0);
    EXPECT_GT(report.banks[cold].gated_pj, 0.0);  // residual gate leakage only
    // A perfectly-gated technology charges nothing at all while dark.
    const HybridReport stt = evaluate_partition_hybrid(
        arch, {MemTechnology::Sram, MemTechnology::SttMram}, activity, {}, gating);
    EXPECT_EQ(stt.banks[cold].gated_pj, 0.0);
}

TEST(HybridGating, ResidencyIsConsistent) {
    const MemTrace trace = bursty_trace(3000);
    const BlockProfile profile = BlockProfile::from_trace(trace, 1024);
    const auto arch = MemoryArchitecture::from_splits(1024, profile.num_blocks(), {4});
    const AddressMap map = AddressMap::identity(1024, profile.num_blocks());
    HybridGatingParams gating;
    gating.idle_cycles = 200;
    const auto activity = replay_bank_activity(arch, map, trace, gating);

    const std::uint64_t end = trace.accesses().back().cycle + 1;
    std::uint64_t accesses = 0;
    for (const BankActivity& a : activity) {
        EXPECT_EQ(a.total_cycles(), end);  // active + gated partition the run
        accesses += a.accesses();
    }
    EXPECT_EQ(accesses, trace.size());

    // Gating disabled: every cycle is active, nothing wakes.
    HybridGatingParams off;
    off.enabled = false;
    for (const BankActivity& a : replay_bank_activity(arch, map, trace, off)) {
        EXPECT_EQ(a.gated_cycles, 0u);
        EXPECT_EQ(a.wakeups, 0u);
        EXPECT_EQ(a.active_cycles, end);
    }
}

// ------------------------------------------------- legacy bit-identity ----

TEST(HybridIdentity, AllSramStaticEvaluationMatchesLegacyBitForBit) {
    const MemTrace trace = bursty_trace(1000);
    const BlockProfile profile = BlockProfile::from_trace(trace, 1024);
    const auto arch = MemoryArchitecture::from_splits(1024, profile.num_blocks(), {2, 5});
    PartitionEnergyParams params;
    params.runtime_cycles = 100000;
    params.extra_pj_per_access = 1.5;

    const EnergyBreakdown legacy = evaluate_partition(arch, profile, params);
    const std::vector<MemTechnology> sram(arch.num_banks(), MemTechnology::Sram);
    const EnergyBreakdown tech = evaluate_partition_tech(arch, sram, profile, params);
    for (const char* component : {"bank_access", "bank_select", "leakage", "remap"})
        EXPECT_EQ(tech.component(component), legacy.component(component)) << component;
    EXPECT_EQ(tech.total(), legacy.total());
}

TEST(HybridIdentity, AllSramUngatedReplayMatchesLegacyBitForBit) {
    const MemTrace trace = bursty_trace(1000);
    const BlockProfile profile = BlockProfile::from_trace(trace, 1024);
    const auto arch = MemoryArchitecture::from_splits(1024, profile.num_blocks(), {2, 5});
    const AddressMap map = AddressMap::identity(1024, profile.num_blocks());
    PartitionEnergyParams params;
    params.runtime_cycles = trace.accesses().back().cycle + 1;

    HybridGatingParams off;
    off.enabled = false;
    const auto activity =
        replay_bank_activity(arch, map, trace, off, params.runtime_cycles);
    const std::vector<MemTechnology> sram(arch.num_banks(), MemTechnology::Sram);
    const HybridReport report =
        evaluate_partition_hybrid(arch, sram, activity, params, off);

    const EnergyBreakdown legacy = evaluate_partition(arch, profile, params);
    for (const char* component : {"bank_access", "bank_select", "leakage"})
        EXPECT_EQ(report.energy.component(component), legacy.component(component))
            << component;
}

// -------------------------------------------------------- assignment ----

TEST(HybridAssignment, RespectsPoolCountsAndPrefersCheapTech) {
    const MemTrace trace = bursty_trace(5000);
    FlowParams fp;
    fp.block_size = 1024;
    fp.constraints.max_banks = 8;
    fp.energy.runtime_cycles = trace.accesses().back().cycle + 1;
    const MemoryOptimizationFlow flow(fp);

    const BankPool pool = BankPool::parse("sram=1,sttmram=7");
    const auto result = flow.run_hybrid(trace, ClusterMethod::Frequency, pool);
    std::size_t sram_banks = 0;
    for (MemTechnology tech : result.techs)
        if (tech == MemTechnology::Sram) ++sram_banks;
    EXPECT_LE(sram_banks, 1u);
    EXPECT_EQ(result.techs.size(), result.base.solution.arch.num_banks());
    // heat_rank is a permutation of [0, num_banks).
    std::vector<bool> seen(result.heat_rank.size(), false);
    for (std::size_t r : result.heat_rank) {
        ASSERT_LT(r, seen.size());
        seen[r] = true;
    }
    for (bool s : seen) EXPECT_TRUE(s);
}

TEST(HybridAssignment, FreeMixNeverLosesToHomogeneous) {
    const MemTrace trace = bursty_trace(4000);
    FlowParams fp;
    fp.block_size = 1024;
    fp.constraints.max_banks = 6;
    fp.energy.runtime_cycles = trace.accesses().back().cycle + 1;
    const MemoryOptimizationFlow flow(fp);

    const double mix =
        flow.run_hybrid(trace, ClusterMethod::Frequency,
                        BankPool::parse("sram,edram,sttmram,drowsy")).total();
    for (const char* name : {"sram", "edram", "sttmram", "drowsy"}) {
        const double homog =
            flow.run_hybrid(trace, ClusterMethod::Frequency,
                            BankPool::homogeneous(parse_technology(name))).total();
        EXPECT_LE(mix, homog * (1.0 + 1e-12)) << name;
    }
}

TEST(HybridAssignment, PoolCapsBankCount) {
    const MemTrace trace = bursty_trace(2000);
    FlowParams fp;
    fp.block_size = 1024;
    fp.constraints.max_banks = 8;
    const MemoryOptimizationFlow flow(fp);
    const auto result =
        flow.run_hybrid(trace, ClusterMethod::Frequency, BankPool::parse("edram=2"));
    EXPECT_LE(result.base.solution.arch.num_banks(), 2u);
}

// ------------------------------------------------------- determinism ----

TEST(HybridDeterminism, BackToBackPoolEvaluationsAreIndependent) {
    // Regression for stale gating/residency state: evaluating pool B right
    // after pool A on the same source must match evaluating pool B on a
    // fresh source (the replay resets the source and keeps no globals).
    const MemTrace trace = bursty_trace(3000);
    FlowParams fp;
    fp.block_size = 1024;
    fp.constraints.max_banks = 6;
    fp.energy.runtime_cycles = trace.accesses().back().cycle + 1;
    const MemoryOptimizationFlow flow(fp);

    MaterializedSource shared(trace);
    const auto first =
        flow.run_hybrid(shared, ClusterMethod::Frequency, BankPool::parse("sram"));
    const auto second = flow.run_hybrid(shared, ClusterMethod::Frequency,
                                        BankPool::parse("sram=1,sttmram=7"));

    MaterializedSource fresh(trace);
    const auto alone = flow.run_hybrid(fresh, ClusterMethod::Frequency,
                                       BankPool::parse("sram=1,sttmram=7"));
    EXPECT_EQ(second.total(), alone.total());
    EXPECT_EQ(second.techs, alone.techs);
    ASSERT_EQ(second.report.banks.size(), alone.report.banks.size());
    for (std::size_t b = 0; b < alone.report.banks.size(); ++b) {
        EXPECT_EQ(second.report.banks[b].activity.gated_cycles,
                  alone.report.banks[b].activity.gated_cycles);
        EXPECT_EQ(second.report.banks[b].activity.wakeups,
                  alone.report.banks[b].activity.wakeups);
    }
    // And the first run was not disturbed by having had a different pool.
    EXPECT_EQ(first.total(),
              flow.run_hybrid(trace, ClusterMethod::Frequency, BankPool::parse("sram"))
                  .total());
}

TEST(HybridDeterminism, JobsInvariance1vs8) {
    // Batch hybrid evaluation across traces must be bit-identical at any
    // job count (parallel_map with in-order reduction; each evaluation is
    // sequential inside).
    std::vector<MemTrace> traces;
    for (int i = 0; i < 6; ++i) traces.push_back(bursty_trace(1000 + 700 * i));
    FlowParams fp;
    fp.block_size = 1024;
    fp.constraints.max_banks = 6;
    const MemoryOptimizationFlow flow(fp);
    const BankPool pool = BankPool::parse("sram=2,edram=2,sttmram=4");

    const auto eval = [&](const MemTrace& trace) {
        return flow.run_hybrid(trace, ClusterMethod::Frequency, pool).total();
    };
    const std::vector<double> serial =
        parallel_map(std::span<const MemTrace>(traces), eval, 1);
    const std::vector<double> parallel =
        parallel_map(std::span<const MemTrace>(traces), eval, 8);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], parallel[i]) << "trace " << i;
}

}  // namespace
}  // namespace memopt
