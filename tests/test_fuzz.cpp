// Differential fuzzing of the AR32 execution core.
//
// Generates random straight-line ALU programs, runs them through the full
// stack (encode -> decode -> simulate), and cross-checks the final register
// file against an independent reference interpreter implemented right here
// from the ISA specification. Any divergence between the two
// implementations of the semantics fails loudly with the offending seed.
#include <gtest/gtest.h>

#include <array>
#include <sstream>

#include "compress/bdi_codec.hpp"
#include "compress/dictionary_codec.hpp"
#include "compress/diff_codec.hpp"
#include "compress/zero_run.hpp"
#include "fault/inject.hpp"
#include "isa/assembler.hpp"
#include "isa/encode.hpp"
#include "lang/codegen.hpp"
#include "sim/cpu.hpp"
#include "support/rng.hpp"
#include "trace/io.hpp"
#include "trace/synthetic.hpp"

namespace memopt {
namespace {

/// The ALU subset used by the fuzzer (no memory, no control flow: straight
/// line by construction, so both interpreters see identical sequences).
const std::array<Op, 19> kAluOps = {
    Op::Add,  Op::Sub,  Op::And,  Op::Orr,  Op::Eor,  Op::Lsl,  Op::Lsr,
    Op::Asr,  Op::Mul,  Op::Mov,  Op::Mvn,  Op::Addi, Op::Subi, Op::Andi,
    Op::Orri, Op::Eori, Op::Lsli, Op::Lsri, Op::Asri,
};

Instr random_alu_instr(Rng& rng) {
    Instr i;
    i.op = kAluOps[rng.next_below(kAluOps.size())];
    i.rd = static_cast<std::uint8_t>(rng.next_below(kNumRegs));
    i.rn = static_cast<std::uint8_t>(rng.next_below(kNumRegs));
    i.rm = static_cast<std::uint8_t>(rng.next_below(kNumRegs));
    if (format_of(i.op) == Format::I) {
        const bool zero_extended = imm_fits(i.op, 40000);
        i.imm = zero_extended ? static_cast<std::int32_t>(rng.next_below(65536))
                              : static_cast<std::int32_t>(rng.next_in(-32768, 32767));
    }
    return i;
}

/// Independent reference semantics, written directly from docs/AR32.md.
void reference_step(const Instr& i, std::array<std::uint32_t, kNumRegs>& regs) {
    const std::uint32_t rn = regs[i.rn];
    const std::uint32_t rm = regs[i.rm];
    const auto imm = static_cast<std::uint32_t>(i.imm);
    switch (i.op) {
        case Op::Add: regs[i.rd] = rn + rm; break;
        case Op::Sub: regs[i.rd] = rn - rm; break;
        case Op::And: regs[i.rd] = rn & rm; break;
        case Op::Orr: regs[i.rd] = rn | rm; break;
        case Op::Eor: regs[i.rd] = rn ^ rm; break;
        case Op::Lsl: regs[i.rd] = rn << (rm % 32); break;
        case Op::Lsr: regs[i.rd] = rn >> (rm % 32); break;
        case Op::Asr: {
            const auto shift = static_cast<int>(rm % 32);
            regs[i.rd] = static_cast<std::uint32_t>(static_cast<std::int64_t>(
                             static_cast<std::int32_t>(rn)) >> shift);
            break;
        }
        case Op::Mul:
            regs[i.rd] = static_cast<std::uint32_t>(
                (static_cast<std::uint64_t>(rn) * rm) & 0xFFFFFFFFull);
            break;
        case Op::Mov: regs[i.rd] = rm; break;
        case Op::Mvn: regs[i.rd] = ~rm; break;
        case Op::Addi: regs[i.rd] = rn + imm; break;
        case Op::Subi: regs[i.rd] = rn - imm; break;
        case Op::Andi: regs[i.rd] = rn & imm; break;
        case Op::Orri: regs[i.rd] = rn | imm; break;
        case Op::Eori: regs[i.rd] = rn ^ imm; break;
        case Op::Lsli: regs[i.rd] = rn << (imm % 32); break;
        case Op::Lsri: regs[i.rd] = rn >> (imm % 32); break;
        case Op::Asri: {
            const auto shift = static_cast<int>(imm % 32);
            regs[i.rd] = static_cast<std::uint32_t>(static_cast<std::int64_t>(
                             static_cast<std::int32_t>(rn)) >> shift);
            break;
        }
        default:
            FAIL() << "fuzzer generated a non-ALU op";
    }
}

class AluFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AluFuzz, SimulatorMatchesReferenceInterpreter) {
    Rng rng(GetParam() * 7919 + 13);
    for (int program = 0; program < 40; ++program) {
        const std::size_t length = 10 + rng.next_below(80);
        std::vector<Instr> instrs;
        // Seed a few registers with immediates so the data is not all zero.
        for (unsigned r = 0; r < 6; ++r) {
            instrs.push_back(Instr{.op = Op::Movi,
                                   .rd = static_cast<std::uint8_t>(r),
                                   .imm = static_cast<std::int32_t>(rng.next_in(-32768, 32767))});
            instrs.push_back(Instr{.op = Op::Movhi,
                                   .rd = static_cast<std::uint8_t>(r),
                                   .imm = static_cast<std::int32_t>(rng.next_below(65536))});
        }
        for (std::size_t n = 0; n < length; ++n) instrs.push_back(random_alu_instr(rng));

        // Reference execution.
        std::array<std::uint32_t, kNumRegs> ref_regs{};
        ref_regs[kRegSp] = 256 * 1024;  // matches CpuConfig default
        for (const Instr& i : instrs) {
            if (i.op == Op::Movi) {
                ref_regs[i.rd] = static_cast<std::uint32_t>(i.imm);
            } else if (i.op == Op::Movhi) {
                ref_regs[i.rd] =
                    (ref_regs[i.rd] & 0xFFFFu) | (static_cast<std::uint32_t>(i.imm) << 16);
            } else {
                reference_step(i, ref_regs);
            }
        }

        // Full-stack execution: encode every instruction, dump all registers
        // through `out`, and run on the simulator.
        AssembledProgram prog;
        for (const Instr& i : instrs) prog.code.push_back(encode(i));
        for (unsigned r = 0; r < kNumRegs; ++r)
            prog.code.push_back(encode(Instr{.op = Op::Out, .rm = static_cast<std::uint8_t>(r)}));
        prog.code.push_back(encode(Instr{.op = Op::Halt}));
        prog.data_base = 0x10000;

        const RunResult result = Cpu(CpuConfig{}).run(prog);
        ASSERT_EQ(result.output.size(), kNumRegs) << "seed " << GetParam() << " prog " << program;
        for (unsigned r = 0; r < kNumRegs; ++r) {
            EXPECT_EQ(result.output[r], ref_regs[r])
                << "register r" << r << ", seed " << GetParam() << ", program " << program;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AluFuzz, ::testing::Range<std::uint64_t>(1, 11));

// ---- memory-op fuzzing ------------------------------------------------

/// Straight-line programs mixing ALU ops with word loads/stores confined to
/// a small scratch window of data memory; the reference interpreter keeps
/// its own copy of the window.
class MemFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MemFuzz, LoadsAndStoresMatchReferenceModel) {
    constexpr std::uint32_t kBase = 0x10000;   // data_base
    constexpr std::uint32_t kWords = 16;       // scratch window
    Rng rng(GetParam() * 104729 + 7);

    for (int program = 0; program < 25; ++program) {
        std::vector<Instr> instrs;
        // r15 anchors the scratch window; r0..r5 get random seeds.
        instrs.push_back(Instr{.op = Op::Movi, .rd = 15, .imm = 0});
        instrs.push_back(Instr{.op = Op::Movhi, .rd = 15, .imm = 1});  // r15 = 0x10000
        for (unsigned r = 0; r < 6; ++r) {
            instrs.push_back(Instr{.op = Op::Movi,
                                   .rd = static_cast<std::uint8_t>(r),
                                   .imm = static_cast<std::int32_t>(rng.next_in(-32768, 32767))});
        }
        const std::size_t length = 20 + rng.next_below(60);
        for (std::size_t n = 0; n < length; ++n) {
            const unsigned pick = static_cast<unsigned>(rng.next_below(3));
            if (pick == 0) {
                // Word store to a random slot.
                instrs.push_back(Instr{
                    .op = Op::Stw,
                    .rd = static_cast<std::uint8_t>(rng.next_below(6)),
                    .rn = 15,
                    .imm = static_cast<std::int32_t>(rng.next_below(kWords) * 4)});
            } else if (pick == 1) {
                instrs.push_back(Instr{
                    .op = Op::Ldw,
                    .rd = static_cast<std::uint8_t>(rng.next_below(6)),
                    .rn = 15,
                    .imm = static_cast<std::int32_t>(rng.next_below(kWords) * 4)});
            } else {
                Instr alu = random_alu_instr(rng);
                // Keep r15 (the window anchor) intact.
                if (alu.rd == 15) alu.rd = 0;
                instrs.push_back(alu);
            }
        }

        // Reference execution with its own memory window.
        std::array<std::uint32_t, kNumRegs> ref_regs{};
        ref_regs[kRegSp] = 256 * 1024;
        std::array<std::uint32_t, kWords> ref_mem{};
        for (const Instr& i : instrs) {
            if (i.op == Op::Movi) {
                ref_regs[i.rd] = static_cast<std::uint32_t>(i.imm);
            } else if (i.op == Op::Movhi) {
                ref_regs[i.rd] =
                    (ref_regs[i.rd] & 0xFFFFu) | (static_cast<std::uint32_t>(i.imm) << 16);
            } else if (i.op == Op::Stw) {
                const std::uint32_t addr = ref_regs[i.rn] + static_cast<std::uint32_t>(i.imm);
                ASSERT_EQ(addr % 4, 0u);
                ref_mem[(addr - kBase) / 4] = ref_regs[i.rd];
            } else if (i.op == Op::Ldw) {
                const std::uint32_t addr = ref_regs[i.rn] + static_cast<std::uint32_t>(i.imm);
                ref_regs[i.rd] = ref_mem[(addr - kBase) / 4];
            } else {
                reference_step(i, ref_regs);
            }
        }

        AssembledProgram prog;
        for (const Instr& i : instrs) prog.code.push_back(encode(i));
        for (unsigned r = 0; r < kNumRegs; ++r)
            prog.code.push_back(encode(Instr{.op = Op::Out, .rm = static_cast<std::uint8_t>(r)}));
        prog.code.push_back(encode(Instr{.op = Op::Halt}));
        prog.data_base = kBase;

        const RunResult result = Cpu(CpuConfig{}).run(prog);
        ASSERT_EQ(result.output.size(), kNumRegs);
        for (unsigned r = 0; r < kNumRegs; ++r) {
            EXPECT_EQ(result.output[r], ref_regs[r])
                << "register r" << r << ", seed " << GetParam() << ", program " << program;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemFuzz, ::testing::Range<std::uint64_t>(1, 9));


// ---- front-end robustness fuzzing ---------------------------------------

/// Random token soup fed to the assembler and to arclang: both must either
/// succeed or throw memopt::Error — never crash, hang, or trip an internal
/// assertion.
class FrontEndFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FrontEndFuzz, AssemblerNeverCrashesOnGarbage) {
    static const char* kAsmTokens[] = {
        "add",  "ldw",  "movi", "halt", "b",    "bl",    "li",   "push", ".data",
        ".word", ".rand", ".space", "r1",  "r15",  "sp",   "lr",   "label:", "label",
        "#5",   "-1",   "0x10", "[",    "]",    ",",     "\n",   ";comment\n", "65536",
    };
    Rng rng(GetParam() * 31337 + 5);
    for (int trial = 0; trial < 300; ++trial) {
        std::string source;
        const std::size_t tokens = rng.next_below(40);
        for (std::size_t t = 0; t < tokens; ++t) {
            source += kAsmTokens[rng.next_below(std::size(kAsmTokens))];
            source += ' ';
        }
        try {
            assemble(source);
        } catch (const Error&) {
            // rejected cleanly: fine
        }
    }
    SUCCEED();
}

TEST_P(FrontEndFuzz, ArclangNeverCrashesOnGarbage) {
    static const char* kLangTokens[] = {
        "var", "array", "if", "else", "while", "out", "rand", "smooth",
        "x",   "y",     "a",  "(",    ")",     "[",   "]",    "{",
        "}",   "=",     "+",  "*",    "<<",    "==",  "<",    ";",
        "1",   "0xFF",  ",",  "~",    "-",     ">>>",
    };
    Rng rng(GetParam() * 7001 + 3);
    for (int trial = 0; trial < 300; ++trial) {
        std::string source;
        const std::size_t tokens = rng.next_below(30);
        for (std::size_t t = 0; t < tokens; ++t) {
            source += kLangTokens[rng.next_below(std::size(kLangTokens))];
            source += ' ';
        }
        try {
            lang::compile_to_asm(source);
        } catch (const Error&) {
            // rejected cleanly: fine
        }
    }
    SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FrontEndFuzz, ::testing::Range<std::uint64_t>(1, 6));


// ---- trace-reader robustness fuzzing ------------------------------------

/// Corrupted trace streams fed to both readers: serialize a valid trace,
/// flip random bytes / truncate at random offsets, and require that parsing
/// either succeeds or throws memopt::Error — never crashes, hangs, or
/// attempts an unbounded allocation.
class TraceIoFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TraceIoFuzz, BinaryReaderSurvivesCorruption) {
    Rng rng(GetParam() * 52711 + 11);
    SyntheticParams sp;
    sp.span_bytes = 4096;
    sp.num_accesses = 64;
    sp.seed = GetParam();
    std::stringstream ss;
    write_trace_binary(ss, uniform_trace(sp));
    const std::string pristine = ss.str();

    for (int trial = 0; trial < 200; ++trial) {
        std::string bytes = pristine;
        const std::size_t flips = 1 + rng.next_below(8);
        for (std::size_t f = 0; f < flips; ++f)
            bytes[rng.next_below(bytes.size())] ^=
                static_cast<char>(1 + rng.next_below(255));
        if (rng.next_below(4) == 0) bytes.resize(rng.next_below(bytes.size() + 1));
        std::stringstream corrupted(bytes);
        try {
            read_trace_binary(corrupted);
        } catch (const Error&) {
            // rejected cleanly: fine
        }
    }
    SUCCEED();
}

TEST_P(TraceIoFuzz, TextReaderSurvivesCorruption) {
    Rng rng(GetParam() * 68111 + 29);
    std::stringstream ss;
    SyntheticParams sp;
    sp.span_bytes = 4096;
    sp.num_accesses = 32;
    sp.seed = GetParam();
    write_trace_text(ss, uniform_trace(sp));
    const std::string pristine = ss.str();

    for (int trial = 0; trial < 200; ++trial) {
        std::string text = pristine;
        const std::size_t flips = 1 + rng.next_below(6);
        for (std::size_t f = 0; f < flips; ++f)
            text[rng.next_below(text.size())] =
                static_cast<char>(0x20 + rng.next_below(0x5F));
        std::stringstream corrupted(text);
        try {
            read_trace_text(corrupted);
        } catch (const Error&) {
            // rejected cleanly: fine
        }
    }
    SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceIoFuzz, ::testing::Range<std::uint64_t>(1, 6));


// ---- codec corruption fuzzing -------------------------------------------

/// Corrupted compressed blobs fed to every line codec: encode a valid line,
/// flip random bits / truncate / extend the blob, and require decode() to
/// either return exactly line_bytes bytes or throw memopt::Error — never
/// crash, hang, or allocate past the line bound. This is the contract the
/// degraded-refill path of compress/memsys and fault/campaign rely on.
class CodecFuzz : public ::testing::TestWithParam<std::uint64_t> {};

std::vector<std::uint8_t> random_line(Rng& rng, std::size_t line_bytes) {
    std::vector<std::uint8_t> line(line_bytes, 0);
    switch (rng.next_below(4)) {
        case 0:  // all zero: the zero-run sweet spot
            break;
        case 1: {  // smooth words: the diff/BDI sweet spot
            std::uint32_t value = static_cast<std::uint32_t>(rng.next_u64());
            for (std::size_t i = 0; i + 3 < line_bytes; i += 4) {
                value += static_cast<std::uint32_t>(rng.next_below(17)) - 8;
                for (unsigned b = 0; b < 4; ++b)
                    line[i + b] = static_cast<std::uint8_t>(value >> (8 * b));
            }
            break;
        }
        case 2: {  // few distinct values: the dictionary sweet spot
            const std::uint8_t a = static_cast<std::uint8_t>(rng.next_below(256));
            const std::uint8_t b = static_cast<std::uint8_t>(rng.next_below(256));
            for (auto& byte : line) byte = rng.next_bool(0.5) ? a : b;
            break;
        }
        default:  // incompressible noise: forces the raw fallback
            for (auto& byte : line) byte = static_cast<std::uint8_t>(rng.next_below(256));
    }
    return line;
}

TEST_P(CodecFuzz, DecodersSurviveCorruptedBlobs) {
    constexpr std::size_t kLineBytes = 32;
    Rng rng(GetParam() * 40093 + 17);
    SyntheticParams sp;
    sp.span_bytes = 4096;
    sp.num_accesses = 2000;
    sp.seed = GetParam();
    const DiffCodec diff;
    const ZeroRunCodec zero_run;
    const BdiCodec bdi;
    const DictionaryCodec dict = DictionaryCodec::train(uniform_trace(sp), 16);
    const std::array<const LineCodec*, 4> codecs = {&diff, &zero_run, &bdi, &dict};

    for (int trial = 0; trial < 150; ++trial) {
        const std::vector<std::uint8_t> line = random_line(rng, kLineBytes);
        for (const LineCodec* codec : codecs) {
            std::vector<std::uint8_t> blob = codec->encode(line).bytes();
            // Corrupt: random bit flips, then maybe truncate or extend.
            if (!blob.empty())
                FaultInjector::flip_bits(std::span<std::uint8_t>(blob), 0.03, rng);
            if (rng.next_below(4) == 0) blob.resize(rng.next_below(blob.size() + 1));
            else if (rng.next_below(4) == 0)
                blob.resize(blob.size() + 1 + rng.next_below(8),
                            static_cast<std::uint8_t>(rng.next_below(256)));
            try {
                const std::vector<std::uint8_t> decoded = codec->decode(blob, kLineBytes);
                EXPECT_EQ(decoded.size(), kLineBytes) << codec->name();
            } catch (const Error&) {
                // rejected cleanly: fine
            }
        }
    }
    SUCCEED();
}

TEST_P(CodecFuzz, DecodersSurvivePureGarbage) {
    constexpr std::size_t kLineBytes = 32;
    Rng rng(GetParam() * 86453 + 41);
    SyntheticParams sp;
    sp.span_bytes = 4096;
    sp.num_accesses = 2000;
    sp.seed = GetParam();
    const DiffCodec diff;
    const ZeroRunCodec zero_run;
    const BdiCodec bdi;
    const DictionaryCodec dict = DictionaryCodec::train(uniform_trace(sp), 16);
    const std::array<const LineCodec*, 4> codecs = {&diff, &zero_run, &bdi, &dict};

    for (int trial = 0; trial < 200; ++trial) {
        std::vector<std::uint8_t> garbage(rng.next_below(64));
        for (auto& byte : garbage) byte = static_cast<std::uint8_t>(rng.next_below(256));
        for (const LineCodec* codec : codecs) {
            try {
                const std::vector<std::uint8_t> decoded =
                    codec->decode(garbage, kLineBytes);
                EXPECT_EQ(decoded.size(), kLineBytes) << codec->name();
            } catch (const Error&) {
                // rejected cleanly: fine
            }
        }
    }
    // The caller-supplied size is clamped too: an absurd line_bytes must be
    // rejected before any allocation is sized from it.
    EXPECT_THROW(diff.decode({}, std::size_t{1} << 40), Error);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz, ::testing::Range<std::uint64_t>(1, 6));

}  // namespace
}  // namespace memopt
