// Unit and property tests for the AR32 ISA: encode/decode round-trips,
// immediate ranges, the disassembler, and the two-pass assembler.
#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "isa/disasm.hpp"
#include "sim/kernels.hpp"
#include "isa/encode.hpp"
#include "isa/isa.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace memopt {
namespace {

// -------------------------------------------------------- encode/decode ----

Instr random_instr_for(Op op, Rng& rng) {
    Instr i;
    i.op = op;
    switch (format_of(op)) {
        case Format::R:
            i.rd = static_cast<std::uint8_t>(rng.next_below(kNumRegs));
            i.rn = static_cast<std::uint8_t>(rng.next_below(kNumRegs));
            i.rm = static_cast<std::uint8_t>(rng.next_below(kNumRegs));
            // Zero the fields the instruction does not read or write, so
            // the assembly text carries the full semantic content.
            if (op == Op::Mov || op == Op::Mvn) i.rn = 0;
            if (op == Op::Cmp) i.rd = 0;
            if (op == Op::Jr || op == Op::Out) {
                i.rd = 0;
                i.rn = 0;
            }
            break;
        case Format::I: {
            i.rd = static_cast<std::uint8_t>(rng.next_below(kNumRegs));
            i.rn = static_cast<std::uint8_t>(rng.next_below(kNumRegs));
            if (op == Op::Movi || op == Op::Movhi) i.rn = 0;  // rn unused
            if (op == Op::Cmpi) i.rd = 0;                     // rd unused
            const bool is_unsigned = imm_fits(op, 40000);
            i.imm = is_unsigned ? static_cast<std::int32_t>(rng.next_below(65536))
                                : static_cast<std::int32_t>(rng.next_in(-32768, 32767));
            break;
        }
        case Format::Branch:
            i.cond = static_cast<Cond>(rng.next_below(static_cast<unsigned>(Cond::Count_)));
            i.imm = static_cast<std::int32_t>(rng.next_in(kBranchOffsetMin, kBranchOffsetMax));
            break;
        case Format::Call:
            i.imm = static_cast<std::int32_t>(rng.next_in(kCallOffsetMin, kCallOffsetMax));
            break;
        case Format::None:
            break;
    }
    return i;
}

/// Normalize: decode only reproduces the fields its format carries.
Instr canonical(const Instr& i) {
    Instr c;
    c.op = i.op;
    switch (format_of(i.op)) {
        case Format::R:
            c.rd = i.rd;
            c.rn = i.rn;
            c.rm = i.rm;
            break;
        case Format::I:
            c.rd = i.rd;
            c.rn = i.rn;
            c.imm = i.imm;
            break;
        case Format::Branch:
            c.cond = i.cond;
            c.imm = i.imm;
            break;
        case Format::Call:
            c.imm = i.imm;
            break;
        case Format::None:
            break;
    }
    return c;
}

class EncodeRoundTrip : public ::testing::TestWithParam<unsigned> {};

TEST_P(EncodeRoundTrip, DecodeInvertsEncode) {
    const Op op = static_cast<Op>(GetParam());
    Rng rng(GetParam() * 1234567 + 1);
    for (int trial = 0; trial < 200; ++trial) {
        const Instr instr = random_instr_for(op, rng);
        const Instr expected = canonical(instr);
        const Instr decoded = decode(encode(instr));
        EXPECT_EQ(decoded, expected) << "op=" << mnemonic(op) << " trial=" << trial;
    }
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, EncodeRoundTrip,
                         ::testing::Range(0u, static_cast<unsigned>(Op::Count_)),
                         [](const auto& info) {
                             return std::string(mnemonic(static_cast<Op>(info.param)));
                         });

TEST(Encode, RejectsOutOfRangeImmediates) {
    EXPECT_THROW(encode(Instr{.op = Op::Addi, .imm = 40000}), Error);
    EXPECT_THROW(encode(Instr{.op = Op::Andi, .imm = -1}), Error);
    EXPECT_THROW(encode(Instr{.op = Op::Andi, .imm = 70000}), Error);
    EXPECT_THROW(encode(Instr{.op = Op::B, .imm = kBranchOffsetMax + 1}), Error);
    EXPECT_THROW(encode(Instr{.op = Op::Bl, .imm = kCallOffsetMin - 1}), Error);
}

TEST(Encode, AcceptsBoundaryImmediates) {
    EXPECT_NO_THROW(encode(Instr{.op = Op::Addi, .imm = kImm16Min}));
    EXPECT_NO_THROW(encode(Instr{.op = Op::Addi, .imm = kImm16Max}));
    EXPECT_NO_THROW(encode(Instr{.op = Op::Andi, .imm = kUimm16Max}));
    EXPECT_NO_THROW(encode(Instr{.op = Op::B, .imm = kBranchOffsetMin}));
}

TEST(Decode, RejectsInvalidOpcodeField) {
    const std::uint32_t bad = static_cast<std::uint32_t>(Op::Count_) << 26;
    EXPECT_THROW(decode(bad), Error);
}

// ----------------------------------------------------------- registers ----

TEST(Registers, ParseNamesAndAliases) {
    EXPECT_EQ(parse_reg("r0").value(), 0u);
    EXPECT_EQ(parse_reg("R15").value(), 15u);
    EXPECT_EQ(parse_reg("sp").value(), kRegSp);
    EXPECT_EQ(parse_reg("LR").value(), kRegLr);
    EXPECT_FALSE(parse_reg("r16").has_value());
    EXPECT_FALSE(parse_reg("x1").has_value());
    EXPECT_FALSE(parse_reg("r").has_value());
}

TEST(Registers, DisplayNames) {
    EXPECT_EQ(reg_name(0), "r0");
    EXPECT_EQ(reg_name(kRegSp), "sp");
    EXPECT_EQ(reg_name(kRegLr), "lr");
}

// ------------------------------------------------------------- disasm ----

TEST(Disasm, KnownRenderings) {
    EXPECT_EQ(disassemble(Instr{.op = Op::Add, .rd = 1, .rn = 2, .rm = 3}), "add r1, r2, r3");
    EXPECT_EQ(disassemble(Instr{.op = Op::Ldw, .rd = 4, .rn = 13, .imm = -8}),
              "ldw r4, [sp, #-8]");
    EXPECT_EQ(disassemble(Instr{.op = Op::B, .cond = Cond::Eq, .imm = 3}), "beq +3");
    EXPECT_EQ(disassemble(Instr{.op = Op::Halt}), "halt");
}

TEST(Disasm, EveryOpcodeRenders) {
    Rng rng(99);
    for (unsigned o = 0; o < static_cast<unsigned>(Op::Count_); ++o) {
        const Instr i = random_instr_for(static_cast<Op>(o), rng);
        EXPECT_FALSE(disassemble(i).empty());
        EXPECT_EQ(disassemble_word(encode(i)), disassemble(canonical(i)));
    }
}

// ---------------------------------------------------------- assembler ----

TEST(Assembler, MinimalProgram) {
    const auto prog = assemble("movi r1, 5\n out r1\n halt\n");
    ASSERT_EQ(prog.code.size(), 3u);
    EXPECT_EQ(decode(prog.code[0]).op, Op::Movi);
    EXPECT_EQ(decode(prog.code[0]).imm, 5);
    EXPECT_EQ(decode(prog.code[2]).op, Op::Halt);
}

TEST(Assembler, LabelsAndBranches) {
    const auto prog = assemble(R"(
        movi r1, 0
loop:   addi r1, r1, 1
        cmpi r1, 3
        blt  loop
        halt
)");
    const Instr branch = decode(prog.code[3]);
    EXPECT_EQ(branch.op, Op::B);
    EXPECT_EQ(branch.cond, Cond::Lt);
    // Branch at word 3 targeting word 1: offset = 1 - 4 = -3.
    EXPECT_EQ(branch.imm, -3);
}

TEST(Assembler, DataSectionAndSymbols) {
    const auto prog = assemble(R"(
        li r1, table
        halt
.data
pad:    .space 16
table:  .word 1, 2, 3
)");
    EXPECT_EQ(prog.symbol("pad"), prog.data_base);
    EXPECT_EQ(prog.symbol("table"), prog.data_base + 16);
    ASSERT_EQ(prog.data.size(), 16u + 12u);
    EXPECT_EQ(prog.data[16], 1u);
    EXPECT_EQ(prog.data[20], 2u);
    EXPECT_THROW(prog.symbol("missing"), Error);
}

TEST(Assembler, LiExpandsToMoviMovhi) {
    const auto prog = assemble("li r2, 0x12345678\n halt\n");
    ASSERT_EQ(prog.code.size(), 3u);
    const Instr lo = decode(prog.code[0]);
    const Instr hi = decode(prog.code[1]);
    EXPECT_EQ(lo.op, Op::Movi);
    EXPECT_EQ(hi.op, Op::Movhi);
    EXPECT_EQ(static_cast<std::uint16_t>(lo.imm), 0x5678u);
    EXPECT_EQ(hi.imm, 0x1234);
}

TEST(Assembler, PushPopExpand) {
    const auto prog = assemble("push r3\n pop r4\n halt\n");
    ASSERT_EQ(prog.code.size(), 5u);
    EXPECT_EQ(decode(prog.code[0]).op, Op::Subi);
    EXPECT_EQ(decode(prog.code[1]).op, Op::Stw);
    EXPECT_EQ(decode(prog.code[2]).op, Op::Ldw);
    EXPECT_EQ(decode(prog.code[3]).op, Op::Addi);
}

TEST(Assembler, MemoryOperandForms) {
    const auto prog = assemble(R"(
        ldw r1, [r2]
        ldw r1, [r2, #8]
        ldw r1, [r2, r3]
        stb r1, [r2, -1]
        halt
)");
    EXPECT_EQ(decode(prog.code[0]).imm, 0);
    EXPECT_EQ(decode(prog.code[1]).imm, 8);
    EXPECT_EQ(decode(prog.code[2]).op, Op::Ldwx);
    EXPECT_EQ(decode(prog.code[3]).imm, -1);
}

TEST(Assembler, RandDirectiveMatchesHelper) {
    const auto prog = assemble(".data\nbuf: .rand 4, 77\n.code\nhalt\n");
    const auto words = asm_random_words(4, 77);
    ASSERT_EQ(prog.data.size(), 16u);
    for (std::size_t w = 0; w < 4; ++w) {
        std::uint32_t v = 0;
        for (int b = 3; b >= 0; --b) v = (v << 8) | prog.data[w * 4 + static_cast<std::size_t>(b)];
        EXPECT_EQ(v, words[w]);
    }
}

TEST(Assembler, RandSmoothDirectiveMatchesHelper) {
    const auto prog = assemble(".data\nbuf: .randsmooth 8, 5, 100\n.code\nhalt\n");
    const auto words = asm_smooth_words(8, 5, 100);
    ASSERT_EQ(prog.data.size(), 32u);
    for (std::size_t w = 0; w < 8; ++w) {
        std::uint32_t v = 0;
        for (int b = 3; b >= 0; --b) v = (v << 8) | prog.data[w * 4 + static_cast<std::size_t>(b)];
        EXPECT_EQ(v, words[w]);
    }
}

TEST(Assembler, SmoothWordsHaveBoundedSteps) {
    const auto words = asm_smooth_words(500, 9, 50);
    for (std::size_t i = 1; i < words.size(); ++i) {
        const auto delta = static_cast<std::int32_t>(words[i] - words[i - 1]);
        EXPECT_LE(std::abs(delta), 50);
    }
}

TEST(Assembler, AlignPadsToBoundary) {
    const auto prog = assemble(".data\n.byte 1\n.align 8\nv: .word 9\n.code\nhalt\n");
    EXPECT_EQ(prog.symbol("v"), prog.data_base + 8);
}

TEST(Assembler, HalfAndByteDirectives) {
    const auto prog = assemble(".data\nv: .half 0x1234, -1\nb: .byte 255, -128\n.code\nhalt\n");
    EXPECT_EQ(prog.data[0], 0x34u);
    EXPECT_EQ(prog.data[1], 0x12u);
    EXPECT_EQ(prog.data[2], 0xFFu);
    EXPECT_EQ(prog.data[3], 0xFFu);
    EXPECT_EQ(prog.data[4], 255u);
    EXPECT_EQ(prog.data[5], 0x80u);
}

TEST(Assembler, SymbolArithmetic) {
    const auto prog = assemble(R"(
        li r1, buf+8
        halt
.data
buf:    .space 32
)");
    const Instr lo = decode(prog.code[0]);
    EXPECT_EQ(static_cast<std::uint16_t>(lo.imm),
              static_cast<std::uint16_t>(prog.data_base + 8));
}

TEST(Assembler, ErrorsCarryLineNumbers) {
    try {
        assemble("nop\nbogus r1\n");
        FAIL() << "expected parse error";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    }
}

TEST(Assembler, RejectsDuplicateLabel) {
    EXPECT_THROW(assemble("a: nop\na: halt\n"), Error);
}

TEST(Assembler, RejectsInstructionInDataSection) {
    EXPECT_THROW(assemble(".data\nadd r1, r2, r3\n"), Error);
}

TEST(Assembler, RejectsUndefinedSymbol) {
    EXPECT_THROW(assemble("b nowhere\n"), Error);
}

TEST(Assembler, RejectsOutOfRangeMemoryOffset) {
    EXPECT_THROW(assemble("ldw r1, [r2, #40000]\nhalt\n"), Error);
}

TEST(Assembler, RejectsBadRegister) {
    EXPECT_THROW(assemble("add r1, r2, r99\n"), Error);
}

TEST(Assembler, CommentsAndBlankLinesIgnored)
{
    const auto prog = assemble("; leading comment\n\n  nop ; trailing\nhalt\n");
    EXPECT_EQ(prog.code.size(), 2u);
}

// Disassembler output for R/I instructions re-assembles to the same word.
TEST(Assembler, DisasmRoundTrip) {
    Rng rng(1001);
    for (unsigned o = 0; o < static_cast<unsigned>(Op::Count_); ++o) {
        const Op op = static_cast<Op>(o);
        const Format f = format_of(op);
        if (f == Format::Branch || f == Format::Call) continue;  // numeric targets
        const Instr instr = canonical(random_instr_for(op, rng));
        const std::string text = disassemble(instr) + "\n";
        const auto prog = assemble(text);
        ASSERT_EQ(prog.code.size(), 1u) << text;
        EXPECT_EQ(prog.code[0], encode(instr)) << text;
    }
}


// ----------------------------------------------------- program listing ----

TEST(Disasm, ProgramListingAnnotatesLabelsAndTargets) {
    const auto prog = assemble(R"(
start:  movi r1, 0
loop:   addi r1, r1, 1
        cmpi r1, 3
        blt  loop
        bl   fn
        halt
fn:     ret
.data
buf:    .word 1, 2
)");
    const std::string listing = disassemble_program(prog);
    EXPECT_NE(listing.find("start:"), std::string::npos);
    EXPECT_NE(listing.find("loop:"), std::string::npos);
    EXPECT_NE(listing.find("blt loop"), std::string::npos);   // resolved target
    EXPECT_NE(listing.find("bl fn"), std::string::npos);
    EXPECT_NE(listing.find("data symbols:"), std::string::npos);
    EXPECT_NE(listing.find("buf"), std::string::npos);
}

TEST(Disasm, ProgramListingCoversEveryKernel) {
    for (const Kernel& k : kernel_suite()) {
        const std::string listing = disassemble_program(assemble(k.source));
        EXPECT_NE(listing.find("halt"), std::string::npos) << k.name;
        EXPECT_EQ(listing.find("<invalid>"), std::string::npos) << k.name;
    }
}

}  // namespace
}  // namespace memopt
