// Tests for the multi-core coherent cache system: the MSI directory's
// transition table (exhaustive over reachable state x event pairs), the
// sharer-bitset/L1-residency invariants, single-core equivalence with the
// two-level CacheHierarchy, and the determinism contract (bit-identical
// results across replays and at any --jobs).
#include <gtest/gtest.h>

#include <bit>
#include <memory>
#include <sstream>
#include <vector>

#include "cache/cache.hpp"
#include "cache/coherence.hpp"
#include "cache/hierarchy.hpp"
#include "cache/mcache.hpp"
#include "core/workload.hpp"
#include "support/assert.hpp"
#include "support/json.hpp"
#include "support/parallel.hpp"
#include "trace/source.hpp"
#include "trace/synthetic.hpp"

namespace memopt {
namespace {

constexpr std::uint64_t kLineA = 0x1000;

std::uint64_t bits(std::initializer_list<unsigned> cores) {
    std::uint64_t b = 0;
    for (unsigned c : cores) b |= std::uint64_t{1} << c;
    return b;
}

// ------------------------------------------------ MSI transition table ----
//
// One test per reachable (state, event) pair of the directory's table;
// each checks the next state, the sharer set, and every action field.

TEST(MsiDirectory, InvalidReadMissFetchesAndShares) {
    MsiDirectory dir(4);
    const CoherenceActions a = dir.on_read_miss(1, kLineA);
    EXPECT_TRUE(a.fetch);
    EXPECT_EQ(a.invalidate, 0u);
    EXPECT_FALSE(a.writeback_owner.has_value());
    EXPECT_EQ(dir.line(kLineA).state, MsiState::Shared);
    EXPECT_EQ(dir.line(kLineA).sharers, bits({1}));
}

TEST(MsiDirectory, InvalidWriteMissFetchesAndOwns) {
    MsiDirectory dir(4);
    const CoherenceActions a = dir.on_write(2, kLineA);
    EXPECT_TRUE(a.fetch);
    EXPECT_EQ(a.invalidate, 0u);
    EXPECT_FALSE(a.writeback_owner.has_value());
    EXPECT_EQ(dir.line(kLineA).state, MsiState::Modified);
    EXPECT_EQ(dir.line(kLineA).sharers, bits({2}));
    EXPECT_EQ(dir.stats().invalidations, 0u);
}

TEST(MsiDirectory, SharedReadMissAddsSharer) {
    MsiDirectory dir(4);
    dir.on_read_miss(0, kLineA);
    const CoherenceActions a = dir.on_read_miss(3, kLineA);
    EXPECT_TRUE(a.fetch);
    EXPECT_EQ(a.invalidate, 0u);
    EXPECT_FALSE(a.writeback_owner.has_value());
    EXPECT_EQ(dir.line(kLineA).state, MsiState::Shared);
    EXPECT_EQ(dir.line(kLineA).sharers, bits({0, 3}));
}

TEST(MsiDirectory, SharedHolderWriteUpgradesWithoutFetch) {
    MsiDirectory dir(4);
    dir.on_read_miss(0, kLineA);
    dir.on_read_miss(1, kLineA);
    const CoherenceActions a = dir.on_write(0, kLineA);
    EXPECT_FALSE(a.fetch);  // the holder already has the data
    EXPECT_EQ(a.invalidate, bits({1}));
    EXPECT_FALSE(a.writeback_owner.has_value());
    EXPECT_EQ(dir.line(kLineA).state, MsiState::Modified);
    EXPECT_EQ(dir.line(kLineA).sharers, bits({0}));
    EXPECT_EQ(dir.stats().upgrades, 1u);
    EXPECT_EQ(dir.stats().invalidations, 1u);
}

TEST(MsiDirectory, SharedNonHolderWriteInvalidatesAllAndFetches) {
    MsiDirectory dir(4);
    dir.on_read_miss(0, kLineA);
    dir.on_read_miss(1, kLineA);
    const CoherenceActions a = dir.on_write(2, kLineA);
    EXPECT_TRUE(a.fetch);
    EXPECT_EQ(a.invalidate, bits({0, 1}));
    EXPECT_FALSE(a.writeback_owner.has_value());
    EXPECT_EQ(dir.line(kLineA).state, MsiState::Modified);
    EXPECT_EQ(dir.line(kLineA).sharers, bits({2}));
    EXPECT_EQ(dir.stats().upgrades, 0u);
    EXPECT_EQ(dir.stats().invalidations, 2u);
}

TEST(MsiDirectory, ModifiedRemoteReadDowngradesOwner) {
    MsiDirectory dir(4);
    dir.on_write(0, kLineA);
    const CoherenceActions a = dir.on_read_miss(1, kLineA);
    EXPECT_TRUE(a.fetch);
    EXPECT_EQ(a.invalidate, 0u);  // the owner keeps a clean copy
    ASSERT_TRUE(a.writeback_owner.has_value());
    EXPECT_EQ(*a.writeback_owner, 0u);
    EXPECT_EQ(dir.line(kLineA).state, MsiState::Shared);
    EXPECT_EQ(dir.line(kLineA).sharers, bits({0, 1}));
    EXPECT_EQ(dir.stats().downgrades, 1u);
}

TEST(MsiDirectory, ModifiedRemoteWriteFlushesAndKillsOwner) {
    MsiDirectory dir(4);
    dir.on_write(0, kLineA);
    const CoherenceActions a = dir.on_write(1, kLineA);
    EXPECT_TRUE(a.fetch);
    EXPECT_EQ(a.invalidate, bits({0}));
    ASSERT_TRUE(a.writeback_owner.has_value());
    EXPECT_EQ(*a.writeback_owner, 0u);
    EXPECT_EQ(dir.line(kLineA).state, MsiState::Modified);
    EXPECT_EQ(dir.line(kLineA).sharers, bits({1}));
    EXPECT_EQ(dir.stats().owner_flushes, 1u);
    EXPECT_EQ(dir.stats().invalidations, 1u);
}

TEST(MsiDirectory, EvictDropsSharerAndInvalidatesWhenLast) {
    MsiDirectory dir(4);
    dir.on_read_miss(0, kLineA);
    dir.on_read_miss(1, kLineA);
    dir.on_evict(0, kLineA);
    EXPECT_EQ(dir.line(kLineA).state, MsiState::Shared);
    EXPECT_EQ(dir.line(kLineA).sharers, bits({1}));
    dir.on_evict(1, kLineA);
    EXPECT_EQ(dir.line(kLineA).state, MsiState::Invalid);
    EXPECT_EQ(dir.tracked_lines(), 0u);
    EXPECT_EQ(dir.stats().evictions, 2u);
}

TEST(MsiDirectory, ModifiedEvictInvalidatesEntry) {
    MsiDirectory dir(4);
    dir.on_write(2, kLineA);
    dir.on_evict(2, kLineA);
    EXPECT_EQ(dir.line(kLineA).state, MsiState::Invalid);
    EXPECT_EQ(dir.tracked_lines(), 0u);
}

TEST(MsiDirectory, FlushDowngradesModifiedOwnerInPlace) {
    MsiDirectory dir(4);
    dir.on_write(1, kLineA);
    dir.on_flush(1, kLineA);
    EXPECT_EQ(dir.line(kLineA).state, MsiState::Shared);
    EXPECT_EQ(dir.line(kLineA).sharers, bits({1}));
}

TEST(MsiDirectory, RejectsBadCoreCounts) {
    EXPECT_THROW(MsiDirectory(0), Error);
    EXPECT_THROW(MsiDirectory(65), Error);
    EXPECT_NO_THROW(MsiDirectory(64));
}

// --------------------------------------------------- system invariants ----

MultiCoreConfig tiny_config(unsigned cores, unsigned l2_banks = 2) {
    MultiCoreConfig cfg;
    cfg.cores = cores;
    cfg.l2_banks = l2_banks;
    cfg.l1.size_bytes = 512;
    cfg.l1.line_bytes = 32;
    cfg.l1.associativity = 2;
    cfg.l2_bank.size_bytes = 4 * 1024;
    cfg.l2_bank.line_bytes = 32;
    cfg.l2_bank.associativity = 4;
    return cfg;
}

SyntheticSpec sharing_spec(std::size_t n = 20000) {
    SyntheticSpec spec;
    spec.kind = SyntheticKind::ProducerConsumer;
    spec.base.span_bytes = 16 * 1024;
    spec.base.num_accesses = n;
    spec.base.seed = 7;
    spec.shared_bytes = 1024;
    spec.shared_fraction = 0.5;
    return spec;
}

void replay_sharing(MultiCoreCacheSystem& system, std::size_t n = 20000) {
    SyntheticSpec spec = sharing_spec(n);
    spec.cores = system.cores();
    std::vector<std::unique_ptr<TraceSource>> sources;
    for (const SyntheticSpec& core_spec : per_core_specs(spec))
        sources.push_back(std::make_unique<SyntheticSource>(core_spec, 1024));
    system.replay(sources);
}

// The directory's sharer bitsets must agree exactly with L1 residency and
// dirtiness: bit c set iff core c holds the line, and Modified iff the
// (unique) copy is dirty.
void check_directory_matches_l1s(const MultiCoreCacheSystem& system) {
    std::size_t resident = 0;
    for (unsigned c = 0; c < system.cores(); ++c)
        resident += system.l1(c).resident_lines();
    EXPECT_EQ(system.directory().total_sharers(), resident);

    for (const auto& [line, entry] : system.directory().snapshot()) {
        ASSERT_NE(entry.state, MsiState::Invalid);
        ASSERT_NE(entry.sharers, 0u);
        if (entry.state == MsiState::Modified) {
            EXPECT_EQ(std::popcount(entry.sharers), 1);
        }
        for (unsigned c = 0; c < system.cores(); ++c) {
            const bool shares = ((entry.sharers >> c) & 1) != 0;
            const std::optional<bool> dirty = system.l1(c).probe(line);
            EXPECT_EQ(shares, dirty.has_value());
            if (dirty.has_value()) {
                EXPECT_EQ(*dirty, entry.state == MsiState::Modified);
            }
        }
    }
}

TEST(MultiCore, DirectorySharersMatchL1ResidencyUnderContention) {
    MultiCoreCacheSystem system(tiny_config(4));
    replay_sharing(system);
    EXPECT_GT(system.directory().stats().invalidations, 0u);
    EXPECT_GT(system.directory().stats().downgrades, 0u);
    check_directory_matches_l1s(system);
    system.flush();
    // After a flush every surviving copy is clean: no Modified entries.
    for (const auto& [line, entry] : system.directory().snapshot())
        EXPECT_EQ(entry.state, MsiState::Shared) << "line " << line;
    check_directory_matches_l1s(system);
}

TEST(MultiCore, SingleCoreMatchesCacheHierarchy) {
    const MultiCoreConfig cfg = tiny_config(1, 1);
    MultiCoreCacheSystem system(cfg);
    CacheHierarchy hierarchy(cfg.l1, cfg.l2_bank);

    SyntheticSpec spec;
    spec.base.span_bytes = 8 * 1024;
    spec.base.num_accesses = 20000;
    spec.base.seed = 11;

    std::vector<std::unique_ptr<TraceSource>> sources;
    sources.push_back(std::make_unique<SyntheticSource>(spec, 1024));
    system.replay(sources);
    SyntheticSource mirror(spec, 1024);
    hierarchy.replay(mirror);

    // One core, one bank: the coherent machine degenerates to the plain
    // two-level hierarchy, counter for counter.
    EXPECT_EQ(system.l1_totals(), hierarchy.l1().stats());
    EXPECT_EQ(system.l2_totals(), hierarchy.l2().stats());
    EXPECT_EQ(system.traffic().line_fetches, hierarchy.traffic().line_fetches);
    EXPECT_EQ(system.traffic().line_writes, hierarchy.traffic().line_writes);
    // And no coherence messages ever cross a single-core machine.
    EXPECT_EQ(system.directory().stats().messages(), 0u);
    EXPECT_EQ(system.directory().stats().owner_flushes, 0u);
}

TEST(MultiCore, StraddlingAccessTouchesBothLinesOnEveryCore) {
    MultiCoreCacheSystem system(tiny_config(2));
    MemTrace trace;
    MemAccess a;
    a.addr = 30;  // last 2 bytes of line 0, first 2 of line 32
    a.size = 4;
    a.kind = AccessKind::Read;
    trace.add(a);
    const auto shared = std::make_shared<const MemTrace>(std::move(trace));
    std::vector<std::unique_ptr<TraceSource>> sources;
    sources.push_back(std::make_unique<MaterializedSource>(shared));
    sources.push_back(std::make_unique<MaterializedSource>(shared));
    system.replay(sources);
    EXPECT_EQ(system.l1_totals().read_misses + system.l1_totals().read_hits, 4u);
    EXPECT_EQ(system.directory().line(0).sharers, bits({0, 1}));
    EXPECT_EQ(system.directory().line(32).sharers, bits({0, 1}));
}

TEST(MultiCore, RejectsInvalidConfigs) {
    MultiCoreConfig cfg = tiny_config(2);
    cfg.l2_bank.line_bytes = 64;  // directory blocks must match the L1 line
    EXPECT_THROW(MultiCoreCacheSystem{cfg}, Error);
    cfg = tiny_config(2);
    cfg.l1.write_policy = WritePolicy::WriteThroughNoAllocate;
    EXPECT_THROW(MultiCoreCacheSystem{cfg}, Error);
    cfg = tiny_config(2);
    cfg.cores = 0;
    EXPECT_THROW(MultiCoreCacheSystem{cfg}, Error);
}

// ------------------------------------------------------- determinism ----

std::string run_and_serialize(unsigned cores, std::size_t chunk) {
    MultiCoreCacheSystem system(tiny_config(cores));
    std::string spec = "synthetic:producer-consumer,span=16384,n=20000,seed=7,"
                       "shared-bytes=1024,shared-frac=0.5";
    const auto sources = WorkloadRepository::instance().open_core_trace_sources(
        spec, cores, chunk);
    system.replay(sources);
    system.flush();
    std::ostringstream os;
    JsonWriter w(os);
    to_json(w, system);
    return os.str();
}

TEST(MultiCore, BitIdenticalAcrossReplaysAndChunkSizes) {
    const std::string a = run_and_serialize(4, 512);
    EXPECT_EQ(a, run_and_serialize(4, 512));
    // Round-robin arbitration is one access per core per turn, so chunk
    // geometry must not be observable either.
    EXPECT_EQ(a, run_and_serialize(4, 4096));
}

TEST(MultiCore, ProducerConsumerBitIdenticalAtAnyJobCount) {
    const std::size_t prior = default_jobs();
    set_default_jobs(1);
    const std::string serial = run_and_serialize(4, 1024);
    set_default_jobs(8);
    const std::string parallel = run_and_serialize(4, 1024);
    set_default_jobs(prior);
    EXPECT_EQ(serial, parallel);
}

// ----------------------------------------------------- trace plumbing ----

TEST(MultiCore, PerCoreSpecsDecorrelateSeedsAndAssignRoles) {
    SyntheticSpec spec = sharing_spec(100);
    spec.cores = 3;
    const std::vector<SyntheticSpec> fan = per_core_specs(spec);
    ASSERT_EQ(fan.size(), 3u);
    for (unsigned c = 0; c < 3; ++c) {
        EXPECT_EQ(fan[c].core_id, c);
        for (unsigned d = c + 1; d < 3; ++d)
            EXPECT_NE(fan[c].base.seed, fan[d].base.seed);
    }
    // Core 0 produces (writes) into the shared region; the rest consume.
    SyntheticGenerator producer(fan[0]);
    SyntheticGenerator consumer(fan[1]);
    for (int i = 0; i < 100; ++i) {
        const MemAccess p = producer.next();
        if (p.addr < spec.shared_bytes) {
            EXPECT_EQ(p.kind, AccessKind::Write);
        }
        const MemAccess q = consumer.next();
        if (q.addr < spec.shared_bytes) {
            EXPECT_EQ(q.kind, AccessKind::Read);
        }
    }
}

TEST(MultiCore, OpenCoreTraceSourcesKernelFansOut) {
    const auto sources =
        WorkloadRepository::instance().open_core_trace_sources("matmul", 2);
    ASSERT_EQ(sources.size(), 2u);
    TraceChunk a, b;
    ASSERT_TRUE(sources[0]->next(a));
    ASSERT_TRUE(sources[1]->next(b));
    ASSERT_EQ(a.size(), b.size());
    // Identical streams: worst-case sharing.
    EXPECT_TRUE(std::equal(a.addrs.begin(), a.addrs.end(), b.addrs.begin()));
}

}  // namespace
}  // namespace memopt
