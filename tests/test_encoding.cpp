// Unit and property tests for the instruction-bus transformation stack:
// transform algebra (invertibility, linearity), the greedy gate search, and
// the classic baselines.
#include <gtest/gtest.h>

#include "encoding/baselines.hpp"
#include "encoding/decoder_cost.hpp"
#include "encoding/search.hpp"
#include "encoding/transform.hpp"
#include "energy/bus_model.hpp"
#include "sim/kernels.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace memopt {
namespace {

LinearTransform random_transform(Rng& rng, std::size_t gates) {
    LinearTransform t;
    for (std::size_t g = 0; g < gates; ++g) {
        const auto dst = static_cast<std::uint8_t>(rng.next_below(32));
        auto src = static_cast<std::uint8_t>(rng.next_below(32));
        if (src == dst) src = static_cast<std::uint8_t>((src + 1) % 32);
        t.append(XorGate{dst, src});
    }
    return t;
}

// ------------------------------------------------------------ transform ----

TEST(LinearTransform, IdentityByDefault) {
    const LinearTransform t;
    EXPECT_TRUE(t.is_identity());
    EXPECT_EQ(t.apply(0xDEADBEEF), 0xDEADBEEFu);
}

TEST(LinearTransform, SingleGateSemantics) {
    const LinearTransform t({XorGate{0, 5}});
    EXPECT_EQ(t.apply(1u << 5), (1u << 5) | 1u);
    EXPECT_EQ(t.apply(1u), 1u);  // source bit clear: no change
}

TEST(LinearTransform, RejectsBadGates) {
    EXPECT_THROW(LinearTransform({XorGate{3, 3}}), Error);
    EXPECT_THROW(LinearTransform({XorGate{32, 0}}), Error);
    LinearTransform t;
    EXPECT_THROW(t.append(XorGate{1, 1}), Error);
}

class TransformProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TransformProperties, InvertUndoesApply) {
    Rng rng(GetParam());
    const LinearTransform t = random_transform(rng, 1 + rng.next_below(24));
    for (int trial = 0; trial < 1000; ++trial) {
        const auto w = static_cast<std::uint32_t>(rng.next_u64());
        EXPECT_EQ(t.invert(t.apply(w)), w);
        EXPECT_EQ(t.apply(t.invert(w)), w);
    }
}

TEST_P(TransformProperties, IsLinearOverGf2) {
    Rng rng(GetParam() + 1000);
    const LinearTransform t = random_transform(rng, 1 + rng.next_below(24));
    EXPECT_EQ(t.apply(0u), 0u);
    for (int trial = 0; trial < 1000; ++trial) {
        const auto a = static_cast<std::uint32_t>(rng.next_u64());
        const auto b = static_cast<std::uint32_t>(rng.next_u64());
        EXPECT_EQ(t.apply(a ^ b), t.apply(a) ^ t.apply(b));
    }
}

TEST_P(TransformProperties, IsBijective) {
    // Linear + apply(0)=0 + invertible construction; spot-check injectivity
    // on a small domain.
    Rng rng(GetParam() + 2000);
    const LinearTransform t = random_transform(rng, 8);
    std::vector<std::uint32_t> images;
    for (std::uint32_t w = 0; w < 4096; ++w) images.push_back(t.apply(w));
    std::sort(images.begin(), images.end());
    EXPECT_EQ(std::adjacent_find(images.begin(), images.end()), images.end());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransformProperties, ::testing::Values(1, 2, 3, 4, 5));

TEST(LinearTransform, EncodedTransitionsMatchDirectCount) {
    Rng rng(77);
    const LinearTransform t = random_transform(rng, 6);
    std::vector<std::uint32_t> words;
    for (int i = 0; i < 500; ++i) words.push_back(static_cast<std::uint32_t>(rng.next_u64()));
    EXPECT_EQ(encoded_transitions(t, words, 0),
              count_transitions(t.apply_stream(words), t.apply(0)));
}

// --------------------------------------------------------------- search ----

TEST(Search, EmptyStream) {
    const auto r = search_transform({});
    EXPECT_EQ(r.original_transitions, 0u);
    EXPECT_DOUBLE_EQ(r.reduction(), 0.0);
}

TEST(Search, NeverIncreasesTransitions) {
    Rng rng(11);
    std::vector<std::uint32_t> words;
    for (int i = 0; i < 2000; ++i) words.push_back(static_cast<std::uint32_t>(rng.next_u64()));
    const auto r = search_transform(words, {.max_gates = 16});
    EXPECT_LE(r.encoded_transitions, r.original_transitions);
}

TEST(Search, FindsObviousCorrelation) {
    // Bits 0 and 1 always toggle together: one gate removes half the cost.
    std::vector<std::uint32_t> words;
    for (int i = 0; i < 1000; ++i) words.push_back(i % 2 ? 0x3 : 0x0);
    const auto r = search_transform(words, {.max_gates = 4});
    EXPECT_NEAR(r.reduction(), 0.5, 0.01);
}

TEST(Search, GreedyFirstStepIsOptimalSingleGate) {
    const Kernel& k = kernel_by_name("fir");
    CpuConfig cfg;
    cfg.record_data_trace = false;
    cfg.record_fetch_stream = true;
    const RunResult run = run_kernel(k, cfg);
    // Only compare on a prefix to keep the exhaustive reference fast.
    const std::span<const std::uint32_t> stream(run.fetch_stream.data(), 20000);
    const auto greedy = search_transform(stream, {.max_gates = 1});
    const auto brute = best_single_gate(stream);
    EXPECT_EQ(greedy.encoded_transitions, brute.encoded_transitions);
}

TEST(Search, MoreGatesNeverHurt) {
    const Kernel& k = kernel_by_name("qsort");
    CpuConfig cfg;
    cfg.record_data_trace = false;
    cfg.record_fetch_stream = true;
    const RunResult run = run_kernel(k, cfg);
    std::uint64_t prev = UINT64_MAX;
    for (std::size_t gates : {0u, 1u, 2u, 4u, 8u, 16u, 32u}) {
        const auto r = search_transform(run.fetch_stream, {.max_gates = gates});
        EXPECT_LE(r.encoded_transitions, prev);
        EXPECT_LE(r.transform.gate_count(), gates);
        prev = r.encoded_transitions;
    }
}

TEST(Search, TransformIsDecodable) {
    const Kernel& k = kernel_by_name("crc32");
    CpuConfig cfg;
    cfg.record_data_trace = false;
    cfg.record_fetch_stream = true;
    const RunResult run = run_kernel(k, cfg);
    const auto r = search_transform(run.fetch_stream, {.max_gates = 16});
    // The decoder (invert) recovers every original instruction word.
    for (std::size_t i = 0; i < run.fetch_stream.size(); i += 97) {
        const std::uint32_t w = run.fetch_stream[i];
        EXPECT_EQ(r.transform.invert(r.transform.apply(w)), w);
    }
}

TEST(Search, SubstantialReductionOnRealStreams) {
    // The headline property of 1B-3: large transition reductions on real
    // instruction streams with a small gate budget.
    for (const char* name : {"fir", "histogram", "listchase"}) {
        CpuConfig cfg;
        cfg.record_data_trace = false;
        cfg.record_fetch_stream = true;
        const RunResult run = run_kernel(kernel_by_name(name), cfg);
        const auto r = search_transform(run.fetch_stream, {.max_gates = 16});
        EXPECT_GT(r.reduction(), 0.25) << name;
    }
}

// --------------------------------------------------------- decoder cost ----

TEST(DecoderCost, IdentityTransformIsFree) {
    const std::vector<std::uint32_t> words{1, 2, 3, 4};
    EXPECT_EQ(decoder_toggles(LinearTransform{}, words), 0u);
    EXPECT_DOUBLE_EQ(decoder_energy(LinearTransform{}, words), 0.0);
}

TEST(DecoderCost, TogglesBoundedByGatesTimesWords) {
    Rng rng(5);
    const LinearTransform t = random_transform(rng, 10);
    std::vector<std::uint32_t> words;
    for (int i = 0; i < 500; ++i) words.push_back(static_cast<std::uint32_t>(rng.next_u64()));
    const std::uint64_t toggles = decoder_toggles(t, words);
    EXPECT_LE(toggles, words.size() * t.gate_count());
    EXPECT_GT(toggles, 0u);
}

TEST(DecoderCost, SingleGateToggleCountIsExact) {
    // One gate bit0 ^= bit1. Decoder output bit0 = encoded bit0 ^ bit1,
    // i.e. the ORIGINAL bit 0. Its toggles equal the toggles of original
    // bit 0 across the stream (including the idle state 0 at the start).
    const LinearTransform t({XorGate{0, 1}});
    const std::vector<std::uint32_t> words{0x1, 0x1, 0x0, 0x1};  // bit0: 1,1,0,1
    std::vector<std::uint32_t> encoded;
    for (std::uint32_t w : words) encoded.push_back(t.apply(w));
    EXPECT_EQ(decoder_toggles(t, encoded, t.apply(0) /*encoded idle*/), 0u + 3u);
}

TEST(DecoderCost, NetEnergyStaysPositiveOnRealStreams) {
    // The decoder must not eat the bus savings: on every kernel the encoded
    // bus+decoder energy stays below the raw bus energy.
    const BusEnergyModel bus;
    for (const char* name : {"fir", "qsort"}) {
        CpuConfig cfg;
        cfg.record_data_trace = false;
        cfg.record_fetch_stream = true;
        const RunResult run = run_kernel(kernel_by_name(name), cfg);
        const auto r = search_transform(run.fetch_stream, {.max_gates = 16});
        const EnergyBreakdown enc = encoded_energy(
            r.transform, run.fetch_stream, bus.technology().energy_per_transition_pj);
        const double raw = bus.transition_energy(r.original_transitions);
        EXPECT_LT(enc.total(), raw) << name;
        EXPECT_GT(enc.component("decoder"), 0.0) << name;
        EXPECT_LT(enc.component("decoder"), 0.05 * raw) << name;  // overhead stays small
    }
}

// ------------------------------------------------------------ baselines ----

TEST(BusInvert, NeverWorseThanHalfPlusInvertLine) {
    Rng rng(13);
    std::vector<std::uint32_t> words;
    for (int i = 0; i < 3000; ++i) words.push_back(static_cast<std::uint32_t>(rng.next_u64()));
    const std::uint64_t raw = count_transitions(words, 0);
    const std::uint64_t bi = bus_invert_transitions(words, 0);
    // Each word costs at most 16 data transitions + 1 invert-line toggle.
    EXPECT_LE(bi, words.size() * 17);
    EXPECT_LE(bi, raw + words.size());
}

TEST(BusInvert, PathologicalAlternationCollapses) {
    // Alternating all-zero / all-one words: raw pays 32 per word, bus-invert
    // pays only the invert line after the first inversion.
    std::vector<std::uint32_t> words;
    for (int i = 0; i < 100; ++i) words.push_back(i % 2 ? 0xFFFFFFFF : 0x0);
    const std::uint64_t raw = count_transitions(words, 0);
    const std::uint64_t bi = bus_invert_transitions(words, 0);
    EXPECT_EQ(raw, 99u * 32u);
    EXPECT_LT(bi, raw / 10);
}

TEST(GrayCode, DecodeInvertsEncode) {
    Rng rng(17);
    for (int i = 0; i < 1000; ++i) {
        const auto w = static_cast<std::uint32_t>(rng.next_u64());
        EXPECT_EQ(gray_decode(w ^ (w >> 1)), w);
    }
}

TEST(Search, InvariantUnderDiffOrder) {
    // Regression for the unordered difference histogram in search_transform:
    // two streams whose consecutive-XOR-difference *multisets* are equal but
    // arrive in different orders fill the value-frequency map in different
    // insert orders (different bucket layouts, different rehash points).
    // The histogram is consumed purely as a multiset — exact integer sums
    // and a fixed gate scan order — so the greedy search must select the
    // identical transform and counts from both streams.
    Rng rng(5);
    std::vector<std::uint32_t> diffs;
    for (int i = 0; i < 5000; ++i) {
        diffs.push_back(static_cast<std::uint32_t>(rng.next_below(64)) << (i % 3));
    }
    auto words_from_diffs = [](const std::vector<std::uint32_t>& d) {
        std::vector<std::uint32_t> words;
        words.reserve(d.size());
        std::uint32_t prev = 0;  // params.initial defaults to 0
        for (std::uint32_t diff : d) {
            prev ^= diff;
            words.push_back(prev);
        }
        return words;
    };
    const std::vector<std::uint32_t> words_a = words_from_diffs(diffs);
    std::vector<std::uint32_t> permuted = diffs;
    rng.shuffle(permuted);
    const std::vector<std::uint32_t> words_b = words_from_diffs(permuted);

    const TransformSearchParams params{.max_gates = 8, .initial = 0};
    const TransformSearchResult a = search_transform(words_a, params);
    const TransformSearchResult b = search_transform(words_b, params);
    EXPECT_EQ(a.original_transitions, b.original_transitions);
    EXPECT_EQ(a.encoded_transitions, b.encoded_transitions);
    ASSERT_EQ(a.transform.gate_count(), b.transform.gate_count());
    for (std::size_t g = 0; g < a.transform.gate_count(); ++g) {
        EXPECT_EQ(a.transform.gates()[g], b.transform.gates()[g]) << "gate " << g;
    }
}

TEST(GrayCode, SequentialCountersBecomeCheap) {
    std::vector<std::uint32_t> counter;
    for (std::uint32_t i = 0; i < 1024; ++i) counter.push_back(i);
    const std::uint64_t raw = count_transitions(counter, 0);
    const std::uint64_t gray = gray_code_transitions(counter, 0);
    EXPECT_EQ(gray, 1023u);  // exactly one transition per increment
    EXPECT_GT(raw, gray);
}

}  // namespace
}  // namespace memopt
