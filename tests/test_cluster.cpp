// Unit and property tests for address clustering: maps, policies, remap
// cost, and the end-to-end clustering-beats-plain-partitioning property on
// scattered-hotspot profiles.
#include <gtest/gtest.h>

#include <numeric>

#include "cluster/address_map.hpp"
#include "cluster/affinity_cluster.hpp"
#include "cluster/frequency.hpp"
#include "cluster/remap_cost.hpp"
#include "core/flow.hpp"
#include "partition/solver.hpp"
#include "support/assert.hpp"
#include "trace/synthetic.hpp"

namespace memopt {
namespace {

// ----------------------------------------------------------- AddressMap ----

TEST(AddressMap, IdentityMapsAddressesUnchanged) {
    const auto map = AddressMap::identity(256, 8);
    EXPECT_TRUE(map.is_identity());
    EXPECT_EQ(map.map_addr(0x123), 0x123u);
    EXPECT_EQ(map.map_block(5), 5u);
    EXPECT_EQ(map.unmap_block(5), 5u);
}

TEST(AddressMap, MapPreservesOffsetWithinBlock) {
    const AddressMap map(256, {1, 0});
    EXPECT_EQ(map.map_addr(0x10), 0x110u);
    EXPECT_EQ(map.map_addr(0x1FC), 0xFCu);
}

TEST(AddressMap, InverseIsConsistent) {
    const AddressMap map(256, {2, 0, 3, 1});
    for (std::size_t b = 0; b < 4; ++b) EXPECT_EQ(map.unmap_block(map.map_block(b)), b);
}

TEST(AddressMap, RejectsNonBijections) {
    EXPECT_THROW(AddressMap(256, {0, 0}), Error);
    EXPECT_THROW(AddressMap(256, {0, 2}), Error);
    EXPECT_THROW(AddressMap(256, {}), Error);
    EXPECT_THROW(AddressMap(100, {0}), Error);  // block size not pow2
}

TEST(AddressMap, MapAddrRejectsOutsideSpan) {
    const AddressMap map(256, {1, 0});
    EXPECT_THROW(map.map_addr(512), Error);
}

TEST(AddressMap, ProfileAndTraceApplicationsAgree) {
    // profile(map(trace)) == map(profile(trace)) — the remap stage commutes
    // with profiling.
    const MemTrace trace = uniform_trace({.span_bytes = 4096, .num_accesses = 3000,
                                          .write_fraction = 0.25, .seed = 5});
    const BlockProfile profile = BlockProfile::from_trace(trace, 256);
    Rng rng(7);
    std::vector<std::size_t> perm(profile.num_blocks());
    std::iota(perm.begin(), perm.end(), std::size_t{0});
    rng.shuffle(perm);
    const AddressMap map(256, perm);

    const BlockProfile direct = map.apply(profile);
    const BlockProfile via_trace = BlockProfile::from_trace(map.apply(trace), 256);
    ASSERT_EQ(direct.num_blocks(), via_trace.num_blocks());
    for (std::size_t b = 0; b < direct.num_blocks(); ++b) {
        EXPECT_EQ(direct.counts(b).reads, via_trace.counts(b).reads) << b;
        EXPECT_EQ(direct.counts(b).writes, via_trace.counts(b).writes) << b;
    }
}

// ------------------------------------------------------------ policies ----

TEST(FrequencyClustering, HotBlocksMoveToFront) {
    BlockProfile p(256, 8);
    p.add_counts(6, 100, 0);
    p.add_counts(2, 50, 0);
    p.add_counts(4, 10, 0);
    const AddressMap map = frequency_clustering(p);
    EXPECT_EQ(map.map_block(6), 0u);
    EXPECT_EQ(map.map_block(2), 1u);
    EXPECT_EQ(map.map_block(4), 2u);
    // The permuted profile is hot-first and monotone non-increasing.
    const BlockProfile q = map.apply(p);
    for (std::size_t b = 1; b < q.num_blocks(); ++b)
        EXPECT_LE(q.counts(b).total(), q.counts(b - 1).total());
}

TEST(FrequencyClustering, IsAlwaysABijection) {
    const MemTrace trace = scattered_hotspot_trace({
        .base = {.span_bytes = 32768, .num_accesses = 10000, .write_fraction = 0.3, .seed = 3},
        .num_hotspots = 5,
        .hotspot_bytes = 512,
        .hot_fraction = 0.9,
    });
    const BlockProfile p = BlockProfile::from_trace(trace, 256);
    const AddressMap map = frequency_clustering(p);  // ctor validates bijection
    EXPECT_EQ(map.num_blocks(), p.num_blocks());
}

TEST(AffinityClustering, ProducesValidMapAndKeepsHotSeedFirst) {
    const MemTrace trace = two_phase_trace({.span_bytes = 8192, .num_accesses = 4000,
                                            .write_fraction = 0.3, .seed = 11});
    const BlockProfile p = BlockProfile::from_trace(trace, 256);
    const AffinityMatrix aff = windowed_affinity(trace, p, 16);
    const AddressMap map = affinity_clustering(p, aff);
    EXPECT_EQ(map.num_blocks(), p.num_blocks());
    // The seed (hottest block) lands at physical position 0.
    const auto order = p.blocks_by_access_desc();
    EXPECT_EQ(map.map_block(order[0]), 0u);
}

TEST(AffinityClustering, ColdBlocksLandAtTheTail) {
    BlockProfile p(256, 6);
    p.add_counts(1, 10, 0);
    p.add_counts(3, 20, 0);
    AffinityMatrix aff(6);
    aff.add(1, 3, 5.0);
    const AddressMap map = affinity_clustering(p, aff);
    EXPECT_LT(map.map_block(1), 2u);
    EXPECT_LT(map.map_block(3), 2u);
    EXPECT_GE(map.map_block(0), 2u);
    EXPECT_GE(map.map_block(5), 2u);
}

TEST(AffinityClustering, GroupsCoAccessedBlocks) {
    // Blocks 0 and 9 are always accessed together; 5 is equally hot but
    // never co-accessed: 0 and 9 must be physical neighbours.
    BlockProfile p(256, 10);
    p.add_counts(0, 100, 0);
    p.add_counts(9, 100, 0);
    p.add_counts(5, 100, 0);
    AffinityMatrix aff(10);
    aff.add(0, 9, 100.0);
    const AddressMap map = affinity_clustering(p, aff);
    const auto pos0 = map.map_block(0);
    const auto pos9 = map.map_block(9);
    const auto pos5 = map.map_block(5);
    EXPECT_EQ(std::max(pos0, pos9) - std::min(pos0, pos9), 1u);
    EXPECT_GT(pos5, std::max(pos0, pos9));
}

TEST(AffinityClustering, ValidatesInputs) {
    BlockProfile p(256, 4);
    p.add_counts(0, 1, 0);
    AffinityMatrix wrong(5);
    EXPECT_THROW(affinity_clustering(p, wrong), Error);
    AffinityMatrix ok(4);
    EXPECT_THROW(affinity_clustering(p, ok, {.tail_window = 0}), Error);
}

// ----------------------------------------------------------- remap cost ----

TEST(RemapTable, SingleBlockIsFree) {
    EXPECT_DOUBLE_EQ(RemapTableModel(1).lookup_energy(), 0.0);
}

TEST(RemapTable, EnergyAndBitsGrowWithBlocks) {
    double prev_energy = 0.0;
    std::uint64_t prev_bits = 0;
    for (std::size_t blocks = 2; blocks <= 4096; blocks *= 4) {
        const RemapTableModel model(blocks);
        EXPECT_GT(model.lookup_energy(), prev_energy);
        EXPECT_GT(model.table_bits(), prev_bits);
        prev_energy = model.lookup_energy();
        prev_bits = model.table_bits();
    }
}

TEST(RemapTable, IndexBitsCeilLog2) {
    EXPECT_EQ(RemapTableModel(1024).index_bits(), 10u);
    EXPECT_EQ(RemapTableModel(1000).index_bits(), 10u);
    EXPECT_EQ(RemapTableModel(2).index_bits(), 1u);
}

TEST(RemapTable, LookupStaysSmallRelativeToBankAccess) {
    // The remap stage must stay an order of magnitude below a bank access,
    // or clustering could never win; this guards the technology defaults.
    const RemapTableModel remap(1024);
    const SramEnergyModel bank(8 * 1024);
    EXPECT_LT(remap.lookup_energy() * 5, bank.read_energy());
}

// ------------------------------------------------------------ E2E flow ----

class ClusteringWins : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClusteringWins, BeatsPlainPartitioningOnScatteredHotspots) {
    const MemTrace trace = scattered_hotspot_trace({
        .base = {.span_bytes = 128 * 1024, .num_accesses = 40000, .write_fraction = 0.3,
                 .seed = GetParam()},
        .num_hotspots = 8,
        .hotspot_bytes = 1024,
        .hot_fraction = 0.9,
    });
    FlowParams fp;
    fp.block_size = 256;
    fp.constraints.max_banks = 4;
    const MemoryOptimizationFlow flow(fp);
    const FlowComparison cmp = flow.compare(trace, ClusterMethod::Frequency);
    EXPECT_GT(cmp.partitioning_savings_pct(), 0.0);
    EXPECT_GT(cmp.clustering_savings_pct(), 5.0)
        << "clustering must clearly beat plain partitioning on scattered profiles";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusteringWins, ::testing::Values(21, 22, 23, 24, 25));

class FrequencyOptimality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FrequencyOptimality, NoPermutationBeatsFrequencyPlusExactDp) {
    // Theorem (exchange argument, documented in EXPERIMENTS.md E1): with
    // capacities that depend only on the number of blocks per bank,
    // hot-first ordering followed by the exact DP minimizes energy over ALL
    // block permutations. Check it empirically against random permutations.
    const MemTrace trace = scattered_hotspot_trace({
        .base = {.span_bytes = 16384, .num_accesses = 20000, .write_fraction = 0.3,
                 .seed = GetParam()},
        .num_hotspots = 4,
        .hotspot_bytes = 512,
        .hot_fraction = 0.85,
    });
    const BlockProfile profile = BlockProfile::from_trace(trace, 256);
    const PartitionConstraints constraints{4};
    const PartitionEnergyParams params;  // no remap term: pure permutation comparison

    const BlockProfile freq_physical = frequency_clustering(profile).apply(profile);
    const double best = solve_partition_optimal(freq_physical, constraints, params)
                            .energy.total();

    Rng rng(GetParam() + 5000);
    std::vector<std::size_t> perm(profile.num_blocks());
    std::iota(perm.begin(), perm.end(), std::size_t{0});
    for (int trial = 0; trial < 10; ++trial) {
        rng.shuffle(perm);
        const BlockProfile shuffled = AddressMap(256, perm).apply(profile);
        const double other =
            solve_partition_optimal(shuffled, constraints, params).energy.total();
        EXPECT_GE(other, best * (1 - 1e-12)) << "trial " << trial;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FrequencyOptimality, ::testing::Values(41, 42, 43));

TEST(Flow, ComparisonFieldsAreConsistent) {
    const MemTrace trace = scattered_hotspot_trace({
        .base = {.span_bytes = 32768, .num_accesses = 20000, .write_fraction = 0.3, .seed = 31},
        .num_hotspots = 6,
        .hotspot_bytes = 512,
        .hot_fraction = 0.85,
    });
    FlowParams fp;
    fp.constraints.max_banks = 4;
    const MemoryOptimizationFlow flow(fp);
    const FlowComparison cmp = flow.compare(trace, ClusterMethod::Affinity);
    EXPECT_EQ(cmp.partitioned.method, ClusterMethod::None);
    EXPECT_EQ(cmp.clustered.method, ClusterMethod::Affinity);
    EXPECT_TRUE(cmp.partitioned.map.is_identity());
    EXPECT_FALSE(cmp.clustered.map.is_identity());
    // Partitioning never loses to the monolithic baseline (k=1 is in the
    // DP's search space).
    EXPECT_LE(cmp.partitioned.energy.total(), cmp.monolithic.total() * (1 + 1e-12));
    // The clustered flow pays for its remap table.
    EXPECT_GT(cmp.clustered.energy.component("remap"), 0.0);
    EXPECT_DOUBLE_EQ(cmp.partitioned.energy.component("remap"), 0.0);
}

TEST(Flow, AffinityNeedsTrace) {
    BlockProfile p(256, 8);
    p.add_counts(0, 10, 5);
    const MemoryOptimizationFlow flow(FlowParams{});
    EXPECT_THROW(flow.run(p, ClusterMethod::Affinity, nullptr), Error);
    EXPECT_NO_THROW(flow.run(p, ClusterMethod::Frequency, nullptr));
}

TEST(Flow, AutoGreedyFallbackOnHugeProfiles) {
    // 2 MiB span at 256 B blocks = 8192 blocks: above the auto-greedy
    // threshold, the flow must still complete quickly and return a valid
    // architecture.
    const MemTrace trace = scattered_hotspot_trace({
        .base = {.span_bytes = 2 * 1024 * 1024, .num_accesses = 30000,
                 .write_fraction = 0.3, .seed = 77},
        .num_hotspots = 10,
        .hotspot_bytes = 2048,
        .hot_fraction = 0.9,
    });
    FlowParams fp;
    fp.block_size = 256;
    fp.constraints.max_banks = 4;
    const MemoryOptimizationFlow flow(fp);
    const FlowResult result = flow.run(trace, ClusterMethod::Frequency);
    EXPECT_EQ(result.solution.arch.num_blocks(), 8192u);
    EXPECT_LE(result.solution.arch.num_banks(), 4u);
}

TEST(Flow, MethodNames) {
    EXPECT_EQ(cluster_method_name(ClusterMethod::None), "none");
    EXPECT_EQ(cluster_method_name(ClusterMethod::Frequency), "frequency");
    EXPECT_EQ(cluster_method_name(ClusterMethod::Affinity), "affinity");
}

}  // namespace
}  // namespace memopt
