// Unit tests for traces, block profiles, affinity analysis and synthetic
// trace generators.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "support/assert.hpp"
#include "support/rng.hpp"
#include "trace/affinity.hpp"
#include "trace/profile.hpp"
#include "trace/synthetic.hpp"
#include "sim/kernels.hpp"
#include "trace/io.hpp"
#include "trace/symbolize.hpp"
#include "trace/trace.hpp"

namespace memopt {
namespace {

// ----------------------------------------------------------- MemTrace ----

TEST(MemTrace, CountersTrackAdds) {
    MemTrace t;
    t.add_read(0x100);
    t.add_write(0x200, 1);
    t.add_read(0x104, 2);
    EXPECT_EQ(t.size(), 3u);
    EXPECT_EQ(t.read_count(), 2u);
    EXPECT_EQ(t.write_count(), 1u);
    EXPECT_EQ(t.min_addr(), 0x100u);
    EXPECT_EQ(t.max_addr(), 0x200u);
}

TEST(MemTrace, SpanIsPow2CoveringMaxByte) {
    MemTrace t;
    t.add_read(1000, 4);  // touches bytes 1000..1003
    EXPECT_EQ(t.address_span_pow2(), 1024u);
    t.add_read(1024, 4);
    EXPECT_EQ(t.address_span_pow2(), 2048u);
}

TEST(MemTrace, EmptyTraceQueriesThrow) {
    MemTrace t;
    EXPECT_THROW(t.min_addr(), Error);
    EXPECT_THROW(t.max_addr(), Error);
    EXPECT_THROW(t.address_span_pow2(), Error);
}

TEST(MemTrace, ClearResets) {
    MemTrace t;
    t.add_write(4);
    t.clear();
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(t.read_count() + t.write_count(), 0u);
}

TEST(Pow2Helpers, CeilPow2) {
    EXPECT_EQ(ceil_pow2(0), 1u);
    EXPECT_EQ(ceil_pow2(1), 1u);
    EXPECT_EQ(ceil_pow2(2), 2u);
    EXPECT_EQ(ceil_pow2(3), 4u);
    EXPECT_EQ(ceil_pow2(1024), 1024u);
    EXPECT_EQ(ceil_pow2(1025), 2048u);
}

TEST(Pow2Helpers, IsPow2AndLog2) {
    EXPECT_TRUE(is_pow2(1));
    EXPECT_TRUE(is_pow2(4096));
    EXPECT_FALSE(is_pow2(0));
    EXPECT_FALSE(is_pow2(12));
    EXPECT_EQ(log2_exact(1), 0u);
    EXPECT_EQ(log2_exact(4096), 12u);
}

// ------------------------------------------------------- BlockProfile ----

TEST(BlockProfile, FromTraceCountsPerBlock) {
    MemTrace t;
    t.add_read(0);        // block 0
    t.add_read(255);      // block 0  (byte access at end of block)
    t.add_write(256);     // block 1
    t.add_read(1020);     // block 3
    const BlockProfile p = BlockProfile::from_trace(t, 256);
    EXPECT_EQ(p.num_blocks(), 4u);
    EXPECT_EQ(p.counts(0).reads, 2u);  // accesses at 0 and 255 both start in block 0
    EXPECT_EQ(p.counts(1).writes, 1u);
    EXPECT_EQ(p.counts(3).reads, 1u);
    EXPECT_EQ(p.total_accesses(), 4u);
}

TEST(BlockProfile, BlockOfRejectsOutsideSpan) {
    BlockProfile p(256, 4);
    EXPECT_EQ(p.block_of(1023), 3u);
    EXPECT_THROW(p.block_of(1024), Error);
}

TEST(BlockProfile, RejectsBadGeometry) {
    EXPECT_THROW(BlockProfile(100, 4), Error);  // not pow2
    EXPECT_THROW(BlockProfile(256, 0), Error);
}

TEST(BlockProfile, HotFraction) {
    BlockProfile p(256, 4);
    p.add_counts(0, 90, 0);
    p.add_counts(2, 10, 0);
    EXPECT_DOUBLE_EQ(p.hot_fraction(1), 0.9);
    EXPECT_DOUBLE_EQ(p.hot_fraction(2), 1.0);
    EXPECT_DOUBLE_EQ(p.hot_fraction(99), 1.0);
}

TEST(BlockProfile, BlocksByAccessDescStable) {
    BlockProfile p(256, 4);
    p.add_counts(1, 5, 0);
    p.add_counts(3, 5, 0);
    p.add_counts(2, 9, 0);
    const auto order = p.blocks_by_access_desc();
    EXPECT_EQ(order[0], 2u);
    EXPECT_EQ(order[1], 1u);  // tie broken by original order
    EXPECT_EQ(order[2], 3u);
}

TEST(BlockProfile, SpatialLocalityHighForContiguous) {
    BlockProfile p(256, 16);
    p.add_counts(4, 100, 0);
    p.add_counts(5, 100, 0);
    p.add_counts(6, 100, 0);
    EXPECT_NEAR(p.spatial_locality(), 1.0, 1e-9);
}

TEST(BlockProfile, SpatialLocalityLowForScattered) {
    BlockProfile p(256, 16);
    p.add_counts(0, 100, 0);
    p.add_counts(7, 100, 0);
    p.add_counts(15, 100, 0);
    EXPECT_LT(p.spatial_locality(), 0.5);
}

TEST(BlockProfile, PermutedMovesCounts) {
    BlockProfile p(256, 3);
    p.add_counts(0, 1, 2);
    p.add_counts(2, 5, 0);
    const std::vector<std::size_t> perm{2, 0, 1};
    const BlockProfile q = p.permuted(perm);
    EXPECT_EQ(q.counts(2).reads, 1u);
    EXPECT_EQ(q.counts(2).writes, 2u);
    EXPECT_EQ(q.counts(1).reads, 5u);
    EXPECT_EQ(q.total_accesses(), p.total_accesses());
}

TEST(BlockProfile, PermutedRejectsNonBijection) {
    BlockProfile p(256, 3);
    const std::vector<std::size_t> bad{0, 0, 1};
    EXPECT_THROW(p.permuted(bad), Error);
    const std::vector<std::size_t> out_of_range{0, 1, 3};
    EXPECT_THROW(p.permuted(out_of_range), Error);
}

// ----------------------------------------------------------- affinity ----

TEST(Affinity, TransitionCountsAdjacentBlocks) {
    MemTrace t;
    t.add_read(0);     // block 0
    t.add_read(256);   // block 1 -> edge 0-1
    t.add_read(0);     // block 0 -> edge 0-1 (symmetric)
    t.add_read(0);     // same block, no edge
    const BlockProfile p = BlockProfile::from_trace(t, 256);
    const AffinityMatrix m = transition_affinity(t, p);
    EXPECT_DOUBLE_EQ(m.at(0, 1), 2.0);
    EXPECT_DOUBLE_EQ(m.at(1, 0), 2.0);
    EXPECT_DOUBLE_EQ(m.total(), 2.0);
}

TEST(Affinity, WindowedSeesNonAdjacentPairs) {
    MemTrace t;
    t.add_read(0);      // block 0
    t.add_read(256);    // block 1
    t.add_read(512);    // block 2
    const BlockProfile p = BlockProfile::from_trace(t, 256);
    const AffinityMatrix m3 = windowed_affinity(t, p, 3);
    EXPECT_DOUBLE_EQ(m3.at(0, 1), 1.0);
    EXPECT_DOUBLE_EQ(m3.at(1, 2), 1.0);
    EXPECT_DOUBLE_EQ(m3.at(0, 2), 1.0);  // within window of 3
    const AffinityMatrix m2 = windowed_affinity(t, p, 2);
    EXPECT_DOUBLE_EQ(m2.at(0, 2), 0.0);  // not adjacent
}

TEST(Affinity, WindowValidation) {
    MemTrace t;
    t.add_read(0);
    const BlockProfile p = BlockProfile::from_trace(t, 256);
    EXPECT_THROW(windowed_affinity(t, p, 1), Error);
}

TEST(Affinity, SetQueryAndSymmetry) {
    AffinityMatrix m(4);
    m.add(1, 3, 2.5);
    m.add(3, 1, 0.5);
    EXPECT_DOUBLE_EQ(m.at(1, 3), 3.0);
    EXPECT_DOUBLE_EQ(m.affinity_to_set(1, {0, 3}), 3.0);
    EXPECT_THROW(m.at(4, 0), Error);
}

// ---------------------------------------------------------- synthetic ----

TEST(Synthetic, DeterministicBySeed) {
    SyntheticParams p;
    p.num_accesses = 500;
    const MemTrace a = uniform_trace(p);
    const MemTrace b = uniform_trace(p);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a.accesses()[i].addr, b.accesses()[i].addr);
}

TEST(Synthetic, UniformStaysInSpan) {
    SyntheticParams p;
    p.span_bytes = 4096;
    p.num_accesses = 2000;
    const MemTrace t = uniform_trace(p);
    EXPECT_LT(t.max_addr(), 4096u);
}

TEST(Synthetic, HotspotTraceIsSkewedAndScattered) {
    HotspotParams hp;
    hp.base.span_bytes = 64 * 1024;
    hp.base.num_accesses = 20000;
    hp.num_hotspots = 8;
    hp.hotspot_bytes = 1024;
    hp.hot_fraction = 0.9;
    const MemTrace t = scattered_hotspot_trace(hp);
    const BlockProfile p = BlockProfile::from_trace(t, 256);
    // 8 hotspots of 4 blocks each: ~32 hot blocks should hold ~90%.
    EXPECT_GT(p.hot_fraction(40), 0.85);
    // And they must be scattered, not contiguous.
    EXPECT_LT(p.spatial_locality(), 0.6);
}

TEST(Synthetic, HotspotValidation) {
    HotspotParams hp;
    hp.num_hotspots = 0;
    EXPECT_THROW(scattered_hotspot_trace(hp), Error);
}

TEST(Synthetic, StridedWrapsAround) {
    StrideParams sp;
    sp.base.span_bytes = 1024;
    sp.base.num_accesses = 600;
    sp.stride = 4;
    const MemTrace t = strided_trace(sp);
    EXPECT_EQ(t.accesses()[0].addr, 0u);
    EXPECT_EQ(t.accesses()[255].addr, 1020u);
    EXPECT_EQ(t.accesses()[256].addr, 0u);  // wrapped
}

TEST(Synthetic, TwoPhaseUsesDisjointHalves) {
    SyntheticParams p;
    p.span_bytes = 8192;
    p.num_accesses = 1000;
    const MemTrace t = two_phase_trace(p);
    for (std::size_t i = 0; i < 500; ++i) EXPECT_LT(t.accesses()[i].addr, 4096u);
    for (std::size_t i = 500; i < 1000; ++i) EXPECT_GE(t.accesses()[i].addr, 4096u);
}

TEST(Synthetic, SmoothWordStreamHasBoundedDeltas) {
    const auto words = smooth_word_stream(1000, 1.0, 100, 9);
    for (std::size_t i = 1; i < words.size(); ++i) {
        const auto delta = static_cast<std::int32_t>(words[i] - words[i - 1]);
        EXPECT_LE(std::abs(delta), 100);
    }
}


// ------------------------------------------------------------ trace IO ----

MemTrace sample_trace() {
    MemTrace t;
    t.add(MemAccess{.addr = 0x1000, .cycle = 5, .value = 0xDEADBEEF, .size = 4,
                    .kind = AccessKind::Write});
    t.add(MemAccess{.addr = 0x1004, .cycle = 9, .value = 0x7F, .size = 1,
                    .kind = AccessKind::Read});
    t.add(MemAccess{.addr = 0xFFFF0, .cycle = 12, .value = 0xABCD, .size = 2,
                    .kind = AccessKind::Read});
    return t;
}

void expect_traces_equal(const MemTrace& a, const MemTrace& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.accesses()[i].addr, b.accesses()[i].addr) << i;
        EXPECT_EQ(a.accesses()[i].cycle, b.accesses()[i].cycle) << i;
        EXPECT_EQ(a.accesses()[i].value, b.accesses()[i].value) << i;
        EXPECT_EQ(a.accesses()[i].size, b.accesses()[i].size) << i;
        EXPECT_EQ(a.accesses()[i].kind, b.accesses()[i].kind) << i;
    }
}

TEST(TraceIo, TextRoundTrip) {
    const MemTrace t = sample_trace();
    std::stringstream ss;
    write_trace_text(ss, t);
    expect_traces_equal(t, read_trace_text(ss));
}

TEST(TraceIo, BinaryRoundTrip) {
    const MemTrace t = sample_trace();
    std::stringstream ss;
    write_trace_binary(ss, t);
    expect_traces_equal(t, read_trace_binary(ss));
}

TEST(TraceIo, BinaryRoundTripLargeRandom) {
    const MemTrace t = uniform_trace({.span_bytes = 65536, .num_accesses = 5000,
                                      .write_fraction = 0.4, .seed = 77});
    std::stringstream ss;
    write_trace_binary(ss, t);
    expect_traces_equal(t, read_trace_binary(ss));
}

TEST(TraceIo, TextAcceptsShortRecordsAndComments) {
    std::stringstream ss("# header\nR 0x100\nW 0x104 2\nR 0x108 4 99  # inline\n");
    const MemTrace t = read_trace_text(ss);
    ASSERT_EQ(t.size(), 3u);
    EXPECT_EQ(t.accesses()[0].size, 4u);
    EXPECT_EQ(t.accesses()[1].size, 2u);
    EXPECT_EQ(t.accesses()[2].cycle, 99u);
}

TEST(TraceIo, TextRejectsMalformedRecords) {
    std::stringstream bad_kind("X 0x100\n");
    EXPECT_THROW(read_trace_text(bad_kind), Error);
    std::stringstream bad_addr("R zzz\n");
    EXPECT_THROW(read_trace_text(bad_addr), Error);
    std::stringstream bad_size("R 0x100 3\n");
    EXPECT_THROW(read_trace_text(bad_size), Error);
}

TEST(TraceIo, BinaryRejectsBadMagicAndTruncation) {
    std::stringstream bad("NOPE");
    EXPECT_THROW(read_trace_binary(bad), Error);
    std::stringstream ss;
    write_trace_binary(ss, sample_trace());
    const std::string full = ss.str();
    std::stringstream truncated(full.substr(0, full.size() - 3));
    EXPECT_THROW(read_trace_binary(truncated), Error);
}

TEST(TraceIo, TextRejectsValueOutOfRange) {
    // int64 values that don't fit a 32-bit word must be rejected, not
    // silently truncated (truncation would change compression/encoding
    // results of a round-tripped trace).
    std::stringstream too_big("R 0x100 4 5 0x100000000\n");
    EXPECT_THROW(read_trace_text(too_big), Error);
    std::stringstream negative("R 0x100 4 5 -7\n");
    EXPECT_THROW(read_trace_text(negative), Error);
    // The error must carry the offending line number.
    std::stringstream second_line("R 0x100 4 5 1\nW 0x104 4 6 0x1FFFFFFFF\n");
    try {
        read_trace_text(second_line);
        FAIL() << "expected Error";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
        EXPECT_NE(std::string(e.what()).find("value out of 32-bit range"), std::string::npos)
            << e.what();
    }
}

TEST(TraceIo, BinaryRejectsInvalidAccessSize) {
    std::stringstream ss;
    write_trace_binary(ss, sample_trace());
    std::string bytes = ss.str();
    // Layout: 16-byte header (magic, version, count), then 24-byte records
    // of addr(8) cycle(8) value(4) meta(4). The size field is the low byte
    // of the first record's meta word, at offset 36.
    ASSERT_GE(bytes.size(), 40u);
    bytes[36] = 3;  // not in {1, 2, 4, 8}
    std::stringstream corrupted(bytes);
    try {
        read_trace_binary(corrupted);
        FAIL() << "expected Error";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("invalid access size"), std::string::npos)
            << e.what();
    }
}

TEST(TraceIo, BinaryRejectsUnknownMetaBits) {
    std::stringstream ss;
    write_trace_binary(ss, sample_trace());
    std::string bytes = ss.str();
    ASSERT_GE(bytes.size(), 40u);
    bytes[38] = 0x40;  // meta bits above the size/kind fields
    std::stringstream corrupted(bytes);
    EXPECT_THROW(read_trace_binary(corrupted), Error);
}

TEST(TraceIo, BinaryHugeCountHeaderFailsFast) {
    // A corrupt header advertising ~10^18 records must not drive an
    // up-front multi-GiB reserve; it has to fail on the first missing
    // record instead. If the reserve cap regressed, this test would die on
    // allocation long before the EXPECT_THROW.
    std::string bytes = "MTRC";
    bytes += std::string(1, '\x01') + std::string(3, '\x00');  // version 1 LE
    bytes += std::string(7, '\xFF') + std::string(1, '\x0F');  // count = 2^60-ish
    std::stringstream corrupted(bytes);
    EXPECT_THROW(read_trace_binary(corrupted), Error);
}

TEST(TraceIo, FileSaveLoadBothFormats) {
    const MemTrace t = sample_trace();
    const std::string text_path = ::testing::TempDir() + "memopt_trace_test.txt";
    const std::string bin_path = ::testing::TempDir() + "memopt_trace_test.mtrc";
    save_trace(text_path, t);
    save_trace(bin_path, t);
    expect_traces_equal(t, load_trace(text_path));
    expect_traces_equal(t, load_trace(bin_path));
    std::remove(text_path.c_str());
    std::remove(bin_path.c_str());
}

TEST(TraceIo, LoadMissingFileThrows) {
    EXPECT_THROW(load_trace("/nonexistent/path/trace.mtrc"), Error);
}


// ----------------------------------------------------------- symbolize ----

TEST(Symbolize, AttributesAccessesToSymbols) {
    const auto prog = assemble(R"(
        halt
.data
hot:    .word 0, 0, 0, 0
cold:   .space 64
)");
    MemTrace trace;
    const std::uint64_t hot = prog.symbol("hot");
    const std::uint64_t cold = prog.symbol("cold");
    trace.add_read(hot);
    trace.add_read(hot + 12);
    trace.add_write(cold + 8);
    trace.add_read(0x30000);  // outside the data image -> stack/anon

    const auto traffic = symbolize_trace(prog, trace);
    ASSERT_EQ(traffic.size(), 3u);
    EXPECT_EQ(traffic[0].name, "hot");
    EXPECT_EQ(traffic[0].reads, 2u);
    EXPECT_EQ(traffic[0].bytes, 16u);
    bool saw_cold = false;
    bool saw_anon = false;
    for (const SymbolTraffic& t : traffic) {
        if (t.name == "cold") {
            saw_cold = true;
            EXPECT_EQ(t.writes, 1u);
        }
        if (t.name == "<stack/anon>") {
            saw_anon = true;
            EXPECT_EQ(t.reads, 1u);
        }
    }
    EXPECT_TRUE(saw_cold);
    EXPECT_TRUE(saw_anon);
}

TEST(Symbolize, SortedByTrafficAndOmitsColdSymbols) {
    const auto prog = assemble(R"(
        halt
.data
a:      .word 0
b:      .word 0
c:      .word 0
)");
    MemTrace trace;
    for (int i = 0; i < 3; ++i) trace.add_read(prog.symbol("b"));
    trace.add_read(prog.symbol("a"));
    const auto traffic = symbolize_trace(prog, trace);
    ASSERT_EQ(traffic.size(), 2u);  // c has no traffic
    EXPECT_EQ(traffic[0].name, "b");
    EXPECT_EQ(traffic[1].name, "a");
}

TEST(Symbolize, AccountsEveryAccessExactlyOnce) {
    const auto prog = assemble(kernel_by_name("histogram").source);
    const RunResult run = Cpu(CpuConfig{}).run(prog);
    const auto traffic = symbolize_trace(prog, run.data_trace);
    std::uint64_t total = 0;
    for (const SymbolTraffic& t : traffic) total += t.total();
    EXPECT_EQ(total, run.data_trace.size());
}

// -------------------------------------------------- SoA column layout ----

// The columnar storage and the materializing AccessView must describe the
// same trace: every row assembled from the column spans equals the
// MemAccess the view (the old AoS interface) hands out.
TEST(SoaLayout, ColumnsAgreeWithAccessView) {
    const MemTrace t = uniform_trace({.span_bytes = 65536, .num_accesses = 2000,
                                      .write_fraction = 0.4, .seed = 9});
    const auto addrs = t.addrs();
    const auto cycles = t.cycles();
    const auto values = t.values();
    const auto sizes = t.sizes();
    const auto kinds = t.kinds();
    ASSERT_EQ(addrs.size(), t.size());
    ASSERT_EQ(cycles.size(), t.size());
    ASSERT_EQ(values.size(), t.size());
    ASSERT_EQ(sizes.size(), t.size());
    ASSERT_EQ(kinds.size(), t.size());
    for (std::size_t i = 0; i < t.size(); ++i) {
        const MemAccess a = t.accesses()[i];
        EXPECT_EQ(a.addr, addrs[i]) << i;
        EXPECT_EQ(a.cycle, cycles[i]) << i;
        EXPECT_EQ(a.value, values[i]) << i;
        EXPECT_EQ(a.size, sizes[i]) << i;
        EXPECT_EQ(a.kind, kinds[i]) << i;
        EXPECT_EQ(a.addr, t.at(i).addr) << i;
    }
}

// Round-trip through both I/O formats: a trace rebuilt row-by-row through
// the AoS add() API serializes and deserializes to the same columns as the
// SoA original — the storage layout is invisible to the formats.
TEST(SoaLayout, AosRebuildRoundTripsThroughIo) {
    const MemTrace soa = uniform_trace({.span_bytes = 65536, .num_accesses = 2000,
                                        .write_fraction = 0.4, .seed = 10});
    MemTrace aos;
    for (const MemAccess& a : soa.accesses()) aos.add(a);

    std::stringstream text_soa, text_aos;
    write_trace_text(text_soa, soa);
    write_trace_text(text_aos, aos);
    EXPECT_EQ(text_soa.str(), text_aos.str());
    expect_traces_equal(soa, read_trace_text(text_soa));

    std::stringstream bin_soa, bin_aos;
    write_trace_binary(bin_soa, soa);
    write_trace_binary(bin_aos, aos);
    EXPECT_EQ(bin_soa.str(), bin_aos.str());
    expect_traces_equal(soa, read_trace_binary(bin_soa));
}

TEST(SoaLayout, FromColumnsMatchesAddAndValidates) {
    MemTrace reference;
    reference.add(MemAccess{0x100, 0, 0, 4, AccessKind::Read});
    reference.add(MemAccess{0x204, 5, 7, 2, AccessKind::Write});
    reference.add(MemAccess{0x108, 11, 0, 8, AccessKind::Read});
    const MemTrace built = MemTrace::from_columns(
        {0x100, 0x204, 0x108}, {0, 5, 11}, {0, 7, 0}, {4, 2, 8},
        {AccessKind::Read, AccessKind::Write, AccessKind::Read});
    expect_traces_equal(reference, built);
    EXPECT_EQ(built.read_count(), 2u);
    EXPECT_EQ(built.write_count(), 1u);
    EXPECT_EQ(built.min_addr(), 0x100u);
    EXPECT_EQ(built.max_addr(), 0x205u);
    EXPECT_THROW(MemTrace::from_columns({0x100}, {0, 1}, {0}, {4}, {AccessKind::Read}),
                 Error);
}

// -------------------------------------------- sharded replay invariance ----

// Sharded replay must be bit-identical at any job count: affinity weights
// are integer-valued, so the merge order cannot change any sum.
TEST(ShardedReplay, ProfileAndAffinityInvariantAcrossJobs) {
    // Long enough to split into several shards (kMinAccessesPerShard = 64Ki).
    const MemTrace t = scattered_hotspot_trace({
        .base = {.span_bytes = 256 * 256, .num_accesses = 300000, .write_fraction = 0.3,
                 .seed = 21},
        .num_hotspots = 4,
        .hotspot_bytes = 1024,
        .hot_fraction = 0.9,
    });
    const BlockProfile p1 = BlockProfile::from_trace(t, 256, 1);
    const AffinityMatrix w1 = windowed_affinity(t, p1, 8, 1);
    const AffinityMatrix a1 = transition_affinity(t, p1, 1);
    for (const std::size_t jobs : {std::size_t{4}, std::size_t{8}}) {
        const BlockProfile pj = BlockProfile::from_trace(t, 256, jobs);
        ASSERT_EQ(pj.num_blocks(), p1.num_blocks());
        for (std::size_t b = 0; b < p1.num_blocks(); ++b) {
            EXPECT_EQ(pj.counts(b).reads, p1.counts(b).reads) << b;
            EXPECT_EQ(pj.counts(b).writes, p1.counts(b).writes) << b;
        }
        const AffinityMatrix wj = windowed_affinity(t, pj, 8, jobs);
        const AffinityMatrix aj = transition_affinity(t, pj, jobs);
        EXPECT_EQ(wj.total(), w1.total());
        EXPECT_EQ(aj.total(), a1.total());
        for (std::size_t a = 0; a < p1.num_blocks(); ++a) {
            for (std::size_t b = a; b < p1.num_blocks(); ++b) {
                ASSERT_EQ(wj.at(a, b), w1.at(a, b)) << a << "," << b;
                ASSERT_EQ(aj.at(a, b), a1.at(a, b)) << a << "," << b;
            }
        }
    }
}

// The fused single-pass builder must agree exactly with the two-pass
// composition it replaces, at every job count.
TEST(ShardedReplay, FusedBuilderMatchesTwoPass) {
    const MemTrace t = scattered_hotspot_trace({
        .base = {.span_bytes = 128 * 256, .num_accesses = 200000, .write_fraction = 0.3,
                 .seed = 22},
        .num_hotspots = 4,
        .hotspot_bytes = 512,
        .hot_fraction = 0.8,
    });
    const BlockProfile ref_profile = BlockProfile::from_trace(t, 256, 1);
    const AffinityMatrix ref_affinity = windowed_affinity(t, ref_profile, 8, 1);
    for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
        const ProfileAffinity pa = build_profile_and_affinity(t, 256, 8, jobs);
        ASSERT_EQ(pa.profile.num_blocks(), ref_profile.num_blocks());
        for (std::size_t b = 0; b < ref_profile.num_blocks(); ++b) {
            EXPECT_EQ(pa.profile.counts(b).reads, ref_profile.counts(b).reads) << b;
            EXPECT_EQ(pa.profile.counts(b).writes, ref_profile.counts(b).writes) << b;
        }
        EXPECT_EQ(pa.affinity.total(), ref_affinity.total());
        for (std::size_t a = 0; a < ref_profile.num_blocks(); ++a)
            for (std::size_t b = a; b < ref_profile.num_blocks(); ++b)
                ASSERT_EQ(pa.affinity.at(a, b), ref_affinity.at(a, b)) << a << "," << b;
    }
}

// ------------------------------------------------- CSR affinity storage ----

// Forcing the sparse representation (dense_max_blocks = 0) must reproduce
// the dense matrix entry for entry, including neighbour iteration order.
TEST(AffinityCsr, SparseMatchesDense) {
    const MemTrace t = scattered_hotspot_trace({
        .base = {.span_bytes = 64 * 256, .num_accesses = 50000, .write_fraction = 0.3,
                 .seed = 23},
        .num_hotspots = 4,
        .hotspot_bytes = 512,
        .hot_fraction = 0.8,
    });
    const BlockProfile p = BlockProfile::from_trace(t, 256);
    const auto addrs = t.addrs();

    AffinityAccumulator acc_dense(p.num_blocks());
    AffinityAccumulator acc_sparse(p.num_blocks());
    for (std::size_t i = 1; i < t.size(); ++i) {
        const std::size_t a = static_cast<std::size_t>(addrs[i - 1] / 256);
        const std::size_t b = static_cast<std::size_t>(addrs[i] / 256);
        acc_dense.add(a, b, 1.0);
        acc_sparse.add(a, b, 1.0);
    }
    const AffinityMatrix dense = acc_dense.finalize();
    const AffinityMatrix sparse = acc_sparse.finalize(0);
    ASSERT_FALSE(dense.is_sparse());
    ASSERT_TRUE(sparse.is_sparse());

    ASSERT_EQ(dense.num_blocks(), sparse.num_blocks());
    EXPECT_EQ(dense.total(), sparse.total());
    EXPECT_EQ(dense.max_offdiagonal(), sparse.max_offdiagonal());
    for (std::size_t a = 0; a < dense.num_blocks(); ++a) {
        for (std::size_t b = 0; b < dense.num_blocks(); ++b) {
            ASSERT_EQ(dense.at(a, b), sparse.at(a, b)) << a << "," << b;
        }
        std::vector<std::pair<std::size_t, double>> nd, ns;
        dense.for_each_neighbor(a, [&](std::size_t b, double w) { nd.emplace_back(b, w); });
        sparse.for_each_neighbor(a, [&](std::size_t b, double w) { ns.emplace_back(b, w); });
        ASSERT_EQ(nd, ns) << "row " << a;
    }
}

TEST(Affinity, SparseAccumulatorInvariantUnderInsertOrder) {
    // Regression for the unordered pair map inside AffinityAccumulator: above
    // kAffinityDenseMaxBlocks the accumulator collects (block, block) weights
    // in an unordered_map, and finalize() must erase its hash order via the
    // packed-key sort before emitting CSR. Feeding the same pair multiset in
    // forward and reversed order must therefore produce identical matrices.
    const std::size_t n = kAffinityDenseMaxBlocks + 64;
    Rng rng(9);
    std::vector<std::pair<std::size_t, std::size_t>> adds;
    for (int i = 0; i < 4000; ++i) {
        adds.emplace_back(static_cast<std::size_t>(rng.next_below(n)),
                          static_cast<std::size_t>(rng.next_below(n)));
    }
    AffinityAccumulator fwd(n);
    AffinityAccumulator rev(n);
    for (const auto& [a, b] : adds) fwd.add(a, b, 1.0);
    for (auto it = adds.rbegin(); it != adds.rend(); ++it) rev.add(it->first, it->second, 1.0);

    const AffinityMatrix ma = fwd.finalize();
    const AffinityMatrix mb = rev.finalize();
    ASSERT_TRUE(ma.is_sparse());
    ASSERT_TRUE(mb.is_sparse());
    EXPECT_EQ(ma.stored_pairs(), mb.stored_pairs());
    EXPECT_EQ(ma.total(), mb.total());
    for (const auto& [a, b] : adds) {
        ASSERT_EQ(ma.at(a, b), mb.at(a, b)) << a << "," << b;
    }
    for (std::size_t row = 0; row < n; row += 97) {
        std::vector<std::pair<std::size_t, double>> na, nb;
        ma.for_each_neighbor(row, [&](std::size_t b, double w) { na.emplace_back(b, w); });
        mb.for_each_neighbor(row, [&](std::size_t b, double w) { nb.emplace_back(b, w); });
        ASSERT_EQ(na, nb) << "row " << row;
    }
}

}  // namespace
}  // namespace memopt
