// Unit and property tests for the reconfigurable-architecture data
// scheduler: model validation, evaluation semantics, and solver ordering
// (optimal <= greedy, optimal <= naive).
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "sched/scheduler.hpp"
#include "support/assert.hpp"

namespace memopt {
namespace {

Application tiny_app() {
    Application app;
    app.name = "tiny";
    app.num_contexts = 2;
    app.datasets = {{"a", 1024}, {"b", 4096}};
    app.phases = {
        {"p0", 0, {{0, 10000}, {1, 500}}},
        {"p1", 1, {{0, 8000}}},
    };
    return app;
}

// ---------------------------------------------------------------- model ----

TEST(Model, ValidationCatchesBadInputs) {
    Application app = tiny_app();
    app.phases[0].uses[0].dataset = 9;
    EXPECT_THROW(app.validate(), Error);

    app = tiny_app();
    app.phases[1].context = 5;
    EXPECT_THROW(app.validate(), Error);

    app = tiny_app();
    app.datasets[0].bytes = 6;  // not a multiple of 4
    EXPECT_THROW(app.validate(), Error);

    app = tiny_app();
    app.phases[0].uses[0].accesses = 0;
    EXPECT_THROW(app.validate(), Error);

    EXPECT_NO_THROW(tiny_app().validate());
}

TEST(Model, ArchCostsAreOrdered) {
    const ReconfArch arch;
    EXPECT_LT(arch.access_pj(MemLevel::L1), arch.access_pj(MemLevel::L2));
    EXPECT_LT(arch.access_pj(MemLevel::L2), arch.access_pj(MemLevel::Ext));
}

TEST(Model, MoveCostSymmetricAndZeroForStay) {
    const ReconfArch arch;
    EXPECT_DOUBLE_EQ(arch.move_pj(MemLevel::L1, MemLevel::L1, 1024), 0.0);
    EXPECT_DOUBLE_EQ(arch.move_pj(MemLevel::Ext, MemLevel::L1, 1024),
                     arch.move_pj(MemLevel::L1, MemLevel::Ext, 1024));
    EXPECT_GT(arch.move_pj(MemLevel::Ext, MemLevel::L1, 1024), 0.0);
}

TEST(Model, GeneratorIsDeterministicAndValid) {
    AppGenParams params;
    params.seed = 5;
    const Application a = generate_application(params);
    const Application b = generate_application(params);
    EXPECT_EQ(a.datasets.size(), b.datasets.size());
    EXPECT_EQ(a.phases.size(), b.phases.size());
    for (std::size_t p = 0; p < a.phases.size(); ++p)
        EXPECT_EQ(a.phases[p].context, b.phases[p].context);
    EXPECT_NO_THROW(a.validate());
}

// ------------------------------------------------------------- evaluate ----

TEST(Evaluate, AllExtScheduleCostsAccessOnly) {
    const Application app = tiny_app();
    const ReconfArch arch;
    DataSchedule schedule;
    schedule.assignment.assign(2, std::vector<MemLevel>(2, MemLevel::Ext));
    const auto e = evaluate_schedule(app, arch, schedule);
    const double expected_access = (10000 + 500 + 8000) * arch.ext_access_pj;
    EXPECT_DOUBLE_EQ(e.component("data_access"), expected_access);
    EXPECT_DOUBLE_EQ(e.component("data_movement"), 0.0);
    EXPECT_GT(e.component("context_load"), 0.0);
}

TEST(Evaluate, MovementChargedOnLevelChange) {
    const Application app = tiny_app();
    const ReconfArch arch;
    DataSchedule schedule;
    schedule.assignment = {
        {MemLevel::L1, MemLevel::Ext},  // a moves Ext->L1
        {MemLevel::L2, MemLevel::Ext},  // a moves L1->L2
    };
    const auto e = evaluate_schedule(app, arch, schedule);
    const double expected_move = arch.move_pj(MemLevel::Ext, MemLevel::L1, 1024) +
                                 arch.move_pj(MemLevel::L1, MemLevel::L2, 1024);
    EXPECT_DOUBLE_EQ(e.component("data_movement"), expected_move);
}

TEST(Evaluate, RejectsCapacityViolation) {
    Application app = tiny_app();
    app.datasets[0].bytes = 4096;  // a no longer fits L1 (2 KiB)
    const ReconfArch arch;
    DataSchedule schedule;
    schedule.assignment.assign(2, std::vector<MemLevel>(2, MemLevel::Ext));
    schedule.assignment[0][0] = MemLevel::L1;
    EXPECT_THROW(evaluate_schedule(app, arch, schedule), Error);
}

TEST(Evaluate, RejectsShapeMismatch) {
    const Application app = tiny_app();
    const ReconfArch arch;
    DataSchedule schedule;
    schedule.assignment.assign(1, std::vector<MemLevel>(2, MemLevel::Ext));
    EXPECT_THROW(evaluate_schedule(app, arch, schedule), Error);
}

TEST(Evaluate, ContextReloadsCostEnergy) {
    // Two contexts ping-ponging with a single slot reload every phase;
    // with two slots they load once each.
    Application app;
    app.name = "pingpong";
    app.num_contexts = 2;
    app.datasets = {{"d", 256}};
    for (int i = 0; i < 8; ++i)
        app.phases.push_back({"p", static_cast<std::size_t>(i % 2), {{0, 100}}});

    DataSchedule schedule;
    schedule.assignment.assign(8, std::vector<MemLevel>(1, MemLevel::Ext));

    ReconfArch one_slot;
    one_slot.context_slots = 1;
    ReconfArch two_slots;
    two_slots.context_slots = 2;
    const double e1 = evaluate_schedule(app, one_slot, schedule).component("context_load");
    const double e2 = evaluate_schedule(app, two_slots, schedule).component("context_load");
    EXPECT_DOUBLE_EQ(e1, 8 * 2048 * one_slot.context_byte_pj);
    EXPECT_DOUBLE_EQ(e2, 2 * 2048 * two_slots.context_byte_pj);
}

TEST(Evaluate, ContextPrefetchHelpsThrashingSequences) {
    Application app;
    app.name = "thrash";
    app.num_contexts = 3;
    app.datasets = {{"d", 256}};
    for (int i = 0; i < 12; ++i)
        app.phases.push_back({"p", static_cast<std::size_t>(i % 3), {{0, 100}}});
    const ReconfArch arch;  // 2 slots, 3 contexts -> thrash

    DataSchedule plain;
    plain.assignment.assign(12, std::vector<MemLevel>(1, MemLevel::Ext));
    DataSchedule prefetch = plain;
    prefetch.prefetch_contexts = true;

    EXPECT_LT(evaluate_schedule(app, arch, prefetch).component("context_load"),
              evaluate_schedule(app, arch, plain).component("context_load"));
}

// -------------------------------------------------------------- solvers ----

TEST(Solvers, NaiveIsFeasibleAndStatic) {
    const Application app = tiny_app();
    const ReconfArch arch;
    const DataSchedule s = naive_schedule(app, arch);
    EXPECT_NO_THROW(evaluate_schedule(app, arch, s));
    for (std::size_t p = 1; p < s.assignment.size(); ++p)
        EXPECT_EQ(s.assignment[p], s.assignment[0]);
}

class SolverOrdering : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SolverOrdering, OptimalBeatsGreedyBeatsNothing) {
    AppGenParams params;
    params.seed = GetParam();
    params.num_datasets = 5;
    params.num_phases = 8;
    const Application app = generate_application(params);
    const ReconfArch arch;
    const double naive = evaluate_schedule(app, arch, naive_schedule(app, arch)).total();
    const double greedy = evaluate_schedule(app, arch, greedy_schedule(app, arch)).total();
    const double optimal = evaluate_schedule(app, arch, optimal_schedule(app, arch)).total();
    EXPECT_LE(optimal, greedy * (1 + 1e-12));
    EXPECT_LE(optimal, naive * (1 + 1e-12));
    // The headline claim: scheduling reduces application energy.
    EXPECT_LT(optimal, naive);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverOrdering,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

namespace brute {

/// Exhaustive schedule enumeration for tiny instances: every sequence of
/// feasible per-phase assignments. Used to certify the Viterbi DP.
double best_total(const Application& app, const ReconfArch& arch, bool prefetch) {
    const std::size_t d = app.datasets.size();
    std::size_t states_per_phase = 1;
    for (std::size_t i = 0; i < d; ++i) states_per_phase *= kNumLevels;

    auto decode_state = [&](std::size_t code) {
        std::vector<MemLevel> assign(d);
        for (std::size_t i = 0; i < d; ++i) {
            assign[i] = static_cast<MemLevel>(code % kNumLevels);
            code /= kNumLevels;
        }
        return assign;
    };

    double best = std::numeric_limits<double>::infinity();
    std::vector<std::size_t> choice(app.phases.size(), 0);
    for (;;) {
        DataSchedule schedule;
        schedule.prefetch_contexts = prefetch;
        for (std::size_t p = 0; p < app.phases.size(); ++p)
            schedule.assignment.push_back(decode_state(choice[p]));
        try {
            best = std::min(best, evaluate_schedule(app, arch, schedule).total());
        } catch (const Error&) {
            // capacity violation: skip
        }
        // Increment the mixed-radix counter.
        std::size_t p = 0;
        while (p < choice.size()) {
            if (++choice[p] < states_per_phase) break;
            choice[p] = 0;
            ++p;
        }
        if (p == choice.size()) break;
    }
    return best;
}

}  // namespace brute

class ViterbiCertification : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ViterbiCertification, ExactDpMatchesBruteForceEnumeration) {
    AppGenParams params;
    params.seed = GetParam();
    params.num_datasets = 2;
    params.num_phases = 3;
    params.num_contexts = 2;
    const Application app = generate_application(params);
    const ReconfArch arch;
    const double dp = evaluate_schedule(app, arch, optimal_schedule(app, arch)).total();
    const double brute_best = std::min(brute::best_total(app, arch, false),
                                       brute::best_total(app, arch, true));
    EXPECT_NEAR(dp, brute_best, 1e-6 * brute_best);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ViterbiCertification,
                         ::testing::Values(101, 102, 103, 104, 105, 106));

TEST(Solvers, GreedyFeasibleOnLargerInstances) {
    AppGenParams params;
    params.seed = 42;
    params.num_datasets = 12;
    params.num_phases = 24;
    const Application app = generate_application(params);
    const ReconfArch arch;
    EXPECT_NO_THROW(evaluate_schedule(app, arch, greedy_schedule(app, arch)));
}

TEST(Solvers, OptimalRejectsHugeInstances) {
    AppGenParams params;
    params.num_datasets = 9;
    const Application app = generate_application(params);
    EXPECT_THROW(optimal_schedule(app, ReconfArch{}), Error);
}

TEST(Solvers, HotSmallDataEndsUpInL1) {
    Application app;
    app.name = "hot";
    app.num_contexts = 1;
    app.datasets = {{"hot", 512}, {"cold", 16 * 1024}};
    app.phases = {{"p0", 0, {{0, 100000}, {1, 100}}}};
    const ReconfArch arch;
    const DataSchedule s = optimal_schedule(app, arch);
    EXPECT_EQ(s.assignment[0][0], MemLevel::L1);
    EXPECT_EQ(s.assignment[0][1], MemLevel::Ext);  // cold and too big for L2? it fits... 16K > 8K L2
}

TEST(Solvers, MemLevelNames) {
    EXPECT_EQ(mem_level_name(MemLevel::L1), "L1");
    EXPECT_EQ(mem_level_name(MemLevel::L2), "L2");
    EXPECT_EQ(mem_level_name(MemLevel::Ext), "ext");
}

}  // namespace
}  // namespace memopt
