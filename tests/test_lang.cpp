// Tests for arclang: lexer, parser, semantic checks, and — most importantly
// — compiled-program semantics verified by executing the generated AR32
// code on the simulator against values computed here in C++.
#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "lang/codegen.hpp"
#include "lang/lexer.hpp"
#include "lang/parser.hpp"
#include "sim/cpu.hpp"
#include "support/assert.hpp"

namespace memopt {
namespace {

using lang::compile;
using lang::compile_to_asm;
using lang::tokenize;

std::vector<std::uint32_t> run_lang(const std::string& source) {
    return Cpu(CpuConfig{}).run(compile(source)).output;
}

std::uint32_t run_lang_single(const std::string& source) {
    const auto outputs = run_lang(source);
    EXPECT_EQ(outputs.size(), 1u);
    return outputs.empty() ? 0u : outputs[0];
}

// ---------------------------------------------------------------- lexer ----

TEST(LangLexer, TokenizesOperatorsLongestFirst) {
    const auto tokens = tokenize("a >>> 1 >> 2 >= b");
    ASSERT_EQ(tokens.size(), 8u);  // a >>> 1 >> 2 >= b END
    EXPECT_EQ(tokens[1].text, ">>>");
    EXPECT_EQ(tokens[3].text, ">>");
    EXPECT_EQ(tokens[5].text, ">=");
}

TEST(LangLexer, TracksLinesAndSkipsComments) {
    const auto tokens = tokenize("x\n// comment line\ny");
    ASSERT_EQ(tokens.size(), 3u);
    EXPECT_EQ(tokens[0].line, 1);
    EXPECT_EQ(tokens[1].line, 3);
}

TEST(LangLexer, HexNumbers) {
    const auto tokens = tokenize("0xFF 42");
    EXPECT_EQ(tokens[0].number, 255);
    EXPECT_EQ(tokens[1].number, 42);
}

TEST(LangLexer, RejectsBadCharacters) {
    EXPECT_THROW(tokenize("a $ b"), Error);
    try {
        tokenize("ok\nbad @");
        FAIL();
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    }
}

// --------------------------------------------------------------- parser ----

TEST(LangParser, SyntaxErrorsCarryLines) {
    try {
        lang::parse("var x = 1;\nvar y = ;\n");
        FAIL();
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    }
    EXPECT_THROW(lang::parse("if (x) { out(1); "), Error);       // unterminated block
    EXPECT_THROW(lang::parse("array a[0];"), Error);             // bad length
    EXPECT_THROW(lang::parse("array a[4] = foo(1);"), Error);    // bad initializer
    EXPECT_THROW(lang::parse("while x < 1 { }"), Error);         // missing parens
}

// ------------------------------------------------------ semantic checks ----

TEST(LangSemantics, RejectsUndeclaredAndRedeclared) {
    EXPECT_THROW(compile_to_asm("out(x);"), Error);
    EXPECT_THROW(compile_to_asm("x = 1;"), Error);
    EXPECT_THROW(compile_to_asm("var x = 1; var x = 2;"), Error);
    EXPECT_THROW(compile_to_asm("array a[4]; array a[4];"), Error);
    EXPECT_THROW(compile_to_asm("array a[4]; var a = 1;"), Error);
}

TEST(LangSemantics, RejectsScalarArrayConfusion) {
    EXPECT_THROW(compile_to_asm("var x = 1; out(x[0]);"), Error);
    EXPECT_THROW(compile_to_asm("array a[4]; out(a);"), Error);
    EXPECT_THROW(compile_to_asm("var x = 1; x[0] = 2;"), Error);
}

TEST(LangSemantics, RejectsTooDeepExpressions) {
    // Nest on the RIGHT side so every level needs one more live register;
    // nine levels exceed the 8-register evaluation stack.
    std::string right = "1";
    for (int i = 0; i < 9; ++i) right = "1 + (" + right + ")";
    EXPECT_THROW(compile_to_asm("out(" + right + ");"), Error);
    // Left-nesting reuses registers and stays shallow: must compile.
    std::string left = "1";
    for (int i = 0; i < 9; ++i) left = "(" + left + " + 1)";
    EXPECT_NO_THROW(compile_to_asm("out(" + left + ");"));
}

// ------------------------------------------------------------ semantics ----

TEST(LangExec, ArithmeticAndPrecedence) {
    EXPECT_EQ(run_lang_single("out(2 + 3 * 4);"), 14u);
    EXPECT_EQ(run_lang_single("out((2 + 3) * 4);"), 20u);
    EXPECT_EQ(run_lang_single("out(1 + 2 << 2);"), 12u);     // shifts bind loosest
    EXPECT_EQ(run_lang_single("out(-5 + 3);"), static_cast<std::uint32_t>(-2));
    EXPECT_EQ(run_lang_single("out(~0);"), 0xFFFFFFFFu);
    EXPECT_EQ(run_lang_single("out(0xF0 ^ 0xFF);"), 0x0Fu);
    EXPECT_EQ(run_lang_single("out(-8 >> 1);"), static_cast<std::uint32_t>(-4));  // arithmetic
    EXPECT_EQ(run_lang_single("out(0x80000000 >>> 31);"), 1u);                    // logical
}

TEST(LangExec, VariablesAndAssignment) {
    EXPECT_EQ(run_lang_single(R"(
        var x = 10;
        var y = x * x;
        x = y - x;
        out(x);
    )"),
              90u);
}

TEST(LangExec, WhileLoopSums) {
    EXPECT_EQ(run_lang_single(R"(
        var i = 0;
        var sum = 0;
        while (i < 10) {
            sum = sum + i;
            i = i + 1;
        }
        out(sum);
    )"),
              45u);
}

TEST(LangExec, IfElseBranches) {
    const char* tmpl = R"(
        var x = %d;
        if (x >= 5) {
            out(100);
        } else {
            out(200);
        }
    )";
    char buf[256];
    std::snprintf(buf, sizeof buf, tmpl, 7);
    EXPECT_EQ(run_lang_single(buf), 100u);
    std::snprintf(buf, sizeof buf, tmpl, 3);
    EXPECT_EQ(run_lang_single(buf), 200u);
}

TEST(LangExec, SignedComparisons) {
    EXPECT_EQ(run_lang_single("var x = -1; if (x < 1) { out(1); } else { out(0); }"), 1u);
    EXPECT_EQ(run_lang_single("var x = -1; if (x != 0xFFFFFFFF) { out(1); } else { out(2); }"),
              2u);  // same bit pattern
}

TEST(LangExec, BreakLeavesInnermostLoop) {
    EXPECT_EQ(run_lang_single(R"(
        var i = 0;
        var sum = 0;
        while (i < 100) {
            if (i == 5) { break; }
            sum = sum + i;
            i = i + 1;
        }
        out(sum);
    )"),
              10u);  // 0+1+2+3+4
}

TEST(LangExec, ContinueSkipsRestOfBody) {
    EXPECT_EQ(run_lang_single(R"(
        var i = 0;
        var sum = 0;
        while (i < 10) {
            i = i + 1;
            if (i & 1 == 1) { continue; }   // skip odd i
            sum = sum + i;
        }
        out(sum);
    )"),
              2u + 4u + 6u + 8u + 10u);
}

TEST(LangExec, BreakTargetsInnermostOfNestedLoops) {
    EXPECT_EQ(run_lang_single(R"(
        var i = 0;
        var count = 0;
        while (i < 3) {
            var j = 0;
            j = 0;
            while (j < 100) {
                if (j == 2) { break; }
                count = count + 1;
                j = j + 1;
            }
            i = i + 1;
        }
        out(count);
    )"),
              6u);  // 3 outer iterations x 2 inner before break
}

TEST(LangSemantics, BreakOutsideLoopRejected) {
    EXPECT_THROW(compile_to_asm("break;"), Error);
    EXPECT_THROW(compile_to_asm("if (1 == 1) { continue; }"), Error);
}

TEST(LangExec, ArraysReadWrite) {
    EXPECT_EQ(run_lang_single(R"(
        array a[8];
        var i = 0;
        while (i < 8) {
            a[i] = i * i;
            i = i + 1;
        }
        out(a[0] + a[3] + a[7]);
    )"),
              0u + 9u + 49u);
}

TEST(LangExec, RandArrayMatchesAsmGenerator) {
    const auto words = asm_random_words(4, 99);
    const auto outputs = run_lang(R"(
        array a[4] = rand(99);
        out(a[0]);
        out(a[2]);
    )");
    ASSERT_EQ(outputs.size(), 2u);
    EXPECT_EQ(outputs[0], words[0]);
    EXPECT_EQ(outputs[1], words[2]);
}

TEST(LangExec, DotProductMatchesReference) {
    const auto a = asm_random_words(64, 7);
    const auto b = asm_random_words(64, 8);
    std::uint32_t expected = 0;
    for (std::size_t i = 0; i < 64; ++i) expected += a[i] * b[i];
    EXPECT_EQ(run_lang_single(R"(
        array a[64] = rand(7);
        array b[64] = rand(8);
        var i = 0;
        var acc = 0;
        while (i < 64) {
            acc = acc + a[i] * b[i];
            i = i + 1;
        }
        out(acc);
    )"),
              expected);
}

TEST(LangExec, NestedLoopsMatmul4x4) {
    const auto a = asm_random_words(16, 31);
    const auto b = asm_random_words(16, 32);
    std::uint32_t expected = 0;
    for (std::size_t i = 0; i < 4; ++i) {
        for (std::size_t j = 0; j < 4; ++j) {
            std::uint32_t acc = 0;
            for (std::size_t k = 0; k < 4; ++k) acc += a[i * 4 + k] * b[k * 4 + j];
            expected += acc;
        }
    }
    EXPECT_EQ(run_lang_single(R"(
        array a[16] = rand(31);
        array b[16] = rand(32);
        array c[16];
        var i = 0;
        while (i < 4) {
            var j = 0;
            j = 0;
            while (j < 4) {
                var k = 0;
                var acc = 0;
                k = 0;
                acc = 0;
                while (k < 4) {
                    acc = acc + a[i * 4 + k] * b[k * 4 + j];
                    k = k + 1;
                }
                c[i * 4 + j] = acc;
                j = j + 1;
            }
            i = i + 1;
        }
        var cks = 0;
        var n = 0;
        while (n < 16) {
            cks = cks + c[n];
            n = n + 1;
        }
        out(cks);
    )"),
              expected);
}

TEST(LangExec, SmoothArrayInitializer) {
    const auto words = asm_smooth_words(8, 5, 100);
    EXPECT_EQ(run_lang_single("array s[8] = smooth(5, 100); out(s[7]);"), words[7]);
}

TEST(LangExec, CompiledProgramsProduceTraces) {
    const auto program = compile(R"(
        array data[256] = smooth(11, 5000);
        var i = 0;
        var sum = 0;
        while (i < 256) {
            sum = sum + data[i];
            i = i + 1;
        }
        out(sum);
    )");
    const RunResult run = Cpu(CpuConfig{}).run(program);
    EXPECT_FALSE(run.data_trace.empty());
    // Locals live on the stack: writes must appear in the trace.
    EXPECT_GT(run.data_trace.write_count(), 256u);
}

}  // namespace
}  // namespace memopt
